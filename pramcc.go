package pramcc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/graph"
	"repro/internal/ccbase"
	"repro/internal/pram"
	"repro/internal/vanilla"
)

// Stats reports the costs of a run. The fields split into two groups:
// real quantities, measured on the host and meaningful for every
// backend, and model-only quantities, counted in simulated-PRAM units
// (steps, processors, common-memory words — never wall clock) and
// populated only by BackendSimulated. BackendNative does no per-step
// accounting, so on a native run every model-only field is zero.
type Stats struct {
	// ---- real quantities (all backends) ----

	Backend Backend       // engine that produced the result
	Wall    time.Duration // wall clock of the run itself — result assembly (label counting) is excluded
	Workers int           // host goroutine count that executed the run
	Rounds  int           // main-loop rounds: EXPAND-MAXLINK rounds or phases (simulated), link+shortcut rounds (native)
	Grain   int           // configured scheduler claim grain (WithGrain); 0 means adaptive sizing

	// ---- model-only quantities (BackendSimulated; zero on native) ----

	PRAMSteps     int64 // simulated constant-time PRAM steps
	Work          int64 // Σ steps × processors
	MaxProcessors int64 // peak processors in one step
	PeakSpace     int64 // peak allocated common-memory words
	MaxLevel      int   // highest level reached (ConnectedComponents only)
	CumBlockWords int64 // Σ block allocations (Lemma 3.10's O(m) quantity)
	Prep          int   // Vanilla phases run by PREPARE/COMPACT
	PostPhases    int   // Theorem-1 phases of the postprocessing stage
	Failed        bool  // a bad-probability event occurred (see method docs)
}

// Result is a component labeling with run statistics.
type Result struct {
	// Labels assigns every vertex a component representative: two
	// vertices are in the same component iff their labels are equal.
	Labels []int32
	// NumComponents is the number of distinct labels.
	NumComponents int
	Stats         Stats
}

// SameComponent reports whether v and w are in the same component —
// the constant-time test the labeling framework exists for (§2.1).
func (r *Result) SameComponent(v, w int) bool { return r.Labels[v] == r.Labels[w] }

// ForestResult extends Result with a spanning forest.
type ForestResult struct {
	Result
	// EdgeIndices are indices into g.Edges() of the forest edges;
	// exactly n − NumComponents of them.
	EdgeIndices []int
	// Edges are the forest edges themselves, as boxed pairs (kept for
	// compatibility; Span is the columnar form).
	Edges [][2]int
	// Span is the forest as a columnar arc-pair span (mirror arcs, in
	// EdgeIndices order) — directly ingestible by Service.IngestSpan,
	// Incremental.AddSpan, or any other EdgeSpan consumer.
	Span graph.EdgeSpan
}

func validate(g *graph.Graph) error {
	if g == nil {
		return errors.New("pramcc: nil graph")
	}
	return g.Validate()
}

// countLabels returns the number of distinct labels. Every backend
// labels a component by one of its vertices, so labels live in
// [0, len(labels)) and one indexed pass over a flat seen-array counts
// them in O(n) — the map that used to live here cost more than a whole
// native run on large graphs. The map fallback only exists so a future
// backend with out-of-range labels degrades instead of panicking.
func countLabels(labels []int32) int {
	n := len(labels)
	seen := make([]bool, n)
	count := 0
	for _, l := range labels {
		if uint(l) >= uint(n) {
			return countLabelsGeneric(labels)
		}
		if !seen[l] {
			seen[l] = true
			count++
		}
	}
	return count
}

// labelsInto copies src into dst, growing dst only when its capacity
// is short, and returns the filled slice — the grow-or-reuse core
// shared by the zero-alloc LabelsInto query methods of Incremental
// and Service. src is an immutable published labeling, so a plain
// copy after the caller's one atomic snapshot read is
// snapshot-consistent.
//
//pramcc:zeroalloc
func labelsInto(dst, src []int32) []int32 {
	if cap(dst) < len(src) {
		//pramcc:allow zeroalloc -- grow-or-reuse contract: allocates only when the caller's buffer is short
		dst = make([]int32, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

func countLabelsGeneric(labels []int32) int {
	seen := make(map[int32]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// newResult assembles a Result from a labeling and the caller-measured
// wall time. Stats.Wall must be fixed by the caller before the O(n)
// component count runs: a struct literal that evaluates
// countLabels(...) before time.Since(start) silently charges the
// counting pass to the run itself, which is exactly the cross-backend
// wall-clock pollution E11/E12 existed to rule out.
func newResult(wall time.Duration, labels []int32, stats Stats) *Result {
	stats.Wall = wall
	return &Result{
		Labels:        labels,
		NumComponents: countLabels(labels),
		Stats:         stats,
	}
}

func apply(opts []Option) config {
	c := defaultConfig()
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Components computes the connected components of g on the backend
// selected with WithBackend: the model-cost PRAM simulation (default;
// equivalent to ConnectedComponents, the paper's Theorem-3 algorithm),
// the native shared-memory engine, or the streaming union-find engine
// fed the whole graph as one batch. All three compute the same
// partition; the non-simulated backends leave every model-only Stats
// field zero. This is the recommended entry point when the goal is the
// answer rather than a specific theorem's cost profile.
//
// Components is a compatibility wrapper over a process-shared Solver
// for the chosen (backend, workers) pair: the engine and its worker
// pool are built once and reused across calls, not torn down per call.
// Callers who want cancellation, deadlines, or zero steady-state
// allocations should hold their own Solver; callers serving concurrent
// queries during recomputes should use Service.
func Components(g *graph.Graph, opts ...Option) (*Result, error) {
	return sharedSolve(context.Background(), g, apply(opts))
}

// ConnectedComponents computes the connected components of g with the
// paper's primary algorithm (Theorem 3): O(log d + log log_{m/n} n)
// simulated time with O(m) processors, with good probability. The
// returned labels are always correct: if the round cap is exhausted
// (Stats.Failed), the Theorem-1 postprocessing still completes the
// computation. Like Components, it is a wrapper over the shared
// simulated-backend Solver.
func ConnectedComponents(g *graph.Graph, opts ...Option) (*Result, error) {
	c := apply(opts)
	c.backend = BackendSimulated
	return sharedSolve(context.Background(), g, c)
}

// ConnectedComponentsLogLog computes connected components with the
// Theorem 1 algorithm: O(log d · log log_{m/n} n) simulated time. If
// the phase cap is exhausted before convergence the labels may be
// incomplete and an error is returned alongside the partial result.
func ConnectedComponentsLogLog(g *graph.Graph, opts ...Option) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	c := apply(opts)
	m := pram.New(c.workers)
	p := ccbase.DefaultParams(c.seed)
	if c.maxPhases > 0 {
		p.MaxPhases = c.maxPhases
	}
	if c.combining {
		p.Mode = ccbase.ModeCombining
	}
	start := time.Now()
	res := ccbase.Run(m, g, p)
	wall := time.Since(start)
	out := newResult(wall, res.Labels, Stats{
		Backend:       BackendSimulated,
		Workers:       m.Workers(),
		Rounds:        res.Phases,
		PRAMSteps:     res.Stats.Steps,
		Work:          res.Stats.Work,
		MaxProcessors: res.Stats.MaxProcs,
		PeakSpace:     res.Stats.MaxSpace,
		Prep:          res.Prep,
		Failed:        res.Failed,
	})
	if res.Failed {
		return out, errPhaseCap(res.Phases)
	}
	return out, nil
}

// SpanningForest computes a spanning forest of g with the Theorem 2
// algorithm: O(log d · log log_{m/n} n) simulated time. Forest edges
// are edges of the input graph; there are exactly n − NumComponents
// of them. On phase-cap exhaustion an error is returned alongside the
// partial result. The context-aware form is Solver.SpanningForest.
func SpanningForest(g *graph.Graph, opts ...Option) (*ForestResult, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	return spanningForest(context.Background(), g, apply(opts))
}

// errPhaseCap is the phase-cap-exhaustion error shared by the
// Theorem-1 and Theorem-2 entry points.
func errPhaseCap(phases int) error {
	return fmt.Errorf("pramcc: phase cap exhausted after %d phases (bad-probability event; rerun with another seed or WithMaxPhases)", phases)
}

// VanillaComponents computes connected components with Reif's O(log n)
// algorithm (§B.1) — the classic baseline the paper improves on for
// small-diameter graphs.
func VanillaComponents(g *graph.Graph, opts ...Option) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	c := apply(opts)
	m := pram.New(c.workers)
	start := time.Now()
	res := vanilla.Run(m, g, c.seed, c.maxPhases)
	wall := time.Since(start)
	return newResult(wall, res.Labels, Stats{
		Backend:       BackendSimulated,
		Workers:       m.Workers(),
		Rounds:        res.Phases,
		PRAMSteps:     res.Stats.Steps,
		Work:          res.Stats.Work,
		MaxProcessors: res.Stats.MaxProcs,
		PeakSpace:     res.Stats.MaxSpace,
	}), nil
}
