//go:build race

package pramcc

// raceEnabled: see race_off.go.
const raceEnabled = true
