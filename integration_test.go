package pramcc

// Integration tests: end-to-end agreement of every algorithm across a
// wide workload matrix, including the heavy-tailed and dense/sparse
// hybrid families that stress different code paths (hub collisions,
// budget mismatches, isolated vertices, multigraph edges).

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/graph"
	"repro/internal/check"
)

func workloadMatrix() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path-1k":      graph.Path(1000),
		"cycle":        graph.Cycle(777),
		"star":         graph.Star(500),
		"grid":         graph.Grid2D(30, 35),
		"torus":        graph.Torus2D(20, 25),
		"hypercube":    graph.Hypercube(9),
		"binary-tree":  graph.CompleteBinaryTree(1023),
		"random-tree":  graph.RandomTree(800, 4),
		"gnm-sparse":   graph.Gnm(3000, 4500, 1),
		"gnm-dense":    graph.Gnm(1500, 48000, 2),
		"rmat":         graph.RMAT(2048, 10000, 3),
		"chung-lu":     graph.ChungLu(2000, 9000, 2.4, 4),
		"beads":        graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 40, Size: 12, IntraDeg: 10, Bridges: 2, Seed: 5}),
		"barbell":      graph.Barbell(25, 60),
		"lollipop":     graph.LollipopPath(30, 200),
		"caterpillar":  graph.Caterpillar(150, 300),
		"multi-comp":   graph.DisjointUnion(graph.Gnm(800, 2400, 6), graph.Path(300), graph.Clique(25), graph.Star(50)),
		"isolated-mix": graph.WithIsolated(graph.Permuted(graph.Grid2D(20, 20), 7), 64),
	}
}

func TestIntegrationAllAlgorithmsAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix skipped in -short")
	}
	for name, g := range workloadMatrix() {
		oracle := g.ComponentsBFS()
		t.Run(name, func(t *testing.T) {
			fast, err := ConnectedComponents(g, WithSeed(11))
			if err != nil {
				t.Fatalf("fast: %v", err)
			}
			if err := check.SamePartition(fast.Labels, oracle); err != nil {
				t.Fatalf("fast: %v", err)
			}
			ll, err := ConnectedComponentsLogLog(g, WithSeed(11))
			if err != nil {
				t.Fatalf("loglog: %v", err)
			}
			if err := check.SamePartition(ll.Labels, oracle); err != nil {
				t.Fatalf("loglog: %v", err)
			}
			sf, err := SpanningForest(g, WithSeed(11))
			if err != nil {
				t.Fatalf("forest: %v", err)
			}
			if err := check.SamePartition(sf.Labels, oracle); err != nil {
				t.Fatalf("forest labels: %v", err)
			}
			if err := check.Forest(g, sf.EdgeIndices); err != nil {
				t.Fatalf("forest structure: %v", err)
			}
			van, err := VanillaComponents(g, WithSeed(11))
			if err != nil {
				t.Fatalf("vanilla: %v", err)
			}
			if err := check.SamePartition(van.Labels, oracle); err != nil {
				t.Fatalf("vanilla: %v", err)
			}
		})
	}
}

// TestIntegrationRandomGraphsProperty: random multigraphs of arbitrary
// shape must always match the oracle (quick-check over generator
// parameters).
func TestIntegrationRandomGraphsProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16) bool {
		n := int(nRaw%500) + 2
		m := int(mRaw % 2000)
		g := graph.Gnm(n, m, seed)
		res, err := ConnectedComponents(g, WithSeed(uint64(seed)+1))
		if err != nil {
			return false
		}
		return check.Components(g, res.Labels) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationForestProperty: spanning forests of random graphs are
// always structurally valid.
func TestIntegrationForestProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16) bool {
		n := int(nRaw%400) + 2
		m := int(mRaw % 1600)
		g := graph.Gnm(n, m, seed)
		res, err := SpanningForest(g, WithSeed(uint64(seed)+3))
		if err != nil {
			return false
		}
		return check.Forest(g, res.EdgeIndices) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationSeedSweepHighDiameter: the headline regime (large d)
// across many seeds.
func TestIntegrationSeedSweepHighDiameter(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 96, Size: 16, IntraDeg: 13, Bridges: 2, Seed: 1})
	oracle := g.ComponentsBFS()
	for seed := uint64(1); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := ConnectedComponents(g, WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := check.SamePartition(res.Labels, oracle); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIntegrationHeavyTailHubs: heavy-tailed degree graphs drive hubs
// into permanent collision → dormancy → level-ups; the space guard and
// postprocessing must keep runs correct.
func TestIntegrationHeavyTailHubs(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := graph.ChungLu(3000, 20000, 2.1, seed)
		res, err := ConnectedComponents(g, WithSeed(uint64(seed)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := check.Components(g, res.Labels); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
