// Meshrouting: a high-diameter workload. A 2-D grid with random
// obstacle holes models a routing mesh; its diameter grows with the
// grid side, which is exactly the regime where the paper's
// O(log d + log log n) bound separates from Θ(d) label propagation.
// We sweep the grid side and print rounds for both algorithms.
package main

import (
	"fmt"
	"log"
	"math/rand"

	pramcc "repro"
	"repro/graph"
	"repro/internal/baseline"
	"repro/internal/pram"
)

// holeyGrid builds a side×side grid and removes each vertex's edges
// with probability hole (the vertex becomes isolated — an obstacle).
func holeyGrid(side int, hole float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	blocked := make([]bool, side*side)
	for i := range blocked {
		blocked[i] = rng.Float64() < hole
	}
	g := graph.New(side * side)
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if blocked[id(r, c)] {
				continue
			}
			if c+1 < side && !blocked[id(r, c+1)] {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < side && !blocked[id(r+1, c)] {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

func main() {
	fmt.Printf("%8s %10s %10s %14s %18s\n", "side", "diam(est)", "comps", "Thm3 rounds", "label-prop rounds")
	for _, side := range []int{16, 32, 64, 128, 256} {
		g := holeyGrid(side, 0.05, int64(side))
		d := g.DiameterEstimate()

		res, err := pramcc.ConnectedComponents(g, pramcc.WithSeed(uint64(side)))
		if err != nil {
			log.Fatal(err)
		}
		lp := baseline.LabelPropagation(pram.New(0), g)

		fmt.Printf("%8d %10d %10d %14d %18d\n",
			side, d, res.NumComponents, res.Stats.Rounds, lp.Rounds)
	}
	fmt.Println("\nlabel propagation scales with the diameter; Theorem 3 with its logarithm.")
}
