// Service: the serving-layer shape of the ISSUE-4 API redesign. A
// pramcc.Service publishes immutable labeling snapshots through an
// atomic pointer, so any number of reader goroutines answer
// SameComponent queries lock-free — at full speed, with no
// coordination — while a writer streams edge batches (or runs full
// recomputes) underneath them. A reader never blocks and never sees a
// half-ingested batch; a cancelled update leaves the published
// snapshot untouched.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	pramcc "repro"
	"repro/graph"
)

func main() {
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{
		Beads: 64, Size: 16, IntraDeg: 6, Bridges: 2, Seed: 7,
	})

	svc, err := pramcc.NewService(g.N, pramcc.WithBackend(pramcc.BackendIncremental))
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// Readers: hammer the service concurrently with ingestion.
	var queries atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					v := (r*7919 + i) % g.N
					w := (r*104729 + 3*i) % g.N
					_ = svc.SameComponent(v, w)
					queries.Add(1)
				}
			}
		}(r)
	}

	// Writer: the graph's edges arrive in 20 batches — zero-copy
	// columnar spans of the resident graph, so ingestion allocates
	// only the published snapshots.
	ctx := context.Background()
	for i, batch := range g.SpanBatches(20) {
		res, err := svc.IngestSpan(ctx, batch)
		if err != nil {
			log.Fatal(err)
		}
		if i%5 == 4 {
			fmt.Printf("after batch %2d: components=%5d ingest=%v\n",
				i+1, res.NumComponents, res.Stats.Wall)
		}
	}
	close(stop)
	wg.Wait()

	fmt.Printf("\nserved %d lock-free queries during ingestion\n", queries.Load())
	fmt.Printf("final components: %d (vertices %d, edges %d)\n",
		svc.NumComponents(), svc.N(), g.NumEdges())

	// A full recompute (here on the same graph) also just swaps the
	// snapshot; readers would have kept answering throughout.
	if _, err := svc.Update(ctx, g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after Update:     %d components\n", svc.NumComponents())
}
