// Streaming: the scenario the incremental backend exists for. Edges
// arrive over time — here an RMAT graph replayed in batches, standing
// in for a growing social network — and between batches the
// application keeps answering connectivity queries from a labeling
// that is always fresh. Each batch costs the incremental union-find
// the work of the new edges plus one flatten pass over the vertices;
// the alternative, a full native recompute after every batch, rescans
// the entire accumulated edge set for several rounds every time.
// Experiment E12 (cmd/ccbench, EXPERIMENTS.md) measures the same
// comparison across generator families.
//
// Run with:
//
//	go run ./examples/streaming [-n 100000] [-deg 4] [-batches 12] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	pramcc "repro"
	"repro/graph"
)

func main() {
	n := flag.Int("n", 100000, "vertices")
	deg := flag.Int("deg", 4, "edges per vertex (m = n·deg via RMAT)")
	batches := flag.Int("batches", 12, "number of arrival batches")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	g := graph.RMAT(*n, *n**deg, 7)
	fmt.Printf("workload: RMAT  n=%d  m=%d  arriving in %d batches\n\n", g.N, g.NumEdges(), *batches)

	inc, err := pramcc.NewIncremental(g.N, pramcc.WithWorkers(*workers))
	if err != nil {
		log.Fatal(err)
	}
	defer inc.Close()

	fmt.Printf("%7s %10s %12s %12s %14s\n", "batch", "edges", "total edges", "components", "batch latency")
	var incrTotal time.Duration
	// SpanBatches slices the graph's columnar arc storage in place, and
	// AddSpan shards those columns straight onto the worker pool: the
	// whole replay is zero-copy (no [][2]int is ever materialized).
	for _, batch := range g.SpanBatches(*batches) {
		bs, err := inc.AddSpan(batch)
		if err != nil {
			log.Fatal(err)
		}
		incrTotal += bs.Wall
		fmt.Printf("%7d %10d %12d %12d %14v\n",
			bs.Batch, bs.Edges, bs.TotalEdges, bs.Components, bs.Wall.Round(10_000))
	}

	// The query side: answers come from the flattened snapshot in O(1).
	u, v := 0, g.N-1
	fmt.Printf("\nSameComponent(%d, %d) = %v  (answered from the live snapshot)\n",
		u, v, inc.SameComponent(u, v))

	// What staying fresh would have cost without the streaming engine:
	// one full native recompute per batch over the growing prefix.
	prefix := graph.New(g.N)
	var recompute time.Duration
	for _, batch := range g.SpanBatches(*batches) {
		for i := 0; i < batch.Len(); i++ {
			u, v := batch.Edge(i)
			prefix.AddEdge(int(u), int(v))
		}
		t0 := time.Now()
		if _, err := pramcc.Components(prefix, pramcc.WithBackend(pramcc.BackendNative),
			pramcc.WithWorkers(*workers)); err != nil {
			log.Fatal(err)
		}
		recompute += time.Since(t0)
	}

	nat, err := pramcc.Components(g, pramcc.WithBackend(pramcc.BackendNative))
	if err != nil {
		log.Fatal(err)
	}
	agree := true
	for i, l := range inc.LabelsInto(nil) {
		if l != nat.Labels[i] {
			agree = false
			break
		}
	}

	fmt.Printf("\nincremental, all %d batches:        %12v\n", inc.BatchCount(), incrTotal.Round(10_000))
	fmt.Printf("native recompute after every batch: %12v  (%.1fx slower)\n",
		recompute.Round(10_000), float64(recompute)/float64(incrTotal))
	fmt.Printf("final labels equal one-shot native:  %v\n", agree)
}
