// Socialgraph: the workload the paper's introduction motivates —
// internet-scale graphs with many small-diameter communities. We build
// a synthetic community graph (dense clusters + sparse random
// bridges), compute components with the Theorem 3 algorithm, and
// compare the simulated round count against Reif's O(log n) Vanilla
// algorithm and the sequential union-find ground truth.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	pramcc "repro"
	"repro/graph"
)

// communities builds k clusters of size s (random internal degree deg)
// and joins a random fraction of cluster pairs with single edges,
// leaving several connected components of small diameter.
func communities(k, s, deg int, joinProb float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	clusters := make([]*graph.Graph, k)
	for i := range clusters {
		clusters[i] = graph.Gnm(s, s*deg/2, rng.Int63())
	}
	g := graph.DisjointUnion(clusters...)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if rng.Float64() < joinProb {
				g.AddEdge(i*s+rng.Intn(s), j*s+rng.Intn(s))
			}
		}
	}
	return g
}

func main() {
	g := communities(64, 1500, 8, 0.02, 7)
	fmt.Printf("social graph: n=%d m=%d\n\n", g.N, g.NumEdges())

	t0 := time.Now()
	fast, err := pramcc.ConnectedComponents(g, pramcc.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	tFast := time.Since(t0)

	t0 = time.Now()
	van, err := pramcc.VanillaComponents(g, pramcc.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	tVan := time.Since(t0)

	t0 = time.Now()
	seq := g.ComponentsBFS()
	tSeq := time.Since(t0)
	nSeq := 0
	for i, l := range seq {
		if int(l) == i {
			nSeq++
		}
	}

	fmt.Printf("%-28s %10s %12s %12s\n", "algorithm", "components", "PRAM rounds", "wall clock")
	fmt.Printf("%-28s %10d %12d %12v\n", "Theorem 3 (log d + loglog)", fast.NumComponents, fast.Stats.Rounds, tFast.Round(time.Millisecond))
	fmt.Printf("%-28s %10d %12d %12v\n", "Vanilla/Reif (log n)", van.NumComponents, van.Stats.Rounds, tVan.Round(time.Millisecond))
	fmt.Printf("%-28s %10d %12s %12v\n", "sequential BFS (oracle)", nSeq, "-", tSeq.Round(time.Millisecond))

	if fast.NumComponents != nSeq || van.NumComponents != nSeq {
		log.Fatal("component counts disagree with the oracle")
	}
	fmt.Printf("\nall algorithms agree on %d components\n", nSeq)
	fmt.Printf("Theorem 3 peak simulated processors: %d (m = %d)\n",
		fast.Stats.MaxProcessors, g.NumEdges())
}
