// Ablationtour: demonstrates the tuning surface of the public API —
// what the paper's design choices buy, measured live on one workload.
// Compare with Experiment E10 (cmd/ccbench) for the full-size tables.
package main

import (
	"fmt"
	"log"

	pramcc "repro"
	"repro/graph"
)

func main() {
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{
		Beads: 96, Size: 24, IntraDeg: 20, Bridges: 2, Seed: 7,
	})
	fmt.Printf("workload: %s\n\n", g.Summary())

	type variant struct {
		name string
		opts []pramcc.Option
	}
	variants := []variant{
		{"default (2×MAXLINK, boost on)", nil},
		{"single MAXLINK iteration", []pramcc.Option{pramcc.WithMaxLinkIters(1)}},
		{"boost disabled (step 2 off)", []pramcc.Option{pramcc.WithoutBoost()}},
		{"budget growth γ=1.4", []pramcc.Option{pramcc.WithBudgetGrowth(1.4)}},
		{"min budget 64", []pramcc.Option{pramcc.WithMinBudget(64)}},
	}

	fmt.Printf("%-32s %8s %9s %12s %8s\n", "variant", "rounds", "max lvl", "block wds/m", "failed")
	for _, v := range variants {
		opts := append([]pramcc.Option{pramcc.WithSeed(3)}, v.opts...)
		res, err := pramcc.ConnectedComponents(g, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if res.NumComponents != 1 {
			log.Fatalf("%s: wrong component count %d", v.name, res.NumComponents)
		}
		fmt.Printf("%-32s %8d %9d %12.2f %8v\n",
			v.name, res.Stats.Rounds, res.Stats.MaxLevel,
			float64(res.Stats.CumBlockWords)/float64(g.NumEdges()), res.Stats.Failed)
	}

	fmt.Println("\nthe boost is the symmetry breaker: without it nothing links and the")
	fmt.Println("space guard declares the bad-probability event (labels stay correct")
	fmt.Println("because the Theorem-1 postprocessing stage finishes the computation).")
}
