// Quickstart: build a small graph, compute its connected components,
// and inspect the results — first one-shot with the paper's
// O(log d + log log_{m/n} n) algorithm, then with the long-lived
// Solver form that production callers should hold (it owns the worker
// pool and buffers, honours context cancellation, and allocates
// nothing in steady state on the native backend).
package main

import (
	"context"
	"fmt"
	"log"

	pramcc "repro"
	"repro/graph"
)

func main() {
	// A graph with three components: a path, a clique, and a star,
	// plus a couple of isolated vertices.
	g := graph.DisjointUnion(
		graph.Path(10),
		graph.Clique(6),
		graph.Star(8),
	)
	g = graph.WithIsolated(g, 2)

	// One-shot: the free function, Theorem 3 on the PRAM simulator.
	res, err := pramcc.ConnectedComponents(g, pramcc.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("vertices:   %d\n", g.N)
	fmt.Printf("edges:      %d\n", g.NumEdges())
	fmt.Printf("components: %d\n", res.NumComponents)
	fmt.Printf("same component (0, 9): %v\n", res.SameComponent(0, 9))   // both on the path
	fmt.Printf("same component (0, 12): %v\n", res.SameComponent(0, 12)) // path vs clique
	fmt.Println()
	fmt.Printf("EXPAND-MAXLINK rounds: %d\n", res.Stats.Rounds)
	fmt.Printf("simulated PRAM steps:  %d\n", res.Stats.PRAMSteps)
	fmt.Printf("peak processors:       %d\n", res.Stats.MaxProcessors)
	fmt.Printf("max level reached:     %d\n", res.Stats.MaxLevel)
	fmt.Println()

	// Long-lived: a Solver on the native backend. The engine is built
	// once; every Solve after the first reuses its pool and buffers
	// (zero allocations in steady state), and the context is honoured
	// at every round boundary. The returned Result is valid until the
	// next Solve on the same Solver.
	solver, err := pramcc.NewSolver(pramcc.WithBackend(pramcc.BackendNative))
	if err != nil {
		log.Fatal(err)
	}
	defer solver.Close()

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		r, err := solver.Solve(ctx, g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("solver pass %d: components=%d rounds=%d wall=%v\n",
			i+1, r.NumComponents, r.Stats.Rounds, r.Stats.Wall)
	}
}
