// Quickstart: build a small graph, compute its connected components
// with the paper's O(log d + log log_{m/n} n) algorithm, and inspect
// the simulated-PRAM cost statistics.
package main

import (
	"fmt"
	"log"

	pramcc "repro"
	"repro/graph"
)

func main() {
	// A graph with three components: a path, a clique, and a star,
	// plus a couple of isolated vertices.
	g := graph.DisjointUnion(
		graph.Path(10),
		graph.Clique(6),
		graph.Star(8),
	)
	g = graph.WithIsolated(g, 2)

	res, err := pramcc.ConnectedComponents(g, pramcc.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("vertices:   %d\n", g.N)
	fmt.Printf("edges:      %d\n", g.NumEdges())
	fmt.Printf("components: %d\n", res.NumComponents)
	fmt.Printf("same component (0, 9): %v\n", res.SameComponent(0, 9))   // both on the path
	fmt.Printf("same component (0, 12): %v\n", res.SameComponent(0, 12)) // path vs clique
	fmt.Println()
	fmt.Printf("EXPAND-MAXLINK rounds: %d\n", res.Stats.Rounds)
	fmt.Printf("simulated PRAM steps:  %d\n", res.Stats.PRAMSteps)
	fmt.Printf("peak processors:       %d\n", res.Stats.MaxProcessors)
	fmt.Printf("max level reached:     %d\n", res.Stats.MaxLevel)
}
