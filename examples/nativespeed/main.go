// Nativespeed: the same connected-components question answered by both
// execution backends. The simulated backend is the paper's Theorem-3
// algorithm on the step-barrier ARBITRARY CRCW PRAM, with full
// model-cost accounting; the native backend is the shared-memory
// CAS-min engine that only cares about wall clock. The partitions are
// identical — the point of having both is that every model claim can
// be checked against a run that is actually fast.
//
// Run with:
//
//	go run ./examples/nativespeed [-n 200000] [-deg 4] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"log"

	pramcc "repro"
	"repro/graph"
)

func main() {
	n := flag.Int("n", 200000, "vertices")
	deg := flag.Int("deg", 4, "edges per vertex (m = n·deg via Gnm; average degree 2·deg)")
	workers := flag.Int("workers", 0, "native worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	g := graph.Gnm(*n, *n**deg, 7)
	fmt.Printf("workload: Gnm  n=%d  m=%d\n\n", g.N, g.NumEdges())

	sim, err := pramcc.Components(g, pramcc.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	nat, err := pramcc.Components(g,
		pramcc.WithBackend(pramcc.BackendNative),
		pramcc.WithWorkers(*workers))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "", sim.Stats.Backend, nat.Stats.Backend)
	fmt.Printf("%-22s %12d %12d\n", "components", sim.NumComponents, nat.NumComponents)
	fmt.Printf("%-22s %12d %12d\n", "rounds", sim.Stats.Rounds, nat.Stats.Rounds)
	fmt.Printf("%-22s %12v %12v\n", "wall clock", sim.Stats.Wall.Round(10_000), nat.Stats.Wall.Round(10_000))
	fmt.Printf("%-22s %12d %12d\n", "workers", sim.Stats.Workers, nat.Stats.Workers)
	// Model costs exist only on the simulated side; the native engine
	// does no per-step accounting (the fields are zero by contract).
	fmt.Printf("%-22s %12d %12s\n", "PRAM steps (model)", sim.Stats.PRAMSteps, "—")
	fmt.Printf("%-22s %12d %12s\n", "work (model)", sim.Stats.Work, "—")
	fmt.Printf("%-22s %12d %12s\n", "peak procs (model)", sim.Stats.MaxProcessors, "—")

	agree := true
	for v := 0; v < g.N && agree; v++ {
		for _, w := range g.Neighbors(v) {
			if sim.SameComponent(v, int(w)) != nat.SameComponent(v, int(w)) {
				agree = false
				break
			}
		}
	}
	fmt.Printf("\npartitions agree on every edge: %v\n", agree)
	fmt.Printf("speedup (simulated/native): %.1fx\n",
		float64(sim.Stats.Wall)/float64(nat.Stats.Wall))
}
