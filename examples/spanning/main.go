// Spanning: compute a spanning forest of a random graph with the
// Theorem 2 algorithm, validate it structurally, and render the forest
// of a small grid as an ASCII maze (every spanning tree of a grid is a
// perfect maze).
package main

import (
	"fmt"
	"log"
	"strings"

	pramcc "repro"
	"repro/graph"
)

func main() {
	// Part 1: spanning forest of a random graph with several components.
	g := graph.DisjointUnion(
		graph.Gnm(5000, 20000, 3),
		graph.Path(400),
		graph.Clique(30),
	)
	res, err := pramcc.SpanningForest(g, pramcc.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d components=%d\n", g.N, g.NumEdges(), res.NumComponents)
	fmt.Printf("forest edges: %d (expect n-#components = %d)\n",
		len(res.Edges), g.N-res.NumComponents)
	fmt.Printf("phases: %d  simulated steps: %d\n\n", res.Stats.Rounds, res.Stats.PRAMSteps)
	if len(res.Edges) != g.N-res.NumComponents {
		log.Fatal("forest size mismatch")
	}

	// Part 2: maze from a spanning tree of a grid.
	const rows, cols = 9, 19
	grid := graph.Grid2D(rows, cols)
	forest, err := pramcc.SpanningForest(grid, pramcc.WithSeed(1234))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("spanning tree of a 9x19 grid, drawn as a maze:")
	fmt.Print(renderMaze(rows, cols, forest.Edges))
}

// renderMaze draws the grid cells with walls removed along tree edges.
func renderMaze(rows, cols int, edges [][2]int) string {
	inTree := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		inTree[[2]int{a, b}] = true
	}
	var sb strings.Builder
	sb.WriteString("+" + strings.Repeat("--+", cols) + "\n")
	for r := 0; r < rows; r++ {
		sb.WriteString("|")
		for c := 0; c < cols; c++ {
			id := r*cols + c
			if c+1 < cols && inTree[[2]int{id, id + 1}] {
				sb.WriteString("   ")
			} else {
				sb.WriteString("  |")
			}
		}
		sb.WriteString("\n+")
		for c := 0; c < cols; c++ {
			id := r*cols + c
			if r+1 < rows && inTree[[2]int{id, id + cols}] {
				sb.WriteString("  +")
			} else {
				sb.WriteString("--+")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
