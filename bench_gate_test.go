package pramcc_test

// The multi-config CI bench gate (scripts/bench_gate.sh + cmd/benchgate)
// runs exactly these benchmarks: {workers=1, workers=NumCPU} ×
// {small, full-scale} on the two real engines, against the checked-in
// baselines under internal/bench/testdata/. One engine run per
// iteration, so the script's -benchtime=1x -count N yields N clean
// samples per configuration for the rank-sum test.
//
// The worker axis is named w1/wmax rather than the numeric CPU count
// so baseline files stay comparable across hosts (benchgate also
// strips the host-dependent -GOMAXPROCS name suffix when comparing).
// wmax is NumCPU floored at 2: even on a single-core host the matrix
// keeps a genuinely parallel configuration — oversubscribed, but it
// exercises the scheduler's multi-range claim/steal path — so the
// checked-in baseline always carries wmax rows and the parallel axis
// is actually gated (bench_gate.sh runs benchgate -strict, which fails
// on matrix configurations missing from the baseline). The full scale
// is gated behind -short so `go test ./...` stays fast.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	pramcc "repro"
	"repro/graph"
)

// gateScales: small solves in milliseconds, full is the EXPERIMENTS.md
// full-scale workload (the E17 graph).
var gateScales = []struct {
	name string
	n, m int
}{
	{"small", 50_000, 200_000},
	{"full", 1_000_000, 10_000_000},
}

// gateWorkerAxis returns the {1, max(NumCPU, 2)} worker counts with
// their stable axis labels. The floor keeps wmax a distinct parallel
// configuration on every host, so no baseline can be recorded without
// wmax coverage.
func gateWorkerAxis() []struct {
	label string
	n     int
} {
	wmax := runtime.NumCPU()
	if wmax < 2 {
		wmax = 2
	}
	return []struct {
		label string
		n     int
	}{{"w1", 1}, {"wmax", wmax}}
}

func BenchmarkGate(b *testing.B) {
	ctx := context.Background()
	for _, sc := range gateScales {
		if sc.name == "full" && testing.Short() {
			continue
		}
		// The scale is a sub-benchmark of its own so the graph is only
		// generated when the -bench pattern actually selects the scale:
		// the gate script's small phase must not pay the seconds (and
		// ~160MB) of building the full-scale graph it never runs.
		b.Run(sc.name, func(b *testing.B) {
			g := graph.Gnm(sc.n, sc.m, 1)
			for _, w := range gateWorkerAxis() {
				b.Run(fmt.Sprintf("native/%s", w.label), func(b *testing.B) {
					s, err := pramcc.NewSolver(pramcc.WithBackend(pramcc.BackendNative), pramcc.WithWorkers(w.n))
					if err != nil {
						b.Fatal(err)
					}
					defer s.Close()
					if _, err := s.Solve(ctx, g); err != nil { // warm the buffers
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := s.Solve(ctx, g)
						if err != nil {
							b.Fatal(err)
						}
						if res.NumComponents == 0 {
							b.Fatal("no components")
						}
					}
				})
				b.Run(fmt.Sprintf("incremental-replay/%s", w.label), func(b *testing.B) {
					spans := g.SpanBatches(20)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						inc, err := pramcc.NewIncremental(g.N, pramcc.WithWorkers(w.n))
						if err != nil {
							b.Fatal(err)
						}
						for _, span := range spans {
							if _, err := inc.AddSpan(span); err != nil {
								b.Fatal(err)
							}
						}
						if inc.ComponentCount() == 0 {
							b.Fatal("no components")
						}
						inc.Close()
					}
				})
			}
		})
	}
}
