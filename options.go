package pramcc

// Option configures an algorithm run.
type Option func(*config)

type config struct {
	seed         uint64
	workers      int
	maxRounds    int
	maxPhases    int
	growth       float64
	minBudget    float64
	disableBoost bool
	maxLinkIters int
	combining    bool
}

func defaultConfig() config {
	return config{seed: 1, maxLinkIters: 2}
}

// WithSeed sets the random seed. Runs with the same seed make the same
// random choices regardless of the worker count; only arbitrary-write
// resolutions may differ.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithWorkers sets the host worker-goroutine count backing the PRAM
// simulation. 0 (the default) selects GOMAXPROCS; 1 gives a
// deterministic sequential schedule.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithMaxRounds caps the main loop of ConnectedComponents (EXPAND-
// MAXLINK rounds). Exhausting the cap is reported via Stats.Failed;
// the returned labels are still correct because the Theorem-1
// postprocessing stage finishes the job.
func WithMaxRounds(n int) Option { return func(c *config) { c.maxRounds = n } }

// WithMaxPhases caps the phase loops of ConnectedComponentsLogLog,
// SpanningForest and VanillaComponents.
func WithMaxPhases(n int) Option { return func(c *config) { c.maxPhases = n } }

// WithBudgetGrowth sets the budget growth exponent γ (b_{ℓ+1} = b_ℓ^γ)
// of ConnectedComponents. The paper's schedule is b_ℓ = b₁^{1.01^{ℓ−1}};
// the default scaled value is 1.5. Used by ablation E10.
func WithBudgetGrowth(gamma float64) Option { return func(c *config) { c.growth = gamma } }

// WithMinBudget floors the initial budget b₁ of ConnectedComponents
// (paper: max{m/n, log^c n}/log² n). Default 16.
func WithMinBudget(b float64) Option { return func(c *config) { c.minBudget = b } }

// WithoutBoost disables the step-(2) random level increase of
// EXPAND-MAXLINK (ablation E10). The algorithm remains correct; the
// space bound of Lemma 3.10 loses its proof.
func WithoutBoost() Option { return func(c *config) { c.disableBoost = true } }

// WithMaxLinkIters sets the number of MAXLINK iterations per call
// (paper: 2; ablation E10 compares 1).
func WithMaxLinkIters(n int) Option { return func(c *config) { c.maxLinkIters = n } }

// WithCombining runs ConnectedComponentsLogLog and SpanningForest in
// the COMBINING CRCW mode of §B.5 (the exact ongoing count n′ is
// available each phase) instead of the default ARBITRARY mode with the
// ñ update rule.
func WithCombining() Option { return func(c *config) { c.combining = true } }
