package pramcc

import (
	"fmt"
	"strings"
)

// Backend selects the execution engine behind Components.
type Backend int

const (
	// BackendSimulated runs on the step-synchronous ARBITRARY CRCW
	// PRAM simulator (internal/pram): every constant-time model step
	// is a barrier, and full model-cost statistics are accounted
	// (steps, work, processors, space). This is the backend the
	// paper's bounds are checked on; wall-clock speed is not a goal.
	BackendSimulated Backend = iota
	// BackendNative runs on the shared-memory engine
	// (internal/native): goroutines with atomic CAS-min on the label
	// array, no step barriers and no per-step accounting. Same
	// partition, real wall-clock speed; all model-cost Stats fields
	// are zero.
	BackendNative
	// BackendIncremental runs on the streaming union-find engine
	// (internal/incremental): a lock-free CAS-linked disjoint-set
	// forest built for batched edge arrival. Components feeds the
	// whole graph as a single batch and returns the same partition as
	// the other backends; the engine's real strength is the streaming
	// Incremental handle, where each batch costs Θ(batch) union work
	// plus a Θ(n) snapshot flatten instead of a full multi-round
	// recompute over all edges. Model-only Stats fields are zero.
	BackendIncremental
)

// String returns the backend's registered name ("simulated",
// "native", "incremental", …).
func (b Backend) String() string {
	if info, ok := lookupBackend(b); ok {
		return info.name
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend maps a flag value to a Backend. Matching is
// case-insensitive against the registry's canonical names and aliases
// ("sim" for simulated, "inc" for incremental); the empty string
// selects the default BackendSimulated. The error of an unknown name
// lists the actually registered backends.
func ParseBackend(s string) (Backend, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return BackendSimulated, nil
	}
	for _, info := range registry {
		if t == info.name {
			return info.backend, nil
		}
		for _, a := range info.aliases {
			if t == a {
				return info.backend, nil
			}
		}
	}
	return 0, errUnknownBackend(fmt.Sprintf("%q", s))
}

// MarshalText implements encoding.TextMarshaler with the registered
// backend name, so a Backend embeds directly in JSON bench output and
// works as a flag.TextVar value. Marshaling an unregistered value is
// an error rather than an unparseable "Backend(n)" string.
func (b Backend) MarshalText() ([]byte, error) {
	info, ok := lookupBackend(b)
	if !ok {
		return nil, errUnknownBackend(int(b))
	}
	return []byte(info.name), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseBackend.
func (b *Backend) UnmarshalText(text []byte) error {
	parsed, err := ParseBackend(string(text))
	if err != nil {
		return err
	}
	*b = parsed
	return nil
}

// Option configures an algorithm run.
type Option func(*config)

type config struct {
	seed         uint64
	workers      int
	grain        int
	backend      Backend
	backendSet   bool
	maxRounds    int
	maxPhases    int
	growth       float64
	minBudget    float64
	disableBoost bool
	maxLinkIters int
	combining    bool

	// Durable-service knobs, consulted by Open and Service.Persist only.
	checkpointEvery int
	initialVertices int
}

func defaultConfig() config {
	return config{seed: 1, maxLinkIters: 2, backend: BackendSimulated}
}

// WithBackend selects the execution engine used by Components. The
// default is BackendSimulated — except for pramcc.Open, whose durable
// replay needs a streaming engine and therefore defaults to
// BackendIncremental when this option is absent. The
// algorithm-specific entry points (ConnectedComponents,
// ConnectedComponentsLogLog, SpanningForest, VanillaComponents) are
// simulator-only and ignore this option.
func WithBackend(b Backend) Option {
	return func(c *config) { c.backend, c.backendSet = b, true }
}

// WithCheckpointEvery sets how many batches a durable Service
// (pramcc.Open, Service.Persist) logs to the write-ahead log between
// snapshot checkpoints: smaller values bound replay time at the cost
// of more frequent Θ(n) snapshot writes. Values below 1 select the
// default (64). Non-durable entry points ignore it.
func WithCheckpointEvery(n int) Option { return func(c *config) { c.checkpointEvery = n } }

// WithInitialVertices sets the vertex count a durable Service starts
// with when pramcc.Open finds no existing state in its directory. It
// is ignored on a warm start — there the recovered snapshot defines
// the vertex set — and by every non-durable entry point.
func WithInitialVertices(n int) Option { return func(c *config) { c.initialVertices = n } }

// WithSeed sets the random seed. Runs with the same seed make the same
// random choices regardless of the worker count; only arbitrary-write
// resolutions may differ.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithWorkers sets the host worker-goroutine count: the pool backing
// the PRAM simulation, or the shard workers of BackendNative. 0 (the
// default) selects GOMAXPROCS; 1 gives a deterministic sequential
// schedule on the simulator.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithGrain fixes the scheduler claim grain — the number of items a
// worker claims per atomic fetch-and-add — for the sharded engines
// (BackendNative, BackendIncremental). 0 (the default) selects
// adaptive sizing, total/(workers·8) clamped to [64, 4096], which is
// right for almost every workload; a fixed grain exists for the E17
// grain-sweep experiments and for reproducing legacy behaviour
// (grain 4096). The simulator backend schedules through the same
// shard machinery but always sizes adaptively.
func WithGrain(n int) Option { return func(c *config) { c.grain = n } }

// WithMaxRounds caps the main loop of ConnectedComponents (EXPAND-
// MAXLINK rounds). Exhausting the cap is reported via Stats.Failed;
// the returned labels are still correct because the Theorem-1
// postprocessing stage finishes the job.
func WithMaxRounds(n int) Option { return func(c *config) { c.maxRounds = n } }

// WithMaxPhases caps the phase loops of ConnectedComponentsLogLog,
// SpanningForest and VanillaComponents.
func WithMaxPhases(n int) Option { return func(c *config) { c.maxPhases = n } }

// WithBudgetGrowth sets the budget growth exponent γ (b_{ℓ+1} = b_ℓ^γ)
// of ConnectedComponents. The paper's schedule is b_ℓ = b₁^{1.01^{ℓ−1}};
// the default scaled value is 1.5. Used by ablation E10.
func WithBudgetGrowth(gamma float64) Option { return func(c *config) { c.growth = gamma } }

// WithMinBudget floors the initial budget b₁ of ConnectedComponents
// (paper: max{m/n, log^c n}/log² n). Default 16.
func WithMinBudget(b float64) Option { return func(c *config) { c.minBudget = b } }

// WithoutBoost disables the step-(2) random level increase of
// EXPAND-MAXLINK (ablation E10). The algorithm remains correct; the
// space bound of Lemma 3.10 loses its proof.
func WithoutBoost() Option { return func(c *config) { c.disableBoost = true } }

// WithMaxLinkIters sets the number of MAXLINK iterations per call
// (paper: 2; ablation E10 compares 1).
func WithMaxLinkIters(n int) Option { return func(c *config) { c.maxLinkIters = n } }

// WithCombining runs ConnectedComponentsLogLog and SpanningForest in
// the COMBINING CRCW mode of §B.5 (the exact ongoing count n′ is
// available each phase) instead of the default ARBITRARY mode with the
// ñ update rule.
func WithCombining() Option { return func(c *config) { c.combining = true } }
