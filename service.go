package pramcc

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/graph"
	"repro/internal/durable"
)

// Service is the serving layer over a Solver: a connectivity service
// that answers SameComponent/Labels/NumComponents queries lock-free
// and concurrently — from an atomically published immutable snapshot —
// while a recompute (Update) or a streaming batch (Ingest) is in
// flight. It generalizes what the Incremental handle has always done
// for the union-find backend to every registered backend: queries
// never block on writers and never observe a half-built labeling; a
// snapshot is replaced only by a complete successor.
//
// Writers (Update, Ingest, Grow) serialize on an internal mutex. A
// cancelled or failed Update/Ingest leaves the published snapshot
// untouched, so queries stay consistent across a cancelled solve.
type Service struct {
	mu     sync.Mutex
	solver *Solver
	snap   atomic.Pointer[Result]
	closed bool

	// Durability (nil/zero on a plain in-memory service). store is the
	// snapshot+WAL store every accepted batch is logged to before its
	// snapshot publishes; ckptEvery is the checkpoint cadence in logged
	// batches; recovery describes the warm start that produced this
	// service, when there was one. All three are set once — by Open or
	// Persist — under mu and never change afterwards.
	store     *durable.Store
	ckptEvery int
	recovery  *RecoveryStats
}

// NewService builds a Service over n isolated vertices (the initial
// snapshot: every vertex its own component) with the same options as
// NewSolver. With BackendIncremental the service additionally supports
// streaming Ingest batches on top of the live labeling.
func NewService(n int, opts ...Option) (*Service, error) {
	if n < 0 {
		return nil, fmt.Errorf("pramcc: negative vertex count %d", n)
	}
	solver, err := NewSolver(opts...)
	if err != nil {
		return nil, err
	}
	sv := &Service{solver: solver}
	if st, ok := solver.eng.(streamEngine); ok {
		st.reset(n)
	}
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	sv.publish(&Result{
		Labels:        labels,
		NumComponents: n,
		Stats:         Stats{Backend: solver.cfg.backend},
	})
	return sv, nil
}

// publish stores r as the served snapshot and records the publication
// on the serving metrics (snapshot sequence, size, age).
func (sv *Service) publish(r *Result) {
	sv.snap.Store(r)
	notePublish(r)
}

// Update recomputes the labeling of g on the service's backend and
// publishes it as the new snapshot, replacing the vertex set with
// g's. The returned Result is the published snapshot itself: immutable
// and valid forever. On error — including ctx cancellation, checked at
// round/batch boundaries — nothing is published and the previous
// snapshot keeps serving queries.
func (sv *Service) Update(ctx context.Context, g *graph.Graph) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.closed {
		return nil, ErrSolverClosed
	}
	start := time.Now()
	res, err := sv.solver.Solve(ctx, g)
	if err != nil {
		// A streaming engine rebuilds destructively (reset + ingest),
		// so a cancelled or failed solve has wiped its live labeling.
		// Snap it back to the published snapshot: queries never saw
		// the failure, and the next Ingest must continue from what
		// they see, not from a half-built forest. On a persisted
		// service the store is untouched here — nothing was logged for
		// the failed rebuild, so the WAL position still matches the
		// published snapshot and replay cannot double-apply.
		if st, ok := sv.solver.eng.(streamEngine); ok {
			st.restore(sv.snap.Load().Labels)
		}
		mUpdateErrors.Inc()
		if obsEnabled() {
			emitService("update", statusOf(err), time.Since(start),
				map[string]float64{"n": float64(g.N), "edges": float64(g.NumEdges())})
		}
		return nil, err
	}
	pub := &Result{
		Labels:        append([]int32(nil), res.Labels...),
		NumComponents: res.NumComponents,
		Stats:         res.Stats,
	}
	if sv.store != nil {
		// A full rebuild replaces the labeling wholesale, so it must be
		// checkpointed before it publishes — there is no batch record
		// that could reproduce it on replay. It consumes a sequence
		// number of its own (Seq+1) so recovery never replays a
		// pre-rebuild WAL record on top of the rebuilt snapshot.
		if err := sv.store.Checkpoint(pub.Labels, sv.store.Seq()+1); err != nil {
			if st, ok := sv.solver.eng.(streamEngine); ok {
				st.restore(sv.snap.Load().Labels)
			}
			mUpdateErrors.Inc()
			if obsEnabled() {
				emitService("update", statusOf(err), time.Since(start),
					map[string]float64{"n": float64(g.N), "edges": float64(g.NumEdges())})
			}
			return nil, err
		}
	}
	sv.publish(pub)
	mUpdates.Inc()
	mUpdateDur.Observe(res.Stats.Wall.Seconds())
	if obsEnabled() {
		emitService("update", statusOf(nil), res.Stats.Wall, map[string]float64{
			"n":          float64(g.N),
			"edges":      float64(g.NumEdges()),
			"components": float64(pub.NumComponents),
			"rounds":     float64(pub.Stats.Rounds),
		})
	}
	return pub, nil
}

// Ingest unions one batch of undirected edges into the live labeling
// and publishes the result — the streaming path, available when the
// service's backend maintains a live labeling (BackendIncremental).
// Endpoints must lie in [0, N()); use Grow to extend the vertex set
// first. On a cancelled ctx no snapshot is published; because unions
// are idempotent, re-submitting the same batch completes the cancelled
// one exactly.
//
// Ingest is the [][2]int adapter over IngestSpan: the batch is
// validated and converted to a columnar span (one Θ(batch) copy)
// before entering the zero-copy pipeline. Callers replaying edges
// that already live in a Graph or a loader span should call
// IngestSpan and skip the conversion entirely.
func (sv *Service) Ingest(ctx context.Context, edges [][2]int) (*Result, error) {
	// Validate as ints before the int32 conversion narrows them: an
	// endpoint beyond int32 must be rejected here, not truncated into
	// an accidentally-valid vertex.
	n := sv.N()
	for i, e := range edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n {
			return nil, fmt.Errorf("pramcc: incremental: batch edge %d = {%d,%d} out of range [0,%d)", i, e[0], e[1], n)
		}
	}
	return sv.IngestSpan(ctx, graph.FromPairs(edges))
}

// IngestSpan is the zero-copy form of Ingest: the batch arrives as a
// columnar arc-pair span (graph.EdgeSpan — typically a SpanBatches
// slice of a Graph, a loader span, or FromPairs output) and is
// sharded over the engine's worker pool directly from its columns.
// Nothing is copied or boxed between here and the union-find, so
// replaying a resident graph through the service allocates only the
// published snapshots. Semantics are exactly Ingest's: whole-batch
// validation, snapshot-consistent publication, idempotent completion
// after cancellation.
func (sv *Service) IngestSpan(ctx context.Context, span graph.EdgeSpan) (*Result, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.closed {
		return nil, ErrSolverClosed
	}
	st, ok := sv.solver.eng.(streamEngine)
	if !ok {
		mIngestErrors.Inc()
		return nil, fmt.Errorf("pramcc: backend %v does not support streaming ingest (use Update, or build the Service with BackendIncremental)", sv.solver.cfg.backend)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		mIngestErrors.Inc()
		return nil, err
	}
	start := time.Now()
	var out solveOutput
	components, err := st.ingest(ctx, span, &out)
	if err == nil && sv.store != nil {
		// Durability barrier: the batch must be in the WAL (fsynced)
		// before its snapshot publishes, so an acknowledged labeling can
		// always be reconstructed. Checkpoint on the same boundary when
		// the cadence is due — the labeling is already in hand.
		if _, lerr := sv.store.LogSpan(span); lerr != nil {
			err = lerr
		} else if sv.store.BatchesSinceCheckpoint() >= sv.ckptEvery {
			err = sv.store.Checkpoint(out.labels, sv.store.Seq())
		}
	}
	if err != nil {
		if sv.store != nil {
			// The batch may be half-applied (a cancelled ingest) or
			// applied but unlogged (a WAL failure). Either way the live
			// forest must snap back to the published labeling: unions
			// that never reached the WAL must not ride along under a
			// later batch's snapshot, or replay would lose them.
			st.restore(sv.snap.Load().Labels)
		}
		mIngestErrors.Inc()
		if obsEnabled() {
			emitService("ingest_span", statusOf(err), time.Since(start),
				map[string]float64{"edges": float64(span.Len())})
		}
		return nil, err
	}
	out.stats.Wall = time.Since(start)
	pub := &Result{
		Labels:        out.labels,
		NumComponents: components,
		Stats:         out.stats,
	}
	sv.publish(pub)
	mIngestSpans.Inc()
	mIngestEdges.Add(int64(span.Len()))
	mIngestDur.Observe(out.stats.Wall.Seconds())
	if s := out.stats.Wall.Seconds(); s > 0 {
		mIngestRate.Set(int64(float64(span.Len()) / s))
	}
	if obsEnabled() {
		emitService("ingest_span", statusOf(nil), out.stats.Wall, map[string]float64{
			"edges":      float64(span.Len()),
			"components": float64(components),
		})
	}
	return pub, nil
}

// Grow extends the vertex set to n isolated new vertices, preserving
// every component, and publishes the widened snapshot. Streaming
// backends only; a no-op when n ≤ N().
func (sv *Service) Grow(n int) error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.closed {
		return ErrSolverClosed
	}
	st, ok := sv.solver.eng.(streamEngine)
	if !ok {
		return fmt.Errorf("pramcc: backend %v does not support Grow (the vertex set is defined by Update)", sv.solver.cfg.backend)
	}
	cur := sv.snap.Load()
	if n <= len(cur.Labels) {
		return nil
	}
	if sv.store != nil {
		// Logged before the engine widens: a grow that fails to reach
		// the WAL must not change what queries (or replay) can see.
		if _, err := sv.store.LogGrow(n); err != nil {
			return err
		}
	}
	st.grow(n)
	labels := make([]int32, n)
	copy(labels, cur.Labels)
	for v := len(cur.Labels); v < n; v++ {
		labels[v] = int32(v)
	}
	pub := &Result{
		Labels:        labels,
		NumComponents: cur.NumComponents + n - len(cur.Labels),
		Stats:         cur.Stats,
	}
	sv.publish(pub)
	if obsEnabled() {
		emitService("grow", statusOf(nil), 0, map[string]float64{
			"n":     float64(n),
			"added": float64(n - len(cur.Labels)),
		})
	}
	return nil
}

// Snapshot returns the currently published labeling: an immutable
// Result that stays valid (and queryable) forever, even across later
// Updates and Close. Callers must not modify it.
//
//pramcc:zeroalloc
func (sv *Service) Snapshot() *Result { return sv.snap.Load() }

// SameComponent reports whether v and w are in the same component of
// the published snapshot. Out-of-range vertices are in no component
// (false, except v == w). Safe to call concurrently with writers.
//
//pramcc:zeroalloc
func (sv *Service) SameComponent(v, w int) bool {
	if v == w {
		return true
	}
	r := sv.snap.Load()
	if v < 0 || w < 0 || v >= len(r.Labels) || w >= len(r.Labels) {
		return false
	}
	return r.Labels[v] == r.Labels[w]
}

// NumComponents returns the component count of the published snapshot.
//
//pramcc:zeroalloc
func (sv *Service) NumComponents() int { return sv.snap.Load().NumComponents }

// N returns the vertex count of the published snapshot.
//
//pramcc:zeroalloc
func (sv *Service) N() int { return len(sv.snap.Load().Labels) }

// Labels returns a copy of the published labeling.
func (sv *Service) Labels() []int32 {
	return append([]int32(nil), sv.snap.Load().Labels...)
}

// LabelsInto copies the published labeling into dst, growing it only
// when its capacity is short, and returns the filled slice — the
// zero-allocation form of Labels for callers polling the labeling on
// a hot path: pass the previous call's return value back in and
// steady state copies into the same buffer. The copy is
// snapshot-consistent (one atomic snapshot read, then a plain copy —
// never a half-published labeling) and, like every query, safe to
// call concurrently with writers. A nil dst simply allocates, making
// LabelsInto(nil) equivalent to Labels.
//
//pramcc:zeroalloc
func (sv *Service) LabelsInto(dst []int32) []int32 {
	return labelsInto(dst, sv.snap.Load().Labels)
}

// Backend returns the execution backend behind the service.
func (sv *Service) Backend() Backend { return sv.solver.Backend() }

// Close releases the underlying Solver. Idempotent. Queries keep
// serving the last published snapshot; writers return ErrSolverClosed.
func (sv *Service) Close() {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if !sv.closed {
		sv.closed = true
		sv.solver.Close()
		if sv.store != nil {
			sv.store.Close()
		}
	}
}
