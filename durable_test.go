package pramcc

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/graph"
	"repro/internal/check"
	"repro/internal/durable"
)

// openDurable opens a durable service and fails the test on error.
func openDurable(t *testing.T, dir string, opts ...Option) *Service {
	t.Helper()
	sv, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return sv
}

func TestOpenFreshIngestReopen(t *testing.T) {
	dir := t.TempDir()
	sv := openDurable(t, dir, WithInitialVertices(6), WithCheckpointEvery(4))
	if _, ok := sv.RecoveryStats(); ok {
		t.Fatal("cold open reported recovery stats")
	}
	if seq, ok := sv.DurableSeq(); !ok || seq != 0 {
		t.Fatalf("DurableSeq = (%d, %v), want (0, true)", seq, ok)
	}
	if _, err := sv.Ingest(nil, [][2]int{{0, 1}, {2, 3}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := sv.Grow(9); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if _, err := sv.Ingest(nil, [][2]int{{3, 7}, {1, 2}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	want := sv.Labels()
	wantComponents := sv.NumComponents()
	if seq, _ := sv.DurableSeq(); seq != 3 {
		t.Fatalf("DurableSeq = %d after 3 batches, want 3", seq)
	}
	sv.Close()

	sv2 := openDurable(t, dir)
	defer sv2.Close()
	if err := check.SamePartition(sv2.Labels(), want); err != nil {
		t.Fatalf("reopened labeling diverged: %v", err)
	}
	if got := sv2.NumComponents(); got != wantComponents {
		t.Fatalf("reopened NumComponents = %d, want %d", got, wantComponents)
	}
	if seq, _ := sv2.DurableSeq(); seq != 3 {
		t.Fatalf("reopened DurableSeq = %d, want 3", seq)
	}
	stats, ok := sv2.RecoveryStats()
	if !ok {
		t.Fatal("warm start reported no recovery stats")
	}
	// CheckpointEvery was 4 and only 3 batches were logged, so every
	// batch replays from the WAL on top of the initial snapshot.
	if stats.SnapshotSeq != 0 || stats.ReplayedBatches != 3 {
		t.Fatalf("recovery stats %+v, want snapshot 0 + 3 replayed batches", stats)
	}
	if stats.ReplayedEdges != 4 {
		t.Fatalf("recovery replayed %d edges, want 4", stats.ReplayedEdges)
	}

	// The reopened service keeps working and stays durable.
	if _, err := sv2.Ingest(nil, [][2]int{{5, 8}}); err != nil {
		t.Fatalf("Ingest after reopen: %v", err)
	}
	if seq, _ := sv2.DurableSeq(); seq != 4 {
		t.Fatalf("DurableSeq after post-reopen ingest = %d, want 4", seq)
	}
}

// TestReplayEquivalence is the warm-start correctness property: for
// random graphs ingested in random batch cuts under random checkpoint
// cadences, the labels served after reopen must equal both the labels
// served before the crash point and a cold full recompute of the same
// edges.
func TestReplayEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 20 + rng.Intn(200)
			g := graph.Gnm(n, 2+rng.Intn(4*n), seed)
			batches := g.SpanBatches(1 + rng.Intn(9))
			every := 1 + rng.Intn(5)

			dir := t.TempDir()
			sv := openDurable(t, dir, WithInitialVertices(n), WithCheckpointEvery(every))
			for i, b := range batches {
				if _, err := sv.IngestSpan(nil, b); err != nil {
					t.Fatalf("IngestSpan %d: %v", i, err)
				}
			}
			live := sv.Labels()
			sv.Close()

			warm := openDurable(t, dir)
			defer warm.Close()
			if err := check.SamePartition(warm.Labels(), live); err != nil {
				t.Fatalf("warm start != pre-close labels: %v", err)
			}

			cold, err := NewService(0, WithBackend(BackendIncremental))
			if err != nil {
				t.Fatal(err)
			}
			defer cold.Close()
			res, err := cold.Update(nil, g)
			if err != nil {
				t.Fatalf("cold Update: %v", err)
			}
			if err := check.SamePartition(warm.Labels(), res.Labels); err != nil {
				t.Fatalf("warm start != cold Update: %v", err)
			}
			if err := check.SamePartition(warm.Labels(), g.ComponentsBFS()); err != nil {
				t.Fatalf("warm start != BFS oracle: %v", err)
			}
		})
	}
}

// TestDurableUpdateAndCancelRegression covers the Update paths of a
// persisted service: a successful Update checkpoints before it
// publishes (so reopen serves the rebuilt labeling), and a cancelled
// Update leaves both the published snapshot and the WAL position
// untouched — replay after the failure must not double-apply anything.
func TestDurableUpdateAndCancelRegression(t *testing.T) {
	dir := t.TempDir()
	g := graph.Gnm(60, 200, 3)
	sv := openDurable(t, dir, WithInitialVertices(4), WithCheckpointEvery(8))
	if _, err := sv.Ingest(nil, [][2]int{{0, 1}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if _, err := sv.Update(nil, g); err != nil {
		t.Fatalf("Update: %v", err)
	}
	seqAfterUpdate, _ := sv.DurableSeq()
	wantAfterUpdate := sv.Labels()

	// Mid-run cancellation: the solve destroys and then restores the
	// live forest; the store must not move.
	if _, err := sv.Update(newCancelAfter(2), graph.Gnm(30, 5000, 5)); err == nil {
		t.Fatal("cancelled Update succeeded")
	}
	if seq, _ := sv.DurableSeq(); seq != seqAfterUpdate {
		t.Fatalf("cancelled Update moved DurableSeq %d -> %d", seqAfterUpdate, seq)
	}
	if err := check.SamePartition(sv.Labels(), wantAfterUpdate); err != nil {
		t.Fatalf("cancelled Update changed served labels: %v", err)
	}
	// The service must still ingest correctly after the failed rebuild.
	if _, err := sv.Ingest(nil, [][2]int{{0, 2}}); err != nil {
		t.Fatalf("Ingest after cancelled Update: %v", err)
	}
	final := sv.Labels()
	sv.Close()

	warm := openDurable(t, dir)
	defer warm.Close()
	if err := check.SamePartition(warm.Labels(), final); err != nil {
		t.Fatalf("reopen after cancelled Update diverged: %v", err)
	}
}

// TestPersistRoundTrip covers Service.Persist: a live in-memory
// service becomes durable mid-flight and a later Open resumes it.
func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sv, err := NewService(8, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Ingest(nil, [][2]int{{0, 1}, {1, 2}}); err != nil {
		t.Fatalf("Ingest before Persist: %v", err)
	}
	if err := sv.Persist(dir, WithCheckpointEvery(2)); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	if err := sv.Persist(t.TempDir()); err == nil {
		t.Fatal("second Persist succeeded")
	}
	if seq, ok := sv.DurableSeq(); !ok || seq != 0 {
		t.Fatalf("DurableSeq after Persist = (%d, %v), want (0, true)", seq, ok)
	}
	if _, err := sv.Ingest(nil, [][2]int{{3, 4}}); err != nil {
		t.Fatalf("Ingest after Persist: %v", err)
	}
	want := sv.Labels()
	sv.Close()

	warm := openDurable(t, dir)
	if err := check.SamePartition(warm.Labels(), want); err != nil {
		t.Fatalf("reopen of a persisted service diverged: %v", err)
	}
	warm.Close()

	// Persisting over an existing store must be refused: that data
	// belongs to Open.
	other, err := NewService(3, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Persist(dir); err == nil {
		t.Fatal("Persist over an existing store succeeded")
	}

	// Non-streaming backends cannot replay a WAL.
	sim, err := NewService(3, WithBackend(BackendSimulated))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Persist(t.TempDir()); err == nil {
		t.Fatal("Persist on a simulated backend succeeded")
	}
}

func TestOpenRejectsNonStreamingBackend(t *testing.T) {
	if _, err := Open(t.TempDir(), WithBackend(BackendSimulated)); err == nil {
		t.Fatal("Open with a non-streaming backend succeeded")
	}
	if _, err := Open(t.TempDir(), WithBackend(BackendNative)); err == nil {
		t.Fatal("Open with a non-streaming backend succeeded")
	}
}

// TestServiceCrashEveryWriteOffset is the service-level crash suite:
// the full Open/Ingest/Grow flow runs once per write budget, each run
// losing power at a different byte of a different durability write
// site, and every reopen must serve a labeling the service actually
// acknowledged for some prefix of the batch sequence — never a torn or
// invented one — with every acknowledged batch preserved.
func TestServiceCrashEveryWriteOffset(t *testing.T) {
	type op struct {
		edges  [][2]int
		growTo int
	}
	ops := []op{
		{edges: [][2]int{{0, 1}, {2, 3}}},
		{edges: [][2]int{{1, 2}}},
		{growTo: 9},
		{edges: [][2]int{{6, 7}, {4, 5}}},
		{edges: [][2]int{{3, 6}}},
		{edges: [][2]int{{0, 5}}},
	}
	const n0 = 6
	workload := func(dir string, fsys durable.FS) (acked int) {
		sv, err := openFS(dir, fsys, WithInitialVertices(n0), WithCheckpointEvery(2))
		if err != nil {
			return 0
		}
		defer sv.Close()
		for _, o := range ops {
			if o.growTo > 0 {
				err = sv.Grow(o.growTo)
			} else {
				_, err = sv.Ingest(nil, o.edges)
			}
			if err != nil {
				return acked
			}
			acked++
		}
		return acked
	}

	// The expected partition after each op prefix, from the BFS oracle.
	wantAt := make([][]int32, len(ops)+1)
	{
		g := &graph.Graph{N: n0}
		wantAt[0] = g.ComponentsBFS()
		for i, o := range ops {
			if o.growTo > 0 {
				g.N = o.growTo
			} else {
				for _, e := range o.edges {
					g.AddEdge(e[0], e[1])
				}
			}
			wantAt[i+1] = g.Clone().ComponentsBFS()
		}
	}

	probe := durable.NewFailFS(durable.OSFS{}, 1<<40)
	if got := workload(t.TempDir(), probe); got != len(ops) {
		t.Fatalf("probe workload acked %d/%d ops", got, len(ops))
	}
	total := probe.Cost()

	stride := int64(1)
	if testing.Short() {
		stride = 11
	}
	for budget := int64(0); budget < total; budget += stride {
		dir := t.TempDir()
		acked := workload(dir, durable.NewFailFS(durable.OSFS{}, budget))

		sv, err := Open(dir)
		if err != nil {
			t.Fatalf("budget %d: reopen after crash: %v", budget, err)
		}
		seq, ok := sv.DurableSeq()
		if !ok {
			t.Fatalf("budget %d: reopened service not durable", budget)
		}
		if int(seq) < acked || int(seq) > len(ops) {
			t.Fatalf("budget %d: recovered seq %d outside [acked %d, %d]", budget, seq, acked, len(ops))
		}
		if len(sv.Labels()) == 0 && acked == 0 {
			// Crashed before the initial checkpoint: a legitimately fresh
			// (empty) store.
			sv.Close()
			continue
		}
		if err := check.SamePartition(sv.Labels(), wantAt[seq]); err != nil {
			t.Fatalf("budget %d: recovered labeling at seq %d wrong: %v", budget, seq, err)
		}
		sv.Close()
	}
}

// TestConcurrentQueriesDuringRecovery drives lock-free queries against
// a service while its WAL replay is still running — the -race lane's
// check that recovery publishes snapshots with the same discipline as
// the live write path.
func TestConcurrentQueriesDuringRecovery(t *testing.T) {
	dir := t.TempDir()
	g := graph.Gnm(300, 900, 42)
	sv := openDurable(t, dir, WithInitialVertices(g.N), WithCheckpointEvery(1000))
	for _, b := range g.SpanBatches(24) {
		if _, err := sv.IngestSpan(nil, b); err != nil {
			t.Fatal(err)
		}
	}
	want := sv.Labels()
	sv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	recoveryHook = func(sv *Service) {
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var buf []int32
				rng := rand.New(rand.NewSource(int64(w)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					sv.SameComponent(rng.Intn(g.N), rng.Intn(g.N))
					buf = sv.LabelsInto(buf)
					sv.NumComponents()
				}
			}(w)
		}
	}
	defer func() { recoveryHook = nil }()

	warm, err := Open(dir)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	defer warm.Close()
	stats, ok := warm.RecoveryStats()
	if !ok || stats.ReplayedBatches != 24 {
		t.Fatalf("recovery stats %+v, want 24 replayed batches", stats)
	}
	if err := check.SamePartition(warm.Labels(), want); err != nil {
		t.Fatalf("labels diverged after concurrent-query recovery: %v", err)
	}
}
