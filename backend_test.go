package pramcc

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/graph"
	"repro/internal/baseline"
	"repro/internal/check"
	"repro/internal/incremental"
	"repro/internal/native"
)

// generatorZoo covers every generator family the graph package offers,
// so backend equivalence is asserted on paths, trees, grids, tori,
// hypercubes, cliques, random graphs, power-law graphs, and the
// composite workloads.
func generatorZoo() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":         graph.Path(257),
		"cycle":        graph.Cycle(200),
		"star":         graph.Star(150),
		"grid2d":       graph.Grid2D(20, 30),
		"torus2d":      graph.Torus2D(15, 17),
		"binary-tree":  graph.CompleteBinaryTree(511),
		"random-tree":  graph.RandomTree(400, 5),
		"caterpillar":  graph.Caterpillar(60, 4),
		"gnm":          graph.Gnm(3000, 9000, 7),
		"gnm-sparse":   graph.Gnm(2000, 900, 8),
		"circulant":    graph.Circulant(120, 3),
		"clique":       graph.Clique(40),
		"clique-beads": graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 32, Size: 12, IntraDeg: 8, Bridges: 2, Seed: 9}),
		"hypercube":    graph.Hypercube(8),
		"barbell":      graph.Barbell(25, 10),
		"rmat":         graph.RMAT(2048, 8000, 10),
		"chung-lu":     graph.ChungLu(2000, 6000, 2.5, 11),
		"lollipop":     graph.LollipopPath(30, 100),
		"disjoint": graph.DisjointUnion(
			graph.Path(100), graph.Clique(20), graph.Gnm(500, 1500, 12)),
		"isolated": graph.WithIsolated(graph.Grid2D(10, 10), 17),
		"permuted": graph.Permuted(graph.CliqueBeads(graph.CliqueBeadsSpec{
			Beads: 16, Size: 10, IntraDeg: 6, Bridges: 1, Seed: 13}), 14),
	}
}

// TestBackendEquivalenceAcrossGenerators: the native and incremental
// engines must induce exactly the partition of VanillaComponents and
// of the sequential union-find oracle on every generator family, and
// must agree with each other elementwise (both canonicalize labels to
// component minima).
func TestBackendEquivalenceAcrossGenerators(t *testing.T) {
	for name, g := range generatorZoo() {
		t.Run(name, func(t *testing.T) {
			nat, err := Components(g, WithBackend(BackendNative))
			if err != nil {
				t.Fatal(err)
			}
			inc, err := Components(g, WithBackend(BackendIncremental))
			if err != nil {
				t.Fatal(err)
			}
			van, err := VanillaComponents(g, WithSeed(3))
			if err != nil {
				t.Fatal(err)
			}
			if err := check.SamePartition(nat.Labels, van.Labels); err != nil {
				t.Fatalf("native vs vanilla: %v", err)
			}
			if err := check.SamePartition(nat.Labels, baseline.Components(g)); err != nil {
				t.Fatalf("native vs union-find: %v", err)
			}
			if err := check.SamePartition(inc.Labels, van.Labels); err != nil {
				t.Fatalf("incremental vs vanilla: %v", err)
			}
			for v := range nat.Labels {
				if inc.Labels[v] != nat.Labels[v] {
					t.Fatalf("incremental label[%d] = %d, native %d", v, inc.Labels[v], nat.Labels[v])
				}
			}
			if nat.NumComponents != van.NumComponents || inc.NumComponents != van.NumComponents {
				t.Fatalf("component counts differ: native %d, incremental %d, vanilla %d",
					nat.NumComponents, inc.NumComponents, van.NumComponents)
			}
		})
	}
}

// TestBackendEquivalenceSimulated: the three Components backends on
// the same graphs — the ISSUE-2 acceptance triangle, including the
// (slow) simulator on a reduced zoo.
func TestBackendEquivalenceSimulated(t *testing.T) {
	names := []string{"path", "grid2d", "gnm", "clique-beads", "disjoint", "isolated"}
	zoo := generatorZoo()
	for _, name := range names {
		g := zoo[name]
		t.Run(name, func(t *testing.T) {
			sim, err := Components(g, WithSeed(5))
			if err != nil {
				t.Fatal(err)
			}
			for _, bk := range []Backend{BackendNative, BackendIncremental} {
				got, err := Components(g, WithBackend(bk))
				if err != nil {
					t.Fatal(err)
				}
				if err := check.SamePartition(got.Labels, sim.Labels); err != nil {
					t.Fatalf("%v vs simulated: %v", bk, err)
				}
			}
		})
	}
}

// TestComponentsBackendDispatch: the default backend is the simulator
// (with model costs populated); the native backend reports itself and
// leaves the model-only fields zero.
func TestComponentsBackendDispatch(t *testing.T) {
	g := graph.Gnm(2000, 8000, 5)
	sim, err := Components(g, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if sim.Stats.Backend != BackendSimulated {
		t.Fatalf("default backend = %v, want simulated", sim.Stats.Backend)
	}
	if sim.Stats.PRAMSteps == 0 || sim.Stats.Work == 0 {
		t.Fatal("simulated run left model costs unpopulated")
	}
	nat, err := Components(g, WithBackend(BackendNative))
	if err != nil {
		t.Fatal(err)
	}
	if nat.Stats.Backend != BackendNative {
		t.Fatalf("backend = %v, want native", nat.Stats.Backend)
	}
	if nat.Stats.PRAMSteps != 0 || nat.Stats.Work != 0 || nat.Stats.MaxProcessors != 0 ||
		nat.Stats.PeakSpace != 0 || nat.Stats.CumBlockWords != 0 {
		t.Fatalf("native run populated model-only fields: %+v", nat.Stats)
	}
	if nat.Stats.Rounds == 0 || nat.Stats.Workers == 0 || nat.Stats.Wall == 0 {
		t.Fatalf("native run left real quantities unpopulated: %+v", nat.Stats)
	}
	if err := check.SamePartition(sim.Labels, nat.Labels); err != nil {
		t.Fatal(err)
	}
	inc, err := Components(g, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	if inc.Stats.Backend != BackendIncremental {
		t.Fatalf("backend = %v, want incremental", inc.Stats.Backend)
	}
	if inc.Stats.PRAMSteps != 0 || inc.Stats.Work != 0 || inc.Stats.MaxProcessors != 0 ||
		inc.Stats.PeakSpace != 0 || inc.Stats.CumBlockWords != 0 {
		t.Fatalf("incremental run populated model-only fields: %+v", inc.Stats)
	}
	if inc.Stats.Rounds != 1 {
		t.Fatalf("one-shot incremental run reports %d batches, want 1", inc.Stats.Rounds)
	}
	if inc.Stats.Workers == 0 || inc.Stats.Wall == 0 {
		t.Fatalf("incremental run left real quantities unpopulated: %+v", inc.Stats)
	}
	if err := check.SamePartition(sim.Labels, inc.Labels); err != nil {
		t.Fatal(err)
	}
}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
	}{{"simulated", BackendSimulated}, {"sim", BackendSimulated}, {"", BackendSimulated},
		{"native", BackendNative}, {"incremental", BackendIncremental}, {"inc", BackendIncremental},
		// Case-insensitive, whitespace-tolerant (ISSUE-4 satellite).
		{"Native", BackendNative}, {"SIM", BackendSimulated}, {"  InCremental ", BackendIncremental}} {
		got, err := ParseBackend(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, %v", tc.in, got, err)
		}
	}
	err := func() error { _, err := ParseBackend("gpu"); return err }()
	if err == nil {
		t.Fatal("ParseBackend accepted nonsense")
	}
	// The registry-driven error names what is actually registered.
	for _, name := range BackendNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("ParseBackend error %q does not list backend %q", err, name)
		}
	}
	if BackendNative.String() != "native" || BackendSimulated.String() != "simulated" ||
		BackendIncremental.String() != "incremental" {
		t.Fatal("Backend.String mismatch")
	}
}

// TestBackendTextMarshal: Backend round-trips through the
// encoding.TextMarshaler/TextUnmarshaler pair, which is what makes it
// usable with flag.TextVar and in JSON bench output.
func TestBackendTextMarshal(t *testing.T) {
	if len(Backends()) != len(BackendNames()) || len(Backends()) == 0 {
		t.Fatalf("registry enumeration inconsistent: %v vs %v", Backends(), BackendNames())
	}
	for i, bk := range Backends() {
		text, err := bk.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		if string(text) != BackendNames()[i] || string(text) != bk.String() {
			t.Fatalf("MarshalText(%v) = %q, want %q", bk, text, BackendNames()[i])
		}
		var back Backend
		if err := back.UnmarshalText(text); err != nil || back != bk {
			t.Fatalf("UnmarshalText(%q) = %v, %v", text, back, err)
		}
		var js Backend
		if err := json.Unmarshal([]byte(`"`+strings.ToUpper(string(text))+`"`), &js); err != nil || js != bk {
			t.Fatalf("json round-trip of %q: %v, %v", text, js, err)
		}
	}
	if _, err := Backend(42).MarshalText(); err == nil {
		t.Fatal("MarshalText accepted an unregistered backend")
	}
	var b Backend
	if err := b.UnmarshalText([]byte("quantum")); err == nil {
		t.Fatal("UnmarshalText accepted nonsense")
	}
}

// TestBackendEquivalenceGrainSweep: the partition must not depend on
// the scheduler claim grain. Degenerate (1), prime (7), legacy (4096),
// and adaptive (0) grains on both engines, against the sequential
// union-find oracle; Stats must echo the grain that ran.
func TestBackendEquivalenceGrainSweep(t *testing.T) {
	names := []string{"path", "binary-tree", "gnm", "clique-beads", "isolated"}
	zoo := generatorZoo()
	for _, name := range names {
		g := zoo[name]
		oracle := baseline.Components(g)
		for _, grain := range []int{1, 7, 4096, 0} {
			t.Run(fmt.Sprintf("%s/grain=%d", name, grain), func(t *testing.T) {
				for _, bk := range []Backend{BackendNative, BackendIncremental} {
					res, err := Components(g, WithBackend(bk), WithGrain(grain))
					if err != nil {
						t.Fatal(err)
					}
					if res.Stats.Grain != grain {
						t.Fatalf("%v Stats.Grain = %d, want %d", bk, res.Stats.Grain, grain)
					}
					if err := check.SamePartition(res.Labels, oracle); err != nil {
						t.Fatalf("%v grain=%d vs union-find: %v", bk, grain, err)
					}
				}
			})
		}
	}
}

// TestEngineOptionMatrixEquivalence sweeps the scheduler knobs the
// public API deliberately does not expose — affinity stealing and the
// native fused-sweep arc packing — through the internal engine options,
// crossed with degenerate and adaptive grains. Every cell must induce
// the oracle partition; under -race this doubles as the scheduler
// stress test.
func TestEngineOptionMatrixEquivalence(t *testing.T) {
	zoo := generatorZoo()
	for _, name := range []string{"gnm", "clique-beads", "binary-tree"} {
		g := zoo[name]
		oracle := baseline.Components(g)
		for _, grain := range []int{1, 0} {
			for _, noAff := range []bool{false, true} {
				for _, noPack := range []bool{false, true} {
					opt := native.Options{Grain: grain, NoAffinity: noAff, NoPack: noPack}
					t.Run(fmt.Sprintf("native/%s/grain=%d,noaff=%v,nopack=%v", name, grain, noAff, noPack),
						func(t *testing.T) {
							res := native.Components(g, opt)
							if err := check.SamePartition(res.Labels, oracle); err != nil {
								t.Fatal(err)
							}
						})
				}
				opt := incremental.Options{Grain: grain, NoAffinity: noAff}
				t.Run(fmt.Sprintf("incremental/%s/grain=%d,noaff=%v", name, grain, noAff),
					func(t *testing.T) {
						eng := incremental.New(g.N, opt)
						defer eng.Close()
						for _, span := range g.SpanBatches(3) {
							if _, err := eng.AddSpan(span); err != nil {
								t.Fatal(err)
							}
						}
						if err := check.SamePartition(eng.Snapshot().Labels, oracle); err != nil {
							t.Fatal(err)
						}
					})
			}
		}
	}
}

// TestNativeConvergesUnderConcurrentSweeps exercises the native engine
// repeatedly on the same long-lived instance with a tiny grain, so the
// sharded scheduler issues many concurrent chunk claims per sweep;
// meant to run under -race.
func TestNativeConvergesUnderConcurrentSweeps(t *testing.T) {
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 24, Size: 10, IntraDeg: 6, Bridges: 2, Seed: 21})
	oracle := baseline.Components(g)
	eng := native.NewEngineOpt(native.Options{Workers: 4, Grain: 1})
	defer eng.Close()
	labels := make([]int32, g.N)
	for i := 0; i < 8; i++ {
		if _, err := eng.Run(context.Background(), g, labels); err != nil {
			t.Fatal(err)
		}
		if err := check.SamePartition(labels, oracle); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// FuzzBackendEquivalence: arbitrary multigraphs, worker counts, grain
// choices, and batch splits — native, one-shot incremental, batched
// incremental, and union-find must always agree.
func FuzzBackendEquivalence(f *testing.F) {
	f.Add(uint16(10), uint16(20), int64(1), uint8(0), uint8(1), uint8(0))
	f.Add(uint16(100), uint16(50), int64(2), uint8(1), uint8(3), uint8(1))
	f.Add(uint16(1), uint16(0), int64(3), uint8(4), uint8(0), uint8(2))
	f.Add(uint16(300), uint16(2000), int64(4), uint8(16), uint8(13), uint8(3))
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, gseed int64, workersRaw, batchesRaw, grainRaw uint8) {
		n := int(nRaw%400) + 1
		m := int(mRaw % 1500)
		// 0 = adaptive sizing; 1 = degenerate; 7 = ragged; 4096 = legacy.
		grain := []int{0, 1, 7, 4096}[grainRaw%4]
		g := graph.Gnm(n, m, gseed)
		oracle := baseline.Components(g)
		res, err := Components(g, WithBackend(BackendNative), WithWorkers(int(workersRaw%17)), WithGrain(grain))
		if err != nil {
			t.Fatal(err)
		}
		if err := check.SamePartition(res.Labels, oracle); err != nil {
			t.Fatal(err)
		}
		one, err := Components(g, WithBackend(BackendIncremental), WithWorkers(int(workersRaw%17)), WithGrain(grain))
		if err != nil {
			t.Fatal(err)
		}
		for v := range res.Labels {
			if one.Labels[v] != res.Labels[v] {
				t.Fatalf("incremental label[%d] = %d, native %d", v, one.Labels[v], res.Labels[v])
			}
		}
		// Batched replay: the partition must not depend on the split.
		inc, err := NewIncremental(g.N, WithWorkers(int(workersRaw%17)), WithGrain(grain))
		if err != nil {
			t.Fatal(err)
		}
		defer inc.Close()
		for _, batch := range g.EdgeBatches(int(batchesRaw%29) + 1) {
			if _, err := inc.AddEdges(batch); err != nil {
				t.Fatal(err)
			}
		}
		if err := check.SamePartition(inc.Labels(), oracle); err != nil {
			t.Fatalf("batched incremental: %v", err)
		}
	})
}
