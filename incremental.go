package pramcc

import (
	"fmt"
	"sync"
	"time"

	"repro/graph"
	"repro/internal/incremental"
)

// Incremental is the streaming connected-components handle: a live
// labeling over a fixed vertex set that absorbs edges in batches and
// answers component queries between (or during) batches without ever
// recomputing from scratch. It is backed by the lock-free concurrent
// union-find of internal/incremental, the engine behind
// BackendIncremental.
//
// Concurrency contract: writers (AddEdges, Close) serialize on an
// internal mutex, so calling them from multiple goroutines is safe —
// batches are simply applied one at a time, and Close is idempotent
// even when racing AddEdges. The query methods (SameComponent,
// ComponentCount, Labels, BatchCount, EdgeCount) never take the lock:
// they are safe to call concurrently with an in-flight AddEdges and
// observe the snapshot of the last completed batch, never a
// half-ingested one.
type Incremental struct {
	mu     sync.Mutex // guards eng writer ops + closed
	eng    *incremental.Engine
	closed bool
}

// BatchStats reports one AddEdges call.
type BatchStats struct {
	Batch      int           // 1-based index of this batch
	Edges      int           // edges in this batch
	TotalEdges int64         // edges ingested across all batches
	Components int           // component count after this batch
	Wall       time.Duration // measured ingestion time of this batch
}

// NewIncremental returns a streaming handle over n isolated vertices.
// Only WithWorkers and WithGrain are consulted among the options; the
// engine has no randomness and no model-cost accounting. Close must be
// called to release the worker pool.
func NewIncremental(n int, opts ...Option) (*Incremental, error) {
	if n < 0 {
		return nil, fmt.Errorf("pramcc: negative vertex count %d", n)
	}
	c := apply(opts)
	return &Incremental{eng: incremental.New(n, incremental.Options{Workers: c.workers, Grain: c.grain})}, nil
}

// AddEdges ingests one batch of undirected edges {v,w} and returns the
// batch's statistics. Endpoints out of [0, N) are rejected before any
// edge of the batch is applied. AddEdges is the boxed-representation
// adapter; batches that already live in a Graph or an EdgeSpan should
// go through AddSpan, which reaches the union-find without copying or
// widening a single edge.
func (inc *Incremental) AddEdges(edges [][2]int) (BatchStats, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.closed {
		return BatchStats{}, fmt.Errorf("pramcc: AddEdges on closed Incremental")
	}
	start := time.Now()
	snap, err := inc.eng.AddEdges(edges)
	if err != nil {
		return BatchStats{}, fmt.Errorf("pramcc: %w", err)
	}
	return BatchStats{
		Batch:      snap.Batches,
		Edges:      len(edges),
		TotalEdges: snap.Edges,
		Components: snap.Components,
		Wall:       time.Since(start),
	}, nil
}

// AddSpan ingests one batch given as a columnar arc-pair span
// (graph.EdgeSpan — typically a SpanBatches slice of a Graph, a
// loader span, or graph.FromPairs output) and returns the batch's
// statistics. This is the zero-copy ingest path: the span's int32
// columns are sharded over the worker pool directly, so the whole
// replay layer between the span and the union-find performs no
// allocation and no per-edge conversion. Validation and snapshot
// semantics match AddEdges: a span with an endpoint out of [0, N) is
// rejected whole.
func (inc *Incremental) AddSpan(span graph.EdgeSpan) (BatchStats, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.closed {
		return BatchStats{}, fmt.Errorf("pramcc: AddSpan on closed Incremental")
	}
	start := time.Now()
	snap, err := inc.eng.AddSpan(span)
	if err != nil {
		return BatchStats{}, fmt.Errorf("pramcc: %w", err)
	}
	return BatchStats{
		Batch:      snap.Batches,
		Edges:      span.Len(),
		TotalEdges: snap.Edges,
		Components: snap.Components,
		Wall:       time.Since(start),
	}, nil
}

// SameComponent reports whether v and w are connected by the edges of
// all completed batches.
//
//pramcc:zeroalloc
func (inc *Incremental) SameComponent(v, w int) bool { return inc.eng.SameComponent(v, w) }

// ComponentCount returns the number of components as of the last
// completed batch (N before any batch).
//
//pramcc:zeroalloc
func (inc *Incremental) ComponentCount() int { return inc.eng.ComponentCount() }

// Labels returns a copy of the current flattened labeling: two
// vertices are in the same component iff their labels are equal, and
// each label is the minimum vertex id of its component — the same
// canonical labeling BackendNative produces.
func (inc *Incremental) Labels() []int32 {
	return inc.LabelsInto(nil)
}

// LabelsInto copies the current flattened labeling into dst, growing
// it only when its capacity is short, and returns the filled slice —
// the zero-allocation form of Labels for hot-path consumers polling
// the labeling between batches: pass the previous call's return value
// back in and steady state copies into the same buffer. The copy is
// snapshot-consistent (one atomic snapshot read, then a plain copy)
// and safe to call concurrently with an in-flight ingest, which it
// never observes half-done. A nil dst simply allocates.
//
//pramcc:zeroalloc
func (inc *Incremental) LabelsInto(dst []int32) []int32 {
	return labelsInto(dst, inc.eng.Snapshot().Labels)
}

// N returns the vertex count the handle was created with.
//
//pramcc:zeroalloc
func (inc *Incremental) N() int { return inc.eng.N() }

// BatchCount returns how many batches have been ingested.
func (inc *Incremental) BatchCount() int { return inc.eng.Batches() }

// EdgeCount returns the total number of edges ingested.
func (inc *Incremental) EdgeCount() int64 { return inc.eng.EdgesIngested() }

// Result converts the current snapshot into a Result, so streaming
// consumers can hand the labeling to code written against the one-shot
// API. Model-only Stats fields are zero; Rounds is the batch count.
func (inc *Incremental) Result() *Result {
	s := inc.eng.Snapshot()
	labels := make([]int32, len(s.Labels))
	copy(labels, s.Labels)
	return &Result{
		Labels:        labels,
		NumComponents: s.Components,
		Stats: Stats{
			Backend: BackendIncremental,
			Workers: inc.eng.Workers(),
			Rounds:  s.Batches,
		},
	}
}

// Close releases the engine's worker pool. Queries remain valid on the
// last snapshot; further AddEdges calls return an error. Close is
// idempotent and goroutine-safe: it may race other Close or AddEdges
// calls freely (an in-flight batch completes before the pool is torn
// down).
func (inc *Incremental) Close() {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if !inc.closed {
		inc.closed = true
		inc.eng.Close()
	}
}
