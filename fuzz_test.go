package pramcc

import (
	"testing"

	"repro/graph"
	"repro/internal/check"
)

// FuzzConnectedComponents: arbitrary multigraphs and seeds must give
// oracle-identical partitions, with no panics, on the full pipeline
// (COMPACT → EXPAND-MAXLINK → Theorem-1 postprocess).
func FuzzConnectedComponents(f *testing.F) {
	f.Add(uint16(10), uint16(20), int64(1), uint64(1))
	f.Add(uint16(100), uint16(50), int64(2), uint64(7))
	f.Add(uint16(1), uint16(0), int64(3), uint64(9))
	f.Add(uint16(300), uint16(2000), int64(4), uint64(3))
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, gseed int64, seed uint64) {
		n := int(nRaw%400) + 1
		m := int(mRaw % 1500)
		g := graph.Gnm(n, m, gseed)
		res, err := ConnectedComponents(g, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := check.Components(g, res.Labels); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSpanningForest: forests of arbitrary multigraphs must always
// validate structurally.
func FuzzSpanningForest(f *testing.F) {
	f.Add(uint16(10), uint16(20), int64(1), uint64(1))
	f.Add(uint16(200), uint16(600), int64(5), uint64(2))
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, gseed int64, seed uint64) {
		n := int(nRaw%300) + 1
		m := int(mRaw % 1000)
		g := graph.Gnm(n, m, gseed)
		res, err := SpanningForest(g, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := check.Forest(g, res.EdgeIndices); err != nil {
			t.Fatal(err)
		}
		if err := check.Components(g, res.Labels); err != nil {
			t.Fatal(err)
		}
	})
}
