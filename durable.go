package pramcc

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
)

// defaultCheckpointEvery is the snapshot cadence (in logged batches)
// when WithCheckpointEvery is absent.
const defaultCheckpointEvery = 64

// Warm-start metrics: what the most recent pramcc.Open recovery did.
var (
	mRecoveryBatches = obs.Default.Gauge("pramcc_recovery_replayed_batches",
		"WAL batch records replayed by the most recent warm start (0 after a cold open)")
	mRecoveryEdges = obs.Default.Gauge("pramcc_recovery_replayed_edges",
		"edges replayed from the WAL by the most recent warm start")
)

// lastRecoveryNanos feeds the recovery-duration gauge; 0 until the
// first warm start.
var lastRecoveryNanos atomic.Int64

func init() {
	obs.Default.GaugeFunc("pramcc_recovery_duration_seconds",
		"wall-clock duration of the most recent warm-start recovery (-1 before the first)",
		func() float64 {
			ns := lastRecoveryNanos.Load()
			if ns == 0 {
				return -1
			}
			return float64(ns) / 1e9
		})
}

// RecoveryStats describes the warm start that produced a Service, as
// reported by Service.RecoveryStats.
type RecoveryStats struct {
	// SnapshotSeq is the batch sequence number of the snapshot the
	// recovery started from.
	SnapshotSeq uint64
	// ReplayedBatches and ReplayedEdges count the WAL records (and the
	// edges inside span records) replayed on top of the snapshot.
	ReplayedBatches int
	ReplayedEdges   int64
	// Duration is the wall-clock time of restore plus replay.
	Duration time.Duration
}

// recoveryHook, when non-nil, runs after a warm start publishes the
// recovered snapshot and before WAL replay begins — a test seam for
// exercising concurrent queries against a service mid-recovery.
var recoveryHook func(*Service)

// Open opens (or creates) a durable Service rooted at dir. A fresh
// directory starts the service on WithInitialVertices isolated
// vertices and checkpoints that empty labeling immediately; a
// directory with existing state warm-starts instead — the newest valid
// snapshot is restored and the write-ahead log past it is replayed
// exactly once, after which Service.RecoveryStats reports what was
// done. From then on every accepted Ingest/IngestSpan/Grow batch is
// logged (and fsynced) to the WAL before its snapshot publishes, every
// Update is checkpointed before it publishes, and a snapshot
// checkpoint is written every WithCheckpointEvery logged batches, so a
// later Open resumes from the exact labeling queries last saw.
//
// Durability needs a streaming engine to replay into, so Open defaults
// to BackendIncremental; selecting a non-streaming backend via
// WithBackend is an error. Close the returned Service to release the
// store's file handles.
func Open(dir string, opts ...Option) (*Service, error) {
	return openFS(dir, nil, opts...)
}

// openFS is Open with an injectable filesystem — the crash-injection
// seam. A nil fsys selects the real filesystem.
func openFS(dir string, fsys durable.FS, opts ...Option) (*Service, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if !cfg.backendSet {
		opts = append([]Option{WithBackend(BackendIncremental)}, opts...)
		cfg.backend = BackendIncremental
	}
	st, rec, err := durable.Open(dir, fsys)
	if err != nil {
		return nil, err
	}
	if rec == nil {
		sv, err := newDurableBase(cfg, cfg.initialVertices, opts)
		if err != nil {
			st.Close()
			return nil, err
		}
		// The initial checkpoint makes the empty labeling the manifest's
		// root of truth: a crash before the first batch reopens to the
		// same n isolated vertices the caller started with.
		if err := st.Checkpoint(sv.snap.Load().Labels, 0); err != nil {
			sv.Close()
			st.Close()
			return nil, err
		}
		sv.attachStore(st, cfg)
		return sv, nil
	}

	start := time.Now()
	sv, err := newDurableBase(cfg, 0, opts)
	if err != nil {
		st.Close()
		return nil, err
	}
	se := sv.solver.eng.(streamEngine)
	se.restore(rec.Labels)
	labels := append([]int32(nil), rec.Labels...)
	sv.publish(&Result{
		Labels:        labels,
		NumComponents: countRoots(labels),
		Stats:         Stats{Backend: cfg.backend},
	})
	if recoveryHook != nil {
		recoveryHook(sv)
	}
	var edges int64
	for _, r := range rec.Records {
		n, err := sv.replay(se, r)
		if err != nil {
			sv.Close()
			st.Close()
			return nil, fmt.Errorf("pramcc: wal replay at seq %d: %w", r.Seq, err)
		}
		edges += n
	}
	sv.attachStore(st, cfg)
	sv.recovery = &RecoveryStats{
		SnapshotSeq:     rec.SnapshotSeq,
		ReplayedBatches: len(rec.Records),
		ReplayedEdges:   edges,
		Duration:        time.Since(start),
	}
	mRecoveryBatches.Set(int64(len(rec.Records)))
	mRecoveryEdges.Set(edges)
	lastRecoveryNanos.Store(int64(sv.recovery.Duration))
	// A replay long enough to be due for a checkpoint gets one now, so
	// repeated crash/reopen cycles cannot grow the WAL without bound.
	if st.BatchesSinceCheckpoint() >= sv.ckptEvery {
		if err := st.Checkpoint(sv.snap.Load().Labels, st.Seq()); err != nil {
			sv.Close()
			return nil, err
		}
	}
	return sv, nil
}

// newDurableBase builds the in-memory Service a durable open wraps,
// enforcing that the engine can stream (replay requires it).
func newDurableBase(cfg config, n int, opts []Option) (*Service, error) {
	sv, err := NewService(n, opts...)
	if err != nil {
		return nil, err
	}
	if _, ok := sv.solver.eng.(streamEngine); !ok {
		sv.Close()
		return nil, fmt.Errorf("pramcc: durable service requires a streaming backend (backend %v cannot replay a WAL)", cfg.backend)
	}
	return sv, nil
}

// attachStore arms the service's durability hooks. Called before the
// Service escapes to the caller, so no lock is needed.
func (sv *Service) attachStore(st *durable.Store, cfg config) {
	sv.store = st
	sv.ckptEvery = cfg.checkpointEvery
	if sv.ckptEvery < 1 {
		sv.ckptEvery = defaultCheckpointEvery
	}
}

// replay applies one recovered WAL record to the engine and publishes
// the resulting snapshot, mirroring the live IngestSpan/Grow paths
// minus the logging (the record is already durable). Publishing per
// record means queries running during recovery see the same labeling
// progression they would have seen live.
func (sv *Service) replay(se streamEngine, r durable.Record) (edges int64, err error) {
	switch r.Kind {
	case durable.KindGrow:
		cur := sv.snap.Load()
		if r.N <= len(cur.Labels) {
			return 0, nil
		}
		se.grow(r.N)
		labels := make([]int32, r.N)
		copy(labels, cur.Labels)
		for v := len(cur.Labels); v < r.N; v++ {
			labels[v] = int32(v)
		}
		sv.publish(&Result{
			Labels:        labels,
			NumComponents: cur.NumComponents + r.N - len(cur.Labels),
			Stats:         cur.Stats,
		})
		return 0, nil
	case durable.KindSpan:
		var out solveOutput
		components, err := se.ingest(context.Background(), r.Span, &out)
		if err != nil {
			return 0, err
		}
		out.stats.Backend = sv.solver.cfg.backend
		sv.publish(&Result{
			Labels:        out.labels,
			NumComponents: components,
			Stats:         out.stats,
		})
		return int64(r.Span.Len()), nil
	default:
		return 0, fmt.Errorf("pramcc: unknown wal record kind %d", r.Kind)
	}
}

// Persist makes a live in-memory Service durable: dir (which must not
// already contain a store — reopen one of those with Open) becomes its
// store, seeded with a checkpoint of the currently published labeling,
// and every subsequent accepted batch is logged before it publishes,
// exactly as for a service built by Open. Only WithCheckpointEvery is
// consulted from opts. Streaming backends only.
func (sv *Service) Persist(dir string, opts ...Option) error {
	return sv.persistFS(dir, nil, opts...)
}

// persistFS is Persist with an injectable filesystem (crash-injection
// seam); nil fsys selects the real filesystem.
func (sv *Service) persistFS(dir string, fsys durable.FS, opts ...Option) error {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.closed {
		return ErrSolverClosed
	}
	if sv.store != nil {
		return fmt.Errorf("pramcc: service is already persisted")
	}
	if _, ok := sv.solver.eng.(streamEngine); !ok {
		return fmt.Errorf("pramcc: durable service requires a streaming backend (backend %v cannot replay a WAL)", sv.solver.cfg.backend)
	}
	st, rec, err := durable.Open(dir, fsys)
	if err != nil {
		return err
	}
	if rec != nil {
		st.Close()
		return fmt.Errorf("pramcc: %s already holds a durable store (snapshot seq %d); reopen it with pramcc.Open instead of persisting over it", dir, rec.SnapshotSeq)
	}
	if err := st.Checkpoint(sv.snap.Load().Labels, 0); err != nil {
		st.Close()
		return err
	}
	sv.attachStore(st, cfg)
	return nil
}

// DurableSeq returns the last batch sequence number made durable
// (logged and fsynced, or covered by a checkpoint) and whether the
// service is persisted at all.
func (sv *Service) DurableSeq() (uint64, bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.store == nil {
		return 0, false
	}
	return sv.store.Seq(), true
}

// RecoveryStats reports the warm start that produced this Service via
// Open, or ok=false for a cold open, a Persist-ed service, or a plain
// in-memory one.
func (sv *Service) RecoveryStats() (stats RecoveryStats, ok bool) {
	if sv.recovery == nil {
		return RecoveryStats{}, false
	}
	return *sv.recovery, true
}

// countRoots counts the components of a canonical labeling (labels[v]
// is the minimum vertex id of v's component, so roots satisfy
// labels[v] == v).
func countRoots(labels []int32) int {
	n := 0
	for v, l := range labels {
		if int(l) == v {
			n++
		}
	}
	return n
}
