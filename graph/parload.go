package graph

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"unicode"
	"unicode/utf8"

	"repro/internal/pool"
)

// ReadEdgeListParallel parses the WriteEdgeList text format with the
// same semantics as ReadEdgeList — same graphs accepted, same inputs
// rejected, same edge order — but built for throughput: the whole
// input is read into memory, split into byte chunks on line
// boundaries, and the chunks are parsed concurrently on a worker pool
// (internal/pool, the pool behind the native and incremental engines)
// by a zero-allocation scanner that replaces the per-line
// strings.Fields + strconv.Atoi hot path of the sequential loader.
// workers <= 0 selects GOMAXPROCS.
//
// The one intentional difference from ReadEdgeList: there is no
// per-line length limit (the sequential loader rejects lines longer
// than 1 MiB with its scanner's token-size error).
func ReadEdgeListParallel(r io.Reader, workers int) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseEdgeList(data, workers)
}

// ParseEdgeList is ReadEdgeListParallel over an in-memory buffer. It
// is a thin wrapper over ParseEdgeListSpan, which parses straight
// into the columnar arc representation the Graph adopts without a
// copy.
func ParseEdgeList(data []byte, workers int) (*Graph, error) {
	n, span, err := ParseEdgeListSpan(data, workers)
	if err != nil {
		return nil, err
	}
	g := New(n)
	g.U, g.V = span.U, span.V
	return g, nil
}

// ParseEdgeListSpan parses the text edge-list format directly into an
// arc-pair span and the vertex count it was validated against — the
// columnar loader hook, sharing chunking, workers, and error
// semantics with ParseEdgeList. The chunk parsers already emit arc
// columns; this entry point hands them out without wrapping them in a
// Graph, so streaming consumers can batch-ingest a parsed file with
// no further conversion.
func ParseEdgeListSpan(data []byte, workers int) (int, EdgeSpan, error) {
	// The header is the first non-blank, non-comment line: "n m".
	n, want, body, err := parseHeader(data)
	if err != nil {
		return 0, EdgeSpan{}, err
	}

	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	// Chunking below ~64 KiB costs more in coordination than it saves;
	// parse small inputs inline on the calling goroutine.
	if w > 1 && len(data)-body < 1<<16 {
		w = 1
	}

	// More byte chunks than workers, scheduled at grain 1 on the
	// locality-aware scheduler: each worker starts on the chunks of
	// its sticky home range and steals the rest, so a chunk whose
	// lines are unusually dense (or hit the slow parse path) cannot
	// strand a fixed w-th of the input behind one worker.
	nc := w
	if w > 1 {
		nc = w * 4
	}

	type chunk struct {
		u, v []int32
		err  *parseOffsetError
	}
	chunks := make([]chunk, nc)
	cuts := chunkBounds(data, body, nc)
	// The header's edge count sizes each chunk's output (plus slack
	// for imbalance); parseEdgeChunk clamps it against the chunk's
	// actual byte size so a lying header cannot drive the allocation.
	estArcs := 2 * (want/nc + want/(8*nc) + 16)
	parseOne := func(i int) {
		u, v, perr := parseEdgeChunk(data, cuts[i], cuts[i+1], n, estArcs)
		chunks[i] = chunk{u, v, perr}
	}
	if w == 1 {
		parseOne(0)
	} else {
		p := pool.New(w)
		p.Sharded(nc, 1, func(_, lo, hi int) bool {
			for i := lo; i < hi; i++ {
				parseOne(i)
			}
			return true
		})
		p.Close()
	}

	// The first error in input order wins, so concurrent parses report
	// identically to the sequential loader.
	var firstErr *parseOffsetError
	for i := range chunks {
		if e := chunks[i].err; e != nil && (firstErr == nil || e.off < firstErr.off) {
			firstErr = e
		}
	}
	if firstErr != nil {
		return 0, EdgeSpan{}, fmt.Errorf("graph: line %d: %s", 1+lineOf(data, firstErr.off), firstErr.msg)
	}

	var span EdgeSpan
	if w == 1 {
		span.U, span.V = chunks[0].u, chunks[0].v
	} else {
		total := 0
		for i := range chunks {
			total += len(chunks[i].u)
		}
		span.U = make([]int32, 0, total)
		span.V = make([]int32, 0, total)
		for i := range chunks {
			span.U = append(span.U, chunks[i].u...)
			span.V = append(span.V, chunks[i].v...)
		}
	}
	if span.Len() != want {
		return 0, EdgeSpan{}, fmt.Errorf("graph: header declared %d edges, read %d", want, span.Len())
	}
	return n, span, nil
}

// parseOffsetError is a parse failure at an absolute byte offset; the
// line number is derived lazily (counting newlines only on the error
// path keeps the hot path untouched).
type parseOffsetError struct {
	off int
	msg string
}

// lineOf counts the newlines before off: offset → zero-based line.
func lineOf(data []byte, off int) int {
	line := 0
	for _, c := range data[:off] {
		if c == '\n' {
			line++
		}
	}
	return line
}

// parseHeader scans leading blank/comment lines, parses the "n m"
// header line, validates it, and returns the offset where the edge
// body starts.
func parseHeader(data []byte) (n, m, body int, err error) {
	i := 0
	for i < len(data) {
		j := skipFieldSpace(data, i, len(data))
		if j >= len(data) {
			break
		}
		if data[j] == '\n' {
			i = j + 1
			continue
		}
		if data[j] == '#' {
			for j < len(data) && data[j] != '\n' {
				j++
			}
			i = j + 1
			continue
		}
		var hdr [2]int
		end, perr := parseEdgeLine(data, j, len(data), &hdr)
		if perr != nil {
			return 0, 0, 0, fmt.Errorf("graph: line %d: %s", 1+lineOf(data, perr.off), perr.msg)
		}
		if err := validateHeader(hdr[0], hdr[1]); err != nil {
			return 0, 0, 0, fmt.Errorf("graph: line %d: %v", 1+lineOf(data, j), err)
		}
		return hdr[0], hdr[1], end, nil
	}
	return 0, 0, 0, fmt.Errorf("graph: empty input")
}

// chunkBounds splits data[body:] into w spans cut on line boundaries:
// cuts[i]..cuts[i+1] for worker i. Spans may be empty when the input
// has fewer lines than workers.
func chunkBounds(data []byte, body, w int) []int {
	cuts := make([]int, w+1)
	cuts[0] = body
	size := len(data) - body
	for k := 1; k < w; k++ {
		c := body + size*k/w
		if c < cuts[k-1] {
			c = cuts[k-1]
		}
		for c < len(data) && data[c] != '\n' {
			c++
		}
		if c < len(data) {
			c++
		}
		cuts[k] = c
	}
	cuts[w] = len(data)
	return cuts
}

// parseEdgeChunk parses the complete lines in data[lo:hi) into arc
// pairs, validating every endpoint against [0, n). It allocates only
// the output slices, starting at capacity estArcs — clamped by what
// the chunk's bytes can physically hold (an edge line is ≥ 4 bytes, 3
// if it ends the input), so a lying header cannot force a huge
// allocation, only append regrowth.
func parseEdgeChunk(data []byte, lo, hi, n, estArcs int) (u, v []int32, perr *parseOffsetError) {
	if maxArcs := (hi - lo + 1) / 4 * 2; estArcs > maxArcs {
		estArcs = maxArcs
	}
	u = make([]int32, 0, estArcs)
	v = make([]int32, 0, estArcs)
	i := lo
	for i < hi {
		// Fast path for the shape WriteEdgeList emits — "digits ' '
		// digits '\n'" with both endpoints in range. Anything else
		// (signs, tabs, comments, \r\n, overflow, range errors) bails
		// to the general parser below, which re-reads the line from
		// its start and owns all error reporting; the equivalence
		// fuzzer holds both paths to ReadEdgeList's exact semantics.
		if c := data[i]; c >= '0' && c <= '9' {
			a, j, ok := 0, i, true
			for ; j < hi; j++ {
				d := data[j]
				if d < '0' || d > '9' {
					break
				}
				a = a*10 + int(d-'0')
				if a > math.MaxInt32 {
					ok = false
					break
				}
			}
			if ok && j < hi && data[j] == ' ' {
				b, k, digits := 0, j+1, false
				for ; k < hi; k++ {
					d := data[k]
					if d < '0' || d > '9' {
						break
					}
					b = b*10 + int(d-'0')
					digits = true
					if b > math.MaxInt32 {
						ok = false
						break
					}
				}
				if ok && digits && (k >= hi || data[k] == '\n') && a < n && b < n {
					u = append(u, int32(a), int32(b))
					v = append(v, int32(b), int32(a))
					if k < hi {
						k++
					}
					i = k
					continue
				}
			}
		}
		j := skipFieldSpace(data, i, hi)
		if j >= hi {
			break
		}
		if data[j] == '\n' {
			i = j + 1
			continue
		}
		if data[j] == '#' {
			for j < hi && data[j] != '\n' {
				j++
			}
			i = j + 1
			continue
		}
		var e [2]int
		end, err := parseEdgeLine(data, j, hi, &e)
		if err != nil {
			return nil, nil, err
		}
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, nil, &parseOffsetError{j, fmt.Sprintf("edge {%d,%d} out of range [0,%d)", a, b, n)}
		}
		u = append(u, int32(a), int32(b))
		v = append(v, int32(b), int32(a))
		i = end
	}
	return u, v, nil
}

// parseEdgeLine parses exactly two integers at data[i:hi) followed by
// optional field whitespace and a newline (or end of input), storing
// them in out and returning the offset just past the line's newline.
// data[i] is the first byte of the first field.
func parseEdgeLine(data []byte, i, hi int, out *[2]int) (end int, perr *parseOffsetError) {
	for f := 0; f < 2; f++ {
		if f == 1 {
			j := skipFieldSpace(data, i, hi)
			if j == i || j >= hi || data[j] == '\n' {
				return 0, &parseOffsetError{i, "expected two fields"}
			}
			i = j
		}
		val, next, ok := parseInt(data, i, hi)
		if !ok {
			return 0, &parseOffsetError{i, "invalid integer"}
		}
		out[f] = val
		i = next
	}
	j := skipFieldSpace(data, i, hi)
	if j < hi && data[j] != '\n' {
		if j == i {
			return 0, &parseOffsetError{i, "invalid integer"}
		}
		return 0, &parseOffsetError{j, "expected two fields"}
	}
	if j < hi {
		j++
	}
	return j, nil
}

// skipFieldSpace advances past field-separating whitespace: the ASCII
// separators other than '\n' on the byte fast path, and any other
// unicode.IsSpace rune (what strings.Fields splits on) off it.
func skipFieldSpace(data []byte, i, hi int) int {
	for i < hi {
		c := data[i]
		if c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' {
			i++
			continue
		}
		if c < utf8.RuneSelf {
			return i
		}
		r, size := utf8.DecodeRune(data[i:hi])
		if r == utf8.RuneError && size <= 1 {
			return i
		}
		if !unicode.IsSpace(r) {
			return i
		}
		i += size
	}
	return hi
}

// parseInt parses a decimal integer with an optional sign at data[i:hi),
// accepting the syntax strconv.Atoi accepts (modulo math.MinInt, which
// no caller can use: it is out of range as a vertex count and as an
// endpoint alike). ok is false when no digit follows or on overflow.
func parseInt(data []byte, i, hi int) (val, next int, ok bool) {
	neg := false
	if i < hi && (data[i] == '+' || data[i] == '-') {
		neg = data[i] == '-'
		i++
	}
	start := i
	v := 0
	for i < hi {
		c := data[i]
		if c < '0' || c > '9' {
			break
		}
		d := int(c - '0')
		if v > (math.MaxInt-d)/10 {
			return 0, i, false
		}
		v = v*10 + d
		i++
	}
	if i == start {
		return 0, i, false
	}
	if neg {
		v = -v
	}
	return v, i, true
}
