package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestParallelMatchesSequentialAllGenerators(t *testing.T) {
	for name, g := range generatorZoo() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := g.WriteEdgeList(&buf); err != nil {
				t.Fatal(err)
			}
			data := buf.Bytes()
			seq, err := ReadEdgeList(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 2, 3, 7} {
				par, err := ParseEdgeList(data, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				sameGraph(t, seq, par)
			}
		})
	}
}

// TestParallelChunkingCrossesManyBoundaries forces a chunk count far
// above the line count and odd chunk/line alignments.
func TestParallelChunkingCrossesManyBoundaries(t *testing.T) {
	g := Gnm(97, 389, 11)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	for workers := 1; workers <= 64; workers *= 2 {
		par, err := ParseEdgeList(buf.Bytes(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameGraph(t, g, par)
	}
}

func TestParallelAcceptsCommentsAndWhitespace(t *testing.T) {
	in := "# header comment\n\n  4 3\n0 1\n\t1 2\r\n# mid comment\n  2   3  \n"
	seq, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParseEdgeList([]byte(in), 4)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, seq, par)
	if par.N != 4 || par.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", par.N, par.NumEdges())
	}
	// No trailing newline on the last edge line.
	par2, err := ParseEdgeList([]byte("2 1\n0 1"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if par2.NumEdges() != 1 {
		t.Fatalf("m=%d, want 1", par2.NumEdges())
	}
}

// TestParallelRejectsWhatSequentialRejects: the malformed-input corpus
// of TestReadEdgeListErrors plus parser-specific shapes; both loaders
// must reject every case.
func TestParallelRejectsWhatSequentialRejects(t *testing.T) {
	cases := []string{
		"",
		"# only comments\n\n",
		"3 1\n5 0\n",                    // out of range
		"3 2\n0 1\n",                    // header count mismatch
		"3 1\n0 1 2\n",                  // wrong field count
		"3 1\nx y\n",                    // not numbers
		"-5 3\n",                        // negative n in header
		"3 -1\n0 1\n",                   // negative m in header
		"5000000000 0\n",                // n beyond int32
		"3 99999999999999\n",            // m beyond int32 (and unsatisfiable)
		"3\n0 1\n",                      // one-field header
		"3 1\n0\n",                      // one-field edge line
		"3 1\n0 1x\n",                   // junk inside a field
		"3 1\n0x 1\n",                   // junk inside the first field
		"3 1\n-1 0\n",                   // negative endpoint
		"3 1\n0 99999999999999999999\n", // overflow endpoint
		"3 1\n0 1\n1 2\n",               // more edges than declared
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("sequential accepted %q", in)
		}
		for _, workers := range []int{1, 3} {
			if _, err := ParseEdgeList([]byte(in), workers); err == nil {
				t.Errorf("parallel (workers=%d) accepted %q", workers, in)
			}
		}
	}
}

// TestParallelLyingHeaderNoHugeAllocation: a tiny file whose header
// declares ~10⁹ edges must fail on the count mismatch without ever
// allocating header-sized output (the chunk's byte size caps the
// preallocation). Found by FuzzParallelLoaderEquivalence as a
// fuzz-worker OOM kill.
func TestParallelLyingHeaderNoHugeAllocation(t *testing.T) {
	for _, in := range []string{
		"-000000 0000000001111110000", // the original fuzz input: n=0, m≈1.1e9
		"5 2000000000\n0 1\n",
	} {
		for _, workers := range []int{1, 4} {
			if _, err := ParseEdgeList([]byte(in), workers); err == nil {
				t.Errorf("workers=%d accepted %q", workers, in)
			}
		}
	}
}

func TestParallelErrorReportsLineNumber(t *testing.T) {
	in := "# c\n4 2\n0 1\nbogus line\n"
	_, err := ParseEdgeList([]byte(in), 1)
	if err == nil {
		t.Fatal("accepted")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %q does not name line 4", err)
	}
}

func TestReadEdgeListParallelFromReader(t *testing.T) {
	g := Gnm(60, 240, 13)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	par, err := ReadEdgeListParallel(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, par)
}
