package graph

import (
	"testing"
	"testing/quick"
)

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N != 16 || g.NumEdges() != 32 {
		t.Fatalf("n=%d m=%d", g.N, g.NumEdges())
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("diameter = %d, want 4", d)
	}
	for v := 0; v < g.N; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(6, 4)
	if g.N != 16 || g.NumComponents() != 1 {
		t.Fatalf("n=%d comps=%d", g.N, g.NumComponents())
	}
	if d := g.Diameter(); d != 4+3 {
		t.Fatalf("diameter = %d, want 7", d)
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(1000, 5000, 3)
	if g.N != 1024 || g.NumEdges() != 5000 {
		t.Fatalf("n=%d m=%d", g.N, g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Heavy tail: max degree far above mean.
	s := g.Summary()
	if float64(s.MaxDeg) < 4*s.MeanDeg {
		t.Fatalf("RMAT should be skewed: max=%d mean=%.1f", s.MaxDeg, s.MeanDeg)
	}
}

func TestChungLuShape(t *testing.T) {
	g := ChungLu(2000, 8000, 2.5, 5)
	if g.N != 2000 || g.NumEdges() != 8000 {
		t.Fatalf("n=%d m=%d", g.N, g.NumEdges())
	}
	s := g.Summary()
	if float64(s.MaxDeg) < 5*s.MeanDeg {
		t.Fatalf("ChungLu should be skewed: max=%d mean=%.1f", s.MaxDeg, s.MeanDeg)
	}
}

func TestTorus(t *testing.T) {
	g := Torus2D(6, 8)
	if g.N != 48 || g.NumEdges() != 96 {
		t.Fatalf("n=%d m=%d", g.N, g.NumEdges())
	}
	for v := 0; v < g.N; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus vertex %d degree %d", v, g.Degree(v))
		}
	}
	if d := g.Diameter(); d != 7 {
		t.Fatalf("torus 6x8 diameter = %d, want 7", d)
	}
}

func TestLollipop(t *testing.T) {
	g := LollipopPath(8, 12)
	if g.N != 20 || g.NumComponents() != 1 {
		t.Fatal("lollipop malformed")
	}
	if d := g.Diameter(); d != 13 {
		t.Fatalf("diameter = %d, want 13", d)
	}
}

func TestExtraGeneratorsValidate(t *testing.T) {
	f := func(seed int64) bool {
		for _, g := range []*Graph{
			RMAT(256, 1000, seed),
			ChungLu(300, 900, 2.3, seed),
		} {
			if g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryAndHistogram(t *testing.T) {
	g := Star(10)
	s := g.Summary()
	if s.N != 10 || s.M != 9 || s.MaxDeg != 9 || s.MinDeg != 1 || s.Components != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
	h := g.DegreeHistogram()
	// Degrees: one vertex of 9, nine of 1.
	if len(h) != 2 || h[0] != [2]int{1, 9} || h[1] != [2]int{9, 1} {
		t.Fatalf("histogram wrong: %v", h)
	}
	if g.FormatDegreeHistogram() == "" {
		t.Fatal("empty formatted histogram")
	}
}

func TestSummaryEmptyGraph(t *testing.T) {
	s := New(0).Summary()
	if s.N != 0 || s.MinDeg != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}
