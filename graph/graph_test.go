package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPathBasics(t *testing.T) {
	g := Path(5)
	if g.N != 5 || g.NumEdges() != 4 || g.NumArcs() != 8 {
		t.Fatalf("path(5): n=%d m=%d arcs=%d", g.N, g.NumEdges(), g.NumArcs())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Diameter() != 4 {
		t.Fatalf("path(5) diameter = %d", g.Diameter())
	}
}

func TestGeneratorsValidateAndShape(t *testing.T) {
	cases := []struct {
		name       string
		g          *Graph
		n, m, d    int // -1 = skip check
		components int
	}{
		{"path", Path(10), 10, 9, 9, 1},
		{"cycle", Cycle(10), 10, 10, 5, 1},
		{"star", Star(10), 10, 9, 2, 1},
		{"grid", Grid2D(3, 4), 12, 17, 5, 1},
		{"tree", CompleteBinaryTree(15), 15, 14, 6, 1},
		{"clique", Clique(6), 6, 15, 1, 1},
		{"caterpillar", Caterpillar(5, 7), 12, 11, 6, 1},
		{"circulant", Circulant(12, 2), 12, 24, 3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err != nil {
				t.Fatal(err)
			}
			if tc.g.N != tc.n {
				t.Errorf("n = %d, want %d", tc.g.N, tc.n)
			}
			if tc.m >= 0 && tc.g.NumEdges() != tc.m {
				t.Errorf("m = %d, want %d", tc.g.NumEdges(), tc.m)
			}
			if tc.d >= 0 && tc.g.Diameter() != tc.d {
				t.Errorf("d = %d, want %d", tc.g.Diameter(), tc.d)
			}
			if got := tc.g.NumComponents(); got != tc.components {
				t.Errorf("components = %d, want %d", got, tc.components)
			}
		})
	}
}

func TestGnmShape(t *testing.T) {
	g := Gnm(100, 300, 7)
	if g.N != 100 || g.NumEdges() != 300 {
		t.Fatalf("gnm: n=%d m=%d", g.N, g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	g := RandomTree(200, 3)
	if g.NumEdges() != 199 || g.NumComponents() != 1 {
		t.Fatalf("random tree malformed: m=%d comps=%d", g.NumEdges(), g.NumComponents())
	}
}

func TestCliqueBeadsShape(t *testing.T) {
	spec := CliqueBeadsSpec{Beads: 6, Size: 8, IntraDeg: 7, Bridges: 2, Seed: 1}
	g := CliqueBeads(spec)
	if g.N != 48 {
		t.Fatalf("n = %d", g.N)
	}
	if g.NumComponents() != 1 {
		t.Fatal("beads must be connected")
	}
	d := g.Diameter()
	if d < 5 || d > 18 {
		t.Fatalf("beads diameter %d outside expected band", d)
	}
}

func TestDisjointUnionAndIsolated(t *testing.T) {
	g := DisjointUnion(Path(3), Clique(4))
	if g.N != 7 || g.NumComponents() != 2 {
		t.Fatalf("union wrong: n=%d comps=%d", g.N, g.NumComponents())
	}
	g2 := WithIsolated(g, 3)
	if g2.N != 10 || g2.NumComponents() != 5 {
		t.Fatalf("isolated wrong: n=%d comps=%d", g2.N, g2.NumComponents())
	}
}

func TestPermutedIsomorphic(t *testing.T) {
	g := Grid2D(5, 5)
	p := Permuted(g, 9)
	if p.N != g.N || p.NumEdges() != g.NumEdges() {
		t.Fatal("permutation changed size")
	}
	if p.NumComponents() != g.NumComponents() || p.Diameter() != g.Diameter() {
		t.Fatal("permutation changed invariants")
	}
}

func TestNeighborsDegreeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		g := Gnm(40, 80, seed)
		total := 0
		for v := 0; v < g.N; v++ {
			total += g.Degree(v)
			if len(g.Neighbors(v)) != g.Degree(v) {
				return false
			}
		}
		return total == g.NumArcs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(6)
	dist, ecc := g.BFS(0)
	for v := 0; v < 6; v++ {
		if dist[v] != int32(v) {
			t.Fatalf("dist[%d] = %d", v, dist[v])
		}
	}
	if ecc != 5 {
		t.Fatalf("ecc = %d", ecc)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := DisjointUnion(Path(3), Path(3))
	dist, _ := g.BFS(0)
	if dist[4] != -1 {
		t.Fatal("unreachable vertex must have distance -1")
	}
}

func TestComponentsBFSLabelsAreMinima(t *testing.T) {
	g := DisjointUnion(Clique(3), Path(4))
	lbl := g.ComponentsBFS()
	for v := 0; v < 3; v++ {
		if lbl[v] != 0 {
			t.Fatalf("clique label %d", lbl[v])
		}
	}
	for v := 3; v < 7; v++ {
		if lbl[v] != 3 {
			t.Fatalf("path label %d", lbl[v])
		}
	}
}

func TestDiameterEstimateLowerBoundsExact(t *testing.T) {
	f := func(seed int64) bool {
		g := Gnm(60, 90, seed)
		return g.DiameterEstimate() <= g.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterEstimateExactOnTrees(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := RandomTree(100, seed)
		if g.DiameterEstimate() != g.Diameter() {
			t.Fatalf("double sweep not exact on tree (seed %d)", seed)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := Gnm(30, 60, 5)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost data: n=%d m=%d", g2.N, g2.NumEdges())
	}
	a, b := g.SortedDedupEdges(), g2.SortedDedupEdges()
	if len(a) != len(b) {
		t.Fatal("edge sets differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"3 1\n5 0\n",   // out of range
		"3 2\n0 1\n",   // header count mismatch
		"3 1\n0 1 2\n", // wrong field count
		"3 1\nx y\n",   // not numbers
		// Header validation: "-5 3" used to panic in graph.New instead
		// of returning an error; counts beyond int32 would let edge
		// endpoints wrap silently.
		"-5 3\n",
		"3 -1\n0 1\n",
		"5000000000 0\n",
		"0 5000000000\n",
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(bytes.NewBufferString(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# header\n4 2\n\n0 1\n# mid\n2 3\n"
	g, err := ReadEdgeList(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.N, g.NumEdges())
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Path(3)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.NumEdges() != 2 || c.NumEdges() != 3 {
		t.Fatal("clone not independent")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Path(3)
	g.U[1] = 2 // break the mirror pair
	if err := g.Validate(); err == nil {
		t.Fatal("validate missed broken mirror")
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(0, 5)
}

func TestSortedDedupEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(1, 0)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	es := g.SortedDedupEdges()
	if len(es) != 2 || es[0] != [2]int{0, 1} || es[1] != [2]int{1, 2} {
		t.Fatalf("dedup wrong: %v", es)
	}
}

func TestCSRInvalidatedByAddEdge(t *testing.T) {
	g := Path(3)
	if g.Degree(0) != 1 {
		t.Fatalf("deg(0) = %d", g.Degree(0))
	}
	g.AddEdge(0, 2) // must invalidate the cached CSR
	if g.Degree(0) != 2 {
		t.Fatalf("deg(0) after AddEdge = %d, cache not invalidated", g.Degree(0))
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if g.NumEdges() != 2 || g.NumComponents() != 2 {
		t.Fatalf("FromEdges wrong: m=%d comps=%d", g.NumEdges(), g.NumComponents())
	}
}

func TestEdgeBatches(t *testing.T) {
	g := Gnm(100, 57, 3)
	for _, k := range []int{1, 2, 5, 7, 57, 100, 0, -3} {
		batches := g.EdgeBatches(k)
		var flat [][2]int
		for i, b := range batches {
			if len(b) == 0 {
				t.Fatalf("k=%d: batch %d empty", k, i)
			}
			flat = append(flat, b...)
		}
		want := g.Edges()
		if len(flat) != len(want) {
			t.Fatalf("k=%d: %d edges after concat, want %d", k, len(flat), len(want))
		}
		for i := range want {
			if flat[i] != want[i] {
				t.Fatalf("k=%d: edge %d = %v, want %v (order not preserved)", k, i, flat[i], want[i])
			}
		}
		wantK := k
		if wantK < 1 {
			wantK = 1
		}
		if wantK > g.NumEdges() {
			wantK = g.NumEdges()
		}
		if len(batches) != wantK {
			t.Fatalf("k=%d: got %d batches, want %d", k, len(batches), wantK)
		}
		// Near-equal sizes: max differs from min by at most one.
		min, max := len(batches[0]), len(batches[0])
		for _, b := range batches {
			if len(b) < min {
				min = len(b)
			}
			if len(b) > max {
				max = len(b)
			}
		}
		if max-min > 1 {
			t.Fatalf("k=%d: batch sizes range %d..%d", k, min, max)
		}
	}
	if got := New(5).EdgeBatches(3); len(got) != 0 {
		t.Fatalf("edgeless graph: %d batches, want 0", len(got))
	}
}
