package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a graph for experiment logs.
type Stats struct {
	N, M       int
	Density    float64 // m/n
	MinDeg     int
	MaxDeg     int
	MeanDeg    float64
	Components int
	DiameterLB int // double-sweep lower bound
	Isolated   int
}

// Summary computes the statistics (runs BFS per component; intended
// for experiment setup, not hot paths).
func (g *Graph) Summary() Stats {
	s := Stats{N: g.N, M: g.NumEdges()}
	if g.N > 0 {
		s.Density = float64(s.M) / float64(s.N)
	}
	s.MinDeg = 1 << 30
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		if d < s.MinDeg {
			s.MinDeg = d
		}
		if d > s.MaxDeg {
			s.MaxDeg = d
		}
		if d == 0 {
			s.Isolated++
		}
		s.MeanDeg += float64(d)
	}
	if g.N > 0 {
		s.MeanDeg /= float64(g.N)
	} else {
		s.MinDeg = 0
	}
	s.Components = g.NumComponents()
	s.DiameterLB = g.DiameterEstimate()
	return s
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d (m/n=%.2f) deg=[%d..%d] mean=%.1f comps=%d d≥%d isolated=%d",
		s.N, s.M, s.Density, s.MinDeg, s.MaxDeg, s.MeanDeg, s.Components, s.DiameterLB, s.Isolated)
}

// DegreeHistogram returns sorted (degree, count) pairs.
func (g *Graph) DegreeHistogram() [][2]int {
	counts := map[int]int{}
	for v := 0; v < g.N; v++ {
		counts[g.Degree(v)]++
	}
	out := make([][2]int, 0, len(counts))
	for d, c := range counts {
		out = append(out, [2]int{d, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// FormatDegreeHistogram renders the histogram as an aligned block,
// bucketing degrees into powers of two above 8.
func (g *Graph) FormatDegreeHistogram() string {
	buckets := map[int]int{}
	label := func(d int) int {
		if d <= 8 {
			return d
		}
		b := 16
		for d > b {
			b <<= 1
		}
		return b
	}
	for v := 0; v < g.N; v++ {
		buckets[label(g.Degree(v))]++
	}
	keys := make([]int, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sb strings.Builder
	for _, k := range keys {
		if k <= 8 {
			fmt.Fprintf(&sb, "  deg %4d: %d\n", k, buckets[k])
		} else {
			fmt.Fprintf(&sb, "  deg ≤%4d: %d\n", k, buckets[k])
		}
	}
	return sb.String()
}
