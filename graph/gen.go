package graph

import (
	"fmt"
	"math/rand"
)

// Generators for the experiment workloads. Each generator documents how
// it controls the three parameters of interest: n (vertices), m (edges)
// and d (maximum component diameter).

// Path returns the path graph on n vertices: d = n-1, m = n-1.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle on n vertices: d = floor(n/2), m = n.
func Cycle(n int) *Graph {
	g := Path(n)
	if n > 2 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Star returns the star on n vertices centered at 0: d = 2, m = n-1.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Grid2D returns the rows×cols grid: n = rows·cols, d = rows+cols-2.
func Grid2D(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// CompleteBinaryTree returns the complete binary tree on n vertices
// (heap numbering): d ≈ 2·log2(n).
func CompleteBinaryTree(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, (i-1)/2)
	}
	return g
}

// RandomTree returns a uniform random recursive tree on n vertices:
// each vertex i>0 attaches to a uniform earlier vertex. Expected
// diameter Θ(log n).
func RandomTree(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i))
	}
	return g
}

// Caterpillar returns a path of length spine with legs pendant vertices
// attached round-robin along it: d = spine-1 + (2 if legs > 0).
func Caterpillar(spine, legs int) *Graph {
	g := New(spine + legs)
	for i := 0; i+1 < spine; i++ {
		g.AddEdge(i, i+1)
	}
	for j := 0; j < legs; j++ {
		g.AddEdge(spine+j, j%spine)
	}
	return g
}

// Gnm returns a uniform random multigraph with n vertices and m edges.
// For m/n ≥ c·log n the graph is connected w.h.p. with diameter
// O(log n / log(m/n)); at low density components are small.
func Gnm(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	g.U = make([]int32, 0, 2*m)
	g.V = make([]int32, 0, 2*m)
	for i := 0; i < m; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// Circulant returns the circulant graph C_n(1..k): vertex i connects to
// i±1, …, i±k (mod n). Diameter ≈ n/(2k); m = n·k. An algebraic
// expander-free way to get controllable density at high diameter.
func Circulant(n, k int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			g.AddEdge(i, (i+j)%n)
		}
	}
	return g
}

// Clique returns the complete graph K_n: d = 1, m = n(n-1)/2.
func Clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// CliqueBeadsSpec describes a "beaded path": Beads cliques of Size
// vertices each, consecutive beads joined by Bridges parallel bridge
// edges between random endpoints, plus Chords random intra-bead extra
// edges per bead. This family is the workhorse of the diameter sweeps:
//
//	n = Beads·Size, d ≈ 2·Beads, m ≈ Beads·(Size·IntraDeg/2 + Bridges).
//
// Density m/n and diameter d are controlled independently, which is
// what the O(log d + log log_{m/n} n) bound needs to be exhibited.
type CliqueBeadsSpec struct {
	Beads    int   // number of cliques along the path
	Size     int   // vertices per bead
	IntraDeg int   // average intra-bead degree (Size-1 ⇒ full clique)
	Bridges  int   // parallel bridge edges between consecutive beads
	Seed     int64 // randomness for sparse beads and bridge endpoints
}

// CliqueBeads generates the beaded-path family described by spec.
func CliqueBeads(spec CliqueBeadsSpec) *Graph {
	if spec.Beads <= 0 || spec.Size <= 0 {
		panic(fmt.Sprintf("graph: invalid CliqueBeadsSpec %+v", spec))
	}
	if spec.Bridges <= 0 {
		spec.Bridges = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := spec.Beads * spec.Size
	g := New(n)
	base := func(b int) int { return b * spec.Size }
	for b := 0; b < spec.Beads; b++ {
		o := base(b)
		if spec.IntraDeg >= spec.Size-1 {
			for i := 0; i < spec.Size; i++ {
				for j := i + 1; j < spec.Size; j++ {
					g.AddEdge(o+i, o+j)
				}
			}
		} else {
			// Ring for connectivity plus random chords up to IntraDeg.
			for i := 0; i < spec.Size; i++ {
				g.AddEdge(o+i, o+(i+1)%spec.Size)
			}
			extra := spec.Size * (spec.IntraDeg - 2) / 2
			for e := 0; e < extra; e++ {
				g.AddEdge(o+rng.Intn(spec.Size), o+rng.Intn(spec.Size))
			}
		}
		if b+1 < spec.Beads {
			for e := 0; e < spec.Bridges; e++ {
				g.AddEdge(o+rng.Intn(spec.Size), base(b+1)+rng.Intn(spec.Size))
			}
		}
	}
	return g
}

// DisjointUnion concatenates graphs into one graph with relabeled
// vertices; components of the inputs stay separate.
func DisjointUnion(gs ...*Graph) *Graph {
	n := 0
	for _, g := range gs {
		n += g.N
	}
	out := New(n)
	off := int32(0)
	for _, g := range gs {
		for i := range g.U {
			out.U = append(out.U, g.U[i]+off)
			out.V = append(out.V, g.V[i]+off)
		}
		off += int32(g.N)
	}
	return out
}

// WithIsolated returns g extended with extra isolated vertices.
func WithIsolated(g *Graph, extra int) *Graph {
	out := g.Clone()
	out.N += extra
	return out
}

// Permuted returns an isomorphic copy of g with vertex ids permuted by
// a pseudorandom permutation. Useful to defeat accidental id-order
// structure in generators (the algorithms use vertex ids as
// tie-breakers in places).
func Permuted(g *Graph, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(g.N)
	out := New(g.N)
	out.U = make([]int32, len(g.U))
	out.V = make([]int32, len(g.V))
	for i := range g.U {
		out.U[i] = int32(perm[g.U[i]])
		out.V[i] = int32(perm[g.V[i]])
	}
	return out
}
