package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// generatorZoo returns one graph per generator family, the corpus the
// format round-trip tests run over.
func generatorZoo() map[string]*Graph {
	return map[string]*Graph{
		"path":      Path(37),
		"cycle":     Cycle(24),
		"star":      Star(19),
		"grid":      Grid2D(7, 9),
		"torus":     Torus2D(6, 8),
		"tree":      RandomTree(64, 3),
		"gnm":       Gnm(200, 800, 4),
		"circulant": Circulant(30, 3),
		"hypercube": Hypercube(6),
		"rmat":      RMAT(128, 512, 5),
		"chunglu":   ChungLu(150, 450, 2.5, 6),
		"beads":     CliqueBeads(CliqueBeadsSpec{Beads: 6, Size: 8, IntraDeg: 6, Bridges: 2, Seed: 7}),
		"empty":     New(5),
		"loops":     FromEdges(4, [][2]int{{0, 0}, {1, 2}, {2, 2}}),
		"multi":     FromEdges(3, [][2]int{{0, 1}, {0, 1}, {1, 2}}),
	}
}

// sameGraph asserts exact equality: vertex count, arc slices, order.
func sameGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("N = %d, want %d", got.N, want.N)
	}
	if !bytes.Equal(int32Bytes(got.U), int32Bytes(want.U)) || !bytes.Equal(int32Bytes(got.V), int32Bytes(want.V)) {
		t.Fatalf("arc slices differ: got %d arcs, want %d", len(got.U), len(want.U))
	}
}

func int32Bytes(s []int32) []byte {
	out := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

func TestBinaryRoundTripAllGenerators(t *testing.T) {
	for name, g := range generatorZoo() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := g.WriteBinary(&buf); err != nil {
				t.Fatal(err)
			}
			wantSize := binHeaderSize + 8*g.NumEdges()
			if buf.Len() != wantSize {
				t.Fatalf("binary size %d, want %d", buf.Len(), wantSize)
			}
			g2, err := ReadBinary(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if err := g2.Validate(); err != nil {
				t.Fatal(err)
			}
			sameGraph(t, g, g2)
		})
	}
}

func TestReadAutoDetectsBothFormats(t *testing.T) {
	g := Gnm(100, 400, 9)
	var txt, bin bytes.Buffer
	if err := g.WriteEdgeList(&txt); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	fromTxt, err := ReadAuto(&txt)
	if err != nil {
		t.Fatalf("text via ReadAuto: %v", err)
	}
	fromBin, err := ReadAuto(&bin)
	if err != nil {
		t.Fatalf("binary via ReadAuto: %v", err)
	}
	sameGraph(t, g, fromTxt)
	sameGraph(t, g, fromBin)
}

func TestReadAutoErrors(t *testing.T) {
	if _, err := ReadAuto(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadAuto(strings.NewReader("PC")); err == nil {
		t.Error("short non-graph input accepted")
	}
}

// binBytes serializes g and returns the raw bytes for corruption tests.
func binBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadBinaryCorruptInputs(t *testing.T) {
	good := binBytes(t, Gnm(50, 200, 1))
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:10],
		"bad magic":        mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version":      mutate(func(b []byte) []byte { b[4] = 99; return b }),
		"truncated edges":  good[:len(good)-5],
		"trailing garbage": append(append([]byte(nil), good...), 0xEE),
		"edge out of range": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[binHeaderSize:], 1<<30)
			return b
		}),
		"n over int32": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 1<<40)
			return b
		}),
		"m over int32": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:24], 1<<40)
			return b
		}),
		// m claims more edges than the file holds: must fail on
		// truncation, not allocate 2^31 records.
		"huge m truncated": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:24], 1<<31-1)
			return b
		}),
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
		// ReadAuto must reject them identically (anything with the
		// magic goes down the binary path).
		if _, err := ReadAuto(bytes.NewReader(data)); err == nil {
			t.Errorf("%s via ReadAuto: accepted", name)
		}
	}
}

func TestReadBinaryEmptyGraph(t *testing.T) {
	g2, err := ReadBinary(bytes.NewReader(binBytes(t, New(0))))
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != 0 || g2.NumEdges() != 0 {
		t.Fatalf("n=%d m=%d, want empty", g2.N, g2.NumEdges())
	}
}
