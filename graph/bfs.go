package graph

// BFS runs a breadth-first search from src and returns the distance to
// every vertex (-1 for unreachable) together with the eccentricity of
// src within its component.
func (g *Graph) BFS(src int) (dist []int32, ecc int) {
	dist = make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, 64)
	dist[src] = 0
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		if int(dv) > ecc {
			ecc = int(dv)
		}
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] < 0 {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return dist, ecc
}

// ComponentsBFS labels each vertex with the smallest vertex id of its
// component, using sequential BFS. This is one of the two ground-truth
// oracles (the other is union-find in internal/baseline).
func (g *Graph) ComponentsBFS() []int32 {
	label := make([]int32, g.N)
	for i := range label {
		label[i] = -1
	}
	queue := make([]int32, 0, 64)
	for s := 0; s < g.N; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = int32(s)
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(int(v)) {
				if label[w] < 0 {
					label[w] = int32(s)
					queue = append(queue, w)
				}
			}
		}
	}
	return label
}

// NumComponents returns the number of connected components.
func (g *Graph) NumComponents() int {
	label := g.ComponentsBFS()
	n := 0
	for i, l := range label {
		if int(l) == i {
			n++
		}
	}
	return n
}

// Diameter returns the exact maximum component diameter by running a
// BFS from every vertex. O(n·m) — intended for tests and small graphs.
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.N; v++ {
		if _, ecc := g.BFS(v); ecc > d {
			d = ecc
		}
	}
	return d
}

// DiameterEstimate returns a lower bound on the maximum component
// diameter using the double-sweep heuristic from each component's
// representative (exact on trees, and tight on the generator families
// used in the experiments).
func (g *Graph) DiameterEstimate() int {
	label := g.ComponentsBFS()
	best := 0
	for s := 0; s < g.N; s++ {
		if int(label[s]) != s {
			continue
		}
		dist, _ := g.BFS(s)
		far := s
		for v, dv := range dist {
			if dv > dist[far] {
				far = v
			}
		}
		_, ecc := g.BFS(far)
		if ecc > best {
			best = ecc
		}
	}
	return best
}
