package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList: the parser must never panic and must only accept
// inputs that round-trip consistently.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("3 2\n0 1\n1 2\n"))
	f.Add([]byte("1 0\n"))
	f.Add([]byte("# comment\n2 1\n0 1\n"))
	f.Add([]byte("4 1\n3 3\n"))
	f.Add([]byte(""))
	f.Add([]byte("x y\n"))
	f.Add([]byte("2 1\n0 99\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N != g.N || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed size: (%d,%d) vs (%d,%d)",
				g.N, g.NumEdges(), g2.N, g2.NumEdges())
		}
	})
}

// FuzzBFSInvariants: distances satisfy the triangle property along
// edges on arbitrary small graphs.
func FuzzBFSInvariants(f *testing.F) {
	f.Add(uint16(10), uint16(20), int64(1))
	f.Add(uint16(2), uint16(0), int64(2))
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, seed int64) {
		n := int(nRaw%200) + 1
		m := int(mRaw % 500)
		g := Gnm(n, m, seed)
		dist, ecc := g.BFS(0)
		if dist[0] != 0 {
			t.Fatal("dist to source must be 0")
		}
		maxSeen := 0
		for i := 0; i < len(g.U); i++ {
			du, dv := dist[g.U[i]], dist[g.V[i]]
			if (du < 0) != (dv < 0) {
				t.Fatal("edge between reachable and unreachable vertex")
			}
			if du >= 0 && dv >= 0 && du > dv+1 {
				t.Fatalf("triangle violation: %d > %d+1", du, dv)
			}
		}
		for _, d := range dist {
			if int(d) > maxSeen {
				maxSeen = int(d)
			}
		}
		if maxSeen != ecc {
			t.Fatalf("ecc %d != max dist %d", ecc, maxSeen)
		}
	})
}
