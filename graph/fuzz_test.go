package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList: the parser must never panic and must only accept
// inputs that round-trip consistently.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("3 2\n0 1\n1 2\n"))
	f.Add([]byte("1 0\n"))
	f.Add([]byte("# comment\n2 1\n0 1\n"))
	f.Add([]byte("4 1\n3 3\n"))
	f.Add([]byte(""))
	f.Add([]byte("x y\n"))
	f.Add([]byte("2 1\n0 99\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N != g.N || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed size: (%d,%d) vs (%d,%d)",
				g.N, g.NumEdges(), g2.N, g2.NumEdges())
		}
	})
}

// FuzzParallelLoaderEquivalence: the parallel loader accepts exactly
// the inputs the sequential loader accepts (and produces the identical
// graph), so ReadAuto's fast path can never change what a file means.
// Inputs ≥ 1 MiB are skipped: the sequential scanner has a 1 MiB line
// limit the parallel loader intentionally drops.
func FuzzParallelLoaderEquivalence(f *testing.F) {
	f.Add([]byte("3 2\n0 1\n1 2\n"), uint8(2))
	f.Add([]byte("# c\n2 1\n\n0 1"), uint8(5))
	f.Add([]byte("-5 3\n"), uint8(1))
	f.Add([]byte("2 1\n0\t1\r\n"), uint8(3))
	f.Add([]byte("1 0"), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, workers uint8) {
		if len(data) >= 1<<20 {
			t.Skip("line-limit divergence territory")
		}
		seq, seqErr := ReadEdgeList(bytes.NewReader(data))
		par, parErr := ParseEdgeList(data, int(workers%8))
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("acceptance disagrees: sequential err=%v, parallel err=%v", seqErr, parErr)
		}
		if seqErr != nil {
			return
		}
		if par.N != seq.N || len(par.U) != len(seq.U) {
			t.Fatalf("graphs differ: (%d,%d arcs) vs (%d,%d arcs)", seq.N, len(seq.U), par.N, len(par.U))
		}
		for i := range seq.U {
			if par.U[i] != seq.U[i] || par.V[i] != seq.V[i] {
				t.Fatalf("arc %d differs: (%d,%d) vs (%d,%d)", i, seq.U[i], seq.V[i], par.U[i], par.V[i])
			}
		}
	})
}

// FuzzReadBinary: the binary parser must never panic, must only accept
// graphs that validate, and accepted inputs must round-trip exactly.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	Gnm(20, 60, 1).WriteBinary(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte("PCCG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("accepted input is not canonical: %d bytes in, %d bytes out", len(data), buf.Len())
		}
	})
}

// FuzzBFSInvariants: distances satisfy the triangle property along
// edges on arbitrary small graphs.
func FuzzBFSInvariants(f *testing.F) {
	f.Add(uint16(10), uint16(20), int64(1))
	f.Add(uint16(2), uint16(0), int64(2))
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, seed int64) {
		n := int(nRaw%200) + 1
		m := int(mRaw % 500)
		g := Gnm(n, m, seed)
		dist, ecc := g.BFS(0)
		if dist[0] != 0 {
			t.Fatal("dist to source must be 0")
		}
		maxSeen := 0
		for i := 0; i < len(g.U); i++ {
			du, dv := dist[g.U[i]], dist[g.V[i]]
			if (du < 0) != (dv < 0) {
				t.Fatal("edge between reachable and unreachable vertex")
			}
			if du >= 0 && dv >= 0 && du > dv+1 {
				t.Fatalf("triangle violation: %d > %d+1", du, dv)
			}
		}
		for _, d := range dist {
			if int(d) > maxSeen {
				maxSeen = int(d)
			}
		}
		if maxSeen != ecc {
			t.Fatalf("ecc %d != max dist %d", ecc, maxSeen)
		}
	})
}
