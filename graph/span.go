package graph

import "fmt"

// EdgeSpan is a zero-copy columnar (structure-of-arrays) view over a
// contiguous range of arc pairs: U and V are parallel int32 columns in
// the Graph arc convention — arc 2k is (u,v), arc 2k+1 its mirror
// (v,u) — so undirected edge i of the span is (U[2i], V[2i]). A span
// taken from a Graph (Span, SpanBatches) or a loader (ReadBinarySpan,
// ParseEdgeListSpan) aliases the graph's own arc columns: no edge is
// copied, boxed into [2]int, or widened to int, which is what lets the
// streaming replay path (Service.IngestSpan, Incremental.AddSpan,
// ccfind -batches) move batches between layers at 8 bytes per edge
// with zero per-batch materialization.
//
// The zero EdgeSpan is an empty span. Sub-slicing (Slice) is cheap and
// shares the backing columns; Pairs and FromPairs convert to and from
// the legacy [][2]int representation at its usual materialization
// cost. Spans are views: mutating the underlying graph invalidates
// them the same way mutating a slice's backing array invalidates
// aliases.
type EdgeSpan struct {
	// U and V are the arc columns: arc j is (U[j], V[j]), and arcs
	// come in mirror pairs as in Graph. len(U) == len(V) == 2·Len().
	U, V []int32
}

// Span returns the zero-copy span of every edge of g, aliasing the
// graph's arc columns. The span is invalidated by AddEdge.
//
//pramcc:zeroalloc
func (g *Graph) Span() EdgeSpan {
	return EdgeSpan{U: g.U, V: g.V}
}

// Len returns the number of undirected edges (arc pairs) in the span.
//
//pramcc:zeroalloc
func (s EdgeSpan) Len() int { return len(s.U) / 2 }

// Edge returns the endpoints of undirected edge i.
func (s EdgeSpan) Edge(i int) (u, v int32) { return s.U[2*i], s.V[2*i] }

// Slice returns the sub-span of edges [lo, hi), sharing the backing
// columns. It panics on out-of-range bounds, like slicing.
func (s EdgeSpan) Slice(lo, hi int) EdgeSpan {
	return EdgeSpan{U: s.U[2*lo : 2*hi : 2*hi], V: s.V[2*lo : 2*hi : 2*hi]}
}

// Pairs materializes the span as the legacy [][2]int edge list — the
// adapter for callers still on the boxed representation. It allocates
// 2× the span's own footprint; hot paths should stay columnar.
func (s EdgeSpan) Pairs() [][2]int {
	out := make([][2]int, s.Len())
	for i := range out {
		out[i] = [2]int{int(s.U[2*i]), int(s.V[2*i])}
	}
	return out
}

// FromPairs builds a columnar span (with mirror arcs, like every
// span) from a [][2]int edge list — the adapter behind the kept
// [][2]int public methods. FromPairs narrows like any int→int32
// conversion, and a truncated endpoint can land back in valid range
// where no later check can tell it from a real vertex — so callers
// feeding untrusted pairs must range-check the ints BEFORE calling
// (as the pramcc ingest adapters do); Validate on the result can
// only vouch for the already-narrowed columns.
func FromPairs(edges [][2]int) EdgeSpan {
	u := make([]int32, 2*len(edges))
	v := make([]int32, 2*len(edges))
	for i, e := range edges {
		a, b := int32(e[0]), int32(e[1])
		u[2*i], u[2*i+1] = a, b
		v[2*i], v[2*i+1] = b, a
	}
	return EdgeSpan{U: u, V: v}
}

// Validate checks the span's structural invariants against a vertex
// count: equal-length even columns, every endpoint in [0, n), and
// arcs forming mirror pairs — the same contract Graph.Validate
// enforces on a graph's own columns.
func (s EdgeSpan) Validate(n int) error {
	if len(s.U) != len(s.V) {
		return fmt.Errorf("graph: span columns have different lengths %d, %d", len(s.U), len(s.V))
	}
	if len(s.U)%2 != 0 {
		return fmt.Errorf("graph: span has odd arc count %d, arcs must come in mirror pairs", len(s.U))
	}
	for i := 0; i < len(s.U); i += 2 {
		u, v := s.U[i], s.V[i]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return fmt.Errorf("graph: span edge %d = {%d,%d} out of range [0,%d)", i/2, u, v, n)
		}
		if s.U[i+1] != v || s.V[i+1] != u {
			return fmt.Errorf("graph: span arcs %d,%d = (%d,%d),(%d,%d) are not mirrors",
				i, i+1, u, v, s.U[i+1], s.V[i+1])
		}
	}
	return nil
}

// batchCuts splits m items into k near-equal contiguous batches
// (sizes differ by at most one, earlier batches get the extra items)
// and returns the k+1 cut points. k < 1 is treated as 1; k is capped
// at m so no batch is empty (zero batches for an empty range). This
// is the single splitting rule behind SpanBatches and EdgeBatches, so
// the two replay paths see identical batch boundaries.
func batchCuts(m, k int) []int {
	if k < 1 {
		k = 1
	}
	if k > m {
		k = m
	}
	cuts := make([]int, k+1)
	for i, start := 0, 0; i < k; i++ {
		size := m / k
		if i < m%k {
			size++
		}
		start += size
		cuts[i+1] = start
	}
	return cuts
}

// SpanBatches splits the graph's edges into k contiguous spans of
// near-equal size (same splitting rule as EdgeBatches), preserving
// insertion order. The spans alias the graph's arc columns directly —
// no edge is copied — so replaying a graph through the streaming
// backend in batches costs nothing beyond the slice headers. k < 1 is
// treated as 1; a graph with fewer than k edges yields fewer
// (possibly zero) batches, none of them empty.
func (g *Graph) SpanBatches(k int) []EdgeSpan {
	s := g.Span()
	cuts := batchCuts(s.Len(), k)
	out := make([]EdgeSpan, len(cuts)-1)
	for i := range out {
		out[i] = s.Slice(cuts[i], cuts[i+1])
	}
	return out
}
