package graph

import (
	"bytes"
	"sync"
	"testing"
)

// The loader benchmarks share one serialized ~1M-edge workload; they
// are part of the benchstat baseline (scripts/bench_baseline.sh) so
// ingestion-throughput regressions show up the same way engine
// regressions do.
var loadBenchOnce struct {
	once sync.Once
	txt  []byte
	bin  []byte
}

func loadBenchData() ([]byte, []byte) {
	loadBenchOnce.once.Do(func() {
		g := Gnm(1<<17, 1<<20, 1)
		var txt, bin bytes.Buffer
		if err := g.WriteEdgeList(&txt); err != nil {
			panic(err)
		}
		if err := g.WriteBinary(&bin); err != nil {
			panic(err)
		}
		loadBenchOnce.txt = txt.Bytes()
		loadBenchOnce.bin = bin.Bytes()
	})
	return loadBenchOnce.txt, loadBenchOnce.bin
}

func BenchmarkLoadTextSequential(b *testing.B) {
	txt, _ := loadBenchData()
	b.SetBytes(int64(len(txt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadEdgeList(bytes.NewReader(txt)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadTextParallel(b *testing.B) {
	txt, _ := loadBenchData()
	b.SetBytes(int64(len(txt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseEdgeList(txt, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadBinary(b *testing.B) {
	_, bin := loadBenchData()
	b.SetBytes(int64(len(bin)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(bin)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	g := Gnm(1<<15, 1<<18, 1)
	var buf bytes.Buffer
	g.WriteBinary(&buf)
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := g.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
