package graph

import "math/rand"

// Additional generator families used by the wider test and ablation
// suites. Like gen.go, every generator documents its (n, m, d) shape.

// Hypercube returns the dim-dimensional hypercube: n = 2^dim,
// m = dim·2^{dim-1}, d = dim. A classic low-diameter regular graph.
func Hypercube(dim int) *Graph {
	n := 1 << uint(dim)
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << uint(b))
			if v < w {
				g.AddEdge(v, w)
			}
		}
	}
	return g
}

// Barbell returns two k-cliques joined by a path of bridge vertices:
// d = bridge + 3, dense ends with a sparse middle — a stress case for
// budget-matched hashing (the clique roots and path roots live at very
// different budgets).
func Barbell(k, bridge int) *Graph {
	n := 2*k + bridge
	g := New(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j)
			g.AddEdge(k+bridge+i, k+bridge+j)
		}
	}
	prev := 0
	for b := 0; b < bridge; b++ {
		g.AddEdge(prev, k+b)
		prev = k + b
	}
	g.AddEdge(prev, k+bridge)
	return g
}

// RMAT returns a scale-free-ish multigraph via the recursive matrix
// model with the standard (0.57, 0.19, 0.19, 0.05) partition. n is
// rounded up to a power of two. Heavy-tailed degrees exercise the
// collision→dormant path (hubs always collide).
func RMAT(n, m int, seed int64) *Graph {
	dim := 0
	for 1<<uint(dim) < n {
		dim++
	}
	n = 1 << uint(dim)
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for b := 0; b < dim; b++ {
			r := rng.Float64()
			switch {
			case r < 0.57: // a: (0,0)
			case r < 0.76: // b: (0,1)
				v |= 1 << uint(b)
			case r < 0.95: // c: (1,0)
				u |= 1 << uint(b)
			default: // d: (1,1)
				u |= 1 << uint(b)
				v |= 1 << uint(b)
			}
		}
		g.AddEdge(u, v)
	}
	return g
}

// ChungLu returns a power-law multigraph: vertex weights w_i ∝
// (i+1)^{-1/(beta-1)}, edges sampled proportional to weight products.
// beta ≈ 2.5 gives internet-like degree tails.
func ChungLu(n, m int, beta float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, n)
	total := 0.0
	exp := -1.0 / (beta - 1.0)
	for i := range weights {
		weights[i] = powf(float64(i+1), exp)
		total += weights[i]
	}
	// Cumulative distribution for inverse sampling.
	cum := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	sample := func() int {
		r := rng.Float64()
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	g := New(n)
	for e := 0; e < m; e++ {
		g.AddEdge(sample(), sample())
	}
	return g
}

func powf(b, e float64) float64 {
	// Local pow to keep math out of the package surface: exp(e·ln b).
	if b <= 0 {
		return 0
	}
	// Newton-free: use the standard library through a tiny shim would
	// be cleaner, but this file intentionally sticks to rand only.
	return mathPow(b, e)
}

// Torus2D returns the rows×cols torus (grid with wraparound):
// d = (rows+cols)/2, 4-regular.
func Torus2D(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, (c+1)%cols))
			g.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}

// LollipopPath returns a k-clique with a pendant path of length tail —
// the classic worst case for random-walk-based methods, here a
// single-component shape with one dense cluster and diameter tail+1.
func LollipopPath(k, tail int) *Graph {
	g := New(k + tail)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j)
		}
	}
	prev := 0
	for t := 0; t < tail; t++ {
		g.AddEdge(prev, k+t)
		prev = k + t
	}
	return g
}
