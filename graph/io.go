package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in the plain-text edge-list format
// consumed by cmd/ccfind: a header line "n m" followed by one "u v"
// line per undirected edge.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N, g.NumEdges()); err != nil {
		return err
	}
	for i := 0; i < len(g.U); i += 2 {
		if _, err := fmt.Fprintf(bw, "%d %d\n", g.U[i], g.V[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// validateHeader rejects "n m" headers no graph can satisfy: negative
// counts (graph.New would panic on a negative n — a malformed file
// must be an error, not a panic) and counts beyond int32 (vertex ids
// are stored as int32; a larger n would let endpoints wrap silently).
func validateHeader(n, m int) error {
	if n < 0 {
		return fmt.Errorf("negative vertex count %d in header", n)
	}
	if m < 0 {
		return fmt.Errorf("negative edge count %d in header", m)
	}
	if n > math.MaxInt32 {
		return fmt.Errorf("vertex count %d exceeds int32 range", n)
	}
	if m > math.MaxInt32 {
		return fmt.Errorf("edge count %d exceeds int32 range", m)
	}
	return nil
}

// ReadEdgeList parses the format written by WriteEdgeList. Blank lines
// and lines starting with '#' are ignored. This is the streaming
// reference loader: one line at a time, bounded memory. For bulk loads
// prefer ReadEdgeListParallel (same semantics, much faster) or the
// binary format (ReadBinary); ReadAuto picks the right one.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var g *Graph
	want := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected two fields, got %q", line, text)
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if g == nil {
			if err := validateHeader(a, b); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			g = New(a)
			want = b
			continue
		}
		if a < 0 || a >= g.N || b < 0 || b >= g.N {
			return nil, fmt.Errorf("graph: line %d: edge {%d,%d} out of range [0,%d)", line, a, b, g.N)
		}
		g.AddEdge(a, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	if want >= 0 && g.NumEdges() != want {
		return nil, fmt.Errorf("graph: header declared %d edges, read %d", want, g.NumEdges())
	}
	return g, nil
}
