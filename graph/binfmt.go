package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary graph format, version 1. All integers are little-endian:
//
//	offset  size  field
//	0       4     magic "PCCG"
//	4       4     format version (currently 1)
//	8       8     n — vertex count (uint64, must fit int32)
//	16      8     m — undirected edge count (uint64)
//	24      8·m   edge records: u uint32, v uint32, in insertion order
//
// The format stores one record per undirected edge (the mirror arc is
// implicit, as in WriteEdgeList) and preserves edge order, so a
// text→binary→text round trip is byte-identical. Fixed-width records
// keep the loader a straight memory scan: at 8 bytes per edge the file
// is smaller than the equivalent text for vertex ids above ~3 digits,
// and decoding is one bounds check and two loads per edge instead of a
// line split and two integer parses.
const (
	binMagic      = "PCCG"
	binVersion    = 1
	binHeaderSize = 24
	// binChunkEdges is the writer's encode-buffer granularity.
	binChunkEdges = 1 << 16
)

// WriteBinary writes the graph in the binary format above. It is the
// fast-path counterpart of WriteEdgeList; ReadBinary and ReadAuto
// consume it.
func (g *Graph) WriteBinary(w io.Writer) error {
	var hdr [binHeaderSize]byte
	copy(hdr[0:4], binMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], binVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.N))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.NumEdges()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, binChunkEdges*8)
	for i := 0; i < len(g.U); i += 2 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g.U[i]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g.V[i]))
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary parses the format written by WriteBinary. It validates
// the magic, version, and every edge endpoint, and rejects truncated
// files and trailing garbage with descriptive errors. It is a thin
// wrapper over ReadBinarySpan, which decodes straight into the
// columnar arc representation the Graph adopts without a copy.
func ReadBinary(r io.Reader) (*Graph, error) {
	n, span, err := ReadBinarySpan(r)
	if err != nil {
		return nil, err
	}
	g := New(n)
	g.U, g.V = span.U, span.V
	return g, nil
}

// ReadBinarySpan decodes the binary format directly into an arc-pair
// span and the vertex count it was validated against — the columnar
// loader hook: the decoded columns are exactly the arc layout Graph
// stores (ReadBinary adopts them without a copy), and streaming
// consumers can slice the span into ingest batches without ever
// materializing a [][2]int edge list.
func ReadBinarySpan(r io.Reader) (int, EdgeSpan, error) {
	var hdr [binHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, EdgeSpan{}, fmt.Errorf("graph: binary header: %w", err)
	}
	if string(hdr[0:4]) != binMagic {
		return 0, EdgeSpan{}, fmt.Errorf("graph: bad binary magic %q (want %q)", hdr[0:4], binMagic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != binVersion {
		return 0, EdgeSpan{}, fmt.Errorf("graph: unsupported binary format version %d (want %d)", v, binVersion)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	m := binary.LittleEndian.Uint64(hdr[16:24])
	if n > math.MaxInt32 {
		return 0, EdgeSpan{}, fmt.Errorf("graph: vertex count %d exceeds int32 range", n)
	}
	if m > math.MaxInt32 {
		return 0, EdgeSpan{}, fmt.Errorf("graph: edge count %d exceeds int32 range", m)
	}
	// Read the edge array whole before allocating the arc columns: the
	// edge count is sized by the data that actually arrived, so a
	// corrupt header declaring a huge m cannot force a huge allocation,
	// and the columns are allocated exactly once (incremental append
	// growth cost ~5× the final size in realloc copies at the
	// 10M-edge scale).
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, EdgeSpan{}, fmt.Errorf("graph: binary edge array: %w", err)
	}
	if uint64(len(data)) < 8*m {
		return 0, EdgeSpan{}, fmt.Errorf("graph: binary edge array truncated after %d of %d edges", uint64(len(data))/8, m)
	}
	if uint64(len(data)) > 8*m {
		return 0, EdgeSpan{}, fmt.Errorf("graph: trailing data after %d binary edges", m)
	}
	span := EdgeSpan{U: make([]int32, 2*m), V: make([]int32, 2*m)}
	for i := uint64(0); i < m; i++ {
		u := binary.LittleEndian.Uint32(data[8*i:])
		v := binary.LittleEndian.Uint32(data[8*i+4:])
		if uint64(u) >= n || uint64(v) >= n {
			return 0, EdgeSpan{}, fmt.Errorf("graph: edge %d = {%d,%d} out of range [0,%d)", i, u, v, n)
		}
		span.U[2*i], span.U[2*i+1] = int32(u), int32(v)
		span.V[2*i], span.V[2*i+1] = int32(v), int32(u)
	}
	return int(n), span, nil
}

// ReadAuto reads a graph in either supported format, sniffing the
// binary magic: files starting with it go to ReadBinary, everything
// else to the parallel text loader (ReadEdgeListParallel with default
// workers). This is what cmd/ccfind and cmd/ccbench use, so both
// commands accept both formats transparently.
func ReadAuto(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(binMagic))
	if err == nil && string(head) == binMagic {
		return ReadBinary(br)
	}
	if err != nil && err != io.EOF {
		return nil, err
	}
	// Shorter-than-magic inputs fall through: the text parser owns the
	// error message for them (e.g. "graph: empty input").
	return ReadEdgeListParallel(br, 0)
}
