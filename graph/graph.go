// Package graph provides the undirected-graph substrate used by the
// pramcc algorithms: a compact arc-pair representation, a CSR adjacency
// view, breadth-first search, diameter estimation, and a collection of
// workload generators that let experiments control the number of
// vertices n, the number of edges m, and the maximum component diameter
// d independently — the three parameters that drive every bound in the
// paper (O(log d + log log_{m/n} n) time, O(m) processors).
//
// It also owns graph I/O: a text edge-list format (WriteEdgeList /
// ReadEdgeList / ReadEdgeListParallel) and a binary format
// (WriteBinary / ReadBinary), with ReadAuto detecting which one a file
// is. ReadEdgeListParallel and ReadBinary are the bulk-ingestion path
// (experiment E13); ReadEdgeList is the streaming reference parser
// the parallel loader is fuzz-checked against.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected multigraph on vertices 0..N-1. Each undirected
// edge {v,w} is stored as a pair of oppositely directed arcs (v,w) and
// (w,v), mirroring the paper's convention (§2.2). Self-loops are allowed
// and stored as a single arc pair as well.
type Graph struct {
	N int // number of vertices

	// U and V are parallel slices: arc i is (U[i], V[i]).
	// Arcs come in mirror pairs: arc 2k is (u,v), arc 2k+1 is (v,u).
	U, V []int32

	csrOffsets []int32 // lazily built CSR index into csrTargets
	csrTargets []int32
}

// NumEdges returns the number of undirected edges (arc pairs).
//
//pramcc:zeroalloc
func (g *Graph) NumEdges() int { return len(g.U) / 2 }

// NumArcs returns the number of directed arcs (2 per undirected edge).
func (g *Graph) NumArcs() int { return len(g.U) }

// AddEdge appends the undirected edge {v,w} as a mirror pair of arcs.
// It panics if either endpoint is out of range, since a malformed
// workload is a programming error rather than a runtime condition.
func (g *Graph) AddEdge(v, w int) {
	if v < 0 || v >= g.N || w < 0 || w >= g.N {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", v, w, g.N))
	}
	g.U = append(g.U, int32(v), int32(w))
	g.V = append(g.V, int32(w), int32(v))
	g.csrOffsets = nil
	g.csrTargets = nil
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{N: n}
}

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	g := New(n)
	g.U = make([]int32, 0, 2*len(edges))
	g.V = make([]int32, 0, 2*len(edges))
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// Clone returns a deep copy of the graph's arc lists. The CSR cache is
// not copied; it is rebuilt on demand.
func (g *Graph) Clone() *Graph {
	c := &Graph{N: g.N, U: make([]int32, len(g.U)), V: make([]int32, len(g.V))}
	copy(c.U, g.U)
	copy(c.V, g.V)
	return c
}

// buildCSR constructs the adjacency index. Arcs already encode both
// directions, so a single counting pass suffices.
func (g *Graph) buildCSR() {
	offsets := make([]int32, g.N+1)
	for _, u := range g.U {
		offsets[u+1]++
	}
	for i := 0; i < g.N; i++ {
		offsets[i+1] += offsets[i]
	}
	targets := make([]int32, len(g.U))
	cursor := make([]int32, g.N)
	copy(cursor, offsets[:g.N])
	for i, u := range g.U {
		targets[cursor[u]] = g.V[i]
		cursor[u]++
	}
	g.csrOffsets = offsets
	g.csrTargets = targets
}

// Neighbors returns the adjacency list of v (shared backing array; do
// not modify). Duplicates appear as many times as parallel edges exist.
func (g *Graph) Neighbors(v int) []int32 {
	if g.csrOffsets == nil {
		g.buildCSR()
	}
	return g.csrTargets[g.csrOffsets[v]:g.csrOffsets[v+1]]
}

// Degree returns the number of arcs leaving v.
func (g *Graph) Degree(v int) int {
	if g.csrOffsets == nil {
		g.buildCSR()
	}
	return int(g.csrOffsets[v+1] - g.csrOffsets[v])
}

// Validate checks structural invariants: every arc in range, and arcs
// forming mirror pairs. It returns a descriptive error on violation.
func (g *Graph) Validate() error {
	if len(g.U) != len(g.V) {
		return fmt.Errorf("graph: arc slices have different lengths %d, %d", len(g.U), len(g.V))
	}
	if len(g.U)%2 != 0 {
		return fmt.Errorf("graph: odd arc count %d, arcs must come in mirror pairs", len(g.U))
	}
	for i := 0; i < len(g.U); i++ {
		if g.U[i] < 0 || int(g.U[i]) >= g.N || g.V[i] < 0 || int(g.V[i]) >= g.N {
			return fmt.Errorf("graph: arc %d = (%d,%d) out of range [0,%d)", i, g.U[i], g.V[i], g.N)
		}
	}
	for i := 0; i < len(g.U); i += 2 {
		if g.U[i] != g.V[i+1] || g.V[i] != g.U[i+1] {
			return fmt.Errorf("graph: arcs %d,%d = (%d,%d),(%d,%d) are not mirrors",
				i, i+1, g.U[i], g.V[i], g.U[i+1], g.V[i+1])
		}
	}
	return nil
}

// Edges returns the undirected edge list (one entry per arc pair),
// materialized as [][2]int.
//
// Deprecated: Edges copies and boxes every edge at 4× the graph's own
// columnar footprint. Use Span for a zero-copy columnar view; Edges
// remains as the adapter for callers still on the boxed
// representation (it is exactly Span().Pairs()).
func (g *Graph) Edges() [][2]int {
	return g.Span().Pairs()
}

// EdgeBatches splits the edge list into k contiguous batches of
// near-equal size (sizes differ by at most one, earlier batches get
// the extra edges), preserving insertion order. The batch boundaries
// are identical to SpanBatches' (both use the same splitting rule).
// k < 1 is treated as 1; if the graph has fewer than k edges, fewer
// (possibly zero) batches are returned, none of them empty.
//
// Deprecated: EdgeBatches materializes the whole edge list as
// [][2]int before slicing it. Use SpanBatches, whose batches alias
// the graph's arc columns with no copy at all; EdgeBatches remains as
// the adapter for callers replaying through the [][2]int ingest
// methods.
func (g *Graph) EdgeBatches(k int) [][][2]int {
	edges := g.Edges()
	cuts := batchCuts(len(edges), k)
	out := make([][][2]int, len(cuts)-1)
	for i := range out {
		out[i] = edges[cuts[i]:cuts[i+1]:cuts[i+1]]
	}
	return out
}

// SortedDedupEdges returns the edge list with endpoints normalized
// (min,max), sorted, and duplicates removed. Useful in tests.
func (g *Graph) SortedDedupEdges() [][2]int {
	es := g.Edges()
	for i := range es {
		if es[i][0] > es[i][1] {
			es[i][0], es[i][1] = es[i][1], es[i][0]
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	out := es[:0]
	for i, e := range es {
		if i == 0 || e != es[i-1] {
			out = append(out, e)
		}
	}
	return out
}
