package graph

import (
	"bytes"
	"reflect"
	"testing"
)

func spanTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := New(6)
	for _, e := range [][2]int{{0, 1}, {2, 3}, {1, 2}, {4, 4}, {5, 0}} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestSpanAliasesGraphColumns(t *testing.T) {
	g := spanTestGraph(t)
	s := g.Span()
	if s.Len() != g.NumEdges() {
		t.Fatalf("Span().Len() = %d, want %d", s.Len(), g.NumEdges())
	}
	if len(s.U) == 0 || &s.U[0] != &g.U[0] || &s.V[0] != &g.V[0] {
		t.Fatal("Span() does not alias the graph's arc columns")
	}
	if err := s.Validate(g.N); err != nil {
		t.Fatalf("graph span failed Validate: %v", err)
	}
	for i := 0; i < s.Len(); i++ {
		u, v := s.Edge(i)
		if u != g.U[2*i] || v != g.V[2*i] {
			t.Fatalf("Edge(%d) = (%d,%d), want (%d,%d)", i, u, v, g.U[2*i], g.V[2*i])
		}
	}
}

func TestSpanPairsRoundTrip(t *testing.T) {
	g := spanTestGraph(t)
	pairs := g.Span().Pairs()
	if !reflect.DeepEqual(pairs, g.Edges()) {
		t.Fatalf("Pairs() = %v, want Edges() = %v", pairs, g.Edges())
	}
	back := FromPairs(pairs)
	if !reflect.DeepEqual(back, g.Span().Slice(0, g.NumEdges())) {
		// Compare columns elementwise: FromPairs must rebuild the
		// exact mirror-arc layout the graph stores.
		t.Fatalf("FromPairs(Pairs()) = %+v, want columns %v / %v", back, g.U, g.V)
	}
	if err := back.Validate(g.N); err != nil {
		t.Fatalf("FromPairs span failed Validate: %v", err)
	}
}

func TestSpanSlice(t *testing.T) {
	g := spanTestGraph(t)
	s := g.Span()
	sub := s.Slice(1, 3)
	if sub.Len() != 2 {
		t.Fatalf("Slice(1,3).Len() = %d, want 2", sub.Len())
	}
	for i := 0; i < sub.Len(); i++ {
		u, v := sub.Edge(i)
		wu, wv := s.Edge(i + 1)
		if u != wu || v != wv {
			t.Fatalf("Slice edge %d = (%d,%d), want (%d,%d)", i, u, v, wu, wv)
		}
	}
	if &sub.U[0] != &s.U[2] {
		t.Fatal("Slice does not share the backing columns")
	}
	if empty := s.Slice(2, 2); empty.Len() != 0 {
		t.Fatalf("empty slice has Len %d", empty.Len())
	}
}

func TestSpanValidateRejects(t *testing.T) {
	cases := map[string]EdgeSpan{
		"length mismatch": {U: []int32{0, 1}, V: []int32{1}},
		"odd arcs":        {U: []int32{0}, V: []int32{1}},
		"out of range":    {U: []int32{0, 9}, V: []int32{9, 0}},
		"negative":        {U: []int32{0, -1}, V: []int32{-1, 0}},
		"not mirrors":     {U: []int32{0, 2}, V: []int32{1, 0}},
	}
	for name, s := range cases {
		if err := s.Validate(3); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
	if err := (EdgeSpan{}).Validate(0); err != nil {
		t.Errorf("zero span rejected: %v", err)
	}
	// Degenerate vertex counts must reject every edge, like
	// Graph.Validate's signed checks would.
	one := EdgeSpan{U: []int32{0, 1}, V: []int32{1, 0}}
	if err := one.Validate(-1); err == nil {
		t.Error("Validate(-1) accepted an edge")
	}
	if err := one.Validate(0); err == nil {
		t.Error("Validate(0) accepted an edge")
	}
}

// TestSpanBatchesMatchEdgeBatches pins the shared splitting rule: the
// two replay representations must cut the edge list at identical
// boundaries for every k, including the degenerate ones.
func TestSpanBatchesMatchEdgeBatches(t *testing.T) {
	g := Gnm(50, 137, 3)
	for _, k := range []int{-1, 0, 1, 2, 3, 7, 136, 137, 138, 1000} {
		spans := g.SpanBatches(k)
		pairs := g.EdgeBatches(k)
		if len(spans) != len(pairs) {
			t.Fatalf("k=%d: %d span batches vs %d pair batches", k, len(spans), len(pairs))
		}
		for i := range spans {
			if spans[i].Len() == 0 {
				t.Fatalf("k=%d: empty span batch %d", k, i)
			}
			if !reflect.DeepEqual(spans[i].Pairs(), pairs[i]) {
				t.Fatalf("k=%d batch %d: span %v vs pairs %v", k, i, spans[i].Pairs(), pairs[i])
			}
		}
	}
	if got := New(5).SpanBatches(3); len(got) != 0 {
		t.Fatalf("edgeless graph produced %d batches", len(got))
	}
}

// TestSpanBatchesZeroCopy: batches must alias the graph's columns,
// and concatenating them must cover every edge exactly once in order.
func TestSpanBatchesZeroCopy(t *testing.T) {
	g := Gnm(40, 97, 5)
	spans := g.SpanBatches(4)
	off := 0
	for _, s := range spans {
		if &s.U[0] != &g.U[2*off] {
			t.Fatalf("batch at edge %d does not alias g.U", off)
		}
		off += s.Len()
	}
	if off != g.NumEdges() {
		t.Fatalf("batches cover %d edges, want %d", off, g.NumEdges())
	}
}

// TestLoaderSpans: the span hooks of both loaders produce exactly the
// graph's own columns.
func TestLoaderSpans(t *testing.T) {
	g := Gnm(200, 600, 11)

	var txt, bin bytes.Buffer
	if err := g.WriteEdgeList(&txt); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}

	n, span, err := ParseEdgeListSpan(txt.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != g.N || !reflect.DeepEqual(span.U, g.U) || !reflect.DeepEqual(span.V, g.V) {
		t.Fatal("ParseEdgeListSpan does not reproduce the graph's columns")
	}

	n, span, err = ReadBinarySpan(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != g.N || !reflect.DeepEqual(span.U, g.U) || !reflect.DeepEqual(span.V, g.V) {
		t.Fatal("ReadBinarySpan does not reproduce the graph's columns")
	}
}
