package graph

import "math"

// mathPow isolates the single math dependency of the generator files.
func mathPow(b, e float64) float64 { return math.Pow(b, e) }
