#!/usr/bin/env bash
# Docs consistency: fail if any *.md file referenced from Go sources or
# from README.md does not exist in the repo. This is the guard against
# the pre-ISSUE-2 state, where six source locations pointed readers at
# an EXPERIMENTS.md that was never written.
#
#   scripts/check_docs.sh
#
# References are bare markdown file names (EXPERIMENTS.md, ROADMAP.md,
# docs/foo.md, ...) resolved relative to the repo root. Placeholder
# names containing shell/template metacharacters ($, <, >, *) are
# ignored.
set -euo pipefail
cd "$(dirname "$0")/.."

refs="$(
    {
        grep -rhoE '[A-Za-z0-9_./-]+\.md' --include='*.go' . 2>/dev/null || true
        grep -hoE '[A-Za-z0-9_./-]+\.md' README.md 2>/dev/null || true
        grep -hoE '[A-Za-z0-9_./-]+\.md' OPERATIONS.md 2>/dev/null || true
    } | sed 's#^\./##' | sort -u
)"

fail=0
for ref in $refs; do
    case "$ref" in
    *'$'* | *'<'* | *'>'* | *'*'*) continue ;;
    esac
    if [ ! -f "$ref" ]; then
        echo "check_docs: missing $ref (referenced from Go sources or README.md)" >&2
        # Show the referencing locations to make the failure actionable.
        grep -rn --include='*.go' -F "$ref" . | head -5 >&2 || true
        grep -n -F "$ref" README.md | head -5 >&2 || true
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_docs: all referenced .md files exist"

# Metrics reference completeness: the metric-name list is generated
# from the live registry (ccserve -list-metrics), never hand-copied,
# so OPERATIONS.md cannot silently drift when a metric is added or
# renamed. Every registered name must appear in OPERATIONS.md.
metrics="$(go run ./cmd/ccserve -list-metrics)"
if [ -z "$metrics" ]; then
    echo "check_docs: ccserve -list-metrics produced no output" >&2
    exit 1
fi
for m in $metrics; do
    if ! grep -q -F "$m" OPERATIONS.md; then
        echo "check_docs: registered metric $m is not documented in OPERATIONS.md" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_docs: all $(echo "$metrics" | wc -l | tr -d ' ') registered metrics documented in OPERATIONS.md"
