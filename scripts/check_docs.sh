#!/usr/bin/env bash
# Docs consistency: fail if any *.md file referenced from Go sources or
# from README.md does not exist in the repo. This is the guard against
# the pre-ISSUE-2 state, where six source locations pointed readers at
# an EXPERIMENTS.md that was never written.
#
#   scripts/check_docs.sh
#
# References are bare markdown file names (EXPERIMENTS.md, ROADMAP.md,
# docs/foo.md, ...) resolved relative to the repo root. Placeholder
# names containing shell/template metacharacters ($, <, >, *) are
# ignored.
set -euo pipefail
cd "$(dirname "$0")/.."

refs="$(
    {
        grep -rhoE '[A-Za-z0-9_./-]+\.md' --include='*.go' . 2>/dev/null || true
        grep -hoE '[A-Za-z0-9_./-]+\.md' README.md 2>/dev/null || true
        grep -hoE '[A-Za-z0-9_./-]+\.md' OPERATIONS.md 2>/dev/null || true
    } | sed 's#^\./##' | sort -u
)"

fail=0
for ref in $refs; do
    case "$ref" in
    *'$'* | *'<'* | *'>'* | *'*'*) continue ;;
    esac
    if [ ! -f "$ref" ]; then
        echo "check_docs: missing $ref (referenced from Go sources or README.md)" >&2
        # Show the referencing locations to make the failure actionable.
        grep -rn --include='*.go' -F "$ref" . | head -5 >&2 || true
        grep -n -F "$ref" README.md | head -5 >&2 || true
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_docs: all referenced .md files exist"

# Metrics reference completeness: delegated to the metricdoc analyzer
# (internal/analysis), which finds every obs registry registration
# statically and checks its name is a pramcc_-prefixed constant
# documented in OPERATIONS.md — same check this script used to do with
# `ccserve -list-metrics` + grep, now with source positions on failure.
go run ./cmd/cclint -run metricdoc ./...
echo "check_docs: all registered metrics documented in OPERATIONS.md (cclint -run metricdoc)"
