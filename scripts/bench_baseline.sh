#!/usr/bin/env bash
# Compare the backend benchmarks against the intentional baseline, or
# refresh it.
#
#   scripts/bench_baseline.sh           # run + compare against baseline
#   scripts/bench_baseline.sh update    # run + overwrite the baseline
#   COUNT=10 scripts/bench_baseline.sh  # more repetitions (benchstat power)
#
# The baseline (internal/bench/testdata/baseline.txt) is updated
# intentionally — never by CI — so benchstat diffs against it show the
# cumulative drift of the backends (BackendSimulated vs BackendNative
# vs BackendIncremental), of the graph loaders (sequential text vs
# parallel text vs binary), and of the streaming replay paths
# (columnar BenchmarkIngestSpan vs boxed BenchmarkIngestPairs, their
# engine-level BenchmarkEngineIngest* twins, and the fully
# instrumented BenchmarkIngestSpanInstrumented — the JSON-event-sink
# worst case, whose delta against BenchmarkIngestSpan is the whole
# cost of observability), and of the durability layer (BenchmarkWALAppend,
# the fsync-dominated per-batch ack; BenchmarkRecover, the warm-start
# scan), and of the sharded multi-tenant router (BenchmarkRouterIngest,
# the eight-tenant hot path; BenchmarkCoalesce, span coalescing off vs
# on under queued load — the E16 claim) since the last deliberate
# refresh. Comparison uses benchstat when installed
# (go install golang.org/x/perf/cmd/benchstat@latest) and falls back to
# printing both result sets side by side when not.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCH="${BENCH:-BenchmarkComponentsBackends|BenchmarkSolverReuse|BenchmarkNative|BenchmarkIncremental|BenchmarkIngest|BenchmarkEngineIngest|BenchmarkLoad|BenchmarkWriteBinary|BenchmarkWALAppend|BenchmarkRecover|BenchmarkRouterIngest|BenchmarkCoalesce}"
BASELINE=internal/bench/testdata/baseline.txt
CURRENT="$(mktemp /tmp/bench_current.XXXXXX.txt)"
trap 'rm -f "$CURRENT"' EXIT

echo ">> go test -run '^$' -bench '$BENCH' -count $COUNT (., ./internal/native, ./internal/incremental, ./internal/durable, ./graph)"
go test -run '^$' -bench "$BENCH" -count "$COUNT" . ./internal/native ./internal/incremental ./internal/durable ./graph | tee "$CURRENT"

if [ "${1:-}" = "update" ]; then
    mkdir -p "$(dirname "$BASELINE")"
    cp "$CURRENT" "$BASELINE"
    echo ">> baseline refreshed: $BASELINE"
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo ">> no baseline at $BASELINE; run 'scripts/bench_baseline.sh update' to create it" >&2
    exit 1
fi

echo
if command -v benchstat >/dev/null 2>&1; then
    echo ">> benchstat baseline vs current"
    benchstat "$BASELINE" "$CURRENT"
else
    echo ">> benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest)"
    echo ">> baseline ($BASELINE):"
    grep '^Benchmark' "$BASELINE" || true
    echo ">> current:"
    grep '^Benchmark' "$CURRENT" || true
fi
