#!/usr/bin/env bash
# Multi-config benchmark gate: run the BenchmarkGate matrix —
# {workers=1, workers=max(NumCPU,2)} × {small, full-scale} on the
# native solver and the incremental span replay (bench_gate_test.go;
# the wmax floor keeps the parallel axis in the matrix even on a
# single-core host) — and compare against the checked-in baseline with
# cmd/benchgate, which applies a Mann–Whitney rank-sum test per
# configuration (benchmark names normalized across GOMAXPROCS) and
# FAILS on any statistically significant median slowdown beyond the
# threshold, or — via -strict — on any matrix configuration missing
# from the baseline.
# This is the CI tooth; scripts/bench_baseline.sh remains the
# informational benchstat-style trend view over the wider suite.
#
#   scripts/bench_gate.sh            # run + gate against the baseline
#   scripts/bench_gate.sh update     # run + overwrite the baseline
#   COUNT=10 scripts/bench_gate.sh   # more samples (min 5: the exact
#                                    # rank-sum test needs the power)
#   BENCHGATE_THRESHOLD=0.25 scripts/bench_gate.sh   # loosen the gate
#
# The baseline (internal/bench/testdata/gate_baseline.txt) is refreshed
# intentionally — never by CI — whenever a deliberate performance
# change lands, so the gate always measures against the last accepted
# state, not a drifting one.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
if [ "$COUNT" -lt 5 ]; then
    echo ">> COUNT=$COUNT is below the minimum of 5 samples the rank-sum test needs" >&2
    exit 2
fi
BASELINE=internal/bench/testdata/gate_baseline.txt
CURRENT="$(mktemp /tmp/bench_gate.XXXXXX.txt)"
trap 'rm -f "$CURRENT"' EXIT

# Small configs: many engine runs per sample for stable medians.
echo ">> small scale: go test -bench 'BenchmarkGate/small' -benchtime 20x -count $COUNT"
go test -run '^$' -bench 'BenchmarkGate/small' -benchtime 20x -count "$COUNT" . | tee "$CURRENT"

# Full scale: one engine run per sample (a solve takes ~hundreds of ms,
# so -benchtime=1x keeps COUNT samples affordable while the rank-sum
# test supplies the statistics).
echo ">> full scale: go test -bench 'BenchmarkGate/full' -benchtime 1x -count $COUNT"
go test -run '^$' -bench 'BenchmarkGate/full' -benchtime 1x -count "$COUNT" -timeout 30m . | tee -a "$CURRENT"

if [ "${1:-}" = "update" ]; then
    mkdir -p "$(dirname "$BASELINE")"
    cp "$CURRENT" "$BASELINE"
    echo ">> gate baseline refreshed: $BASELINE"
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo ">> no baseline at $BASELINE; run 'scripts/bench_gate.sh update' to create it" >&2
    exit 1
fi

echo
echo ">> benchgate baseline vs current (threshold ${BENCHGATE_THRESHOLD:-0.15}, exact rank-sum test, strict coverage)"
go run ./cmd/benchgate -strict "$BASELINE" "$CURRENT"
