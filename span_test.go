package pramcc

import (
	"context"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"repro/graph"
	"repro/internal/check"
)

// FuzzSpanPairEquivalence: for an arbitrary multigraph and an
// arbitrary batch split, the three ways of reaching a labeling — the
// columnar span replay (AddSpan), the boxed pair replay (AddEdges),
// and a one-shot native solve — must agree exactly (all three
// canonicalize to component minima, so equality is elementwise, not
// merely up-to-relabeling).
func FuzzSpanPairEquivalence(f *testing.F) {
	f.Add(uint16(10), uint16(20), int64(1), uint64(1))
	f.Add(uint16(100), uint16(50), int64(2), uint64(7))
	f.Add(uint16(1), uint16(0), int64(3), uint64(9))
	f.Add(uint16(300), uint16(2000), int64(4), uint64(3))
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, gseed int64, splitSeed uint64) {
		n := int(nRaw%400) + 1
		m := int(mRaw % 1500)
		g := graph.Gnm(n, m, gseed)

		nat, err := Components(g, WithBackend(BackendNative))
		if err != nil {
			t.Fatal(err)
		}
		if err := check.Components(g, nat.Labels); err != nil {
			t.Fatal(err)
		}

		// Random contiguous cut points, shared by both replays.
		rng := rand.New(rand.NewSource(int64(splitSeed)))
		var cuts []int
		for lo := 0; lo < m; {
			hi := lo + 1 + rng.Intn(m-lo)
			cuts = append(cuts, hi)
			lo = hi
		}

		spanInc, err := NewIncremental(g.N)
		if err != nil {
			t.Fatal(err)
		}
		defer spanInc.Close()
		pairInc, err := NewIncremental(g.N)
		if err != nil {
			t.Fatal(err)
		}
		defer pairInc.Close()

		span := g.Span()
		edges := g.Edges()
		lo := 0
		for _, hi := range cuts {
			if _, err := spanInc.AddSpan(span.Slice(lo, hi)); err != nil {
				t.Fatal(err)
			}
			if _, err := pairInc.AddEdges(edges[lo:hi]); err != nil {
				t.Fatal(err)
			}
			lo = hi
		}

		spanLabels := spanInc.LabelsInto(nil)
		pairLabels := pairInc.Labels()
		if !slices.Equal(spanLabels, nat.Labels) {
			t.Fatalf("span labels differ from native: %v vs %v", spanLabels, nat.Labels)
		}
		if !slices.Equal(pairLabels, nat.Labels) {
			t.Fatalf("pair labels differ from native: %v vs %v", pairLabels, nat.Labels)
		}
	})
}

// TestIncrementalSpanConcurrentReaders is the -race stress of the
// span pipeline: reader goroutines hammer SameComponent and the
// zero-alloc LabelsInto (each reusing its own buffer) while the
// writer loops span batches. The race detector is the main
// assertion; each observed labeling must also be internally
// consistent (a prefix of the stream, so labels ≤ vertex ids and
// components only merge).
func TestIncrementalSpanConcurrentReaders(t *testing.T) {
	g := graph.Gnm(4000, 20000, 77)
	inc, err := NewIncremental(g.N)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var buf []int32
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				buf = inc.LabelsInto(buf)
				for v, l := range buf {
					if int(l) > v {
						t.Errorf("label[%d] = %d exceeds vertex id", v, l)
						return
					}
				}
				_ = inc.SameComponent((r+i)%g.N, g.N-1-r)
			}
		}(r)
	}
	for _, batch := range g.SpanBatches(50) {
		if _, err := inc.AddSpan(batch); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	nat, err := Components(g, WithBackend(BackendNative))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(inc.Labels(), nat.Labels) {
		t.Fatal("final span-replayed labels differ from native")
	}
}

// TestServiceIngestSpan: the zero-copy service path equals the boxed
// path and the one-shot native solve, and concurrent LabelsInto
// readers stay consistent during the span-ingest loop.
func TestServiceIngestSpan(t *testing.T) {
	g := graph.Gnm(3000, 12000, 13)
	sv, err := NewService(g.N, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf []int32
		for {
			select {
			case <-stop:
				return
			default:
			}
			buf = sv.LabelsInto(buf)
			if len(buf) != g.N {
				t.Errorf("LabelsInto returned %d labels, want %d", len(buf), g.N)
				return
			}
			_ = sv.SameComponent(0, g.N-1)
		}
	}()

	var last *Result
	for _, batch := range g.SpanBatches(20) {
		res, err := sv.IngestSpan(context.Background(), batch)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	close(stop)
	wg.Wait()

	nat, err := Components(g, WithBackend(BackendNative))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(last.Labels, nat.Labels) {
		t.Fatal("IngestSpan labels differ from native")
	}
	if last.NumComponents != nat.NumComponents {
		t.Fatalf("IngestSpan components = %d, native %d", last.NumComponents, nat.NumComponents)
	}
}

// TestServiceIngestSpanErrors: malformed spans are rejected whole
// with the snapshot untouched; non-streaming backends refuse.
func TestServiceIngestSpanErrors(t *testing.T) {
	sv, err := NewService(4, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	before := sv.Snapshot()
	if _, err := sv.IngestSpan(context.Background(), graph.FromPairs([][2]int{{0, 9}})); err == nil {
		t.Fatal("out-of-range span accepted")
	}
	if sv.Snapshot() != before {
		t.Fatal("rejected span advanced the snapshot")
	}

	nat, err := NewService(4, WithBackend(BackendNative))
	if err != nil {
		t.Fatal(err)
	}
	defer nat.Close()
	if _, err := nat.IngestSpan(context.Background(), graph.FromPairs([][2]int{{0, 1}})); err == nil {
		t.Fatal("IngestSpan on a non-streaming backend accepted")
	}
}

// TestServiceIngestRejectsOverflowingEndpoint pins the adapter's
// truncation guard: an endpoint beyond int32 must be rejected as out
// of range, never silently narrowed into an accidentally-valid
// vertex (1<<32 truncates to 0).
func TestServiceIngestRejectsOverflowingEndpoint(t *testing.T) {
	sv, err := NewService(4, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	if _, err := sv.Ingest(context.Background(), [][2]int{{1 << 32, 1}}); err == nil {
		t.Fatal("endpoint 1<<32 accepted (silent int32 truncation)")
	}
	if sv.SameComponent(0, 1) {
		t.Fatal("truncated edge was applied")
	}
}

// TestIncrementalAddSpanStats: BatchStats bookkeeping on the span
// path matches the pair path's, and AddSpan on a closed handle
// errors.
func TestIncrementalAddSpanStats(t *testing.T) {
	g := graph.Gnm(500, 2000, 5)
	inc, err := NewIncremental(g.N)
	if err != nil {
		t.Fatal(err)
	}
	batches := g.SpanBatches(4)
	var total int64
	for i, b := range batches {
		bs, err := inc.AddSpan(b)
		if err != nil {
			t.Fatal(err)
		}
		total += int64(b.Len())
		if bs.Batch != i+1 || bs.Edges != b.Len() || bs.TotalEdges != total {
			t.Fatalf("batch %d stats: %+v", i, bs)
		}
	}
	if inc.EdgeCount() != int64(g.NumEdges()) {
		t.Fatalf("EdgeCount = %d, want %d", inc.EdgeCount(), g.NumEdges())
	}
	inc.Close()
	if _, err := inc.AddSpan(batches[0]); err == nil {
		t.Fatal("AddSpan on closed handle accepted")
	}
}

// TestLabelsInto: buffer reuse semantics on both handles — a big
// enough buffer is reused in place, a short one is replaced, nil
// allocates — and the steady state allocates nothing.
func TestLabelsInto(t *testing.T) {
	g := graph.Gnm(1000, 3000, 9)
	inc, err := NewIncremental(g.N)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	if _, err := inc.AddSpan(g.Span()); err != nil {
		t.Fatal(err)
	}

	want := inc.Labels()
	buf := make([]int32, 0, g.N)
	got := inc.LabelsInto(buf)
	if !slices.Equal(got, want) {
		t.Fatal("LabelsInto differs from Labels")
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("LabelsInto did not reuse a big-enough buffer")
	}
	if short := inc.LabelsInto(make([]int32, 1)); !slices.Equal(short, want) {
		t.Fatal("LabelsInto with a short buffer differs")
	}
	if fromNil := inc.LabelsInto(nil); !slices.Equal(fromNil, want) {
		t.Fatal("LabelsInto(nil) differs")
	}

	if !raceEnabled {
		if avg := testing.AllocsPerRun(10, func() { got = inc.LabelsInto(got) }); avg != 0 {
			t.Fatalf("steady-state LabelsInto allocates %.1f times, want 0", avg)
		}
	}

	sv, err := NewService(g.N, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	if _, err := sv.IngestSpan(context.Background(), g.Span()); err != nil {
		t.Fatal(err)
	}
	svBuf := sv.LabelsInto(nil)
	if !slices.Equal(svBuf, sv.Labels()) {
		t.Fatal("Service.LabelsInto differs from Service.Labels")
	}
	if !raceEnabled {
		if avg := testing.AllocsPerRun(10, func() { svBuf = sv.LabelsInto(svBuf) }); avg != 0 {
			t.Fatalf("steady-state Service.LabelsInto allocates %.1f times, want 0", avg)
		}
	}
}
