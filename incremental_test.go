package pramcc

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/graph"
	"repro/internal/baseline"
	"repro/internal/check"
)

// TestIncrementalStreaming: the happy path of the streaming API — a
// graph replayed in batches with fresh answers between batches.
func TestIncrementalStreaming(t *testing.T) {
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 20, Size: 10, IntraDeg: 6, Bridges: 1, Seed: 7})
	inc, err := NewIncremental(g.N, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	if inc.ComponentCount() != g.N || inc.N() != g.N {
		t.Fatalf("fresh handle: count=%d n=%d", inc.ComponentCount(), inc.N())
	}
	batches := g.EdgeBatches(7)
	var total int64
	for i, batch := range batches {
		bs, err := inc.AddEdges(batch)
		if err != nil {
			t.Fatal(err)
		}
		total += int64(len(batch))
		if bs.Batch != i+1 || bs.Edges != len(batch) || bs.TotalEdges != total {
			t.Fatalf("batch stats %+v, want batch=%d edges=%d total=%d", bs, i+1, len(batch), total)
		}
		if bs.Components != inc.ComponentCount() {
			t.Fatalf("BatchStats.Components=%d, handle says %d", bs.Components, inc.ComponentCount())
		}
	}
	if inc.BatchCount() != len(batches) || inc.EdgeCount() != total {
		t.Fatalf("bookkeeping: batches=%d edges=%d", inc.BatchCount(), inc.EdgeCount())
	}
	if err := check.SamePartition(inc.Labels(), baseline.Components(g)); err != nil {
		t.Fatal(err)
	}
	res := inc.Result()
	if res.Stats.Backend != BackendIncremental || res.Stats.Rounds != len(batches) {
		t.Fatalf("Result stats: %+v", res.Stats)
	}
	if res.NumComponents != inc.ComponentCount() {
		t.Fatalf("Result components %d, handle %d", res.NumComponents, inc.ComponentCount())
	}
}

// TestIncrementalMatchesSimulated: after any randomized batch split,
// the streaming handle's partition equals the simulated Theorem-3
// partition — the acceptance triangle of ISSUE 2 on the streaming
// path.
func TestIncrementalMatchesSimulated(t *testing.T) {
	g := graph.Gnm(2000, 6000, 19)
	sim, err := Components(g, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	edges := g.Edges()
	for trial := 0; trial < 3; trial++ {
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		inc, err := NewIncremental(g.N)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(edges); {
			hi := lo + 1 + rng.Intn(len(edges)-lo)
			if _, err := inc.AddEdges(edges[lo:hi]); err != nil {
				t.Fatal(err)
			}
			lo = hi
		}
		if err := check.SamePartition(inc.Labels(), sim.Labels); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		inc.Close()
	}
}

// TestIncrementalErrors: constructor and batch validation.
func TestIncrementalErrors(t *testing.T) {
	if _, err := NewIncremental(-1); err == nil {
		t.Fatal("NewIncremental(-1) succeeded")
	}
	inc, err := NewIncremental(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.AddEdges([][2]int{{0, 10}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := inc.AddEdges([][2]int{{-1, 0}}); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	// A rejected batch must not have been partially applied.
	if _, err := inc.AddEdges([][2]int{{0, 1}, {2, 99}}); err == nil {
		t.Fatal("half-bad batch accepted")
	}
	if inc.SameComponent(0, 1) {
		t.Fatal("rejected batch was partially applied")
	}
	if bs, err := inc.AddEdges([][2]int{{0, 1}}); err != nil || bs.Components != 9 {
		t.Fatalf("good batch after rejections: %+v, %v", bs, err)
	}
	inc.Close()
	inc.Close() // double Close is a no-op
	if _, err := inc.AddEdges([][2]int{{0, 1}}); err == nil {
		t.Fatal("AddEdges after Close succeeded")
	}
	if !inc.SameComponent(0, 1) {
		t.Fatal("queries must stay valid after Close")
	}
}

// TestIncrementalConcurrentQueries: the documented contract — queries
// racing AddEdges are safe and see consistent snapshots (run under
// -race in CI).
func TestIncrementalConcurrentQueries(t *testing.T) {
	g := graph.Gnm(3000, 15000, 23)
	inc, err := NewIncremental(g.N)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = inc.ComponentCount()
					_ = inc.SameComponent(0, g.N-1)
				}
			}
		}()
	}
	for _, batch := range g.EdgeBatches(40) {
		if _, err := inc.AddEdges(batch); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := check.SamePartition(inc.Labels(), baseline.Components(g)); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalCloseRace is the ISSUE-4 regression for the
// unsynchronized `closed bool`: Close racing AddEdges (and other
// Close calls) was a data race. Both are now serialized on the
// handle's mutex — this test must stay clean under -race, every
// AddEdges must either apply fully or report the closed error, and
// queries must survive throughout.
func TestIncrementalCloseRace(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		g := graph.Gnm(2000, 8000, int64(trial))
		inc, err := NewIncremental(g.N, WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		batches := g.EdgeBatches(16)
		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(3)
		go func() { // writer
			defer wg.Done()
			<-start
			for _, b := range batches {
				if _, err := inc.AddEdges(b); err != nil {
					if inc.SameComponent(0, 0) != true {
						t.Error("queries broken after closed-handle error")
					}
					return // closed underneath us: the documented outcome
				}
			}
		}()
		go func() { // closer, racing the writer
			defer wg.Done()
			<-start
			if trial%2 == 0 {
				runtime.Gosched()
			}
			inc.Close()
		}()
		go func() { // second closer: Close must be idempotent under race
			defer wg.Done()
			<-start
			inc.Close()
		}()
		close(start)
		wg.Wait()
		// Whatever the interleaving, the handle is closed now and the
		// snapshot is a consistent batch boundary.
		if _, err := inc.AddEdges([][2]int{{0, 1}}); err == nil {
			t.Fatal("AddEdges succeeded after Close")
		}
		n := inc.ComponentCount()
		if n < 1 || n > g.N {
			t.Fatalf("inconsistent component count %d", n)
		}
	}
}
