package pramcc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/graph"
)

// TestWriteMetricsCoversNames: every name the registry reports must
// appear as a sample (or histogram family) in the Prometheus scrape —
// the same invariant scripts/check_docs.sh enforces against
// OPERATIONS.md.
func TestWriteMetricsCoversNames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	names := MetricNames()
	if len(names) == 0 {
		t.Fatal("no metrics registered")
	}
	for _, name := range names {
		if !strings.Contains(text, "# TYPE "+name+" ") {
			t.Errorf("metric %s missing from WriteMetrics output", name)
		}
	}
}

// TestServiceObservability drives every Service writer with the JSON
// sink attached and checks both planes: the serving counters advance,
// and one well-formed envelope per call arrives at the sink.
func TestServiceObservability(t *testing.T) {
	var events bytes.Buffer
	SetEventSink(NewJSONEventSink(&events))
	defer SetEventSink(nil)

	ingestsBefore := mIngestSpans.Value()
	edgesBefore := mIngestEdges.Value()
	updatesBefore := mUpdates.Value()
	seqBefore := snapshotSeq.Load()

	sv, err := NewService(4, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	if _, err := sv.IngestSpan(context.Background(), graph.FromPairs([][2]int{{0, 1}, {2, 3}})); err != nil {
		t.Fatal(err)
	}
	if err := sv.Grow(6); err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(3, [][2]int{{0, 1}})
	if _, err := sv.Update(context.Background(), g); err != nil {
		t.Fatal(err)
	}

	if d := mIngestSpans.Value() - ingestsBefore; d < 1 {
		t.Errorf("pramcc_ingest_spans_total advanced by %d, want >= 1", d)
	}
	if d := mIngestEdges.Value() - edgesBefore; d < 2 {
		t.Errorf("pramcc_ingest_edges_total advanced by %d, want >= 2", d)
	}
	if d := mUpdates.Value() - updatesBefore; d < 1 {
		t.Errorf("pramcc_updates_total advanced by %d, want >= 1", d)
	}
	// NewService + IngestSpan + Grow + Update each publish a snapshot.
	if d := snapshotSeq.Load() - seqBefore; d < 4 {
		t.Errorf("snapshot seq advanced by %d, want >= 4", d)
	}

	// The sink saw one serving event per writer, each with the full
	// envelope. Engine-layer events (batch/round) ride along too.
	seen := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(events.Bytes()))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if e.Source == "" || e.Category == "" || e.Name == "" || e.Status == "" {
			t.Fatalf("event missing envelope fields: %+v", e)
		}
		if e.Source == "service" {
			seen[e.Name]++
			if e.Status != "ok" {
				t.Errorf("service event %s status %q, want ok", e.Name, e.Status)
			}
		}
	}
	for _, name := range []string{"ingest_span", "grow", "update"} {
		if seen[name] == 0 {
			t.Errorf("no service event %q reached the sink (saw %v)", name, seen)
		}
	}
}

// TestServiceErrorEvents: failed writers emit error-status envelopes
// and advance the error counters, and cancellation maps to status
// "cancelled".
func TestServiceErrorEvents(t *testing.T) {
	var events bytes.Buffer
	SetEventSink(NewJSONEventSink(&events))
	defer SetEventSink(nil)

	errsBefore := mIngestErrors.Value()
	sv, err := NewService(4, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sv.IngestSpan(ctx, graph.FromPairs([][2]int{{0, 1}})); err == nil {
		t.Fatal("cancelled ingest succeeded")
	}
	if d := mIngestErrors.Value() - errsBefore; d < 1 {
		t.Errorf("pramcc_ingest_errors_total advanced by %d, want >= 1", d)
	}
}

// TestNoSinkEmitsNothing: with the sink detached, writers run without
// touching any sink (nothing to assert beyond not panicking — the
// allocation-freedom of this path is pinned by TestSpanIngestZeroAlloc
// next to the engine).
func TestNoSinkEmitsNothing(t *testing.T) {
	SetEventSink(nil)
	sv, err := NewService(2, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	if _, err := sv.Ingest(context.Background(), [][2]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}
}
