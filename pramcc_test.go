package pramcc

import (
	"fmt"
	"testing"

	"repro/graph"
	"repro/internal/check"
)

func TestConnectedComponentsPublicAPI(t *testing.T) {
	g := graph.DisjointUnion(graph.Path(50), graph.Clique(10))
	res, err := ConnectedComponents(g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumComponents != 2 {
		t.Fatalf("components = %d, want 2", res.NumComponents)
	}
	if !res.SameComponent(0, 49) || res.SameComponent(0, 55) {
		t.Fatal("SameComponent answers wrong")
	}
	if err := check.Components(g, res.Labels); err != nil {
		t.Fatal(err)
	}
	if res.Stats.PRAMSteps == 0 || res.Stats.MaxProcessors == 0 {
		t.Fatal("stats not populated")
	}
}

func TestAllEntryPointsAgree(t *testing.T) {
	g := graph.Permuted(graph.DisjointUnion(
		graph.Gnm(2000, 8000, 1),
		graph.Grid2D(15, 15),
		graph.Star(60),
	), 7)
	want := g.ComponentsBFS()

	type namedRun struct {
		name string
		run  func() ([]int32, error)
	}
	runs := []namedRun{
		{"fast", func() ([]int32, error) {
			r, err := ConnectedComponents(g, WithSeed(3))
			return r.Labels, err
		}},
		{"loglog", func() ([]int32, error) {
			r, err := ConnectedComponentsLogLog(g, WithSeed(3))
			return r.Labels, err
		}},
		{"loglog-combining", func() ([]int32, error) {
			r, err := ConnectedComponentsLogLog(g, WithSeed(3), WithCombining())
			return r.Labels, err
		}},
		{"vanilla", func() ([]int32, error) {
			r, err := VanillaComponents(g, WithSeed(3))
			return r.Labels, err
		}},
		{"forest", func() ([]int32, error) {
			r, err := SpanningForest(g, WithSeed(3))
			return r.Labels, err
		}},
	}
	for _, nr := range runs {
		t.Run(nr.name, func(t *testing.T) {
			labels, err := nr.run()
			if err != nil {
				t.Fatal(err)
			}
			if err := check.SamePartition(labels, want); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSpanningForestPublicAPI(t *testing.T) {
	g := graph.Gnm(1000, 4000, 5)
	res, err := SpanningForest(g, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Forest(g, res.EdgeIndices); err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != len(res.EdgeIndices) {
		t.Fatal("edge lists inconsistent")
	}
	if len(res.Edges) != g.N-res.NumComponents {
		t.Fatalf("forest size %d, want %d", len(res.Edges), g.N-res.NumComponents)
	}
	// Edges must really be input edges.
	in := map[[2]int]bool{}
	for _, e := range g.SortedDedupEdges() {
		in[e] = true
	}
	for _, e := range res.Edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		if !in[[2]int{a, b}] {
			t.Fatalf("forest edge %v not in the input graph", e)
		}
	}
}

func TestNilAndInvalidGraphs(t *testing.T) {
	if _, err := ConnectedComponents(nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	bad := graph.Path(3)
	bad.U[1] = 2 // corrupt mirror pair
	if _, err := ConnectedComponents(bad); err == nil {
		t.Fatal("invalid graph accepted")
	}
	if _, err := SpanningForest(nil); err == nil {
		t.Fatal("nil graph accepted by SpanningForest")
	}
	if _, err := ConnectedComponentsLogLog(nil); err == nil {
		t.Fatal("nil graph accepted by LogLog")
	}
	if _, err := VanillaComponents(nil); err == nil {
		t.Fatal("nil graph accepted by Vanilla")
	}
}

func TestOptionsApply(t *testing.T) {
	g := graph.Gnm(500, 2000, 1)
	res, err := ConnectedComponents(g,
		WithSeed(9), WithWorkers(2), WithMaxRounds(64),
		WithBudgetGrowth(1.4), WithMinBudget(8), WithMaxLinkIters(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Components(g, res.Labels); err != nil {
		t.Fatal(err)
	}
}

func TestWithoutBoostStillCorrect(t *testing.T) {
	g := graph.Gnm(500, 2000, 2)
	res, err := ConnectedComponents(g, WithSeed(4), WithoutBoost())
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Components(g, res.Labels); err != nil {
		t.Fatal(err)
	}
}

func TestSeedsGiveCorrectResults(t *testing.T) {
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 12, Size: 10, IntraDeg: 8, Bridges: 2, Seed: 6})
	for seed := uint64(0); seed < 10; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := ConnectedComponents(g, WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := check.Components(g, res.Labels); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStatsExposeSpaceBound(t *testing.T) {
	g := graph.Gnm(5000, 40000, 3)
	res, err := ConnectedComponents(g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.Stats.CumBlockWords) / float64(g.NumEdges())
	if ratio > 16 {
		t.Fatalf("cumulative block words = %.1f×m, Lemma 3.10 expects O(m)", ratio)
	}
}
