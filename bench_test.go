package pramcc_test

// Benchmark entry points. One Benchmark per experiment E1–E12 (the
// per-experiment index is EXPERIMENTS.md; cmd/ccbench prints the same
// tables standalone), plus wall-clock benchmarks of the public API.
//
// This file lives in the external test package so that internal/bench
// (which imports the root package to enumerate the backend registry)
// can be imported here without a cycle.
//
// The experiment benches report model metrics (rounds, space ratios)
// via b.ReportMetric in addition to wall-clock time; run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the interpreted results.

import (
	"context"
	"io"
	"testing"

	pramcc "repro"
	"repro/graph"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/pram"
)

// runExperiment executes one registered experiment at Quick scale.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for _, e := range bench.All() {
		if e.ID != id {
			continue
		}
		for i := 0; i < b.N; i++ {
			tbl := e.Run(bench.Quick)
			if len(tbl.Rows) == 0 {
				b.Fatalf("%s produced no rows", id)
			}
			if i == 0 && testing.Verbose() {
				tbl.Fprint(benchWriter{b})
			}
		}
		return
	}
	b.Fatalf("unknown experiment %s", id)
}

type benchWriter struct{ b *testing.B }

func (w benchWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

var _ io.Writer = benchWriter{}

func BenchmarkE1RoundsVsDiameter(b *testing.B)   { runExperiment(b, "E1") }
func BenchmarkE2RoundsVsDensity(b *testing.B)    { runExperiment(b, "E2") }
func BenchmarkE3RoundsVsN(b *testing.B)          { runExperiment(b, "E3") }
func BenchmarkE4SpaceLinear(b *testing.B)        { runExperiment(b, "E4") }
func BenchmarkE5MaxLevel(b *testing.B)           { runExperiment(b, "E5") }
func BenchmarkE6LevelUpProb(b *testing.B)        { runExperiment(b, "E6") }
func BenchmarkE7SuccessProbability(b *testing.B) { runExperiment(b, "E7") }
func BenchmarkE8SpanningForest(b *testing.B)     { runExperiment(b, "E8") }
func BenchmarkE9Baselines(b *testing.B)          { runExperiment(b, "E9") }
func BenchmarkE10Ablations(b *testing.B)         { runExperiment(b, "E10") }
func BenchmarkE11Backends(b *testing.B)          { runExperiment(b, "E11") }
func BenchmarkE12Incremental(b *testing.B)       { runExperiment(b, "E12") }

// ---- wall-clock benchmarks of the public entry points ----

func benchGraph() *graph.Graph {
	return graph.Gnm(100000, 400000, 42)
}

// BenchmarkComponentsBackends is the benchstat anchor compared by
// scripts/bench_baseline.sh against the intentional baseline in
// internal/bench/testdata/baseline.txt: the same workload through the
// Components entry point on every registered backend. Since the
// Solver redesign, Components reuses a process-shared engine per
// (backend, workers) pair, so this measures the steady-state serving
// cost, not per-call engine construction.
func BenchmarkComponentsBackends(b *testing.B) {
	g := benchGraph()
	for _, bk := range pramcc.Backends() {
		b.Run(bk.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pramcc.Components(g, pramcc.WithSeed(1), pramcc.WithBackend(bk)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolverReuse is the steady-state of the long-lived API:
// one Solver per backend, the same workload solved repeatedly. The
// acceptance bar (enforced by TestSolverSolveZeroAllocNative) is zero
// allocations per op on the native backend — labels, scratch, worker
// pool, and the Result itself are all reused.
func BenchmarkSolverReuse(b *testing.B) {
	g := benchGraph()
	ctx := context.Background()
	for _, bk := range pramcc.Backends() {
		b.Run(bk.String(), func(b *testing.B) {
			s, err := pramcc.NewSolver(pramcc.WithBackend(bk), pramcc.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Solve(ctx, g); err != nil { // warm the buffers
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Solve(ctx, g)
				if err != nil {
					b.Fatal(err)
				}
				if res.NumComponents == 0 {
					b.Fatal("no components")
				}
			}
		})
	}
}

// BenchmarkIncrementalBatches is the streaming scenario: the benchGraph
// workload replayed in 16 batches through the Incremental handle, so
// the baseline tracks per-batch maintenance cost next to the one-shot
// backends above.
func BenchmarkIncrementalBatches(b *testing.B) {
	g := benchGraph()
	batches := g.EdgeBatches(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc, err := pramcc.NewIncremental(g.N)
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range batches {
			if _, err := inc.AddEdges(batch); err != nil {
				b.Fatal(err)
			}
		}
		if inc.ComponentCount() == 0 {
			b.Fatal("no components")
		}
		inc.Close()
	}
}

// ingestBenchGraph is the full-bench-scale replay workload for the
// BenchmarkIngest pair below — experiment E14's headline workload
// (gnm-1e6x10): dense enough (m/n = 10) and large enough that the
// replay layer's memory traffic — the quantity the span
// representation halves and de-copies — is what the measurement is
// sensitive to.
func ingestBenchGraph() *graph.Graph {
	return graph.Gnm(1_000_000, 10_000_000, 1)
}

// BenchmarkIngestSpan / BenchmarkIngestPairs are the replay-layer
// comparison behind experiment E14, measured end-to-end at the public
// API as a streaming consumer runs it: batch construction from the
// resident graph plus ingestion. The span side slices the graph's arc
// columns in place (SpanBatches + AddSpan, the zero-copy pipeline —
// its replay layer performs zero allocations, enforced by
// TestSpanIngestZeroAlloc in internal/incremental; the allocs/op
// reported here are snapshot publication and engine setup only); the
// pairs side materializes [][2]int batches (EdgeBatches + AddEdges,
// the kept compatibility adapters). Both end in the identical
// union-find; the difference is pure replay-layer overhead.
func BenchmarkIngestSpan(b *testing.B) {
	g := ingestBenchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc, err := pramcc.NewIncremental(g.N)
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range g.SpanBatches(16) {
			if _, err := inc.AddSpan(batch); err != nil {
				b.Fatal(err)
			}
		}
		inc.Close()
	}
	b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkIngestSpanInstrumented is BenchmarkIngestSpan with the JSON
// event sink attached and draining to io.Discard — the fully
// instrumented configuration, the worst case E15 sweeps. The delta
// against BenchmarkIngestSpan is the whole cost of observability with
// a sink (envelope construction + JSON encoding per batch); without a
// sink the cost is zero by construction (TestSpanIngestZeroAlloc).
func BenchmarkIngestSpanInstrumented(b *testing.B) {
	g := ingestBenchGraph()
	pramcc.SetEventSink(pramcc.NewJSONEventSink(io.Discard))
	defer pramcc.SetEventSink(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc, err := pramcc.NewIncremental(g.N)
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range g.SpanBatches(16) {
			if _, err := inc.AddSpan(batch); err != nil {
				b.Fatal(err)
			}
		}
		inc.Close()
	}
	b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkIngestPairs(b *testing.B) {
	g := ingestBenchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc, err := pramcc.NewIncremental(g.N)
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range g.EdgeBatches(16) {
			if _, err := inc.AddEdges(batch); err != nil {
				b.Fatal(err)
			}
		}
		inc.Close()
	}
	b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkConnectedComponentsFast(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := pramcc.ConnectedComponents(g, pramcc.WithSeed(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkConnectedComponentsLogLog(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pramcc.ConnectedComponentsLogLog(g, pramcc.WithSeed(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVanillaComponents(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pramcc.VanillaComponents(g, pramcc.WithSeed(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpanningForest(b *testing.B) {
	g := graph.Gnm(50000, 200000, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pramcc.SpanningForest(g, pramcc.WithSeed(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShiloachVishkin(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.ShiloachVishkin(pram.New(0), g)
	}
}

func BenchmarkUnionFindSequential(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Components(g)
	}
}

// BenchmarkCoreHighDiameter exercises the headline regime: high
// diameter at fixed density, where rounds ≈ log d.
func BenchmarkCoreHighDiameter(b *testing.B) {
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 1024, Size: 24, IntraDeg: 20, Bridges: 2, Seed: 1})
	b.ResetTimer()
	var rounds int
	for i := 0; i < b.N; i++ {
		res := core.Run(pram.New(0), g, core.DefaultParams(uint64(i+1)))
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkWorkersScaling reports wall-clock effect of the host worker
// pool (the PRAM cost model is unaffected).
func BenchmarkWorkersScaling(b *testing.B) {
	g := graph.Gnm(200000, 800000, 7)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(workersName(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pramcc.ConnectedComponents(g, pramcc.WithSeed(3), pramcc.WithWorkers(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func workersName(w int) string {
	return "workers-" + string(rune('0'+w))
}
