package pramcc_test

import (
	"fmt"

	pramcc "repro"
	"repro/graph"
)

// ExampleConnectedComponents demonstrates the primary entry point on a
// deterministic two-component graph.
func ExampleConnectedComponents() {
	g := graph.DisjointUnion(graph.Path(4), graph.Clique(3))
	res, err := pramcc.ConnectedComponents(g, pramcc.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("components:", res.NumComponents)
	fmt.Println("0 and 3 together:", res.SameComponent(0, 3))
	fmt.Println("0 and 5 together:", res.SameComponent(0, 5))
	// Output:
	// components: 2
	// 0 and 3 together: true
	// 0 and 5 together: false
}

// ExampleSpanningForest shows that the forest has exactly
// n − #components edges, all taken from the input graph.
func ExampleSpanningForest() {
	g := graph.Cycle(5) // n = 5, one component, one redundant edge
	res, err := pramcc.SpanningForest(g, pramcc.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("forest size:", len(res.Edges))
	fmt.Println("components:", res.NumComponents)
	// Output:
	// forest size: 4
	// components: 1
}

// ExampleVanillaComponents runs the O(log n) baseline.
func ExampleVanillaComponents() {
	g := graph.Star(6)
	res, err := pramcc.VanillaComponents(g, pramcc.WithSeed(2))
	if err != nil {
		panic(err)
	}
	fmt.Println("components:", res.NumComponents)
	// Output:
	// components: 1
}
