// Command ccbench runs the reproduction experiments (E1 onwards; the
// list and the -experiment usage string are enumerated from the
// internal/bench experiment registry at run time, so they are never
// stale) and prints their tables. The output of `ccbench -scale full`
// is the source of EXPERIMENTS.md. E11 compares every execution
// backend on wall clock — its backend columns are enumerated from the
// pramcc backend registry the same way — E12 pits the incremental
// streaming backend against recompute-per-batch, E13 the three graph
// loaders (sequential text, parallel text, binary) on load
// throughput, E14 the columnar span replay against the boxed [][2]int
// replay on ingest throughput;
//
//	ccbench -experiment E11,E12,E13,E14,E15 -format json > BENCH_$(date +%Y%m%d).json
//
// snapshots them as the machine-readable artifact tracked across
// commits. E13 defaults to generated workloads; -graph FILE points it
// at a real graph file instead, in either format (auto-detected, like
// every graph input in this repo).
//
// Usage:
//
//	ccbench [-experiment all|E1,E2,...] [-scale quick|full] [-format text|markdown|csv|json] [-graph FILE] [-grain N]
//
// -grain overrides the scheduler claim grain of the engines under the
// wall-clock experiments (E11, E12, E14); 0, the default, keeps the
// adaptive sizing. Each affected table prints the active grain in its
// notes. E17 sweeps grains itself and ignores the flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	// The id range in the usage string is derived from the experiment
	// registry, so it can never go stale when an experiment is added.
	ids := bench.IDs()
	expFlag := flag.String("experiment", "all",
		fmt.Sprintf("comma-separated experiment ids (%s..%s) or 'all'", ids[0], ids[len(ids)-1]))
	scaleFlag := flag.String("scale", "quick", "quick (seconds) or full (minutes, EXPERIMENTS.md scale)")
	formatFlag := flag.String("format", "text", "output format: text, markdown, csv, or json")
	graphFlag := flag.String("graph", "", "graph file for E13 (text or binary, auto-detected) instead of generated workloads")
	grainFlag := flag.Int("grain", 0, "scheduler claim grain for the wall-clock experiments' engines (0 = adaptive sizing; E17 sweeps its own grains and ignores this)")
	flag.Parse()

	if *grainFlag < 0 {
		fmt.Fprintf(os.Stderr, "ccbench: negative -grain %d\n", *grainFlag)
		os.Exit(2)
	}
	bench.SetGrain(*grainFlag)

	format, err := bench.ParseFormat(*formatFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(2)
	}

	scale := bench.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "ccbench: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	runAll := *expFlag == "all"
	if !runAll {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	ran := 0
	for _, e := range bench.All() {
		if !runAll && !want[e.ID] {
			continue
		}
		start := time.Now()
		var table *bench.Table
		if e.ID == "E13" && *graphFlag != "" {
			var err error
			table, err = bench.E13File(*graphFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ccbench:", err)
				os.Exit(1)
			}
		} else {
			table = e.Run(scale)
		}
		if err := table.RenderTo(os.Stdout, format); err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			os.Exit(1)
		}
		if format == bench.FormatText {
			fmt.Printf("  (%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ccbench: no experiment matched %q\n", *expFlag)
		os.Exit(2)
	}
}
