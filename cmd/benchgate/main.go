// Command benchgate compares two `go test -bench` result files the way
// benchstat does — grouping samples by benchmark name, testing the
// ns/op distributions with an exact Mann–Whitney rank-sum permutation
// test, and reporting median deltas — and then, unlike benchstat,
// renders a verdict: it exits non-zero when any benchmark shows a
// statistically significant slowdown beyond the gate threshold. It is
// the CI tooth behind scripts/bench_gate.sh, pure stdlib so the gate
// needs no network and no installed binaries.
//
// Usage:
//
//	benchgate [-threshold 0.15] [-alpha 0.05] [-strict] baseline.txt current.txt
//
// A benchmark is a REGRESSION when p < alpha AND the median ns/op grew
// by more than threshold (a fraction: 0.15 = +15%). Significant
// speedups and insignificant wobbles both pass; they are still printed
// so the gate's log doubles as a benchstat-style trend table. Names
// are compared with the -GOMAXPROCS suffix stripped, so a baseline
// recorded on one host gates runs on any CPU count.
// By default benchmarks present in only one file are listed as notes
// and never gate — renames should not break a casual comparison — but
// a baseline file with no overlapping benchmark at all is an error,
// because then the gate would be vacuously green. With -strict (what
// scripts/bench_gate.sh passes), a current benchmark with no baseline
// counterpart FAILS the gate: the declared matrix must be fully
// covered, or whole configurations silently escape gating until
// someone refreshes the baseline.
//
// The threshold can also be set with BENCHGATE_THRESHOLD (the flag
// wins), so CI can loosen the gate on noisy shared runners without a
// workflow edit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
)

func main() {
	thresholdFlag := flag.Float64("threshold", defaultThreshold(), "max allowed median slowdown as a fraction (0.15 = +15%); env BENCHGATE_THRESHOLD sets the default")
	alpha := flag.Float64("alpha", 0.05, "significance level for the rank-sum test")
	strict := flag.Bool("strict", false, "fail when a current benchmark has no baseline coverage (full matrix must be gated)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-threshold F] [-alpha F] [-strict] baseline.txt current.txt")
		os.Exit(2)
	}
	code, err := run(os.Stdout, flag.Arg(0), flag.Arg(1), *thresholdFlag, *alpha, *strict)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// defaultThreshold reads BENCHGATE_THRESHOLD, falling back to 0.15.
func defaultThreshold() float64 {
	if s := os.Getenv("BENCHGATE_THRESHOLD"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.15
}
