package main

import (
	"math"
	"sort"
)

// rankSumP computes the two-sided p-value of the Mann–Whitney rank-sum
// test for samples a and b: the probability, under the null hypothesis
// that both came from the same distribution, of a rank-sum at least as
// extreme as the observed one. Ties take midranks.
//
// For the sample counts the gate actually sees (COUNT≈5–20 per side)
// the test is exact — every C(n+m, n) assignment of the pooled
// midranks is enumerated — which is what benchstat's U test does in
// the tie-free case, and strictly more faithful than it when timings
// collide. Above ~400k assignments it falls back to the standard
// normal approximation with tie correction.
//
// Degenerate inputs (an empty side, or all pooled values identical)
// return 1: no evidence of a shift.
func rankSumP(a, b []float64) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 1
	}
	ranks, tie := midranks(a, b)
	observed := 0.0
	for i := 0; i < n; i++ {
		observed += ranks[i]
	}
	mean := float64(n) * float64(n+m+1) / 2
	dev := math.Abs(observed - mean)
	if dev == 0 {
		return 1
	}

	if total := binom(n+m, n); total > 0 && total <= 400_000 {
		// Exact: count assignments of n ranks whose sum deviates from
		// the mean by at least dev. Midranks are multiples of 1/2, so
		// compare with a half-ulp slack rather than equality.
		count := countExtreme(ranks, n, mean, dev-1e-9)
		return float64(count) / float64(total)
	}

	// Normal approximation with tie correction.
	nm := float64(n) * float64(m)
	nTot := float64(n + m)
	variance := nm * (nTot + 1) / 12 * (1 - tie/(nTot*nTot*nTot-nTot))
	if variance <= 0 {
		return 1
	}
	// Continuity correction of 1/2 toward the mean.
	z := (dev - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	return 2 * 0.5 * math.Erfc(z/math.Sqrt2)
}

// midranks pools a and b, assigns midranks (1-based; tied values share
// the mean of the ranks they span), and returns the ranks in input
// order (a's first, then b's) plus the tie-correction term
// Σ(t³−t) over tie groups of size t.
func midranks(a, b []float64) (ranks []float64, tieTerm float64) {
	n := len(a) + len(b)
	type item struct {
		v   float64
		pos int
	}
	items := make([]item, 0, n)
	for i, v := range a {
		items = append(items, item{v, i})
	}
	for i, v := range b {
		items = append(items, item{v, len(a) + i})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	ranks = make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && items[j].v == items[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // mean of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[items[k].pos] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	return ranks, tieTerm
}

// countExtreme counts the subsets of size k of ranks whose sum lies at
// least dev away from mean, by depth-first enumeration with a simple
// prefix bound. ranks is mutated into sorted order.
func countExtreme(ranks []float64, k int, mean, dev float64) int64 {
	sorted := append([]float64(nil), ranks...)
	sort.Float64s(sorted)
	// suffix[i] = sum of sorted[i:].
	suffix := make([]float64, len(sorted)+1)
	for i := len(sorted) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + sorted[i]
	}
	var count int64
	var walk func(idx, left int, sum float64)
	walk = func(idx, left int, sum float64) {
		if left == 0 {
			if math.Abs(sum-mean) >= dev {
				count++
			}
			return
		}
		if len(sorted)-idx < left {
			return
		}
		// Bound: even taking the largest/smallest remaining ranks the
		// subtree cannot reach the extreme region on either side —
		// only prune when the whole attainable interval is interior.
		maxSum := sum + suffix[len(sorted)-left]
		minSum := sum + (suffix[idx] - suffix[idx+left])
		if maxSum < mean+dev && minSum > mean-dev {
			return
		}
		walk(idx+1, left-1, sum+sorted[idx])
		walk(idx+1, left, sum)
	}
	walk(0, k, 0)
	return count
}

// binom returns C(n, k), or 0 on overflow past the exact-test cap.
func binom(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 1; i <= k; i++ {
		c = c * int64(n-k+i) / int64(i)
		if c < 0 || c > 1<<40 {
			return 0
		}
	}
	return c
}
