package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchSet holds ns/op samples per benchmark name, preserving the
// order names first appeared so the report reads like the input.
type benchSet struct {
	order   []string
	samples map[string][]float64
}

// parseBenchFile extracts ns/op samples from `go test -bench` output.
// A result line looks like
//
//	BenchmarkNativeSolve/small/w1-4   100   123456 ns/op   0 B/op ...
//
// the first field being the name. The trailing -GOMAXPROCS suffix is
// stripped (benchstat does the same): it varies with the host's CPU
// count, and the gate matrix already pins the worker configuration in
// the w1/wmax axis labels, so keeping the suffix would make a baseline
// recorded at one GOMAXPROCS never match a run at another and the gate
// would go vacuous on any differently-sized runner. Non-result lines
// (pkg headers, PASS, ok) are skipped.
func parseBenchFile(path string) (*benchSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set := &benchSet{samples: map[string][]float64{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// fields: name, iterations, value, "ns/op", [more unit pairs].
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad ns/op %q on line %q", path, fields[i], sc.Text())
			}
			name := stripProcSuffix(fields[0])
			if _, seen := set.samples[name]; !seen {
				set.order = append(set.order, name)
			}
			set.samples[name] = append(set.samples[name], v)
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// stripProcSuffix removes the trailing -N GOMAXPROCS suffix go test
// appends to benchmark names ("BenchmarkGate/small/native/w1-4" →
// "BenchmarkGate/small/native/w1"). Names without an all-digit tail
// after the last '-' (including suffix-less single-core output) pass
// through unchanged.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// median returns the middle of xs (mean of the middle two when even).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// run compares baseline and current and writes the report to w,
// returning the process exit code: 0 when the gate passes, 1 when any
// benchmark regressed significantly beyond threshold. With strict set,
// a benchmark present in the current run but absent from the baseline
// is also a failure: the declared gate matrix must have baseline
// coverage, otherwise whole configurations (say, the parallel wmax
// axis) silently never gate.
func run(w io.Writer, basePath, curPath string, threshold, alpha float64, strict bool) (int, error) {
	base, err := parseBenchFile(basePath)
	if err != nil {
		return 0, err
	}
	cur, err := parseBenchFile(curPath)
	if err != nil {
		return 0, err
	}

	var regressions []string
	compared := 0
	fmt.Fprintf(w, "%-58s %14s %14s %9s %8s  %s\n", "benchmark", "old median", "new median", "delta", "p", "verdict")
	for _, name := range base.order {
		b := base.samples[name]
		c, ok := cur.samples[name]
		if !ok {
			fmt.Fprintf(w, "%-58s missing from current run (renamed or skipped?)\n", name)
			continue
		}
		compared++
		mb, mc := median(b), median(c)
		delta := 0.0
		if mb != 0 {
			delta = (mc - mb) / mb
		}
		p := rankSumP(b, c)
		verdict := "~"
		switch {
		case p >= alpha:
			verdict = "~ (not significant)"
		case delta > threshold:
			verdict = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %+.1f%% (p=%.3f)", name, delta*100, p))
		case delta < 0:
			verdict = "improvement"
		default:
			verdict = "slower, within threshold"
		}
		fmt.Fprintf(w, "%-58s %14s %14s %+8.1f%% %8.3f  %s\n",
			name, formatNs(mb), formatNs(mc), delta*100, p, verdict)
	}
	var uncovered []string
	for _, name := range cur.order {
		if _, ok := base.samples[name]; !ok {
			fmt.Fprintf(w, "%-58s new benchmark, no baseline yet\n", name)
			uncovered = append(uncovered, name)
		}
	}
	if compared == 0 {
		return 0, fmt.Errorf("no benchmark appears in both %s and %s — the gate would be vacuous", basePath, curPath)
	}
	failed := false
	if len(regressions) > 0 {
		failed = true
		fmt.Fprintf(w, "\nGATE FAILED: %d significant regression(s) beyond %+.0f%%:\n", len(regressions), threshold*100)
		for _, r := range regressions {
			fmt.Fprintf(w, "  %s\n", r)
		}
	}
	if strict && len(uncovered) > 0 {
		failed = true
		fmt.Fprintf(w, "\nGATE FAILED: %d benchmark(s) have no baseline coverage (strict mode):\n", len(uncovered))
		for _, name := range uncovered {
			fmt.Fprintf(w, "  %s\n", name)
		}
		fmt.Fprintf(w, "refresh the baseline (scripts/bench_gate.sh update) so every matrix configuration is gated\n")
	}
	if failed {
		return 1, nil
	}
	fmt.Fprintf(w, "\ngate passed: %d benchmark(s) compared, none regressed beyond %+.0f%% at alpha %.2f\n",
		compared, threshold*100, alpha)
	return 0, nil
}

// formatNs renders a nanosecond quantity with a human unit, benchstat
// style.
func formatNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.4gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.4gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.4gns", ns)
	}
}
