package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name string, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	content := "goos: linux\ngoarch: amd64\npkg: repro\n" + strings.Join(lines, "\n") + "\nPASS\nok  \trepro\t1.0s\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchLines(name string, ns ...float64) []string {
	out := make([]string, len(ns))
	for i, v := range ns {
		out[i] = fmt.Sprintf("%s-4 \t       1\t  %.0f ns/op\t       0 B/op\t       0 allocs/op", name, v)
	}
	return out
}

func TestParseBenchFile(t *testing.T) {
	path := writeBench(t, "b.txt", append(
		benchLines("BenchmarkGate/small/native/w1", 100, 110, 105),
		"BenchmarkOther-4 \t 200 \t 55.5 ns/op",
		"not a benchmark line",
	)...)
	set, err := parseBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.order) != 2 {
		t.Fatalf("parsed %d names, want 2: %v", len(set.order), set.order)
	}
	got := set.samples["BenchmarkGate/small/native/w1"]
	if len(got) != 3 || got[0] != 100 || got[2] != 105 {
		t.Fatalf("samples = %v", got)
	}
	if o := set.samples["BenchmarkOther"]; len(o) != 1 || o[0] != 55.5 {
		t.Fatalf("BenchmarkOther samples = %v", o)
	}
}

// TestStripProcSuffix pins the GOMAXPROCS-suffix normalization that
// keeps a baseline recorded at one CPU count comparable on another.
func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkGate/small/native/w1-4":  "BenchmarkGate/small/native/w1",
		"BenchmarkGate/small/native/w1-16": "BenchmarkGate/small/native/w1",
		"BenchmarkGate/small/native/w1":    "BenchmarkGate/small/native/w1", // single-core output has no suffix
		"BenchmarkOther-8":                 "BenchmarkOther",
		"BenchmarkOther":                   "BenchmarkOther",
		"BenchmarkOther-":                  "BenchmarkOther-",
		"BenchmarkOther-4x":                "BenchmarkOther-4x",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestGateAcrossGOMAXPROCS: a baseline written on a single-core host
// (no -N suffix) must compare against a multi-core run (suffixed
// names) instead of reporting zero overlap and erroring out.
func TestGateAcrossGOMAXPROCS(t *testing.T) {
	noSuffix := func(name string, ns ...float64) []string {
		out := make([]string, len(ns))
		for i, v := range ns {
			out[i] = fmt.Sprintf("%s \t       1\t  %.0f ns/op", name, v)
		}
		return out
	}
	base := writeBench(t, "base.txt", noSuffix("BenchmarkGate/small/native/w1", 100000, 101000, 99000, 100500, 99500)...)
	cur := writeBench(t, "cur.txt", benchLines("BenchmarkGate/small/native/w1", 100400, 100900, 99400, 100100, 99800)...)
	var sb strings.Builder
	code, err := run(&sb, base, cur, 0.15, 0.05, true)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, sb.String())
	}
	if strings.Contains(sb.String(), "no baseline yet") {
		t.Fatalf("suffixed run did not match suffix-less baseline:\n%s", sb.String())
	}
}

// TestRankSumP pins the exact test on hand-checkable inputs.
func TestRankSumP(t *testing.T) {
	// Complete separation of two 5-sample sets: the most extreme
	// rank-sum two-sided, p = 2 / C(10,5) = 2/252.
	lo := []float64{1, 2, 3, 4, 5}
	hi := []float64{10, 11, 12, 13, 14}
	want := 2.0 / 252.0
	if p := rankSumP(lo, hi); math.Abs(p-want) > 1e-12 {
		t.Fatalf("separated samples: p = %g, want %g", p, want)
	}
	// Symmetric: order of the two samples must not matter.
	if p1, p2 := rankSumP(lo, hi), rankSumP(hi, lo); p1 != p2 {
		t.Fatalf("asymmetric p: %g vs %g", p1, p2)
	}
	// Identical distributions: no evidence.
	if p := rankSumP([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Fatalf("identical samples: p = %g, want 1", p)
	}
	// Interleaved samples: far from significant.
	if p := rankSumP([]float64{1, 3, 5, 7, 9}, []float64{2, 4, 6, 8, 10}); p < 0.5 {
		t.Fatalf("interleaved samples: p = %g, want ≥ 0.5", p)
	}
	// Degenerate sides.
	if p := rankSumP(nil, []float64{1}); p != 1 {
		t.Fatalf("empty side: p = %g, want 1", p)
	}
	// Ties across the groups still yield a sane p in [0, 1].
	if p := rankSumP([]float64{1, 1, 2, 2}, []float64{1, 2, 3, 3}); p < 0 || p > 1 {
		t.Fatalf("tied samples: p = %g out of range", p)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeBench(t, "base.txt", benchLines("BenchmarkGate/full/native/w1", 100000, 101000, 99000, 100500, 99500)...)
	cur := writeBench(t, "cur.txt", benchLines("BenchmarkGate/full/native/w1", 150000, 151000, 149000, 150500, 149500)...)
	var sb strings.Builder
	code, err := run(&sb, base, cur, 0.15, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") || !strings.Contains(sb.String(), "GATE FAILED") {
		t.Fatalf("report missing regression verdict:\n%s", sb.String())
	}
}

func TestGatePassesOnImprovementAndNoise(t *testing.T) {
	base := writeBench(t, "base.txt", append(
		benchLines("BenchmarkA", 100000, 101000, 99000, 100500, 99500),
		benchLines("BenchmarkB", 200000, 201000, 199000, 200500, 199500)...)...)
	cur := writeBench(t, "cur.txt", append(
		// A: significantly faster. B: wobble well inside noise.
		benchLines("BenchmarkA", 50000, 51000, 49000, 50500, 49500),
		benchLines("BenchmarkB", 200400, 200900, 199400, 200100, 199800)...)...)
	var sb strings.Builder
	code, err := run(&sb, base, cur, 0.15, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "improvement") {
		t.Fatalf("report missing improvement verdict:\n%s", sb.String())
	}
}

// TestGateSmallSlowdownWithinThresholdPasses: statistically detectable
// but below the threshold — the gate tolerates it and says so.
func TestGateSmallSlowdownWithinThresholdPasses(t *testing.T) {
	base := writeBench(t, "base.txt", benchLines("BenchmarkA", 100000, 100100, 99900, 100050, 99950)...)
	cur := writeBench(t, "cur.txt", benchLines("BenchmarkA", 105000, 105100, 104900, 105050, 104950)...)
	var sb strings.Builder
	code, err := run(&sb, base, cur, 0.15, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || !strings.Contains(sb.String(), "within threshold") {
		t.Fatalf("code = %d, output:\n%s", code, sb.String())
	}
}

func TestGateDisjointNamesIsError(t *testing.T) {
	base := writeBench(t, "base.txt", benchLines("BenchmarkOld", 100, 100, 100)...)
	cur := writeBench(t, "cur.txt", benchLines("BenchmarkNew", 100, 100, 100)...)
	var sb strings.Builder
	if _, err := run(&sb, base, cur, 0.15, 0.05, false); err == nil {
		t.Fatalf("disjoint benchmark sets must error, got:\n%s", sb.String())
	}
}

func TestGateReportsRenames(t *testing.T) {
	base := writeBench(t, "base.txt", append(
		benchLines("BenchmarkKept", 100, 100, 100),
		benchLines("BenchmarkGone", 100, 100, 100)...)...)
	cur := writeBench(t, "cur.txt", append(
		benchLines("BenchmarkKept", 100, 100, 100),
		benchLines("BenchmarkFresh", 100, 100, 100)...)...)
	var sb strings.Builder
	code, err := run(&sb, base, cur, 0.15, 0.05, false)
	if err != nil || code != 0 {
		t.Fatalf("code = %d, err = %v", code, err)
	}
	out := sb.String()
	if !strings.Contains(out, "missing from current") || !strings.Contains(out, "no baseline yet") {
		t.Fatalf("rename notes missing:\n%s", out)
	}
}

// TestGateStrictFailsOnMissingCoverage: in strict mode a current
// benchmark with no baseline row fails the gate instead of being a
// note — this is how CI catches a baseline that silently never covered
// a whole matrix axis (say, every wmax configuration).
func TestGateStrictFailsOnMissingCoverage(t *testing.T) {
	base := writeBench(t, "base.txt", benchLines("BenchmarkGate/small/native/w1", 100, 100, 100, 100, 100)...)
	cur := writeBench(t, "cur.txt", append(
		benchLines("BenchmarkGate/small/native/w1", 100, 100, 100, 100, 100),
		benchLines("BenchmarkGate/small/native/wmax", 50, 50, 50, 50, 50)...)...)
	var sb strings.Builder
	code, err := run(&sb, base, cur, 0.15, 0.05, true)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "no baseline coverage") || !strings.Contains(sb.String(), "wmax") {
		t.Fatalf("strict verdict missing:\n%s", sb.String())
	}
	// The same comparison without -strict stays a passing note.
	sb.Reset()
	code, err = run(&sb, base, cur, 0.15, 0.05, false)
	if err != nil || code != 0 {
		t.Fatalf("non-strict: code = %d, err = %v; output:\n%s", code, err, sb.String())
	}
}
