// Command cclint runs the repo's custom static-analysis suite
// (internal/analysis) over the given package patterns and exits
// non-zero when any unsuppressed diagnostic remains. It is the CI
// gate for the invariants the test suite can only probe dynamically:
// atomic snapshot publication (atomicpub), allocation-free hot paths
// (zeroalloc), cancellable engine rounds (ctxround), WAL-before-
// publish ordering (waldiscipline), and documented metric names
// (metricdoc).
//
// Usage:
//
//	go run ./cmd/cclint ./...
//	go run ./cmd/cclint -run metricdoc ./...
//	go run ./cmd/cclint -vet=false ./internal/native
//
// -run selects a comma-separated subset of analyzers. -vet (default
// true when running the full suite) additionally shells out to
// `go vet -atomic -copylocks` for the overlapping upstream checks.
// See CONTRIBUTING.md for the //pramcc:zeroalloc and //pramcc:allow
// directives.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		runSel  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		vetPass = flag.Bool("vet", true, "also run `go vet -atomic -copylocks` (full-suite runs only)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cclint [-run analyzers] [-vet=bool] [packages]\n\nanalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var selected []*analysis.Analyzer
	if *runSel != "" {
		var err error
		selected, err = analysis.Validate(strings.Split(*runSel, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cclint:", err)
			os.Exit(2)
		}
	}

	res, err := analysis.RunSuite(".", patterns, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cclint:", err)
		os.Exit(2)
	}
	for _, d := range res.Diags {
		fmt.Println(d.String())
	}

	failed := len(res.Diags) > 0

	// The upstream vet passes closest to this suite's concerns ride
	// along on full-suite runs so CI needs only one lint entry point.
	if *vetPass && *runSel == "" {
		args := append([]string{"vet", "-atomic", "-copylocks"}, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	if failed {
		fmt.Fprintf(os.Stderr, "cclint: %d diagnostic(s)\n", len(res.Diags))
		os.Exit(1)
	}
	fmt.Printf("cclint: ok (%d packages, %d suppressed by //pramcc:allow)\n", res.Packages, res.Suppressed)
}
