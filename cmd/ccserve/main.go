// Command ccserve wraps a pramcc.Service in an operations-grade HTTP
// listener: the seed of the ROADMAP's sharded network front end, and
// the surface OPERATIONS.md documents.
//
// Usage:
//
//	ccserve [-addr :8080] [-backend incremental] [-n N] [-workers W]
//	        [-graph file] [-events file|stderr] [-list-metrics]
//
// Endpoints:
//
//	GET  /healthz       liveness: {"status":"ok",...}
//	GET  /metrics       every registered metric, Prometheus text format
//	     /debug/pprof/  net/http/pprof profiles (heap, profile, trace, ...)
//	POST /v1/ingest     {"edges":[[u,v],...]} -> streaming ingest (incremental backend)
//	POST /v1/grow       {"n":N} -> extend the vertex set
//	GET  /v1/same?u=&v= same-component query from the published snapshot
//	GET  /v1/stats      published-snapshot statistics
//
// -graph preloads an edge-list or binary graph file via Update before
// serving. -events attaches the JSON event sink, so every engine
// round/batch boundary and every serve call is logged as one JSON line
// (with the corresponding throughput cost; see EXPERIMENTS.md E15).
// -list-metrics prints the registered metric names and exits — the
// generated list scripts/check_docs.sh compares OPERATIONS.md against.
package main

import (
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ccserve: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
