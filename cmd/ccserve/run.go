package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	pramcc "repro"
	"repro/graph"
	"repro/internal/obs"
)

// ccserve's own serving metrics, registered once per process alongside
// the library's (duplicate registration panics, so these live at
// package scope, not in run).
var (
	mHTTPRequests = obs.Default.Counter("pramcc_http_requests_total",
		"HTTP requests served by ccserve (all endpoints)")
	mHTTPErrors = obs.Default.Counter("pramcc_http_errors_total",
		"HTTP requests ccserve answered with a 4xx/5xx status")
)

// run parses args and either prints the metric-name list or serves;
// factored out of main for testing (the HTTP surface itself is tested
// through newHandler with httptest, without binding a port).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ccserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "ops HTTP listen address")
	var backend pramcc.Backend
	fs.TextVar(&backend, "backend", pramcc.BackendIncremental,
		"service backend: "+strings.Join(pramcc.BackendNames(), ", ")+
			" (streaming ingest and grow need incremental)")
	n := fs.Int("n", 0, "initial vertex count (ignored when -graph sets the vertex set)")
	workers := fs.Int("workers", 0, "worker goroutines for solves and ingests (0 = GOMAXPROCS)")
	graphPath := fs.String("graph", "", "preload a graph file (text edge list or binary) via Update before serving")
	dataDir := fs.String("data", "", "durable data directory: snapshots + ingest WAL, warm-started on restart (incremental backend only)")
	ckptEvery := fs.Int("checkpoint-every", 64, "with -data, checkpoint a snapshot every K logged batches")
	shards := fs.Int("shards", 0, "run the sharded multi-tenant front end with this many shards (0 = single-service mode)")
	queueCap := fs.Int("queue-cap", 0, "sharded mode: per-shard ingest queue capacity in spans (0 = default 256)")
	tenantQueueCap := fs.Int("tenant-queue-cap", 0, "sharded mode: max spans one tenant may hold queued (0 = default 32)")
	maxVertices := fs.Int("max-vertices", 0, "sharded mode: per-tenant vertex quota (0 = unlimited)")
	coalesce := fs.Int("coalesce", 0, "sharded mode: max queued spans merged into one engine batch (1 disables, 0 = default 16)")
	events := fs.String("events", "", "attach the JSON event sink: a file path, or \"stderr\"")
	listMetrics := fs.Bool("list-metrics", false, "print the registered metric names, one per line, and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listMetrics {
		for _, name := range pramcc.MetricNames() {
			fmt.Fprintln(out, name)
		}
		return nil
	}

	if *events != "" {
		w := io.Writer(os.Stderr)
		if *events != "stderr" {
			f, err := os.Create(*events)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		pramcc.SetEventSink(pramcc.NewJSONEventSink(w))
		defer pramcc.SetEventSink(nil)
	}

	if *shards > 0 {
		if *graphPath != "" {
			return fmt.Errorf("ccserve: -graph preloads the single process-wide service and cannot combine with -shards (create a tenant and POST its edges instead)")
		}
		rt, err := pramcc.NewRouter(pramcc.RouterConfig{
			Shards:         *shards,
			QueueCap:       *queueCap,
			TenantQueueCap: *tenantQueueCap,
			MaxVertices:    *maxVertices,
			CoalesceLimit:  *coalesce,
			DataDir:        *dataDir,
			Options: []pramcc.Option{
				pramcc.WithBackend(backend), pramcc.WithWorkers(*workers),
				pramcc.WithCheckpointEvery(*ckptEvery),
			},
		})
		if err != nil {
			return err
		}
		defer rt.Close()
		if *dataDir != "" {
			fmt.Fprintf(out, "recovered %d tenants from %s\n", len(rt.Tenants()), *dataDir)
		}
		fmt.Fprintf(out, "serving sharded backend=%v shards=%d tenants=%d on http://%s (endpoints: /healthz /metrics /debug/pprof/ /v1/admin/tenants /v1/t/{tenant}/...)\n",
			backend, rt.Shards(), len(rt.Tenants()), *addr)
		srv := &http.Server{Addr: *addr, Handler: newRouterHandler(rt)}
		return srv.ListenAndServe()
	}

	var sv *pramcc.Service
	var err error
	if *dataDir != "" {
		sv, err = pramcc.Open(*dataDir,
			pramcc.WithBackend(backend), pramcc.WithWorkers(*workers),
			pramcc.WithInitialVertices(*n), pramcc.WithCheckpointEvery(*ckptEvery))
		if err != nil {
			return err
		}
		if stats, ok := sv.RecoveryStats(); ok {
			fmt.Fprintf(out, "recovered %s: snapshot seq=%d, replayed %d batches (%d edges) in %v\n",
				*dataDir, stats.SnapshotSeq, stats.ReplayedBatches, stats.ReplayedEdges, stats.Duration)
		} else {
			fmt.Fprintf(out, "created durable store %s\n", *dataDir)
		}
	} else {
		sv, err = pramcc.NewService(*n,
			pramcc.WithBackend(backend), pramcc.WithWorkers(*workers))
		if err != nil {
			return err
		}
	}
	defer sv.Close()

	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		g, err := graph.ReadAuto(f)
		f.Close()
		if err != nil {
			return err
		}
		res, err := sv.Update(nil, g)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "preloaded %s: n=%d m=%d components=%d wall=%v\n",
			*graphPath, g.N, g.NumEdges(), res.NumComponents, res.Stats.Wall)
	}

	fmt.Fprintf(out, "serving backend=%v n=%d on http://%s (endpoints: /healthz /metrics /debug/pprof/ /v1/...)\n",
		backend, sv.N(), *addr)
	srv := &http.Server{Addr: *addr, Handler: newHandler(sv)}
	return srv.ListenAndServe()
}

// notFound is the catch-all for routes no handler claims: the JSON
// error contract holds everywhere, so clients never parse a plain-text
// or empty 404 body.
func notFound(w http.ResponseWriter, r *http.Request) {
	httpError(w, http.StatusNotFound, "not found")
}

// newHandler builds the full ops surface over sv: health, metrics,
// pprof, and the JSON serving endpoints.
func newHandler(sv *pramcc.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", counted(notFound))
	mux.HandleFunc("/healthz", counted(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":     "ok",
			"backend":    sv.Backend().String(),
			"n":          sv.N(),
			"components": sv.NumComponents(),
		})
	}))
	mux.HandleFunc("/metrics", counted(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := pramcc.WriteMetrics(w); err != nil {
			mHTTPErrors.Inc()
		}
	}))
	// net/http/pprof registers on http.DefaultServeMux as a side effect
	// of its import; wire its handlers into our mux explicitly so the
	// profiles are served regardless of which mux the server uses.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/v1/ingest", counted(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req struct {
			Edges [][2]int `json:"edges"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: "+err.Error())
			return
		}
		start := time.Now()
		res, err := sv.Ingest(r.Context(), req.Edges)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"edges":      len(req.Edges),
			"components": res.NumComponents,
			"wall_ms":    float64(time.Since(start).Nanoseconds()) / 1e6,
		})
	}))
	mux.HandleFunc("/v1/grow", counted(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req struct {
			N int `json:"n"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: "+err.Error())
			return
		}
		if err := sv.Grow(req.N); err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"n":          sv.N(),
			"components": sv.NumComponents(),
		})
	}))
	mux.HandleFunc("/v1/same", counted(func(w http.ResponseWriter, r *http.Request) {
		u, errU := strconv.Atoi(r.URL.Query().Get("u"))
		v, errV := strconv.Atoi(r.URL.Query().Get("v"))
		if errU != nil || errV != nil {
			httpError(w, http.StatusBadRequest, "need integer query params u and v")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"u": u, "v": v, "same": sv.SameComponent(u, v),
		})
	}))
	mux.HandleFunc("/v1/stats", counted(func(w http.ResponseWriter, r *http.Request) {
		snap := sv.Snapshot()
		stats := map[string]any{
			"backend":    sv.Backend().String(),
			"n":          len(snap.Labels),
			"components": snap.NumComponents,
			"rounds":     snap.Stats.Rounds,
			"workers":    snap.Stats.Workers,
			"wall_ms":    float64(snap.Stats.Wall.Nanoseconds()) / 1e6,
		}
		if seq, ok := sv.DurableSeq(); ok {
			stats["durable_seq"] = seq
			if rec, ok := sv.RecoveryStats(); ok {
				stats["recovered_batches"] = rec.ReplayedBatches
			}
		}
		writeJSON(w, http.StatusOK, stats)
	}))
	return mux
}

// newRouterHandler builds the sharded-mode surface over rt: health,
// metrics, pprof, tenant admin, and the per-tenant JSON endpoints.
func newRouterHandler(rt *pramcc.Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", counted(notFound))
	mux.HandleFunc("/healthz", counted(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"shards":  rt.Shards(),
			"tenants": len(rt.Tenants()),
		})
	}))
	mux.HandleFunc("/metrics", counted(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := pramcc.WriteMetrics(w); err != nil {
			mHTTPErrors.Inc()
		}
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/v1/admin/tenants", counted(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var req struct {
				Tenant string `json:"tenant"`
				N      int    `json:"n"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				httpError(w, http.StatusBadRequest, "bad body: "+err.Error())
				return
			}
			if !pramcc.ValidTenantID(req.Tenant) {
				httpError(w, http.StatusBadRequest, "invalid tenant id (want 1-64 chars of [a-zA-Z0-9._-], starting alphanumeric)")
				return
			}
			tn, err := rt.CreateTenant(req.Tenant, req.N)
			if err != nil {
				tenantError(w, err)
				return
			}
			writeJSON(w, http.StatusCreated, tenantStatsJSON(tn.Stats()))
		case http.MethodGet:
			ts := rt.Tenants()
			list := make([]map[string]any, len(ts))
			for i, tn := range ts {
				list[i] = tenantStatsJSON(tn.Stats())
			}
			writeJSON(w, http.StatusOK, map[string]any{
				"shards":  rt.Shards(),
				"tenants": list,
			})
		default:
			httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
		}
	}))
	mux.HandleFunc("/v1/t/{tenant}/ingest", counted(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		tn, err := rt.Tenant(r.PathValue("tenant"))
		if err != nil {
			tenantError(w, err)
			return
		}
		var req struct {
			Edges [][2]int `json:"edges"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: "+err.Error())
			return
		}
		start := time.Now()
		components, err := tn.Ingest(r.Context(), req.Edges)
		if err != nil {
			tenantError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"tenant":     tn.ID(),
			"edges":      len(req.Edges),
			"components": components,
			"wall_ms":    float64(time.Since(start).Nanoseconds()) / 1e6,
		})
	}))
	mux.HandleFunc("/v1/t/{tenant}/grow", counted(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		tn, err := rt.Tenant(r.PathValue("tenant"))
		if err != nil {
			tenantError(w, err)
			return
		}
		var req struct {
			N int `json:"n"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: "+err.Error())
			return
		}
		if err := tn.Grow(req.N); err != nil {
			tenantError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"tenant":     tn.ID(),
			"n":          tn.N(),
			"components": tn.NumComponents(),
		})
	}))
	mux.HandleFunc("/v1/t/{tenant}/same", counted(func(w http.ResponseWriter, r *http.Request) {
		tn, err := rt.Tenant(r.PathValue("tenant"))
		if err != nil {
			tenantError(w, err)
			return
		}
		u, errU := strconv.Atoi(r.URL.Query().Get("u"))
		v, errV := strconv.Atoi(r.URL.Query().Get("v"))
		if errU != nil || errV != nil {
			httpError(w, http.StatusBadRequest, "need integer query params u and v")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"tenant": tn.ID(), "u": u, "v": v, "same": tn.SameComponent(u, v),
		})
	}))
	mux.HandleFunc("/v1/t/{tenant}/stats", counted(func(w http.ResponseWriter, r *http.Request) {
		tn, err := rt.Tenant(r.PathValue("tenant"))
		if err != nil {
			tenantError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, tenantStatsJSON(tn.Stats()))
	}))
	return mux
}

// tenantStatsJSON renders one tenant's stats for admin listings and
// the stats endpoint.
func tenantStatsJSON(st pramcc.TenantStats) map[string]any {
	m := map[string]any{
		"tenant":         st.ID,
		"shard":          st.Shard,
		"n":              st.N,
		"components":     st.NumComponents,
		"queued":         st.Queued,
		"ingested_spans": st.IngestedSpans,
		"ingested_edges": st.IngestedEdges,
	}
	if st.Durable {
		m["durable_seq"] = st.DurableSeq
	}
	return m
}

// tenantError maps the router's error taxonomy onto HTTP statuses:
// pressure is retryable (429), quota violations are not (422), and
// identity problems are 404/409.
func tenantError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, pramcc.ErrUnknownTenant):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, pramcc.ErrOverloaded), errors.Is(err, pramcc.ErrTenantBacklog):
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, pramcc.ErrVertexQuota):
		httpError(w, http.StatusUnprocessableEntity, err.Error())
	case errors.Is(err, pramcc.ErrTenantExists):
		httpError(w, http.StatusConflict, err.Error())
	default:
		httpError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

// counted wraps a handler with the request counter.
func counted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mHTTPRequests.Inc()
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	mHTTPErrors.Inc()
	writeJSON(w, code, map[string]any{"error": msg})
}
