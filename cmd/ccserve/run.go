package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	pramcc "repro"
	"repro/graph"
	"repro/internal/obs"
)

// ccserve's own serving metrics, registered once per process alongside
// the library's (duplicate registration panics, so these live at
// package scope, not in run).
var (
	mHTTPRequests = obs.Default.Counter("pramcc_http_requests_total",
		"HTTP requests served by ccserve (all endpoints)")
	mHTTPErrors = obs.Default.Counter("pramcc_http_errors_total",
		"HTTP requests ccserve answered with a 4xx/5xx status")
)

// run parses args and either prints the metric-name list or serves;
// factored out of main for testing (the HTTP surface itself is tested
// through newHandler with httptest, without binding a port).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ccserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "ops HTTP listen address")
	var backend pramcc.Backend
	fs.TextVar(&backend, "backend", pramcc.BackendIncremental,
		"service backend: "+strings.Join(pramcc.BackendNames(), ", ")+
			" (streaming ingest and grow need incremental)")
	n := fs.Int("n", 0, "initial vertex count (ignored when -graph sets the vertex set)")
	workers := fs.Int("workers", 0, "worker goroutines for solves and ingests (0 = GOMAXPROCS)")
	graphPath := fs.String("graph", "", "preload a graph file (text edge list or binary) via Update before serving")
	dataDir := fs.String("data", "", "durable data directory: snapshots + ingest WAL, warm-started on restart (incremental backend only)")
	ckptEvery := fs.Int("checkpoint-every", 64, "with -data, checkpoint a snapshot every K logged batches")
	events := fs.String("events", "", "attach the JSON event sink: a file path, or \"stderr\"")
	listMetrics := fs.Bool("list-metrics", false, "print the registered metric names, one per line, and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listMetrics {
		for _, name := range pramcc.MetricNames() {
			fmt.Fprintln(out, name)
		}
		return nil
	}

	if *events != "" {
		w := io.Writer(os.Stderr)
		if *events != "stderr" {
			f, err := os.Create(*events)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		pramcc.SetEventSink(pramcc.NewJSONEventSink(w))
		defer pramcc.SetEventSink(nil)
	}

	var sv *pramcc.Service
	var err error
	if *dataDir != "" {
		sv, err = pramcc.Open(*dataDir,
			pramcc.WithBackend(backend), pramcc.WithWorkers(*workers),
			pramcc.WithInitialVertices(*n), pramcc.WithCheckpointEvery(*ckptEvery))
		if err != nil {
			return err
		}
		if stats, ok := sv.RecoveryStats(); ok {
			fmt.Fprintf(out, "recovered %s: snapshot seq=%d, replayed %d batches (%d edges) in %v\n",
				*dataDir, stats.SnapshotSeq, stats.ReplayedBatches, stats.ReplayedEdges, stats.Duration)
		} else {
			fmt.Fprintf(out, "created durable store %s\n", *dataDir)
		}
	} else {
		sv, err = pramcc.NewService(*n,
			pramcc.WithBackend(backend), pramcc.WithWorkers(*workers))
		if err != nil {
			return err
		}
	}
	defer sv.Close()

	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		g, err := graph.ReadAuto(f)
		f.Close()
		if err != nil {
			return err
		}
		res, err := sv.Update(nil, g)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "preloaded %s: n=%d m=%d components=%d wall=%v\n",
			*graphPath, g.N, g.NumEdges(), res.NumComponents, res.Stats.Wall)
	}

	fmt.Fprintf(out, "serving backend=%v n=%d on http://%s (endpoints: /healthz /metrics /debug/pprof/ /v1/...)\n",
		backend, sv.N(), *addr)
	srv := &http.Server{Addr: *addr, Handler: newHandler(sv)}
	return srv.ListenAndServe()
}

// newHandler builds the full ops surface over sv: health, metrics,
// pprof, and the JSON serving endpoints.
func newHandler(sv *pramcc.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", counted(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":     "ok",
			"backend":    sv.Backend().String(),
			"n":          sv.N(),
			"components": sv.NumComponents(),
		})
	}))
	mux.HandleFunc("/metrics", counted(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := pramcc.WriteMetrics(w); err != nil {
			mHTTPErrors.Inc()
		}
	}))
	// net/http/pprof registers on http.DefaultServeMux as a side effect
	// of its import; wire its handlers into our mux explicitly so the
	// profiles are served regardless of which mux the server uses.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/v1/ingest", counted(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req struct {
			Edges [][2]int `json:"edges"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: "+err.Error())
			return
		}
		start := time.Now()
		res, err := sv.Ingest(r.Context(), req.Edges)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"edges":      len(req.Edges),
			"components": res.NumComponents,
			"wall_ms":    float64(time.Since(start).Nanoseconds()) / 1e6,
		})
	}))
	mux.HandleFunc("/v1/grow", counted(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req struct {
			N int `json:"n"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: "+err.Error())
			return
		}
		if err := sv.Grow(req.N); err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"n":          sv.N(),
			"components": sv.NumComponents(),
		})
	}))
	mux.HandleFunc("/v1/same", counted(func(w http.ResponseWriter, r *http.Request) {
		u, errU := strconv.Atoi(r.URL.Query().Get("u"))
		v, errV := strconv.Atoi(r.URL.Query().Get("v"))
		if errU != nil || errV != nil {
			httpError(w, http.StatusBadRequest, "need integer query params u and v")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"u": u, "v": v, "same": sv.SameComponent(u, v),
		})
	}))
	mux.HandleFunc("/v1/stats", counted(func(w http.ResponseWriter, r *http.Request) {
		snap := sv.Snapshot()
		stats := map[string]any{
			"backend":    sv.Backend().String(),
			"n":          len(snap.Labels),
			"components": snap.NumComponents,
			"rounds":     snap.Stats.Rounds,
			"workers":    snap.Stats.Workers,
			"wall_ms":    float64(snap.Stats.Wall.Nanoseconds()) / 1e6,
		}
		if seq, ok := sv.DurableSeq(); ok {
			stats["durable_seq"] = seq
			if rec, ok := sv.RecoveryStats(); ok {
				stats["recovered_batches"] = rec.ReplayedBatches
			}
		}
		writeJSON(w, http.StatusOK, stats)
	}))
	return mux
}

// counted wraps a handler with the request counter.
func counted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mHTTPRequests.Inc()
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	mHTTPErrors.Inc()
	writeJSON(w, code, map[string]any{"error": msg})
}
