package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	pramcc "repro"
)

// newRouterServer spins up the sharded-mode surface on an httptest
// listener, as run does with -shards.
func newRouterServer(t *testing.T, cfg pramcc.RouterConfig) (*httptest.Server, *pramcc.Router) {
	t.Helper()
	rt, err := pramcc.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(newRouterHandler(rt))
	t.Cleanup(ts.Close)
	return ts, rt
}

func postJSON(t *testing.T, url, body string, into any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func createTenant(t *testing.T, ts *httptest.Server, id string, n int) {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/admin/tenants",
		fmt.Sprintf(`{"tenant":%q,"n":%d}`, id, n), nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: status %d", id, resp.StatusCode)
	}
}

func TestTenantAdminAndRoundTrip(t *testing.T) {
	ts, rt := newRouterServer(t, pramcc.RouterConfig{Shards: 4})

	var created struct {
		Tenant string `json:"tenant"`
		Shard  int    `json:"shard"`
		N      int    `json:"n"`
	}
	resp := postJSON(t, ts.URL+"/v1/admin/tenants", `{"tenant":"acme","n":6}`, &created)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	if created.Tenant != "acme" || created.N != 6 || created.Shard != rt.ShardOf("acme") {
		t.Fatalf("created = %+v", created)
	}
	createTenant(t, ts, "globex", 4)

	// Error taxonomy on the admin endpoint.
	if resp := postJSON(t, ts.URL+"/v1/admin/tenants", `{"tenant":"acme","n":6}`, nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate create: status %d, want 409", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/admin/tenants", `{"tenant":"../evil","n":1}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid id: status %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/admin/tenants", `{"tenant":`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d, want 400", resp.StatusCode)
	}

	// Ingest → same → stats on one tenant; the other stays empty.
	var ing struct {
		Components int `json:"components"`
		Edges      int `json:"edges"`
	}
	resp = postJSON(t, ts.URL+"/v1/t/acme/ingest", `{"edges":[[0,1],[1,2]]}`, &ing)
	if resp.StatusCode != http.StatusOK || ing.Components != 4 || ing.Edges != 2 {
		t.Fatalf("ingest: status %d body %+v", resp.StatusCode, ing)
	}
	var same struct {
		Same bool `json:"same"`
	}
	getJSON(t, ts.URL+"/v1/t/acme/same?u=0&v=2", &same)
	if !same.Same {
		t.Error("acme 0~2 should be connected")
	}
	getJSON(t, ts.URL+"/v1/t/globex/same?u=0&v=2", &same)
	if same.Same {
		t.Error("globex must not see acme's edges")
	}
	var stats struct {
		Tenant        string `json:"tenant"`
		N             int    `json:"n"`
		Components    int    `json:"components"`
		IngestedSpans int64  `json:"ingested_spans"`
		IngestedEdges int64  `json:"ingested_edges"`
		Queued        int    `json:"queued"`
	}
	getJSON(t, ts.URL+"/v1/t/acme/stats", &stats)
	if stats.N != 6 || stats.Components != 4 || stats.IngestedSpans != 1 || stats.IngestedEdges != 2 || stats.Queued != 0 {
		t.Errorf("stats = %+v", stats)
	}

	// Grow through the endpoint.
	var grown struct {
		N int `json:"n"`
	}
	resp = postJSON(t, ts.URL+"/v1/t/acme/grow", `{"n":10}`, &grown)
	if resp.StatusCode != http.StatusOK || grown.N != 10 {
		t.Fatalf("grow: status %d n %d", resp.StatusCode, grown.N)
	}

	// Admin listing shows both tenants, sorted.
	var list struct {
		Shards  int `json:"shards"`
		Tenants []struct {
			Tenant string `json:"tenant"`
			N      int    `json:"n"`
		} `json:"tenants"`
	}
	getJSON(t, ts.URL+"/v1/admin/tenants", &list)
	if list.Shards != 4 || len(list.Tenants) != 2 ||
		list.Tenants[0].Tenant != "acme" || list.Tenants[1].Tenant != "globex" {
		t.Errorf("admin list = %+v", list)
	}

	// Unknown tenant → 404 on every tenant route.
	for _, probe := range []func() *http.Response{
		func() *http.Response { return postJSON(t, ts.URL+"/v1/t/ghost/ingest", `{"edges":[]}`, nil) },
		func() *http.Response { return postJSON(t, ts.URL+"/v1/t/ghost/grow", `{"n":1}`, nil) },
		func() *http.Response { return getJSON(t, ts.URL+"/v1/t/ghost/same?u=0&v=1", nil) },
		func() *http.Response { return getJSON(t, ts.URL+"/v1/t/ghost/stats", nil) },
	} {
		if resp := probe(); resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown tenant: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestUnknownRoutesAnswerJSON404: satellite fix — every unclaimed
// route, in both serving modes, answers a JSON 404 (and a wrong
// method a JSON 405), never a plain-text or empty body.
func TestUnknownRoutesAnswerJSON404(t *testing.T) {
	single, _ := newTestServer(t, 2)
	sharded, _ := newRouterServer(t, pramcc.RouterConfig{Shards: 2})
	for _, ts := range []*httptest.Server{single, sharded} {
		for _, path := range []string{"/v1/nope", "/v1/", "/nope", "/"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			var body struct {
				Error string `json:"error"`
			}
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("GET %s: content type %q, want application/json", path, ct)
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
				t.Errorf("GET %s: body not a JSON error (%v)", path, err)
			}
			resp.Body.Close()
		}
	}
	// Wrong method on a known route: JSON 405.
	resp, err := http.Get(sharded.URL + "/v1/t/any/ingest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET ingest: status %d, want 405", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET ingest: content type %q", ct)
	}
}

func TestTenantVertexQuota422(t *testing.T) {
	ts, _ := newRouterServer(t, pramcc.RouterConfig{Shards: 2, MaxVertices: 100})
	if resp := postJSON(t, ts.URL+"/v1/admin/tenants", `{"tenant":"big","n":101}`, nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("oversized create: status %d, want 422", resp.StatusCode)
	}
	createTenant(t, ts, "ok", 10)
	if resp := postJSON(t, ts.URL+"/v1/t/ok/grow", `{"n":101}`, nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("oversized grow: status %d, want 422", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/t/ok/grow", `{"n":100}`, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("quota-sized grow: status %d, want 200", resp.StatusCode)
	}
}

// TestBackpressure429: with a one-span tenant backlog quota, a second
// ingest arriving while a large first batch is still being applied is
// rejected with 429. The race against the engine finishing first is
// real, so the scenario retries with growing batches; the labeling
// stays correct either way, and a well-timed attempt must observe the
// documented 429 + JSON error shape.
func TestBackpressure429(t *testing.T) {
	ts, rt := newRouterServer(t, pramcc.RouterConfig{Shards: 1, TenantQueueCap: 1, CoalesceLimit: 1})
	const n = 1 << 20
	if _, err := rt.CreateTenant("acme", n); err != nil {
		t.Fatal(err)
	}

	edges := 1 << 16
	for attempt := 0; attempt < 6; attempt++ {
		// One big chain batch, submitted asynchronously.
		var sb strings.Builder
		sb.WriteString(`{"edges":[`)
		for i := 0; i < edges; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "[%d,%d]", i, i+1)
		}
		sb.WriteString("]}")
		firstDone := make(chan int, 1)
		go func() {
			resp, err := http.Post(ts.URL+"/v1/t/acme/ingest", "application/json",
				bytes.NewReader([]byte(sb.String())))
			if err != nil {
				firstDone <- 0
				return
			}
			resp.Body.Close()
			firstDone <- resp.StatusCode
		}()

		// Wait until the big batch is observably accepted (queued ≥ 1)
		// before probing — a probe must never steal the backlog slot
		// and bounce the big batch itself.
		accepted := false
		deadline := time.Now().Add(10 * time.Second)
		for !accepted && firstDone != nil && time.Now().Before(deadline) {
			select {
			case code := <-firstDone:
				if code != http.StatusOK {
					t.Fatalf("big ingest: status %d", code)
				}
				firstDone = nil // finished before we saw it queued
			default:
				var st struct {
					Queued int `json:"queued"`
				}
				getJSON(t, ts.URL+"/v1/t/acme/stats", &st)
				accepted = st.Queued >= 1
			}
		}
		// Probe small ingests while the big one is in flight; any 429
		// proves the backpressure path end to end.
		got429 := false
		for !got429 && firstDone != nil {
			select {
			case code := <-firstDone:
				if code != http.StatusOK {
					t.Fatalf("big ingest: status %d", code)
				}
				firstDone = nil // big batch finished; can't 429 anymore
			default:
				var body struct {
					Error string `json:"error"`
				}
				resp := postJSON(t, ts.URL+"/v1/t/acme/ingest", `{"edges":[[0,1]]}`, &body)
				if resp.StatusCode == http.StatusTooManyRequests {
					if body.Error == "" {
						t.Error("429 without JSON error body")
					}
					got429 = true
				} else if resp.StatusCode != http.StatusOK {
					t.Fatalf("small ingest: status %d", resp.StatusCode)
				}
			}
		}
		if firstDone != nil {
			if code := <-firstDone; code != http.StatusOK {
				t.Fatalf("big ingest: status %d", code)
			}
		}
		if got429 {
			var same struct {
				Same bool `json:"same"`
			}
			getJSON(t, ts.URL+fmt.Sprintf("/v1/t/acme/same?u=0&v=%d", edges), &same)
			if !same.Same {
				t.Error("chain broken after backpressure")
			}
			return
		}
		edges *= 2 // engine outran us; raise the in-flight time
		if 2*edges >= n {
			break
		}
	}
	t.Skip("engine applied every batch before a concurrent ingest could arrive; backpressure path covered deterministically in internal/shard")
}

// TestConcurrentTenantsOverHTTP: eight tenants ingesting concurrently
// through the HTTP surface; every tenant ends with its own correct
// connectivity.
func TestConcurrentTenantsOverHTTP(t *testing.T) {
	ts, _ := newRouterServer(t, pramcc.RouterConfig{Shards: 4})
	const tenants, chain = 8, 60
	for i := 0; i < tenants; i++ {
		createTenant(t, ts, fmt.Sprintf("t%d", i), chain+1)
	}
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/t/t%d/ingest", ts.URL, i)
			for e := 0; e < chain; e++ {
				for {
					resp, err := http.Post(url, "application/json",
						strings.NewReader(fmt.Sprintf(`{"edges":[[%d,%d]]}`, e, e+1)))
					if err != nil {
						t.Errorf("tenant %d: %v", i, err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests {
						t.Errorf("tenant %d edge %d: status %d", i, e, resp.StatusCode)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < tenants; i++ {
		var same struct {
			Same bool `json:"same"`
		}
		getJSON(t, ts.URL+fmt.Sprintf("/v1/t/t%d/same?u=0&v=%d", i, chain), &same)
		if !same.Same {
			t.Errorf("tenant %d chain broken", i)
		}
	}
}

// TestTenantsDurableAcrossRestart: the sharded, multi-tenant version
// of the kill-and-restart smoke — both tenants recover their durable
// sequence and connectivity from DataDir/t without any re-ingest.
func TestTenantsDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := pramcc.RouterConfig{Shards: 2, DataDir: dir}

	rt1, err := pramcc.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(newRouterHandler(rt1))
	createTenant(t, ts1, "acme", 6)
	createTenant(t, ts1, "globex", 4)
	postJSON(t, ts1.URL+"/v1/t/acme/ingest", `{"edges":[[0,1],[1,2]]}`, nil)
	postJSON(t, ts1.URL+"/v1/t/globex/ingest", `{"edges":[[2,3]]}`, nil)
	// No graceful shutdown of the services: the WAL fsyncs per batch.
	ts1.Close()
	rt1.Close()

	rt2, err := pramcc.NewRouter(cfg)
	if err != nil {
		t.Fatalf("warm restart: %v", err)
	}
	t.Cleanup(rt2.Close)
	ts2 := httptest.NewServer(newRouterHandler(rt2))
	t.Cleanup(ts2.Close)

	for _, tc := range []struct {
		tenant     string
		n          int
		u, v       int
		durableSeq uint64
	}{
		{"acme", 6, 0, 2, 1},
		{"globex", 4, 2, 3, 1},
	} {
		var stats struct {
			N          int    `json:"n"`
			DurableSeq uint64 `json:"durable_seq"`
			Queued     int    `json:"queued"`
		}
		resp := getJSON(t, ts2.URL+"/v1/t/"+tc.tenant+"/stats", &stats)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %s not recovered: status %d", tc.tenant, resp.StatusCode)
		}
		if stats.N != tc.n || stats.DurableSeq != tc.durableSeq {
			t.Errorf("tenant %s stats after restart = %+v", tc.tenant, stats)
		}
		var same struct {
			Same bool `json:"same"`
		}
		getJSON(t, ts2.URL+fmt.Sprintf("/v1/t/%s/same?u=%d&v=%d", tc.tenant, tc.u, tc.v), &same)
		if !same.Same {
			t.Errorf("tenant %s lost connectivity across restart", tc.tenant)
		}
	}
}

func TestShardsRejectsGraphPreload(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-shards", "2", "-graph", "whatever.txt"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("run with -shards and -graph: %v", err)
	}
}
