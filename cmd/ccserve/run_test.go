package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	pramcc "repro"
)

func TestListMetrics(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list-metrics"}, &out); err != nil {
		t.Fatalf("run -list-metrics: %v", err)
	}
	names := strings.Fields(out.String())
	if len(names) == 0 {
		t.Fatal("no metric names printed")
	}
	want := map[string]bool{
		"pramcc_ingest_edges_total":  false,
		"pramcc_snapshot_seq":        false,
		"pramcc_http_requests_total": false,
		"pramcc_pool_workers":        false,
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("metric %s missing from -list-metrics output", n)
		}
	}
}

func TestUnknownFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("expected error for unknown flag")
	}
}

// newTestServer builds the ops surface over a fresh incremental
// service, as run does, but on an httptest listener.
func newTestServer(t *testing.T, n int) (*httptest.Server, *pramcc.Service) {
	t.Helper()
	sv, err := pramcc.NewService(n, pramcc.WithBackend(pramcc.BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sv.Close)
	ts := httptest.NewServer(newHandler(sv))
	t.Cleanup(ts.Close)
	return ts, sv
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, 4)
	var h struct {
		Status     string `json:"status"`
		Backend    string `json:"backend"`
		N          int    `json:"n"`
		Components int    `json:"components"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if h.Status != "ok" || h.Backend != "incremental" || h.N != 4 || h.Components != 4 {
		t.Fatalf("unexpected health: %+v", h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, 4)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, want := range []string{
		"# TYPE pramcc_ingest_edges_total counter",
		"# TYPE pramcc_snapshot_seq gauge",
		"# TYPE pramcc_ingest_duration_seconds histogram",
		"pramcc_http_requests_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestIngestSameStatsRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, 6)

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
		strings.NewReader(`{"edges":[[0,1],[1,2],[3,4]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ing struct {
		Edges      int `json:"edges"`
		Components int `json:"components"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ing.Edges != 3 || ing.Components != 3 {
		t.Fatalf("ingest status=%d resp=%+v", resp.StatusCode, ing)
	}

	var same struct {
		Same bool `json:"same"`
	}
	getJSON(t, ts.URL+"/v1/same?u=0&v=2", &same)
	if !same.Same {
		t.Error("0 and 2 should be connected")
	}
	getJSON(t, ts.URL+"/v1/same?u=0&v=5", &same)
	if same.Same {
		t.Error("0 and 5 should not be connected")
	}

	var stats struct {
		N          int `json:"n"`
		Components int `json:"components"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.N != 6 || stats.Components != 3 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestGrowEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, 2)
	resp, err := http.Post(ts.URL+"/v1/grow", "application/json",
		strings.NewReader(`{"n":5}`))
	if err != nil {
		t.Fatal(err)
	}
	var g struct {
		N          int `json:"n"`
		Components int `json:"components"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if g.N != 5 || g.Components != 5 {
		t.Fatalf("grow resp %+v", g)
	}
}

func TestIngestRejectsBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, 4)
	before := readCounter(t, ts, "pramcc_http_errors_total")

	// Wrong method.
	resp := getJSON(t, ts.URL+"/v1/ingest", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest status %d", resp.StatusCode)
	}
	// Malformed body.
	resp2, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", resp2.StatusCode)
	}
	// Out-of-range edge.
	resp3, err := http.Post(ts.URL+"/v1/ingest", "application/json",
		strings.NewReader(`{"edges":[[0,99]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("out-of-range status %d", resp3.StatusCode)
	}

	if after := readCounter(t, ts, "pramcc_http_errors_total"); after < before+3 {
		t.Errorf("pramcc_http_errors_total = %g, want >= %g", after, before+3)
	}
}

func TestPprofIndex(t *testing.T) {
	ts, _ := newTestServer(t, 1)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}

// readCounter scrapes /metrics and returns the named sample's value.
func readCounter(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in scrape", name)
	return 0
}

// TestDurableStatsAcrossRestart is the in-process version of the CI
// kill-and-restart smoke: ingest into a durable service, drop it
// without any graceful shutdown, reopen the same directory, and the
// ops surface must report the recovered durable sequence number and
// still answer connectivity queries correctly.
func TestDurableStatsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	sv, err := pramcc.Open(dir, pramcc.WithInitialVertices(4))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(sv))
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
		strings.NewReader(`{"edges":[[0,1],[1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	// No Close: the WAL fsyncs per batch, so a hard stop loses nothing.
	ts.Close()

	sv2, err := pramcc.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(sv2.Close)
	ts2 := httptest.NewServer(newHandler(sv2))
	t.Cleanup(ts2.Close)

	var stats struct {
		N          int    `json:"n"`
		DurableSeq uint64 `json:"durable_seq"`
		Recovered  int    `json:"recovered_batches"`
	}
	getJSON(t, ts2.URL+"/v1/stats", &stats)
	if stats.N != 4 || stats.DurableSeq != 1 || stats.Recovered != 1 {
		t.Fatalf("recovered stats %+v, want n=4 durable_seq=1 recovered_batches=1", stats)
	}
	var same struct {
		Same bool `json:"same"`
	}
	getJSON(t, ts2.URL+"/v1/same?u=0&v=2", &same)
	if !same.Same {
		t.Error("0 and 2 should be connected after recovery")
	}
}
