package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	pramcc "repro"
	"repro/graph"
)

// run parses args and executes ccfind against in/out; factored out of
// main for testing.
func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("ccfind", flag.ContinueOnError)
	algo := fs.String("algo", "fast", "simulated algorithm: fast (Thm 3), loglog (Thm 1), or vanilla")
	// The backend list in the usage string is enumerated from the
	// pramcc registry, not hard-coded: a newly registered backend is
	// selectable here with no CLI change.
	var backend pramcc.Backend
	fs.TextVar(&backend, "backend", pramcc.BackendSimulated,
		"execution backend for the one-shot run: "+strings.Join(pramcc.BackendNames(), ", ")+
			" (the non-simulated engines are seedless and not -algo selectable)")
	forest := fs.Bool("forest", false, "also compute a spanning forest (Thm 2)")
	batches := fs.Int("batches", 0, "replay the edges in K batches through the streaming incremental backend, reporting per-batch latency (0 = one-shot run)")
	workers := fs.Int("workers", 0, "worker goroutines for the run — one-shot and -batches alike (0 = GOMAXPROCS)")
	grain := fs.Int("grain", 0, "scheduler claim grain for the native and incremental engines (0 = adaptive sizing)")
	seed := fs.Uint64("seed", 1, "random seed")
	verbose := fs.Bool("v", false, "print per-vertex labels")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := in
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	// ReadAuto accepts both graph formats: the text edge list and the
	// binary format written by graphgen -format bin (see graph.ReadAuto).
	g, err := graph.ReadAuto(r)
	if err != nil {
		return err
	}

	if *batches > 0 {
		if *forest {
			return fmt.Errorf("-forest is not supported with -batches (the streaming backend maintains components, not a forest)")
		}
		// The streaming backend is deterministic and not algorithm-
		// selectable: reject explicitly-set flags it would silently
		// ignore rather than run a different engine than asked for.
		var conflict error
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "algo", "seed":
				conflict = fmt.Errorf("-%s is not supported with -batches (the streaming incremental backend is seedless and not algorithm-selectable)", f.Name)
			case "backend":
				if backend != pramcc.BackendIncremental {
					conflict = fmt.Errorf("-batches always runs the incremental backend; -backend %v conflicts", backend)
				}
			}
		})
		if conflict != nil {
			return conflict
		}
		return runBatches(g, *batches, *workers, *grain, *verbose, out)
	}

	if backend != pramcc.BackendSimulated {
		// Engine path: the non-simulated backends are seedless and run
		// exactly one algorithm, so reject explicitly-set flags they
		// would silently ignore.
		var conflict error
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "algo", "seed":
				conflict = fmt.Errorf("-%s is not supported with -backend %v (that engine is seedless and not algorithm-selectable)", f.Name, backend)
			case "forest":
				conflict = fmt.Errorf("-forest is not supported with -backend %v (the spanning forest algorithm is simulator-only)", backend)
			}
		})
		if conflict != nil {
			return conflict
		}
		res, err := pramcc.Components(g, pramcc.WithBackend(backend), pramcc.WithWorkers(*workers), pramcc.WithGrain(*grain))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "n=%d m=%d components=%d rounds=%d workers=%d grain=%s backend=%v wall=%v\n",
			g.N, g.NumEdges(), res.NumComponents, res.Stats.Rounds, res.Stats.Workers, grainLabel(res.Stats.Grain), res.Stats.Backend, res.Stats.Wall)
		if *verbose {
			for v, l := range res.Labels {
				fmt.Fprintf(out, "%d %d\n", v, l)
			}
		}
		return nil
	}

	// The simulator schedules through the same shard machinery but
	// always sizes its grain adaptively; reject an explicitly-set
	// -grain rather than silently ignore it.
	var conflict error
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "grain" {
			conflict = fmt.Errorf("-grain is not supported with the simulated backend (the simulator always sizes its scheduler grain adaptively)")
		}
	})
	if conflict != nil {
		return conflict
	}

	// -workers used to be consulted only by -batches; the one-shot
	// path silently ignored it. Thread it through every algorithm.
	common := []pramcc.Option{pramcc.WithSeed(*seed), pramcc.WithWorkers(*workers)}
	var res *pramcc.Result
	switch *algo {
	case "fast":
		res, err = pramcc.ConnectedComponents(g, common...)
	case "loglog":
		res, err = pramcc.ConnectedComponentsLogLog(g, common...)
	case "vanilla":
		res, err = pramcc.VanillaComponents(g, common...)
	default:
		return fmt.Errorf("unknown -algo %q (want fast, loglog, or vanilla)", *algo)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "n=%d m=%d components=%d rounds=%d pram-steps=%d workers=%d\n",
		g.N, g.NumEdges(), res.NumComponents, res.Stats.Rounds, res.Stats.PRAMSteps, res.Stats.Workers)
	if *verbose {
		for v, l := range res.Labels {
			fmt.Fprintf(out, "%d %d\n", v, l)
		}
	}

	if *forest {
		fr, err := pramcc.SpanningForest(g, common...)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "forest edges: %d\n", len(fr.Edges))
		for _, e := range fr.Edges {
			fmt.Fprintf(out, "%d %d\n", e[0], e[1])
		}
	}
	return nil
}

// grainLabel renders a claim-grain value for the run summary: the
// fixed grain, or "adaptive" for the 0 default.
func grainLabel(n int) string {
	if n == 0 {
		return "adaptive"
	}
	return fmt.Sprintf("%d", n)
}

// runBatches replays g's edges in k batches through the streaming
// incremental backend, printing one latency line per batch and a
// final summary. The replay is columnar end-to-end: each batch is a
// zero-copy SpanBatches slice of the loaded graph's arc columns,
// ingested with AddSpan, so nothing between the loader and the
// union-find materializes a [][2]int edge list.
func runBatches(g *graph.Graph, k, workers, grain int, verbose bool, out io.Writer) error {
	inc, err := pramcc.NewIncremental(g.N, pramcc.WithWorkers(workers), pramcc.WithGrain(grain))
	if err != nil {
		return err
	}
	defer inc.Close()
	// SpanBatches caps k at the edge count; report the real total.
	batches := g.SpanBatches(k)
	for _, batch := range batches {
		bs, err := inc.AddSpan(batch)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "batch %d/%d: edges=%d total-edges=%d components=%d wall=%v\n",
			bs.Batch, len(batches), bs.Edges, bs.TotalEdges, bs.Components, bs.Wall)
	}
	fmt.Fprintf(out, "n=%d m=%d components=%d batches=%d grain=%s backend=incremental\n",
		g.N, g.NumEdges(), inc.ComponentCount(), inc.BatchCount(), grainLabel(grain))
	if verbose {
		for v, l := range inc.LabelsInto(nil) {
			fmt.Fprintf(out, "%d %d\n", v, l)
		}
	}
	return nil
}
