package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	pramcc "repro"
	"repro/graph"
)

// run parses args and executes ccfind against in/out; factored out of
// main for testing.
func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("ccfind", flag.ContinueOnError)
	algo := fs.String("algo", "fast", "fast (Thm 3), loglog (Thm 1), or vanilla")
	forest := fs.Bool("forest", false, "also compute a spanning forest (Thm 2)")
	seed := fs.Uint64("seed", 1, "random seed")
	verbose := fs.Bool("v", false, "print per-vertex labels")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := in
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return err
	}

	var res *pramcc.Result
	switch *algo {
	case "fast":
		res, err = pramcc.ConnectedComponents(g, pramcc.WithSeed(*seed))
	case "loglog":
		res, err = pramcc.ConnectedComponentsLogLog(g, pramcc.WithSeed(*seed))
	case "vanilla":
		res, err = pramcc.VanillaComponents(g, pramcc.WithSeed(*seed))
	default:
		return fmt.Errorf("unknown -algo %q (want fast, loglog, or vanilla)", *algo)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "n=%d m=%d components=%d rounds=%d pram-steps=%d\n",
		g.N, g.NumEdges(), res.NumComponents, res.Stats.Rounds, res.Stats.PRAMSteps)
	if *verbose {
		for v, l := range res.Labels {
			fmt.Fprintf(out, "%d %d\n", v, l)
		}
	}

	if *forest {
		fr, err := pramcc.SpanningForest(g, pramcc.WithSeed(*seed))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "forest edges: %d\n", len(fr.Edges))
		for _, e := range fr.Edges {
			fmt.Fprintf(out, "%d %d\n", e[0], e[1])
		}
	}
	return nil
}
