package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/graph"
)

func edgeListString(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRunStdinAllAlgorithms(t *testing.T) {
	g := graph.DisjointUnion(graph.Path(10), graph.Clique(5))
	in := edgeListString(t, g)
	for _, algo := range []string{"fast", "loglog", "vanilla"} {
		var out bytes.Buffer
		if err := run([]string{"-algo", algo}, strings.NewReader(in), &out); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "components=2") {
			t.Fatalf("%s output missing component count: %s", algo, out.String())
		}
	}
}

func TestRunVerboseAndForest(t *testing.T) {
	g := graph.Cycle(6)
	var out bytes.Buffer
	err := run([]string{"-v", "-forest"}, strings.NewReader(edgeListString(t, g)), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "forest edges: 5") {
		t.Fatalf("missing forest output: %s", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) < 1+6+1+5 {
		t.Fatalf("verbose output too short:\n%s", s)
	}
}

func TestRunFromFile(t *testing.T) {
	g := graph.Star(8)
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "components=1") {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

// TestRunWorkersThreadedThroughOneShot: -workers used to be consulted
// only by -batches; the one-shot -algo path must honor it too, visible
// as workers=N in the summary line (Stats.Workers is the pool size the
// run actually used).
func TestRunWorkersThreadedThroughOneShot(t *testing.T) {
	g := graph.DisjointUnion(graph.Path(10), graph.Clique(5))
	in := edgeListString(t, g)
	for _, algo := range []string{"fast", "loglog", "vanilla"} {
		var out bytes.Buffer
		if err := run([]string{"-algo", algo, "-workers", "3"}, strings.NewReader(in), &out); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "workers=3") {
			t.Fatalf("%s: -workers 3 not honored by one-shot run: %s", algo, out.String())
		}
	}
	// -forest shares the option set.
	var out bytes.Buffer
	if err := run([]string{"-forest", "-workers", "2"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "workers=2") {
		t.Fatalf("-forest run ignored -workers: %s", out.String())
	}
}

// TestRunBinaryInput: ccfind must accept the binary format
// transparently, from a file and from stdin.
func TestRunBinaryInput(t *testing.T) {
	g := graph.DisjointUnion(graph.Cycle(12), graph.Star(7))
	var bin bytes.Buffer
	if err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := os.WriteFile(path, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "components=2") {
		t.Fatalf("binary file run: %s", out.String())
	}
	out.Reset()
	if err := run([]string{"-batches", "3"}, bytes.NewReader(bin.Bytes()), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "backend=incremental") || !strings.Contains(out.String(), "components=2") {
		t.Fatalf("binary stdin -batches run: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-algo", "nope"}, strings.NewReader("2 1\n0 1\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("bad algo accepted")
	}
	if err := run(nil, strings.NewReader("garbage"), &bytes.Buffer{}); err == nil {
		t.Fatal("bad input accepted")
	}
	if err := run([]string{"/definitely/not/a/file"}, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunBatches(t *testing.T) {
	g := graph.DisjointUnion(graph.Path(30), graph.Clique(6))
	var out bytes.Buffer
	if err := run([]string{"-batches", "4", "-v"}, strings.NewReader(edgeListString(t, g)), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"batch 1/4:", "batch 4/4:", "components=2", "batches=4", "backend=incremental"} {
		if !strings.Contains(s, want) {
			t.Fatalf("batches output missing %q:\n%s", want, s)
		}
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 4+1+g.N {
		t.Fatalf("expected 4 batch lines + summary + %d label lines:\n%s", g.N, s)
	}
}

func TestRunBatchesRejectsForest(t *testing.T) {
	if err := run([]string{"-batches", "2", "-forest"}, strings.NewReader("2 1\n0 1\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("-batches with -forest accepted")
	}
}

func TestRunBatchesRejectsAlgoAndSeed(t *testing.T) {
	for _, args := range [][]string{
		{"-batches", "2", "-algo", "vanilla"},
		{"-batches", "2", "-seed", "7"},
	} {
		if err := run(args, strings.NewReader("3 2\n0 1\n1 2\n"), &bytes.Buffer{}); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

func TestRunBatchesCappedDenominator(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-batches", "10"}, strings.NewReader("4 3\n0 1\n1 2\n2 3\n"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "batch 3/3:") || strings.Contains(s, "/10:") {
		t.Fatalf("denominator not capped to actual batch count:\n%s", s)
	}
}

// TestRunBackendFlag: -backend is a flag.TextVar over the pramcc
// registry — case-insensitive names and aliases select the engine,
// conflicting simulator-only flags are rejected, and unknown names
// fail parsing with the registered list.
func TestRunBackendFlag(t *testing.T) {
	g := graph.DisjointUnion(graph.Path(10), graph.Clique(5))
	in := edgeListString(t, g)
	for _, bk := range []string{"native", "NATIVE", "incremental", "inc", "simulated"} {
		var out bytes.Buffer
		if err := run([]string{"-backend", bk}, strings.NewReader(in), &out); err != nil {
			t.Fatalf("%s: %v", bk, err)
		}
		if !strings.Contains(out.String(), "components=2") {
			t.Fatalf("%s output: %s", bk, out.String())
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-backend", "native", "-v"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "backend=native") {
		t.Fatalf("summary line missing backend: %s", out.String())
	}
	if len(strings.Split(strings.TrimSpace(out.String()), "\n")) != 1+g.N {
		t.Fatalf("-v label lines missing:\n%s", out.String())
	}
	for _, args := range [][]string{
		{"-backend", "native", "-algo", "vanilla"},
		{"-backend", "native", "-seed", "3"},
		{"-backend", "inc", "-forest"},
		{"-backend", "gpu"},
		{"-batches", "2", "-backend", "native"},
	} {
		if err := run(args, strings.NewReader("3 2\n0 1\n1 2\n"), &bytes.Buffer{}); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
	// Explicitly naming the backend -batches implies is not a conflict.
	out.Reset()
	if err := run([]string{"-batches", "2", "-backend", "incremental"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "backend=incremental") {
		t.Fatalf("batches output: %s", out.String())
	}
}
