// Command ccfind computes the connected components (and optionally a
// spanning forest) of a graph read from an edge-list file (format:
// header "n m", then one "u v" line per edge; '#' comments allowed).
//
// Usage:
//
//	ccfind [-algo fast|loglog|vanilla] [-forest] [-seed N] [-v] [file]
//	ccfind -batches K [-workers N] [-v] [file]
//
// With no file, stdin is read. Output: a summary line; per-vertex
// "vertex label" pairs with -v; the forest edge list with -forest.
//
// With -batches K, the edge list is replayed in K batches through the
// streaming incremental backend (pramcc.Incremental): one line per
// batch with the running component count and the batch's ingestion
// latency, then the summary. This is the command-line view of the
// scenario experiment E12 measures (see EXPERIMENTS.md).
package main

import (
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ccfind: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
