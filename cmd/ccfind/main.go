// Command ccfind computes the connected components (and optionally a
// spanning forest) of a graph read from an edge-list file (format:
// header "n m", then one "u v" line per edge; '#' comments allowed).
//
// Usage:
//
//	ccfind [-algo fast|loglog|vanilla] [-forest] [-seed N] [-v] [file]
//
// With no file, stdin is read. Output: a summary line; per-vertex
// "vertex label" pairs with -v; the forest edge list with -forest.
package main

import (
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ccfind: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
