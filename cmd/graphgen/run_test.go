package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/graph"
)

func TestRunAllFamiliesEmitReadableGraphs(t *testing.T) {
	cases := [][]string{
		{"-family", "path", "-n", "10"},
		{"-family", "cycle", "-n", "12"},
		{"-family", "star", "-n", "9"},
		{"-family", "grid", "-rows", "4", "-cols", "5"},
		{"-family", "torus", "-rows", "4", "-cols", "4"},
		{"-family", "tree", "-n", "20"},
		{"-family", "gnm", "-n", "30", "-m", "60"},
		{"-family", "circulant", "-n", "15", "-k", "2"},
		{"-family", "hypercube", "-dim", "4"},
		{"-family", "rmat", "-n", "32", "-m", "100"},
		{"-family", "chunglu", "-n", "40", "-m", "80"},
		{"-family", "beads", "-beads", "4", "-size", "5", "-intradeg", "4"},
	}
	for _, args := range cases {
		t.Run(args[1], func(t *testing.T) {
			var out bytes.Buffer
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
			g, err := graph.ReadEdgeList(&out)
			if err != nil {
				t.Fatalf("output unreadable: %v", err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunBinaryFormat: -format bin emits the binary format, it decodes
// to the identical graph as the text output, and ReadAuto tells the
// two apart.
func TestRunBinaryFormat(t *testing.T) {
	args := []string{"-family", "gnm", "-n", "50", "-m", "120", "-seed", "3"}
	var txt, bin bytes.Buffer
	if err := run(args, &txt); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-format", "bin"}, args...), &bin); err != nil {
		t.Fatal(err)
	}
	gt, err := graph.ReadAuto(bytes.NewReader(txt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := graph.ReadAuto(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gb.N != gt.N || gb.NumEdges() != gt.NumEdges() {
		t.Fatalf("binary (%d,%d) != text (%d,%d)", gb.N, gb.NumEdges(), gt.N, gt.NumEdges())
	}
	for i := range gt.U {
		if gt.U[i] != gb.U[i] || gt.V[i] != gb.V[i] {
			t.Fatalf("arc %d differs", i)
		}
	}
	// The text parser must NOT accept binary output by accident.
	if _, err := graph.ReadEdgeList(bytes.NewReader(bin.Bytes())); err == nil {
		t.Fatal("text parser accepted binary output")
	}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run([]string{"-family", "path", "-n", "4", "-format", "xml"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunStats(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-family", "star", "-n", "10", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=10 m=9") {
		t.Fatalf("stats output wrong: %s", out.String())
	}
}

func TestRunUnknownFamily(t *testing.T) {
	if err := run([]string{"-family", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-family", "gnm", "-n", "50", "-m", "100", "-seed", "7"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-family", "gnm", "-n", "50", "-m", "100", "-seed", "7"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different graphs")
	}
}
