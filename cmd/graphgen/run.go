package main

import (
	"flag"
	"fmt"
	"io"

	"repro/graph"
)

// run parses args, builds the requested graph, and writes it to out;
// factored out of main for testing.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	family := fs.String("family", "gnm", "path|cycle|star|grid|tree|gnm|circulant|beads|hypercube|torus|rmat|chunglu")
	n := fs.Int("n", 1000, "vertices (path/cycle/star/tree/gnm/circulant/chunglu)")
	m := fs.Int("m", 4000, "edges (gnm/rmat/chunglu)")
	k := fs.Int("k", 4, "circulant width")
	dim := fs.Int("dim", 10, "hypercube dimension")
	rows := fs.Int("rows", 32, "grid/torus rows")
	cols := fs.Int("cols", 32, "grid/torus cols")
	beadsN := fs.Int("beads", 32, "bead count (beads)")
	size := fs.Int("size", 16, "bead size (beads)")
	intra := fs.Int("intradeg", 12, "intra-bead degree (beads)")
	bridges := fs.Int("bridges", 2, "bridges between beads (beads)")
	beta := fs.Float64("beta", 2.5, "power-law exponent (chunglu)")
	seed := fs.Int64("seed", 1, "random seed")
	format := fs.String("format", "text", "output format: text (edge list) or bin (binary, 8 bytes/edge; see graph.WriteBinary)")
	stats := fs.Bool("stats", false, "print a summary to stderr-style trailer instead of edges")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	switch *family {
	case "path":
		g = graph.Path(*n)
	case "cycle":
		g = graph.Cycle(*n)
	case "star":
		g = graph.Star(*n)
	case "grid":
		g = graph.Grid2D(*rows, *cols)
	case "torus":
		g = graph.Torus2D(*rows, *cols)
	case "tree":
		g = graph.RandomTree(*n, *seed)
	case "gnm":
		g = graph.Gnm(*n, *m, *seed)
	case "circulant":
		g = graph.Circulant(*n, *k)
	case "hypercube":
		g = graph.Hypercube(*dim)
	case "rmat":
		g = graph.RMAT(*n, *m, *seed)
	case "chunglu":
		g = graph.ChungLu(*n, *m, *beta, *seed)
	case "beads":
		g = graph.CliqueBeads(graph.CliqueBeadsSpec{
			Beads: *beadsN, Size: *size, IntraDeg: *intra, Bridges: *bridges, Seed: *seed,
		})
	default:
		return fmt.Errorf("unknown -family %q", *family)
	}
	if *stats {
		_, err := fmt.Fprintln(out, g.Summary().String())
		return err
	}
	switch *format {
	case "text":
		return g.WriteEdgeList(out)
	case "bin":
		return g.WriteBinary(out)
	default:
		return fmt.Errorf("unknown -format %q (want text or bin)", *format)
	}
}
