// Command graphgen emits workload graphs in the edge-list format read
// by ccfind, or a one-line summary with -stats.
//
// Usage:
//
//	graphgen -family path|cycle|star|grid|torus|tree|gnm|circulant|
//	                 hypercube|rmat|chunglu|beads
//	         [-n N] [-m M] [-rows R] [-cols C] [-dim D] [-k K]
//	         [-beads B] [-size S] [-intradeg D] [-bridges K]
//	         [-beta B] [-seed S] [-stats]
package main

import (
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphgen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
