package pramcc

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/graph"
	"repro/internal/ccbase"
	"repro/internal/pram"
	"repro/internal/spanning"
)

// ErrSolverClosed is returned by Solve/SpanningForest on a closed
// Solver (and by Service methods on a closed Service).
var ErrSolverClosed = errors.New("pramcc: solver is closed")

// Solver is the long-lived form of the one-shot entry points: a handle
// that owns its execution engine — the worker pool and the pre-sized
// scratch and label buffers — so that repeated solves amortize every
// allocation and engine construction across calls. On the native
// backend a steady-state Solve on same-sized graphs allocates nothing
// at all (see BenchmarkSolverReuse).
//
// The configuration (backend, workers, seed, algorithm parameters) is
// fixed at NewSolver time. Solve honours its context at every round
// (native, simulated) or batch (incremental) boundary: a cancelled or
// expired context makes Solve return ctx.Err() promptly, with no
// partial result; an already-cancelled context fails fast before any
// work.
//
// Solve and SpanningForest serialize on an internal mutex, so racing
// calls cannot corrupt the engine — but the *Result returned by Solve
// aliases solver-owned buffers and is rewritten by the next Solve on
// the same Solver. A Solver is therefore single-consumer: one
// goroutine solves and reads the result before solving again; results
// retained across solves must be copied. For serving results to many
// goroutines while recomputing, use Service, which publishes immutable
// snapshots for exactly that purpose. Close releases the engine's
// worker pool; it is idempotent, and a previously returned (copied)
// Result remains valid after it.
type Solver struct {
	mu     sync.Mutex
	cfg    config
	eng    engine
	closed bool

	// Reusable per-solve state, all guarded by mu.
	out  solveOutput
	seen []bool // countLabels scratch
	res  Result // the returned Result, rewritten by every Solve
}

// NewSolver builds a Solver from the same options the free functions
// take. WithBackend selects the engine (default BackendSimulated);
// WithWorkers sizes its pool once, at construction. An unregistered
// backend is an error naming the registered ones.
func NewSolver(opts ...Option) (*Solver, error) {
	return newSolverFromConfig(apply(opts))
}

func newSolverFromConfig(c config) (*Solver, error) {
	info, ok := lookupBackend(c.backend)
	if !ok {
		return nil, errUnknownBackend(int(c.backend))
	}
	return &Solver{cfg: c, eng: info.newEngine(&c)}, nil
}

// Backend returns the execution backend this Solver was built with.
func (s *Solver) Backend() Backend { return s.cfg.backend }

// Solve computes the connected components of g on the Solver's
// backend. See the Solver doc for the buffer-ownership and context
// contract.
func (s *Solver) Solve(ctx context.Context, g *graph.Graph) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solveLocked(ctx, g, &s.cfg, false)
}

// solveLocked runs one solve with s.mu held. c carries the per-call
// parameters (the Solver's own config, or a compatibility wrapper's
// per-call options). When copyOut is set the labels are copied into a
// fresh Result — the free functions' historical contract — instead of
// aliasing the reusable buffers.
func (s *Solver) solveLocked(ctx context.Context, g *graph.Graph, c *config, copyOut bool) (*Result, error) {
	if s.closed {
		return nil, ErrSolverClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Fail fast: an already-cancelled context does no work at all.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	if err := s.eng.solve(ctx, g, c, &s.out); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	// Wall is fixed before the O(n) label count below, so the counting
	// pass is never charged to the run (the E11/E12 discipline).
	s.out.stats.Wall = wall
	num := s.countLabels(s.out.labels)
	if copyOut {
		labels := make([]int32, len(s.out.labels))
		copy(labels, s.out.labels)
		// Cache hygiene for the shared-engine path: the process-wide
		// solvers behind the free functions live forever, so a one-off
		// giant graph must not pin its Θ(n) scratch in them for the
		// rest of the process. Oversized buffers are dropped here and
		// reallocated right-sized by the next solve; steady-state
		// same-scale workloads keep full reuse. (A caller-owned Solver
		// never does this — its buffer lifetime is Close.)
		if cap(s.out.labels) > maxRetainedScratch && cap(s.out.labels) > 4*g.N {
			s.out.labels = nil
			s.seen = nil
		}
		return &Result{Labels: labels, NumComponents: num, Stats: s.out.stats}, nil
	}
	s.res.Labels = s.out.labels
	s.res.NumComponents = num
	s.res.Stats = s.out.stats
	return &s.res, nil
}

// countLabels is the O(n) distinct-label count over a reusable seen
// buffer — the allocation-free twin of the package-level countLabels.
func (s *Solver) countLabels(labels []int32) int {
	n := len(labels)
	if cap(s.seen) >= n {
		s.seen = s.seen[:n]
		clear(s.seen)
	} else {
		s.seen = make([]bool, n)
	}
	count := 0
	for _, l := range labels {
		if uint(l) >= uint(n) {
			return countLabelsGeneric(labels)
		}
		if !s.seen[l] {
			s.seen[l] = true
			count++
		}
	}
	return count
}

// SpanningForest computes a spanning forest of g with the Theorem 2
// algorithm, honouring ctx at every phase boundary. The spanning
// forest algorithm exists only on the PRAM simulator, so it runs there
// whatever the Solver's backend; the Solver contributes its seed,
// worker count, and phase-cap options. Unlike Solve, the returned
// ForestResult is freshly allocated and stays valid across calls.
func (s *Solver) SpanningForest(ctx context.Context, g *graph.Graph) (*ForestResult, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSolverClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return spanningForest(ctx, g, s.cfg)
}

// spanningForest is the shared implementation behind the free
// SpanningForest function and Solver.SpanningForest.
func spanningForest(ctx context.Context, g *graph.Graph, c config) (*ForestResult, error) {
	m := pram.New(c.workers)
	p := spanning.DefaultParams(c.seed)
	if c.maxPhases > 0 {
		p.MaxPhases = c.maxPhases
	}
	if c.combining {
		p.Mode = ccbase.ModeCombining
	}
	p.Ctx = ctx
	start := time.Now()
	res := spanning.Run(m, g, p)
	wall := time.Since(start)
	if res.CtxErr != nil {
		return nil, res.CtxErr
	}
	// The columnar span is the canonical output; the boxed Edges pairs
	// are derived from it for compatibility.
	span := res.ForestSpan(g)
	out := &ForestResult{
		Result: *newResult(wall, res.Labels, Stats{
			Backend:       BackendSimulated,
			Workers:       m.Workers(),
			Rounds:        res.Phases,
			PRAMSteps:     res.Stats.Steps,
			Work:          res.Stats.Work,
			MaxProcessors: res.Stats.MaxProcs,
			PeakSpace:     res.Stats.MaxSpace,
			Prep:          res.Prep,
			Failed:        res.Failed,
		}),
		EdgeIndices: res.ForestEdges,
		Edges:       span.Pairs(),
		Span:        span,
	}
	if res.Failed {
		return out, errPhaseCap(res.Phases)
	}
	return out, nil
}

// Close releases the engine's resources (worker pools). Idempotent;
// subsequent Solve calls return ErrSolverClosed.
func (s *Solver) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		s.eng.close()
	}
}

// ---- the shared engines behind the compatibility wrappers ----

// engineKey identifies a reusable shared engine: everything an engine's
// construction depends on. Per-call parameters (seed, round caps, …)
// travel with each solve instead.
type engineKey struct {
	backend Backend
	workers int
	grain   int
}

var (
	sharedMu      sync.Mutex
	sharedSolvers = map[engineKey]*Solver{}
)

// sharedSolverCap bounds the cache of shared engines (and their worker
// pools). Beyond it — dozens of distinct (backend, workers) pairs, a
// fuzzing scenario, not a production one — calls fall back to a
// one-shot engine, which is exactly the pre-Solver behavior.
const sharedSolverCap = 64

// maxRetainedScratch is the label-buffer capacity (in entries) above
// which a shared solver releases its scratch after a copy-out solve
// instead of retaining it indefinitely: 1<<22 entries ≈ 16 MB of
// labels plus 4 MB of seen bits per cached engine.
const maxRetainedScratch = 1 << 22

// sharedSolve is the engine room of the free functions: it routes the
// call through a process-wide Solver for (backend, workers), so
// steady-state callers of Components never rebuild an engine or a
// worker pool, and copies the labels out so the returned Result owns
// its memory (the historical free-function contract). When the shared
// engine is busy on another goroutine the call falls back to a
// transient engine rather than serializing — concurrent Components
// calls stay concurrent.
func sharedSolve(ctx context.Context, g *graph.Graph, c config) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	key := engineKey{backend: c.backend, workers: c.workers, grain: c.grain}
	sharedMu.Lock()
	s, ok := sharedSolvers[key]
	if !ok {
		if _, registered := lookupBackend(c.backend); !registered {
			sharedMu.Unlock()
			return nil, errUnknownBackend(int(c.backend))
		}
		if len(sharedSolvers) < sharedSolverCap {
			var err error
			s, err = newSolverFromConfig(c)
			if err != nil {
				sharedMu.Unlock()
				return nil, err
			}
			sharedSolvers[key] = s
		}
	}
	sharedMu.Unlock()
	if s != nil && s.mu.TryLock() {
		defer s.mu.Unlock()
		return s.solveLocked(ctx, g, &c, true)
	}
	t, err := newSolverFromConfig(c)
	if err != nil {
		return nil, err
	}
	defer t.Close()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.solveLocked(ctx, g, &c, true)
}
