package pramcc_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	pramcc "repro"
	"repro/graph"
)

// routerBenchIngest drives spans through a router from conc concurrent
// clients per tenant, retrying on backpressure, and returns when every
// span has been applied.
func routerBenchIngest(b *testing.B, r *pramcc.Router, tenants []*pramcc.Tenant, work [][]graph.EdgeSpan, conc int) {
	b.Helper()
	var wg sync.WaitGroup
	for i, tn := range tenants {
		ch := make(chan graph.EdgeSpan, len(work[i]))
		for _, s := range work[i] {
			ch <- s
		}
		close(ch)
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func(tn *pramcc.Tenant) {
				defer wg.Done()
				for s := range ch {
					for {
						_, err := tn.IngestSpan(context.Background(), s)
						if err == nil {
							break
						}
						if !errors.Is(err, pramcc.ErrOverloaded) && !errors.Is(err, pramcc.ErrTenantBacklog) {
							b.Error(err)
							return
						}
						time.Sleep(50 * time.Microsecond)
					}
				}
			}(tn)
		}
	}
	wg.Wait()
}

// BenchmarkRouterIngest: the sharded multi-tenant hot path — eight
// tenants on four shards, four concurrent clients each, default
// coalescing. The reported edges/s is aggregate across tenants.
func BenchmarkRouterIngest(b *testing.B) {
	const tenants, shards, n, spans, conc = 8, 4, 50_000, 64, 4
	work := make([][]graph.EdgeSpan, tenants)
	edges := 0
	for i := range work {
		g := graph.Gnm(n, 8*n, int64(i+1))
		work[i] = g.SpanBatches(spans)
		edges += g.NumEdges()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Two engine workers per tenant: a multi-tenant host shares
		// cores across tenants instead of letting one engine's spinning
		// pool occupy every core.
		r, err := pramcc.NewRouter(pramcc.RouterConfig{Shards: shards,
			Options: []pramcc.Option{pramcc.WithWorkers(2)}})
		if err != nil {
			b.Fatal(err)
		}
		handles := make([]*pramcc.Tenant, tenants)
		for j := range handles {
			if handles[j], err = r.CreateTenant(fmt.Sprintf("bench-%d", j), n); err != nil {
				b.Fatal(err)
			}
		}
		routerBenchIngest(b, r, handles, work, conc)
		r.Close()
	}
	b.ReportMetric(float64(edges)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkCoalesce: the same queued single-shard workload with span
// coalescing disabled (limit 1) and enabled (limit 16). Eight clients
// keep the shard queue non-empty, so the on case pays the engine's
// per-batch fixed costs once per merged run instead of once per span —
// the off/on delta is the coalescing win E16 quantifies at full scale.
func BenchmarkCoalesce(b *testing.B) {
	const n, spans, conc = 1_000_000, 192, 16
	g := graph.Gnm(n, spans*64, 1)
	work := [][]graph.EdgeSpan{g.SpanBatches(spans)}
	for _, cfg := range []struct {
		name  string
		limit int
	}{{"off", 1}, {"on", 16}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := pramcc.NewRouter(pramcc.RouterConfig{
					Shards: 1, CoalesceLimit: cfg.limit,
					QueueCap: 2 * spans, TenantQueueCap: 2 * spans,
					Options: []pramcc.Option{pramcc.WithWorkers(2)},
				})
				if err != nil {
					b.Fatal(err)
				}
				tn, err := r.CreateTenant("bench", n)
				if err != nil {
					b.Fatal(err)
				}
				routerBenchIngest(b, r, []*pramcc.Tenant{tn}, work, conc)
				r.Close()
			}
			b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}
