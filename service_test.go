package pramcc

import (
	"context"
	"sync"
	"testing"

	"repro/graph"
	"repro/internal/baseline"
	"repro/internal/check"
)

// TestServiceUpdateAllBackends: the serving layer publishes correct
// immutable snapshots on every registered backend, and earlier
// snapshots survive later updates untouched.
func TestServiceUpdateAllBackends(t *testing.T) {
	g1 := graph.Gnm(2000, 6000, 3)
	g2 := graph.Path(1500)
	for _, bk := range Backends() {
		t.Run(bk.String(), func(t *testing.T) {
			sv, err := NewService(10, WithBackend(bk), WithSeed(7))
			if err != nil {
				t.Fatal(err)
			}
			defer sv.Close()
			if sv.N() != 10 || sv.NumComponents() != 10 {
				t.Fatalf("fresh service: N=%d components=%d", sv.N(), sv.NumComponents())
			}
			if sv.SameComponent(0, 1) || !sv.SameComponent(3, 3) {
				t.Fatal("fresh service connectivity wrong")
			}
			r1, err := sv.Update(context.Background(), g1)
			if err != nil {
				t.Fatal(err)
			}
			if err := check.SamePartition(sv.Labels(), baseline.Components(g1)); err != nil {
				t.Fatal(err)
			}
			keep := append([]int32(nil), r1.Labels...)
			if _, err := sv.Update(context.Background(), g2); err != nil {
				t.Fatal(err)
			}
			if sv.N() != g2.N {
				t.Fatalf("N after second update = %d, want %d", sv.N(), g2.N)
			}
			// r1 is an immutable published snapshot: the later Update
			// must not have touched it.
			for i := range keep {
				if r1.Labels[i] != keep[i] {
					t.Fatal("published snapshot mutated by a later Update")
				}
			}
			if err := check.SamePartition(sv.Snapshot().Labels, baseline.Components(g2)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestServiceIngest: the streaming path on the incremental backend —
// batches union into the live labeling, Grow extends the vertex set,
// and non-streaming backends reject Ingest with a useful error.
func TestServiceIngest(t *testing.T) {
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 16, Size: 10, IntraDeg: 6, Bridges: 1, Seed: 5})
	sv, err := NewService(g.N, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	for _, batch := range g.EdgeBatches(7) {
		res, err := sv.Ingest(context.Background(), batch)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumComponents != sv.NumComponents() {
			t.Fatalf("ingest result components %d, snapshot %d", res.NumComponents, sv.NumComponents())
		}
	}
	if err := check.SamePartition(sv.Labels(), baseline.Components(g)); err != nil {
		t.Fatal(err)
	}

	// Grow then connect a new vertex to component of vertex 0.
	n := sv.N()
	if err := sv.Grow(n + 2); err != nil {
		t.Fatal(err)
	}
	if sv.N() != n+2 || sv.SameComponent(0, n) {
		t.Fatalf("grow: N=%d, same(0,%d)=%v", sv.N(), n, sv.SameComponent(0, n))
	}
	if _, err := sv.Ingest(context.Background(), [][2]int{{0, n}}); err != nil {
		t.Fatal(err)
	}
	if !sv.SameComponent(0, n) || sv.SameComponent(0, n+1) {
		t.Fatal("ingest after grow: connectivity wrong")
	}

	// Out-of-range edges are rejected whole; the snapshot stands.
	before := sv.NumComponents()
	if _, err := sv.Ingest(context.Background(), [][2]int{{0, sv.N() + 5}}); err == nil {
		t.Fatal("out-of-range ingest accepted")
	}
	if sv.NumComponents() != before {
		t.Fatal("rejected ingest changed the snapshot")
	}

	// Native backend: Ingest and Grow are typed errors, Update works.
	nat, err := NewService(4, WithBackend(BackendNative))
	if err != nil {
		t.Fatal(err)
	}
	defer nat.Close()
	if _, err := nat.Ingest(context.Background(), [][2]int{{0, 1}}); err == nil {
		t.Fatal("native Ingest succeeded")
	}
	if err := nat.Grow(10); err == nil {
		t.Fatal("native Grow succeeded")
	}
	if _, err := nat.Update(context.Background(), graph.Path(64)); err != nil {
		t.Fatal(err)
	}
}

// TestServiceUpdateThenIngest: on the incremental backend an Update
// defines the live labeling and Ingest continues from it.
func TestServiceUpdateThenIngest(t *testing.T) {
	g := graph.Gnm(500, 400, 9) // sparse: many components to merge
	sv, err := NewService(0, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	if _, err := sv.Update(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	before := sv.NumComponents()
	// Connect vertices 0..9 in a chain on top of the updated graph.
	edges := make([][2]int, 0, 9)
	for v := 0; v < 9; v++ {
		edges = append(edges, [2]int{v, v + 1})
	}
	if _, err := sv.Ingest(context.Background(), edges); err != nil {
		t.Fatal(err)
	}
	if sv.NumComponents() > before {
		t.Fatalf("components grew from %d to %d after merging ingest", before, sv.NumComponents())
	}
	for v := 0; v < 9; v++ {
		if !sv.SameComponent(v, v+1) {
			t.Fatalf("chain edge {%d,%d} not reflected", v, v+1)
		}
	}
}

// TestServiceConcurrentQueriesDuringWrites: the headline contract —
// lock-free queries stay safe and consistent while Update and Ingest
// replace snapshots. Run under -race in CI.
func TestServiceConcurrentQueriesDuringWrites(t *testing.T) {
	g := graph.Gnm(3000, 12000, 23)
	sv, err := NewService(g.N, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					snap := sv.Snapshot()
					if snap.NumComponents < 1 || snap.NumComponents > g.N {
						t.Error("inconsistent snapshot")
						return
					}
					_ = sv.SameComponent(0, g.N-1)
				}
			}
		}()
	}
	for _, batch := range g.EdgeBatches(20) {
		if _, err := sv.Ingest(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sv.Update(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if err := check.SamePartition(sv.Labels(), baseline.Components(g)); err != nil {
		t.Fatal(err)
	}
}

// TestServiceIngestAfterCancelledUpdate is the review regression for
// the destructive-rebuild hole: Update on a streaming backend resets
// the live forest before the (cancellable) re-ingest, so a cancelled
// Update used to leave a wiped engine behind — the next Ingest then
// silently published a labeling that had lost every previously
// ingested component. The live labeling must instead snap back to the
// published snapshot, so ingestion continues from what queries see.
func TestServiceIngestAfterCancelledUpdate(t *testing.T) {
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 32, Size: 12, IntraDeg: 6, Bridges: 1, Seed: 3})
	sv, err := NewService(g.N, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	batches := g.EdgeBatches(4)
	for _, b := range batches[:3] {
		if _, err := sv.Ingest(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	keep := sv.Labels()

	// A MID-RUN-cancelled full recompute over a graph with a DIFFERENT
	// vertex count — the worst case: the engine has already been reset
	// to the new graph's size (an already-cancelled context would fail
	// fast before the destructive reset and never tickle the bug, so
	// the check budget is chosen to survive the Solver's fail-fast
	// check and cancel during the ingest itself).
	if _, err := sv.Update(newCancelAfter(2), graph.Gnm(g.N/2, 20000, 5)); err == nil {
		t.Fatal("cancelled Update succeeded")
	}

	// The next batch must extend the pre-Update labeling, not a wiped
	// forest.
	if _, err := sv.Ingest(context.Background(), batches[3]); err != nil {
		t.Fatal(err)
	}
	if sv.N() != g.N {
		t.Fatalf("vertex set shrank to %d after cancelled Update", sv.N())
	}
	for v, l := range keep {
		if !sv.SameComponent(v, int(l)) {
			t.Fatalf("component of %d lost after cancelled Update", v)
		}
	}
	if err := check.SamePartition(sv.Labels(), baseline.Components(g)); err != nil {
		t.Fatalf("final labeling wrong after cancelled Update: %v", err)
	}
}

// TestServiceClosed: writers fail after Close, queries keep serving
// the last snapshot.
func TestServiceClosed(t *testing.T) {
	g := graph.Path(100)
	sv, err := NewService(0, WithBackend(BackendNative))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Update(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	sv.Close()
	sv.Close() // idempotent
	if _, err := sv.Update(context.Background(), g); err != ErrSolverClosed {
		t.Fatalf("Update after Close: %v", err)
	}
	if !sv.SameComponent(0, 99) || sv.NumComponents() != 1 {
		t.Fatal("queries broken after Close")
	}
}
