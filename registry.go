package pramcc

import (
	"context"
	"fmt"
	"strings"

	"repro/graph"
	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/native"
	"repro/internal/pram"
)

// solveOutput is the reusable buffer an engine fills in place of
// returning freshly allocated results: labels is resized (reusing
// capacity) and overwritten, stats is fully rewritten except Wall,
// which the Solver measures around the engine call. Keeping the buffer
// on the caller side is what lets a long-lived Solver reach zero
// steady-state allocations on the native backend.
type solveOutput struct {
	labels []int32
	stats  Stats
}

// setLabels overwrites out.labels with src, reusing capacity.
func (out *solveOutput) setLabels(src []int32) {
	out.labels = append(out.labels[:0], src...)
}

// engine is the execution-backend interface behind Solver: one
// implementation per registered Backend, each adapting one of the
// internal engine packages (internal/core via the PRAM simulator,
// internal/native, internal/incremental). solve computes the component
// labeling of g into out, honouring ctx at round/batch boundaries; a
// cancelled solve returns ctx.Err() and leaves no partial result
// visible to callers. close releases any long-lived resources (worker
// pools); it is idempotent.
type engine interface {
	solve(ctx context.Context, g *graph.Graph, c *config, out *solveOutput) error
	close()
}

// streamEngine is the optional extension implemented by engines that
// maintain a live labeling under streaming edge batches (today:
// the incremental union-find). Service type-asserts for it.
type streamEngine interface {
	engine
	// reset re-initialises the live labeling over n isolated vertices.
	reset(n int)
	// restore re-initialises the live labeling to a previously
	// published canonical labeling — the recovery path after a
	// cancelled destructive rebuild (see Service.Update).
	restore(labels []int32)
	// grow extends the vertex set to n, preserving components.
	grow(n int)
	// ingest unions one batch — a columnar arc-pair span, the
	// zero-copy interchange representation of the whole pipeline —
	// into the live labeling and fills out with the freshly published
	// snapshot, returning its component count. On a cancelled ctx the
	// previously published labeling stays in effect and ctx.Err() is
	// returned. [][2]int callers adapt through graph.FromPairs at the
	// public-API boundary (Service.Ingest), not here.
	ingest(ctx context.Context, span graph.EdgeSpan, out *solveOutput) (int, error)
}

// backendInfo is one registry entry: the Backend value, its canonical
// flag/JSON name, accepted aliases, and the factory building its
// engine from the construction-time knobs of a config (workers,
// grain); per-call parameters travel with each solve instead.
type backendInfo struct {
	backend   Backend
	name      string
	aliases   []string
	newEngine func(c *config) engine
}

// registry lists every execution backend in registration order. CLIs
// enumerate it (through Backends/BackendNames) instead of hard-coding
// flag strings, and ParseBackend/UnmarshalText resolve names against
// it, so adding a backend is one entry here plus an engine adapter.
var registry = []backendInfo{
	{
		backend: BackendSimulated,
		name:    "simulated",
		aliases: []string{"sim"},
		newEngine: func(c *config) engine {
			return &simulatedEngine{workers: c.workers}
		},
	},
	{
		backend: BackendNative,
		name:    "native",
		newEngine: func(c *config) engine {
			return &nativeEngine{eng: native.NewEngineOpt(native.Options{Workers: c.workers, Grain: c.grain})}
		},
	},
	{
		backend: BackendIncremental,
		name:    "incremental",
		aliases: []string{"inc"},
		newEngine: func(c *config) engine {
			return &incrementalEngine{eng: incremental.New(0, incremental.Options{Workers: c.workers, Grain: c.grain})}
		},
	},
}

// lookupBackend finds the registry entry for b.
func lookupBackend(b Backend) (backendInfo, bool) {
	for _, info := range registry {
		if info.backend == b {
			return info, true
		}
	}
	return backendInfo{}, false
}

// Backends returns the registered execution backends in registration
// order — the dynamic enumeration CLIs and benchmarks iterate instead
// of hard-coding backend lists.
func Backends() []Backend {
	out := make([]Backend, len(registry))
	for i, info := range registry {
		out[i] = info.backend
	}
	return out
}

// BackendNames returns the canonical name of every registered backend,
// in registration order — ready for flag usage strings.
func BackendNames() []string {
	out := make([]string, len(registry))
	for i, info := range registry {
		out[i] = info.name
	}
	return out
}

func errUnknownBackend(v interface{}) error {
	return fmt.Errorf("pramcc: unknown backend %v (registered backends: %s)",
		v, strings.Join(BackendNames(), ", "))
}

// ---- simulated: the Theorem-3 algorithm on the PRAM simulator ----

// simulatedEngine runs core.Run on a fresh step-synchronous machine
// per solve: the simulator's cost accounting is per-run state, so the
// machine itself is not reused, only the output buffers are. This is
// the backend where amortized allocation is irrelevant next to the
// simulation itself.
type simulatedEngine struct {
	workers int
}

func (e *simulatedEngine) solve(ctx context.Context, g *graph.Graph, c *config, out *solveOutput) error {
	m := pram.New(e.workers)
	p := core.DefaultParams(c.seed)
	if c.maxRounds > 0 {
		p.MaxRounds = c.maxRounds
	}
	if c.growth > 0 {
		p.Growth = c.growth
	}
	if c.minBudget > 0 {
		p.MinBudget = c.minBudget
	}
	if c.maxLinkIters > 0 {
		p.MaxLinkIters = c.maxLinkIters
	}
	p.DisableBoost = c.disableBoost
	p.Ctx = ctx
	res := core.Run(m, g, p)
	if res.CtxErr != nil {
		return res.CtxErr
	}
	out.setLabels(res.Labels)
	out.stats = Stats{
		Backend:       BackendSimulated,
		Workers:       m.Workers(),
		Rounds:        res.Rounds,
		PRAMSteps:     res.Stats.Steps,
		Work:          res.Stats.Work,
		MaxProcessors: res.Stats.MaxProcs,
		PeakSpace:     res.Stats.MaxSpace,
		MaxLevel:      int(res.MaxLevel),
		CumBlockWords: res.CumBlockWords,
		Prep:          res.Prep,
		PostPhases:    res.PostPhases,
		Failed:        res.Failed,
	}
	return nil
}

func (e *simulatedEngine) close() {}

// ---- native: the shared-memory CAS-min engine ----

// nativeEngine wraps a long-lived native.Engine: the worker pool and
// the engine's pre-bound worker closure live across solves, and the
// labels are computed directly into out.labels, so repeated solves on
// same-sized graphs allocate nothing.
type nativeEngine struct {
	eng *native.Engine
}

func (e *nativeEngine) solve(ctx context.Context, g *graph.Graph, c *config, out *solveOutput) error {
	if cap(out.labels) >= g.N {
		out.labels = out.labels[:g.N]
	} else {
		out.labels = make([]int32, g.N)
	}
	rounds, err := e.eng.Run(ctx, g, out.labels)
	if err != nil {
		return err
	}
	out.stats = Stats{
		Backend: BackendNative,
		Workers: e.eng.Workers(),
		Rounds:  rounds,
		Grain:   e.eng.Grain(),
	}
	return nil
}

func (e *nativeEngine) close() { e.eng.Close() }

// ---- incremental: the streaming union-find engine ----

// incrementalEngine wraps a long-lived incremental.Engine. A one-shot
// solve resets the forest (reusing its parent buffer and worker pool)
// and ingests the whole graph as a single batch; Service additionally
// uses the streamEngine surface to ingest batches into the live
// labeling.
type incrementalEngine struct {
	eng *incremental.Engine
}

func (e *incrementalEngine) solve(ctx context.Context, g *graph.Graph, c *config, out *solveOutput) error {
	e.eng.Reset(g.N)
	snap, err := e.eng.AddGraphContext(ctx, g)
	if err != nil {
		return err
	}
	// Published snapshot labels are immutable, so they are shared
	// into the output rather than copied (the engine allocates a
	// fresh slice per publish anyway).
	out.labels = snap.Labels
	out.stats = Stats{
		Backend: BackendIncremental,
		Workers: e.eng.Workers(),
		Rounds:  snap.Batches, // one batch for a one-shot run
		Grain:   e.eng.Grain(),
	}
	return nil
}

func (e *incrementalEngine) close() { e.eng.Close() }

func (e *incrementalEngine) reset(n int) { e.eng.Reset(n) }

func (e *incrementalEngine) restore(labels []int32) { e.eng.RestoreLabels(labels) }

func (e *incrementalEngine) grow(n int) { e.eng.Grow(n) }

func (e *incrementalEngine) ingest(ctx context.Context, span graph.EdgeSpan, out *solveOutput) (int, error) {
	snap, err := e.eng.AddSpanContext(ctx, span)
	if err != nil {
		return 0, err
	}
	// As in solve: published snapshot labels are immutable and fresh
	// per batch, so sharing them avoids a redundant Θ(n) copy on the
	// per-batch hot path.
	out.labels = snap.Labels
	out.stats = Stats{
		Backend: BackendIncremental,
		Workers: e.eng.Workers(),
		Rounds:  snap.Batches,
		Grain:   e.eng.Grain(),
	}
	return snap.Components, nil
}
