package pramcc

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Event is the structured observability envelope every subsystem emits
// into: source/category/name/status/duration_ms/measures, serialized
// as one JSON object per event by the JSON sink. The schema is
// documented field by field in OPERATIONS.md.
type Event = obs.Event

// EventSink consumes emitted events; see SetEventSink.
type EventSink = obs.Sink

// SetEventSink attaches a process-wide event sink (nil detaches). With
// no sink attached — the default — instrumentation is free: counters
// are single atomic adds and no envelope is ever built, so the
// zero-allocation ingest and solve paths keep their guarantees (E15
// measures this; TestSpanIngestZeroAlloc enforces it). With a sink
// attached, engines emit round/batch-boundary events and the Service
// emits one event per Update/IngestSpan/Grow call.
func SetEventSink(s EventSink) { obs.SetSink(s) }

// NewJSONEventSink returns a sink writing one JSON event per line to
// w, the stream format OPERATIONS.md documents (ccserve -events wires
// it to a file or stderr).
func NewJSONEventSink(w io.Writer) EventSink { return obs.NewJSONSink(w) }

// WriteMetrics renders every registered metric in Prometheus text
// exposition format — the body of ccserve's /metrics endpoint.
// OPERATIONS.md is the metrics reference; scripts/check_docs.sh keeps
// it complete against the registry.
func WriteMetrics(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// MetricNames returns the names of every registered metric, sorted —
// the generated list the docs-consistency check compares OPERATIONS.md
// against (ccserve -list-metrics prints it).
func MetricNames() []string { return obs.Default.Names() }

// Service-level metrics: the serving-layer view (spans/edges accepted,
// update and ingest latencies, published-snapshot identity) on top of
// the engine- and pool-level metrics registered by the internal
// packages. Process-wide: with several Services in one process the
// counters aggregate and the snapshot gauges describe the most recent
// publisher — ccserve, the intended operator surface, runs exactly one.
var (
	mIngestSpans = obs.Default.Counter("pramcc_ingest_spans_total",
		"span batches accepted by Service.IngestSpan (Ingest rides the same path)")
	mIngestEdges = obs.Default.Counter("pramcc_ingest_edges_total",
		"edges accepted by Service.IngestSpan")
	mIngestErrors = obs.Default.Counter("pramcc_ingest_errors_total",
		"Service.IngestSpan calls that failed (validation, cancellation, wrong backend)")
	mIngestDur = obs.Default.Histogram("pramcc_ingest_duration_seconds",
		"latency of successful Service.IngestSpan calls", nil)
	mIngestRate = obs.Default.Gauge("pramcc_ingest_edges_per_second",
		"edge throughput of the most recent successful Service.IngestSpan call")
	mUpdates = obs.Default.Counter("pramcc_updates_total",
		"successful Service.Update recomputes")
	mUpdateErrors = obs.Default.Counter("pramcc_update_errors_total",
		"Service.Update calls that failed or were cancelled")
	mUpdateDur = obs.Default.Histogram("pramcc_update_duration_seconds",
		"latency of successful Service.Update calls", nil)
	mSnapshotSeq = obs.Default.Gauge("pramcc_snapshot_seq",
		"sequence number of the most recently published snapshot (process-wide)")
	mSnapshotVertices = obs.Default.Gauge("pramcc_snapshot_vertices",
		"vertex count of the most recently published snapshot")
	mSnapshotComponents = obs.Default.Gauge("pramcc_snapshot_components",
		"component count of the most recently published snapshot")
)

// snapshotSeq numbers every snapshot publication in the process;
// lastPublishNanos feeds the scrape-time snapshot-age gauge.
var (
	snapshotSeq      atomic.Int64
	lastPublishNanos atomic.Int64
)

func init() {
	obs.Default.GaugeFunc("pramcc_snapshot_age_seconds",
		"seconds since a Service last published a snapshot (-1 before the first publish)",
		func() float64 {
			ns := lastPublishNanos.Load()
			if ns == 0 {
				return -1
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
}

// notePublish records a snapshot publication on the serving metrics.
func notePublish(r *Result) {
	mSnapshotSeq.Set(snapshotSeq.Add(1))
	mSnapshotVertices.Set(int64(len(r.Labels)))
	mSnapshotComponents.Set(int64(r.NumComponents))
	lastPublishNanos.Store(time.Now().UnixNano())
}

// statusOf maps an error to the envelope's status vocabulary.
func statusOf(err error) string {
	switch {
	case err == nil:
		return obs.StatusOK
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return obs.StatusCancelled
	default:
		return obs.StatusError
	}
}

// obsEnabled reports whether an event sink is attached — the gate the
// Service wraps envelope construction in.
//
//pramcc:zeroalloc
func obsEnabled() bool { return obs.Enabled() }

// emitService emits one serving-layer event when a sink is attached;
// measures may be nil. Gated here so call sites stay one line and the
// no-sink path never builds the envelope.
func emitService(name, status string, d time.Duration, measures map[string]float64) {
	obs.Emit(obs.Event{Source: "service", Category: "serve", Name: name,
		Status: status, DurationMS: float64(d.Nanoseconds()) / 1e6,
		Measures: measures})
}
