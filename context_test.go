package pramcc

// Context-semantics regression tests (the ISSUE-4 satellite): an
// already-cancelled context fails fast before any work on every
// backend; a context cancelled mid-run makes Solve return ctx.Err()
// within one round/batch boundary; and Service queries stay consistent
// across a cancelled solve.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/graph"
	"repro/internal/baseline"
	"repro/internal/check"
)

// cancelAfterChecks is a context that reports itself cancelled after
// its Err method has been consulted a fixed number of times. Engines
// poll ctx.Err() at round/batch-chunk boundaries — that polling IS the
// cancellation contract — so this makes "cancel mid-run" deterministic
// instead of a timing race.
type cancelAfterChecks struct {
	context.Context
	remaining atomic.Int64
}

func newCancelAfter(n int64) *cancelAfterChecks {
	c := &cancelAfterChecks{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *cancelAfterChecks) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// mediumGraph is big enough that every backend does several
// rounds/chunks of real work (the incremental backend checks ctx per
// 4096-edge chunk, so m must comfortably exceed that).
func mediumGraph() *graph.Graph {
	return graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 64, Size: 24, IntraDeg: 8, Bridges: 2, Seed: 31})
}

// TestSolveFailsFastOnCancelledContext: a context that is already
// cancelled does no work at all and returns ctx.Err() — on every
// registered backend, and regardless of graph size.
func TestSolveFailsFastOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := mediumGraph()
	for _, bk := range Backends() {
		t.Run(bk.String(), func(t *testing.T) {
			s, err := NewSolver(WithBackend(bk))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			start := time.Now()
			if _, err := s.Solve(ctx, g); !errors.Is(err, context.Canceled) {
				t.Fatalf("Solve = %v, want context.Canceled", err)
			}
			if d := time.Since(start); d > time.Second {
				t.Fatalf("fail-fast took %v", d)
			}
			// The engine must be reusable after the aborted call.
			res, err := s.Solve(context.Background(), g)
			if err != nil {
				t.Fatal(err)
			}
			if err := check.SamePartition(res.Labels, baseline.Components(g)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSolveCancellationMidRun: when the context cancels partway
// through, Solve stops at the next round/batch boundary — within one
// more Err poll — returns exactly ctx.Err(), and the solver remains
// usable and correct afterwards.
func TestSolveCancellationMidRun(t *testing.T) {
	g := mediumGraph()
	for _, bk := range Backends() {
		t.Run(bk.String(), func(t *testing.T) {
			s, err := NewSolver(WithBackend(bk), WithSeed(11))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			// Budget 2 checks: the Solver's fail-fast check passes,
			// the engine enters its loop, and the first boundary poll
			// after that cancels — deterministically mid-run.
			ctx := newCancelAfter(2)
			_, err = s.Solve(ctx, g)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("mid-run Solve = %v, want context.Canceled", err)
			}
			// No partial result leaked, and the engine recovered.
			res, err := s.Solve(context.Background(), g)
			if err != nil {
				t.Fatal(err)
			}
			if err := check.SamePartition(res.Labels, baseline.Components(g)); err != nil {
				t.Fatalf("post-cancellation solve: %v", err)
			}
		})
	}
}

// TestSolveDeadlineExceeded: a real deadline context reports
// DeadlineExceeded, not a hang, even when it expires mid-run.
func TestSolveDeadlineExceeded(t *testing.T) {
	g := graph.Gnm(60000, 240000, 3)
	s, err := NewSolver(WithBackend(BackendSimulated))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = s.Solve(ctx, g)
	// The simulated run takes far longer than 1ms, so the deadline
	// must fire; either error form of an expired context is fine.
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Solve = %v, want context.DeadlineExceeded", err)
	}
}

// TestSpanningForestCancellation: the ctx-aware forest entry point
// shares the contract.
func TestSpanningForestCancellation(t *testing.T) {
	g := mediumGraph()
	s, err := NewSolver(WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SpanningForest(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("SpanningForest = %v, want context.Canceled", err)
	}
	if _, err := s.SpanningForest(newCancelAfter(2), g); !errors.Is(err, context.Canceled) {
		t.Fatal("mid-run forest cancellation not honoured")
	}
	if _, err := s.SpanningForest(context.Background(), g); err != nil {
		t.Fatal(err)
	}
}

// TestServiceConsistentAcrossCancelledSolve: a cancelled Update or
// Ingest publishes nothing — queries keep answering from the previous
// snapshot, bit-for-bit.
func TestServiceConsistentAcrossCancelledSolve(t *testing.T) {
	g := mediumGraph()
	for _, bk := range Backends() {
		t.Run(bk.String(), func(t *testing.T) {
			sv, err := NewService(0, WithBackend(bk), WithSeed(17))
			if err != nil {
				t.Fatal(err)
			}
			defer sv.Close()
			if _, err := sv.Update(context.Background(), g); err != nil {
				t.Fatal(err)
			}
			before := sv.Snapshot()
			keep := append([]int32(nil), before.Labels...)

			if _, err := sv.Update(newCancelAfter(2), graph.Gnm(5000, 20000, 9)); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled Update = %v, want context.Canceled", err)
			}
			after := sv.Snapshot()
			if after != before {
				t.Fatal("cancelled Update replaced the snapshot")
			}
			for i := range keep {
				if after.Labels[i] != keep[i] {
					t.Fatal("cancelled Update mutated the snapshot labels")
				}
			}
		})
	}

	// Streaming flavour: a cancelled Ingest leaves the snapshot at the
	// last completed batch, and re-submitting the batch completes it.
	sv, err := NewService(mediumGraph().N, WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	batches := g.EdgeBatches(4)
	if _, err := sv.Ingest(context.Background(), batches[0]); err != nil {
		t.Fatal(err)
	}
	before := sv.Snapshot()
	if _, err := sv.Ingest(newCancelAfter(1), batches[1]); !errors.Is(err, context.Canceled) {
		t.Fatal("cancelled Ingest did not report context.Canceled")
	}
	if sv.Snapshot() != before {
		t.Fatal("cancelled Ingest advanced the snapshot")
	}
	for _, b := range batches[1:] {
		if _, err := sv.Ingest(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	if err := check.SamePartition(sv.Labels(), baseline.Components(g)); err != nil {
		t.Fatalf("labeling after cancelled-then-resubmitted batch: %v", err)
	}
}
