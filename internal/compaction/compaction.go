// Package compaction implements approximate compaction (Definition D.1):
// given a length-n array with k distinguished elements, map the
// distinguished elements one-to-one into an array of length 2k.
//
// The paper uses Goodrich's algorithm [Goo91] as a black box with two
// charged costs (Lemma D.2): O(log* n) time with O(n) processors, or
// O(1) time with n·log n processors. We implement the natural hashing
// realization — repeatedly hash the still-unplaced elements into the
// target array with fresh pairwise-independent functions, keeping
// first-committed winners — and charge the lemma's cost. The retry
// count is exposed so experiments can confirm it stays O(log* n)-ish.
package compaction

import (
	"sync/atomic"

	"repro/internal/hashing"
	"repro/internal/pram"
)

// Result describes one compaction run.
type Result struct {
	Indices []int32 // for each input element: target index, or -1 if not distinguished
	Size    int     // length of the target array (≥ 2k)
	Rounds  int     // hashing rounds used
	Failed  bool    // true if MaxRounds was exhausted (callers treat as a bad-probability event)
}

// MaxRounds bounds the retry loop; exceeding it is the "fails with
// probability 1/poly(n)" event of Lemma D.2.
const MaxRounds = 64

// Compact maps the distinguished elements (marked true) one-to-one into
// [0, size) with size = max(2·k, 1). fam provides the hash functions;
// cost selects the charged PRAM time per Lemma D.2: if plentiful is
// true the caller has ≥ n·log n processors and O(1) time is charged,
// otherwise O(log* n) (we charge 4, the value of log* for any
// practically representable n).
func Compact(m *pram.Machine, fam hashing.Family, distinguished []bool, plentiful bool) Result {
	n := len(distinguished)
	k := 0
	for _, d := range distinguished {
		if d {
			k++
		}
	}
	size := 2 * k
	if size == 0 {
		size = 1
	}
	res := Result{Indices: make([]int32, n), Size: size}
	for i := range res.Indices {
		res.Indices[i] = -1
	}
	if k == 0 {
		return res
	}

	slots := make([]int32, size)
	for i := range slots {
		slots[i] = -1
	}
	pending := make([]int32, 0, k)
	for i, d := range distinguished {
		if d {
			pending = append(pending, int32(i))
		}
	}

	cost := 4 // log*(n) for any real n
	if plentiful {
		cost = 1
	}
	round := 0
	for len(pending) > 0 {
		if round >= MaxRounds {
			res.Failed = true
			break
		}
		h := fam.At(uint64(round))
		cur := pending
		// Write phase: every pending element claims a slot.
		m.StepCost(cost, len(cur), func(i int) {
			e := cur[i]
			s := h.Slot(uint64(e), size)
			atomic.CompareAndSwapInt32(&slots[s], -1, e)
		})
		// Read phase: winners record their index, losers retry. The
		// collector uses a fresh backing slice: appending into the
		// array being iterated would race with the reads of cur.
		var mu nextCollector
		m.Step(len(cur), func(i int) {
			e := cur[i]
			s := h.Slot(uint64(e), size)
			if atomic.LoadInt32(&slots[s]) == e {
				atomic.StoreInt32(&res.Indices[e], int32(s))
			} else {
				mu.add(e)
			}
		})
		pending = mu.snapshot()
		res.Rounds = round + 1
		round++
	}
	return res
}

// nextCollector accumulates retry elements from concurrent processors.
type nextCollector struct {
	mu  spin
	buf []int32
}

func (c *nextCollector) add(e int32) {
	c.mu.lock()
	c.buf = append(c.buf, e)
	c.mu.unlock()
}

func (c *nextCollector) snapshot() []int32 {
	return c.buf
}

// spin is a tiny spinlock; contention is bounded by the worker count.
type spin struct{ v atomic.Int32 }

func (s *spin) lock() {
	for !s.v.CompareAndSwap(0, 1) {
	}
}
func (s *spin) unlock() { s.v.Store(0) }
