package compaction

import (
	"testing"
	"testing/quick"

	"repro/internal/hashing"
	"repro/internal/pram"
)

func TestCompactBasic(t *testing.T) {
	m := pram.New(1)
	dist := make([]bool, 100)
	for i := 0; i < 100; i += 3 {
		dist[i] = true
	}
	res := Compact(m, hashing.Family{Seed: 1}, dist, false)
	if res.Failed {
		t.Fatal("compaction failed")
	}
	k := 34
	if res.Size != 2*k {
		t.Fatalf("size = %d, want %d", res.Size, 2*k)
	}
	seen := map[int32]bool{}
	for i, d := range dist {
		idx := res.Indices[i]
		if d {
			if idx < 0 || int(idx) >= res.Size {
				t.Fatalf("element %d got index %d out of range", i, idx)
			}
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
		} else if idx != -1 {
			t.Fatalf("non-distinguished element %d got index %d", i, idx)
		}
	}
}

func TestCompactEmpty(t *testing.T) {
	m := pram.New(1)
	res := Compact(m, hashing.Family{Seed: 2}, make([]bool, 10), false)
	if res.Failed || res.Rounds != 0 {
		t.Fatalf("empty compaction: %+v", res)
	}
}

func TestCompactAllDistinguished(t *testing.T) {
	m := pram.New(1)
	dist := make([]bool, 64)
	for i := range dist {
		dist[i] = true
	}
	res := Compact(m, hashing.Family{Seed: 3}, dist, true)
	if res.Failed {
		t.Fatal("failed")
	}
	seen := map[int32]bool{}
	for _, idx := range res.Indices {
		if idx < 0 || seen[idx] {
			t.Fatal("not one-to-one")
		}
		seen[idx] = true
	}
}

func TestCompactProperty(t *testing.T) {
	f := func(seed uint64, mask []bool) bool {
		if len(mask) == 0 {
			return true
		}
		m := pram.New(1)
		res := Compact(m, hashing.Family{Seed: seed}, mask, false)
		if res.Failed {
			return false // would be a 1/poly event; treat as failure at this size
		}
		seen := map[int32]bool{}
		for i, d := range mask {
			idx := res.Indices[i]
			if d != (idx >= 0) {
				return false
			}
			if idx >= 0 {
				if int(idx) >= res.Size || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactRoundsLogarithmic(t *testing.T) {
	// The simple retry realization places a constant fraction per
	// round, so the host retry count is O(log k). (The charged PRAM
	// cost is Lemma D.2's, independent of the host loop.)
	m := pram.New(1)
	dist := make([]bool, 100000)
	for i := range dist {
		dist[i] = i%2 == 0
	}
	res := Compact(m, hashing.Family{Seed: 7}, dist, false)
	if res.Failed {
		t.Fatal("failed")
	}
	if res.Rounds > 40 {
		t.Fatalf("compaction used %d rounds, want O(log k)", res.Rounds)
	}
}

func TestCompactChargesTime(t *testing.T) {
	m := pram.New(1)
	dist := []bool{true, false, true}
	Compact(m, hashing.Family{Seed: 9}, dist, false)
	if m.Stats().Steps == 0 {
		t.Fatal("compaction must charge PRAM time")
	}
}
