package shard

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/graph"
)

// fakeSvc is a sequential union-find standing in for pramcc.Service:
// enough to check routing, quotas, coalescing, and ordering without
// the real engines. The entered/gate pair makes worker progress
// observable and controllable: when both are set, IngestSpan announces
// itself on entered (buffered, never blocks) and then stalls until the
// test feeds gate a token (or closes it), which is how tests pin one
// batch in flight while piling spans up behind it deterministically.
type fakeSvc struct {
	mu      sync.Mutex
	parent  []int32
	calls   int // IngestSpan invocations (post-coalescing batches)
	fail    error
	entered chan struct{}
	gate    chan struct{}
}

func newFakeSvc(n int) *fakeSvc {
	s := &fakeSvc{parent: make([]int32, n)}
	for i := range s.parent {
		s.parent[i] = int32(i)
	}
	return s
}

func (s *fakeSvc) find(v int32) int32 {
	for s.parent[v] != v {
		s.parent[v] = s.parent[s.parent[v]]
		v = s.parent[v]
	}
	return v
}

func (s *fakeSvc) IngestSpan(ctx context.Context, span graph.EdgeSpan) (int, error) {
	if s.entered != nil {
		s.entered <- struct{}{}
	}
	if s.gate != nil {
		<-s.gate
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail != nil {
		return 0, s.fail
	}
	s.calls++
	for i := 0; i < span.Len(); i++ {
		u, v := span.Edge(i)
		ru, rv := s.find(u), s.find(v)
		if ru != rv {
			if ru > rv {
				ru, rv = rv, ru
			}
			s.parent[rv] = ru
		}
	}
	return s.components(), nil
}

// components counts roots. Callers hold mu.
func (s *fakeSvc) components() int {
	c := 0
	for i := range s.parent {
		if s.find(int32(i)) == int32(i) {
			c++
		}
	}
	return c
}

func (s *fakeSvc) Grow(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.parent) < n {
		s.parent = append(s.parent, int32(len(s.parent)))
	}
	return nil
}

func (s *fakeSvc) SameComponent(v, w int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v == w {
		return true
	}
	if v < 0 || w < 0 || v >= len(s.parent) || w >= len(s.parent) {
		return false
	}
	return s.find(int32(v)) == s.find(int32(w))
}

func (s *fakeSvc) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.parent)
}

func (s *fakeSvc) NumComponents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.components()
}

func (s *fakeSvc) LabelsInto(dst []int32) []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cap(dst) < len(s.parent) {
		dst = make([]int32, len(s.parent))
	}
	dst = dst[:len(s.parent)]
	for i := range s.parent {
		dst[i] = s.find(int32(i))
	}
	return dst
}

func (s *fakeSvc) DurableSeq() (uint64, bool) { return 0, false }
func (s *fakeSvc) Close()                     {}

func (s *fakeSvc) ingestCalls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *fakeSvc) setFail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fail = err
}

// gatedSvc builds a fakeSvc whose IngestSpan handshakes with the test.
func gatedSvc(n int) *fakeSvc {
	s := newFakeSvc(n)
	s.entered = make(chan struct{}, 64)
	s.gate = make(chan struct{})
	return s
}

// newTestRouter builds a router creating a fresh ungated fakeSvc per
// tenant, closed on cleanup.
func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.NewService == nil {
		cfg.NewService = func(tenant string, n int) (Service, error) {
			return newFakeSvc(n), nil
		}
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func pairsSpan(edges ...[2]int) graph.EdgeSpan { return graph.FromPairs(edges) }

// waitQueued polls until the tenant's accepted-but-uncompleted span
// count reaches want.
func waitQueued(t *testing.T, tn *Tenant, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for tn.Queued() != want {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want %d", tn.Queued(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestValidTenantID(t *testing.T) {
	for _, ok := range []string{"a", "acme", "Acme-1", "t.0_x", "0abc"} {
		if !ValidTenantID(ok) {
			t.Errorf("ValidTenantID(%q) = false, want true", ok)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", ".", "..", ".hidden", "-x", "_x", "a/b", "a b", "a\x00b", string(long), "tenant\n"} {
		if ValidTenantID(bad) {
			t.Errorf("ValidTenantID(%q) = true, want false", bad)
		}
	}
}

func TestCreateTenantAndRouting(t *testing.T) {
	r := newTestRouter(t, Config{Shards: 4})
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, id := range ids {
		tn, err := r.CreateTenant(id, 10)
		if err != nil {
			t.Fatalf("CreateTenant(%s): %v", id, err)
		}
		if tn.Shard() != r.ShardOf(id) {
			t.Errorf("tenant %s on shard %d, ShardOf says %d", id, tn.Shard(), r.ShardOf(id))
		}
		if tn.Shard() < 0 || tn.Shard() >= 4 {
			t.Errorf("tenant %s on out-of-range shard %d", id, tn.Shard())
		}
	}
	if _, err := r.CreateTenant("a", 10); !errors.Is(err, ErrTenantExists) {
		t.Errorf("duplicate create: %v, want ErrTenantExists", err)
	}
	if _, err := r.CreateTenant("bad/id", 10); err == nil {
		t.Error("invalid id accepted")
	}
	if _, ok := r.Tenant("a"); !ok {
		t.Error("lookup of existing tenant failed")
	}
	if _, ok := r.Tenant("ghost"); ok {
		t.Error("lookup of unknown tenant succeeded")
	}
	ts := r.Tenants()
	if len(ts) != len(ids) {
		t.Errorf("Tenants() returned %d, want %d", len(ts), len(ids))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i-1].ID() >= ts[i].ID() {
			t.Errorf("Tenants() not sorted: %s before %s", ts[i-1].ID(), ts[i].ID())
		}
	}
}

func TestIngestAndQueries(t *testing.T) {
	r := newTestRouter(t, Config{Shards: 2})
	tn, err := r.CreateTenant("acme", 6)
	if err != nil {
		t.Fatal(err)
	}
	comps, err := tn.IngestSpan(context.Background(), pairsSpan([2]int{0, 1}, [2]int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if comps != 4 {
		t.Errorf("components = %d, want 4", comps)
	}
	if !tn.SameComponent(0, 2) || tn.SameComponent(0, 3) {
		t.Error("connectivity wrong after ingest")
	}
	st := tn.Stats()
	if st.IngestedSpans != 1 || st.IngestedEdges != 2 || st.N != 6 || st.NumComponents != 4 || st.Queued != 0 {
		t.Errorf("stats = %+v", st)
	}
	labels := tn.LabelsInto(nil)
	if len(labels) != 6 || labels[0] != labels[2] || labels[0] == labels[3] {
		t.Errorf("labels = %v", labels)
	}
	// Out-of-range span rejected at enqueue, before any queueing.
	if _, err := tn.IngestSpan(context.Background(), pairsSpan([2]int{0, 99})); err == nil {
		t.Error("out-of-range span accepted")
	}
}

func TestCoalescingMergesAdjacentSameTenant(t *testing.T) {
	svc := gatedSvc(16)
	r, err := New(Config{Shards: 1, CoalesceLimit: 8,
		NewService: func(string, int) (Service, error) { return svc, nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tn, err := r.CreateTenant("acme", 16)
	if err != nil {
		t.Fatal(err)
	}

	// Pin the first span in flight at the engine, then queue five more
	// behind it: the worker must merge those five into ONE batch.
	var wg sync.WaitGroup
	results := make([]error, 6)
	ingest := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, results[i] = tn.IngestSpan(context.Background(), pairsSpan([2]int{i, i + 1}))
		}()
	}
	ingest(0)
	<-svc.entered // batch 1 (span 0 alone) is in IngestSpan, stalled
	for i := 1; i <= 5; i++ {
		ingest(i)
	}
	waitQueued(t, tn, 6) // 1 in flight + 5 queued
	svc.gate <- struct{}{}
	<-svc.entered // batch 2 (spans 1..5 merged) reached the engine
	svc.gate <- struct{}{}
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("ingest %d failed: %v", i, err)
		}
	}
	if calls := svc.ingestCalls(); calls != 2 {
		t.Errorf("engine saw %d batches, want 2 (1 + coalesced 5)", calls)
	}
	for i := 0; i <= 5; i++ {
		if !tn.SameComponent(i, i+1) {
			t.Errorf("edge {%d,%d} lost in coalescing", i, i+1)
		}
	}
	if st := tn.Stats(); st.IngestedSpans != 6 || st.IngestedEdges != 6 {
		t.Errorf("stats after coalesced ingest = %+v", st)
	}
}

func TestCoalescingNeverCrossesTenants(t *testing.T) {
	entered := make(chan struct{}, 64)
	gate := make(chan struct{})
	var svcs []*fakeSvc
	var mu sync.Mutex
	r, err := New(Config{Shards: 1, CoalesceLimit: 8,
		NewService: func(string, int) (Service, error) {
			s := newFakeSvc(8)
			s.entered, s.gate = entered, gate
			mu.Lock()
			svcs = append(svcs, s)
			mu.Unlock()
			return s, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Both tenants land on shard 0: there is only one shard.
	ta, err := r.CreateTenant("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := r.CreateTenant("b", 8)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	ingest := func(tn *Tenant, u, v int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := tn.IngestSpan(context.Background(), pairsSpan([2]int{u, v})); err != nil {
				t.Errorf("ingest {%d,%d}: %v", u, v, err)
			}
		}()
	}
	ingest(ta, 0, 1)
	<-entered // a's first span in flight
	ingest(tb, 2, 3)
	waitQueued(t, tb, 1) // b's span queued behind it
	ingest(ta, 4, 5)
	waitQueued(t, ta, 2)
	// Queue order is now [b23, a45] behind the in-flight a01: b's span
	// must break the run, so the engines see three separate batches.
	for i := 0; i < 3; i++ {
		gate <- struct{}{}
		if i < 2 {
			<-entered
		}
	}
	wg.Wait()
	total := 0
	for _, s := range svcs {
		total += s.ingestCalls()
	}
	if total != 3 {
		t.Errorf("engines saw %d batches, want 3 (no cross-tenant merge)", total)
	}
	if !ta.SameComponent(0, 1) || !ta.SameComponent(4, 5) || !tb.SameComponent(2, 3) {
		t.Error("edges lost")
	}
	if tb.SameComponent(0, 1) {
		t.Error("tenant isolation violated: b sees a's edge")
	}
}

func TestBackpressureShardQueueFull(t *testing.T) {
	svc := gatedSvc(64)
	r, err := New(Config{Shards: 1, QueueCap: 2, TenantQueueCap: 100, CoalesceLimit: 1,
		NewService: func(string, int) (Service, error) { return svc, nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tn, err := r.CreateTenant("acme", 64)
	if err != nil {
		t.Fatal(err)
	}

	// One span in flight at the engine plus QueueCap=2 queued.
	var wg sync.WaitGroup
	ingest := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := tn.IngestSpan(context.Background(), pairsSpan([2]int{2 * i, 2*i + 1})); err != nil {
				t.Errorf("ingest %d: %v", i, err)
			}
		}()
	}
	ingest(0)
	<-svc.entered
	ingest(1)
	ingest(2)
	waitQueued(t, tn, 3)
	// The shard queue is at capacity: the next push must bounce.
	if _, err := tn.IngestSpan(context.Background(), pairsSpan([2]int{40, 41})); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow ingest: %v, want ErrOverloaded", err)
	}
	close(svc.gate) // release everything
	wg.Wait()
	if st := tn.Stats(); st.IngestedSpans != 3 {
		t.Errorf("IngestedSpans = %d, want 3 (reject must not count)", st.IngestedSpans)
	}
}

func TestTenantBacklogQuota(t *testing.T) {
	svc := gatedSvc(64)
	r, err := New(Config{Shards: 1, QueueCap: 100, TenantQueueCap: 2, CoalesceLimit: 1,
		NewService: func(string, int) (Service, error) { return svc, nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tn, err := r.CreateTenant("acme", 64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := tn.IngestSpan(context.Background(), pairsSpan([2]int{2 * i, 2*i + 1})); err != nil {
				t.Errorf("ingest %d: %v", i, err)
			}
		}(i)
	}
	waitQueued(t, tn, 2)
	if _, err := tn.IngestSpan(context.Background(), pairsSpan([2]int{40, 41})); !errors.Is(err, ErrTenantBacklog) {
		t.Fatalf("backlogged ingest: %v, want ErrTenantBacklog", err)
	}
	close(svc.gate)
	wg.Wait()
}

func TestVertexQuota(t *testing.T) {
	r := newTestRouter(t, Config{Shards: 1, MaxVertices: 100})
	if _, err := r.CreateTenant("big", 101); !errors.Is(err, ErrVertexQuota) {
		t.Fatalf("oversized create: %v, want ErrVertexQuota", err)
	}
	tn, err := r.CreateTenant("ok", 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Grow(101); !errors.Is(err, ErrVertexQuota) {
		t.Fatalf("oversized grow: %v, want ErrVertexQuota", err)
	}
	if err := tn.Grow(100); err != nil {
		t.Fatalf("quota-sized grow: %v", err)
	}
	if tn.N() != 100 {
		t.Errorf("N = %d after grow, want 100", tn.N())
	}
}

func TestIngestErrorPropagatesToAllCoalescedJobs(t *testing.T) {
	svc := gatedSvc(16)
	r, err := New(Config{Shards: 1, CoalesceLimit: 8,
		NewService: func(string, int) (Service, error) { return svc, nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tn, err := r.CreateTenant("acme", 16)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("engine down")
	var wg sync.WaitGroup
	errs := make([]error, 3)
	ingest := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = tn.IngestSpan(context.Background(), pairsSpan([2]int{i, i + 1}))
		}()
	}
	ingest(0)
	<-svc.entered
	ingest(1)
	ingest(2)
	waitQueued(t, tn, 3)
	svc.setFail(boom)
	svc.gate <- struct{}{} // batch 1 (span 0) fails
	<-svc.entered
	svc.gate <- struct{}{} // batch 2 (spans 1+2 merged) fails too
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("job %d error = %v, want engine error", i, err)
		}
	}
	if st := tn.Stats(); st.IngestedSpans != 0 {
		t.Errorf("failed spans counted as ingested: %d", st.IngestedSpans)
	}
}

func TestCancelledWaitStillApplies(t *testing.T) {
	svc := gatedSvc(8)
	r, err := New(Config{Shards: 1,
		NewService: func(string, int) (Service, error) { return svc, nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tn, err := r.CreateTenant("acme", 8)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := tn.IngestSpan(ctx, pairsSpan([2]int{0, 1}))
		done <- err
	}()
	<-svc.entered // the span is in flight; its caller is waiting
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait returned %v", err)
	}
	svc.gate <- struct{}{}
	// The span was accepted before the cancel, so it still applies.
	deadline := time.Now().Add(10 * time.Second)
	for !tn.SameComponent(0, 1) {
		if time.Now().After(deadline) {
			t.Fatal("accepted span never applied after cancelled wait")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseDrainsAcceptedWork(t *testing.T) {
	r, err := New(Config{Shards: 2,
		NewService: func(_ string, n int) (Service, error) { return newFakeSvc(n), nil }})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := r.CreateTenant("acme", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.IngestSpan(context.Background(), pairsSpan([2]int{0, 1})); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if _, err := tn.IngestSpan(context.Background(), pairsSpan([2]int{2, 3})); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close: %v, want ErrClosed", err)
	}
	if _, err := r.CreateTenant("late", 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v, want ErrClosed", err)
	}
}

func TestConcurrentMultiTenantIngest(t *testing.T) {
	r := newTestRouter(t, Config{Shards: 4, QueueCap: 64, TenantQueueCap: 64})
	const tenants, spansEach = 8, 40
	handles := make([]*Tenant, tenants)
	for i := range handles {
		tn, err := r.CreateTenant(string(rune('a'+i)), 2*spansEach+1)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = tn
	}
	var wg sync.WaitGroup
	for _, tn := range handles {
		wg.Add(1)
		go func(tn *Tenant) {
			defer wg.Done()
			for s := 0; s < spansEach; s++ {
				// Chain link s: {2s, 2s+1} then {2s+1, 2s+2}.
				span := pairsSpan([2]int{2 * s, 2*s + 1}, [2]int{2*s + 1, 2*s + 2})
				for {
					_, err := tn.IngestSpan(context.Background(), span)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrTenantBacklog) {
						t.Errorf("tenant %s span %d: %v", tn.ID(), s, err)
						return
					}
					time.Sleep(time.Millisecond) // backpressure: retry
				}
			}
		}(tn)
	}
	wg.Wait()
	for _, tn := range handles {
		// Each tenant's chain connects vertices 0..2*spansEach.
		if !tn.SameComponent(0, 2*spansEach) {
			t.Errorf("tenant %s chain broken", tn.ID())
		}
		st := tn.Stats()
		if st.IngestedSpans != spansEach || st.IngestedEdges != 2*spansEach || st.Queued != 0 {
			t.Errorf("tenant %s stats = %+v", tn.ID(), st)
		}
		if st.NumComponents != 1 {
			t.Errorf("tenant %s components = %d, want 1", tn.ID(), st.NumComponents)
		}
	}
}
