// Package shard is the multi-tenant router behind pramcc.Router: it
// hash-maps tenant ids onto N independent per-tenant connectivity
// services and drives each shard's writes through a bounded FIFO queue
// owned by one dedicated worker goroutine. The package enforces the
// three resource disciplines a shared front end needs —
//
//   - backpressure: a full shard queue rejects with ErrOverloaded
//     instead of queueing unboundedly, so ingest memory is capped by
//     shards × queue-cap × batch size;
//   - per-tenant quotas: a tenant may hold at most TenantQueueCap
//     spans in its shard's queue (ErrTenantBacklog) and grow to at
//     most MaxVertices vertices (ErrVertexQuota), so one tenant
//     cannot starve or bloat its shard-mates;
//   - span coalescing: consecutive queued spans for the same tenant
//     merge into one wider span before they hit the engine. EdgeSpan's
//     SoA layout makes the merge a pair of column appends, and the
//     engine's per-batch fixed costs (snapshot flatten, WAL fsync)
//     are then paid once per merged batch instead of once per request
//     — the same merge-adjacent-work-before-the-expensive-step idea as
//     spatio-temporal communication compression in distributed
//     optimization. E16 measures the effect.
//
// Queries never enter the queue: they read the tenant service's
// lock-free published snapshot directly, so a backed-up writer never
// blocks a reader. The package is expressed over the small Service
// interface rather than *pramcc.Service to keep the import direction
// root → internal/shard.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/graph"
	"repro/internal/obs"
)

// Service is the per-tenant connectivity service a Router drives: the
// subset of pramcc.Service the shard workers and the query paths need.
type Service interface {
	// IngestSpan unions one columnar batch into the live labeling and
	// returns the published component count.
	IngestSpan(ctx context.Context, span graph.EdgeSpan) (components int, err error)
	// Grow extends the vertex set to n, preserving components.
	Grow(n int) error
	// SameComponent, N, NumComponents and LabelsInto are the lock-free
	// snapshot queries.
	SameComponent(v, w int) bool
	N() int
	NumComponents() int
	LabelsInto(dst []int32) []int32
	// DurableSeq reports the last durable batch sequence number, and
	// whether the service is persisted at all.
	DurableSeq() (uint64, bool)
	// Close releases the service.
	Close()
}

// Router errors. The HTTP front end maps ErrOverloaded and
// ErrTenantBacklog to 429 (retryable pressure) and ErrVertexQuota to
// 422 (the request can never succeed under the current quota).
var (
	ErrOverloaded    = errors.New("shard: ingest queue full, retry later")
	ErrTenantBacklog = errors.New("shard: tenant queued-span quota exceeded, retry later")
	ErrVertexQuota   = errors.New("shard: tenant vertex quota exceeded")
	ErrUnknownTenant = errors.New("shard: unknown tenant")
	ErrTenantExists  = errors.New("shard: tenant already exists")
	ErrClosed        = errors.New("shard: router is closed")
)

// Defaults for Config fields left zero.
const (
	DefaultQueueCap       = 256
	DefaultTenantQueueCap = 32
	DefaultCoalesceLimit  = 16
)

// Config sizes a Router. The zero value of every field selects a
// sensible default except NewService, which is required.
type Config struct {
	// Shards is the number of independent shard queues and workers
	// tenants are hashed onto. < 1 selects 1.
	Shards int
	// QueueCap bounds each shard's queue in jobs; a push beyond it
	// fails with ErrOverloaded. < 1 selects DefaultQueueCap.
	QueueCap int
	// TenantQueueCap bounds how many spans one tenant may hold queued
	// at once (ErrTenantBacklog beyond it). < 1 selects
	// DefaultTenantQueueCap.
	TenantQueueCap int
	// MaxVertices caps each tenant's vertex count (CreateTenant and
	// Grow fail with ErrVertexQuota beyond it). 0 means unlimited.
	MaxVertices int
	// CoalesceLimit is the most queued spans one worker pass merges
	// into a single engine batch. 1 disables coalescing; < 1 selects
	// DefaultCoalesceLimit.
	CoalesceLimit int
	// NewService builds the per-tenant service when a tenant is
	// created (or recovered): typically pramcc.NewService, or
	// pramcc.Open under a per-tenant subdirectory.
	NewService func(tenant string, n int) (Service, error)
}

// Router hash-routes tenants onto shards and owns the shard workers.
type Router struct {
	cfg    Config
	shards []*shardState

	mu      sync.RWMutex
	tenants map[string]*Tenant
	closed  bool

	wg sync.WaitGroup
}

// shardState is one shard: its bounded queue, its worker's identity,
// and its cached metric children.
type shardState struct {
	id     int
	q      *queue
	builds *obs.Counter // engine batches this shard's worker ran
}

// New builds a Router and starts one worker goroutine per shard.
func New(cfg Config) (*Router, error) {
	if cfg.NewService == nil {
		return nil, errors.New("shard: Config.NewService is required")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.TenantQueueCap < 1 {
		cfg.TenantQueueCap = DefaultTenantQueueCap
	}
	if cfg.CoalesceLimit < 1 {
		cfg.CoalesceLimit = DefaultCoalesceLimit
	}
	r := &Router{cfg: cfg, tenants: map[string]*Tenant{}}
	mQueueCap.Set(int64(cfg.QueueCap))
	for i := 0; i < cfg.Shards; i++ {
		sh := &shardState{
			id:     i,
			q:      newQueue(cfg.QueueCap, mQueueDepth.With(shardLabel(i))),
			builds: mShardBatches.With(shardLabel(i)),
		}
		r.shards = append(r.shards, sh)
		r.wg.Add(1)
		go r.worker(sh)
	}
	return r, nil
}

// shardLabel renders a shard index as its metric label value.
func shardLabel(i int) string { return fmt.Sprintf("%d", i) }

// ShardOf returns the shard index tenant id maps to: FNV-1a over the
// id, mod the shard count. The mapping is deterministic across
// restarts, so a recovered tenant lands on the same shard.
func (r *Router) ShardOf(id string) int {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() % uint64(len(r.shards)))
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// ValidTenantID reports whether id is usable as a tenant id: 1–64
// characters from [a-zA-Z0-9._-], starting alphanumeric. The grammar
// is strict enough to embed ids in paths (durable subdirectories) and
// metric label values without escaping surprises.
func ValidTenantID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}

// CreateTenant creates tenant id with n initial isolated vertices,
// building its service via Config.NewService and assigning it to its
// hash shard. The id must satisfy ValidTenantID; n beyond MaxVertices
// is rejected up front.
func (r *Router) CreateTenant(id string, n int) (*Tenant, error) {
	if !ValidTenantID(id) {
		return nil, fmt.Errorf("shard: invalid tenant id %q (want 1-64 chars of [a-zA-Z0-9._-], starting alphanumeric)", id)
	}
	if n < 0 {
		return nil, fmt.Errorf("shard: negative vertex count %d", n)
	}
	if r.cfg.MaxVertices > 0 && n > r.cfg.MaxVertices {
		mQuotaRejects.Inc()
		return nil, fmt.Errorf("%w: %d > %d vertices", ErrVertexQuota, n, r.cfg.MaxVertices)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if _, ok := r.tenants[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, id)
	}
	svc, err := r.cfg.NewService(id, n)
	if err != nil {
		return nil, err
	}
	t := &Tenant{
		id:     id,
		router: r,
		shard:  r.shards[r.ShardOf(id)],
		svc:    svc,
		cSpans: mTenantSpans.With(id),
		cEdges: mTenantEdges.With(id),
	}
	r.tenants[id] = t
	mTenants.Set(int64(len(r.tenants)))
	return t, nil
}

// Tenant returns the tenant with the given id.
func (r *Router) Tenant(id string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[id]
	return t, ok
}

// Tenants returns every tenant, sorted by id.
func (r *Router) Tenants() []*Tenant {
	r.mu.RLock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Close stops accepting writes, drains every already-accepted queued
// span (their callers are blocked waiting on them), stops the shard
// workers, and closes every tenant service. Idempotent.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	for _, sh := range r.shards {
		sh.q.close()
	}
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.tenants {
		t.svc.Close()
	}
}

// worker is one shard's dedicated goroutine: it pops runs of queued
// jobs (a run = the head job plus up to CoalesceLimit-1 consecutive
// jobs for the same tenant), merges each run into one span, and
// ingests it into the tenant's service.
func (r *Router) worker(sh *shardState) {
	defer r.wg.Done()
	for {
		run := sh.q.popRun(r.cfg.CoalesceLimit)
		if run == nil {
			return
		}
		r.process(sh, run)
	}
}

// process ingests one coalesced run and completes its jobs. The
// worker's context is Background: a span accepted into the queue has
// been promised to the tenant's labeling (and, on a durable service,
// to its WAL), so a caller abandoning its wait must not cancel the
// union work mid-run for the jobs coalesced around it.
func (r *Router) process(sh *shardState, run []*job) {
	t := run[0].tenant
	span := run[0].span
	if len(run) > 1 {
		span = mergeSpans(run)
		mCoalesceBatches.Inc()
		mCoalesceSpans.Add(int64(len(run) - 1))
	}
	components, err := t.svc.IngestSpan(context.Background(), span)
	if err == nil {
		t.spans.Add(int64(len(run)))
		t.edges.Add(int64(span.Len()))
		t.cSpans.Add(int64(len(run)))
		t.cEdges.Add(int64(span.Len()))
	}
	sh.builds.Inc()
	for _, j := range run {
		j.components, j.err = components, err
		t.queued.Add(-1)
		close(j.done)
	}
}

// mergeSpans concatenates a run's spans into one owned span: two
// column appends per span, no per-edge work beyond the copy — the SoA
// payoff that makes coalescing nearly free relative to the per-batch
// fixed costs it amortizes.
func mergeSpans(run []*job) graph.EdgeSpan {
	arcs := 0
	for _, j := range run {
		arcs += len(j.span.U)
	}
	u := make([]int32, 0, arcs)
	v := make([]int32, 0, arcs)
	for _, j := range run {
		u = append(u, j.span.U...)
		v = append(v, j.span.V...)
	}
	return graph.EdgeSpan{U: u, V: v}
}

// Tenant is one tenant's handle: its service plus its routing and
// accounting state.
type Tenant struct {
	id     string
	router *Router
	shard  *shardState
	svc    Service
	queued atomic.Int64 // spans currently queued on the shard
	spans  atomic.Int64 // spans ingested (this handle's own view)
	edges  atomic.Int64 // edges ingested

	cSpans *obs.Counter // process-wide per-tenant metric children
	cEdges *obs.Counter
}

// ID returns the tenant id.
func (t *Tenant) ID() string { return t.id }

// Shard returns the shard index the tenant is routed to.
func (t *Tenant) Shard() int { return t.shard.id }

// Service exposes the underlying per-tenant service (for queries that
// need more than the Tenant surface, e.g. label dumps).
func (t *Tenant) Service() Service { return t.svc }

// job is one queued ingest: a validated span waiting for the shard
// worker, and the completion the submitting caller blocks on.
type job struct {
	tenant     *Tenant
	span       graph.EdgeSpan
	done       chan struct{}
	components int
	err        error
}

// IngestSpan validates span against the tenant's current vertex set,
// enqueues it on the tenant's shard, and waits for the shard worker to
// apply it (possibly coalesced with its queue neighbours), returning
// the published component count. Backpressure and quota failures
// (ErrOverloaded, ErrTenantBacklog) reject before any queueing. A
// cancelled ctx abandons the wait with ctx.Err() — but an accepted
// span is still applied; unions are idempotent, so re-submitting after
// a cancellation cannot corrupt the labeling.
//
// Validation happens here, at enqueue, against the tenant's current N:
// since the vertex set only grows, a span valid now is valid when the
// worker reaches it, and a malformed span can never poison the spans
// it would be coalesced with.
func (t *Tenant) IngestSpan(ctx context.Context, span graph.EdgeSpan) (components int, err error) {
	if err := span.Validate(t.svc.N()); err != nil {
		return 0, err
	}
	if t.queued.Add(1) > int64(t.router.cfg.TenantQueueCap) {
		t.queued.Add(-1)
		mBacklogRejects.Inc()
		return 0, fmt.Errorf("%w (tenant %q, cap %d)", ErrTenantBacklog, t.id, t.router.cfg.TenantQueueCap)
	}
	j := &job{tenant: t, span: span, done: make(chan struct{})}
	if err := t.shard.q.push(j); err != nil {
		t.queued.Add(-1)
		if errors.Is(err, ErrOverloaded) {
			mOverloadRejects.Inc()
		}
		return 0, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		return j.components, j.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Grow extends the tenant's vertex set to n (no-op when n ≤ N),
// enforcing the vertex quota.
func (t *Tenant) Grow(n int) error {
	if t.router.cfg.MaxVertices > 0 && n > t.router.cfg.MaxVertices {
		mQuotaRejects.Inc()
		return fmt.Errorf("%w: %d > %d vertices", ErrVertexQuota, n, t.router.cfg.MaxVertices)
	}
	return t.svc.Grow(n)
}

// SameComponent answers from the tenant's published snapshot,
// lock-free, never entering the ingest queue.
func (t *Tenant) SameComponent(v, w int) bool { return t.svc.SameComponent(v, w) }

// N returns the tenant's published vertex count.
func (t *Tenant) N() int { return t.svc.N() }

// NumComponents returns the tenant's published component count.
func (t *Tenant) NumComponents() int { return t.svc.NumComponents() }

// LabelsInto copies the tenant's published labeling into dst (see
// pramcc.Service.LabelsInto).
func (t *Tenant) LabelsInto(dst []int32) []int32 { return t.svc.LabelsInto(dst) }

// Queued returns the tenant's currently queued span count.
func (t *Tenant) Queued() int { return int(t.queued.Load()) }

// Stats is a point-in-time tenant summary for listings and the stats
// endpoint.
type Stats struct {
	ID            string
	Shard         int
	N             int
	NumComponents int
	Queued        int
	IngestedSpans int64
	IngestedEdges int64
	DurableSeq    uint64
	Durable       bool
}

// Stats snapshots the tenant.
func (t *Tenant) Stats() Stats {
	s := Stats{
		ID:            t.id,
		Shard:         t.shard.id,
		N:             t.svc.N(),
		NumComponents: t.svc.NumComponents(),
		Queued:        t.Queued(),
		IngestedSpans: t.spans.Load(),
		IngestedEdges: t.edges.Load(),
	}
	s.DurableSeq, s.Durable = t.svc.DurableSeq()
	return s
}
