package shard

import (
	"sync"

	"repro/internal/obs"
)

// queue is one shard's bounded FIFO of ingest jobs: a mutex-guarded
// ring with a condition variable for the single consumer (the shard
// worker). Pushes never block — a full queue rejects with
// ErrOverloaded, which is the backpressure contract: the caller (and
// ultimately the HTTP client, as a 429) decides whether to retry, and
// router memory stays bounded at cap jobs per shard.
//
// The consumer pops runs: the head job plus up to limit-1 jobs
// immediately behind it belonging to the same tenant. Only adjacent
// jobs coalesce, so cross-tenant FIFO order — and therefore per-tenant
// ingest order — is preserved exactly.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*job // FIFO window: live entries are jobs[head:]
	head   int
	cap    int
	closed bool

	depth *obs.Gauge // this shard's queue-depth metric child
}

func newQueue(cap int, depth *obs.Gauge) *queue {
	q := &queue{cap: cap, depth: depth}
	q.cond = sync.NewCond(&q.mu)
	q.depth.Set(0)
	return q
}

// len reports the live entry count. Callers hold mu.
func (q *queue) len() int { return len(q.jobs) - q.head }

// push appends j, failing on a full or closed queue.
func (q *queue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.len() >= q.cap {
		return ErrOverloaded
	}
	q.jobs = append(q.jobs, j)
	q.depth.Set(int64(q.len()))
	q.cond.Signal()
	return nil
}

// popRun blocks until a job is available (or the queue is closed and
// drained, returning nil), then pops the head job plus up to limit-1
// consecutive same-tenant followers — the coalescing window.
func (q *queue) popRun(limit int) []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.len() == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.len() == 0 {
		return nil
	}
	run := []*job{q.pop()}
	for len(run) < limit && q.len() > 0 && q.jobs[q.head].tenant == run[0].tenant {
		run = append(run, q.pop())
	}
	q.depth.Set(int64(q.len()))
	return run
}

// pop removes and returns the head entry, compacting the backing
// slice once the dead prefix dominates. Callers hold mu.
func (q *queue) pop() *job {
	j := q.jobs[q.head]
	q.jobs[q.head] = nil // release the span for GC
	q.head++
	if q.head > 64 && q.head*2 >= len(q.jobs) {
		n := copy(q.jobs, q.jobs[q.head:])
		q.jobs = q.jobs[:n]
		q.head = 0
	}
	return j
}

// close marks the queue closed and wakes the consumer so it can drain
// the remaining entries and exit.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
