package shard

import "repro/internal/obs"

// Router metrics, process-wide like every pramcc metric family: the
// vec children are keyed by shard index or tenant id, so two Routers
// in one process (a test scenario — ccserve runs one) share children.
// All names are documented in OPERATIONS.md (cclint -run metricdoc).
var (
	mQueueDepth = obs.Default.GaugeVec("pramcc_shard_queue_depth",
		"ingest jobs currently queued on each shard (occupancy = depth / pramcc_shard_queue_cap)",
		"shard")
	mQueueCap = obs.Default.Gauge("pramcc_shard_queue_cap",
		"per-shard ingest queue capacity (jobs); pushes beyond it are rejected with 429/ErrOverloaded")
	mShardBatches = obs.Default.CounterVec("pramcc_shard_ingest_batches_total",
		"engine batches executed by each shard worker (after coalescing)",
		"shard")
	mTenantSpans = obs.Default.CounterVec("pramcc_tenant_ingest_spans_total",
		"spans accepted and applied per tenant",
		"tenant")
	mTenantEdges = obs.Default.CounterVec("pramcc_tenant_ingest_edges_total",
		"edges accepted and applied per tenant",
		"tenant")
	mTenants = obs.Default.Gauge("pramcc_router_tenants",
		"tenants currently hosted by the router")
	mOverloadRejects = obs.Default.Counter("pramcc_router_overload_rejects_total",
		"ingests rejected because a shard queue was full (HTTP 429)")
	mBacklogRejects = obs.Default.Counter("pramcc_router_backlog_rejects_total",
		"ingests rejected because the tenant's queued-span quota was exhausted (HTTP 429)")
	mQuotaRejects = obs.Default.Counter("pramcc_router_quota_rejects_total",
		"creates/grows rejected by the per-tenant vertex quota (HTTP 422)")
	mCoalesceBatches = obs.Default.Counter("pramcc_coalesce_batches_total",
		"engine batches that merged more than one queued span")
	mCoalesceSpans = obs.Default.Counter("pramcc_coalesce_merged_spans_total",
		"queued spans absorbed into a coalesced batch instead of ingested alone")
)
