// Package check provides the verification oracles used by tests and by
// Experiment E7: partition equality of two component labelings (up to
// relabeling) and structural validation of spanning forests.
package check

import (
	"fmt"

	"repro/graph"
)

// SamePartition reports whether two labelings induce the same partition
// of [0,n): a[i]==a[j] ⟺ b[i]==b[j] for all i,j, checked in O(n) by
// cross-mapping representatives.
func SamePartition(a, b []int32) error {
	if len(a) != len(b) {
		return fmt.Errorf("check: labelings have different lengths %d, %d", len(a), len(b))
	}
	ab := make(map[int32]int32)
	ba := make(map[int32]int32)
	for i := range a {
		if mapped, ok := ab[a[i]]; ok {
			if mapped != b[i] {
				return fmt.Errorf("check: vertices with label %d map to both %d and %d", a[i], mapped, b[i])
			}
		} else {
			ab[a[i]] = b[i]
		}
		if mapped, ok := ba[b[i]]; ok {
			if mapped != a[i] {
				return fmt.Errorf("check: vertices with label %d map back to both %d and %d", b[i], mapped, a[i])
			}
		} else {
			ba[b[i]] = a[i]
		}
	}
	return nil
}

// Components verifies labels against the BFS oracle for g.
func Components(g *graph.Graph, labels []int32) error {
	return SamePartition(labels, g.ComponentsBFS())
}

// Forest validates a spanning forest given as edge indices into
// g.Edges(): (i) indices are valid and distinct, (ii) the selected
// edges are acyclic, (iii) their count is n − #components, which
// together with (ii) implies they span every component.
func Forest(g *graph.Graph, edgeIdx []int) error {
	seen := make(map[int]bool, len(edgeIdx))
	parent := make([]int32, g.N)
	rank := make([]int8, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, idx := range edgeIdx {
		if idx < 0 || idx >= g.NumEdges() {
			return fmt.Errorf("check: forest edge index %d out of range [0,%d)", idx, g.NumEdges())
		}
		if seen[idx] {
			return fmt.Errorf("check: forest edge index %d repeated", idx)
		}
		seen[idx] = true
		x, y := g.U[2*idx], g.V[2*idx]
		rx, ry := find(x), find(y)
		if rx == ry {
			return fmt.Errorf("check: forest edge %d = {%d,%d} closes a cycle", idx, x, y)
		}
		if rank[rx] < rank[ry] {
			rx, ry = ry, rx
		}
		parent[ry] = rx
		if rank[rx] == rank[ry] {
			rank[rx]++
		}
	}
	want := g.N - g.NumComponents()
	if len(edgeIdx) != want {
		return fmt.Errorf("check: forest has %d edges, want n-#components = %d", len(edgeIdx), want)
	}
	return nil
}

// NumLabels returns the number of distinct labels.
func NumLabels(labels []int32) int {
	set := make(map[int32]struct{})
	for _, l := range labels {
		set[l] = struct{}{}
	}
	return len(set)
}
