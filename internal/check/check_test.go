package check

import (
	"testing"
	"testing/quick"

	"repro/graph"
)

func TestSamePartitionAccepts(t *testing.T) {
	a := []int32{0, 0, 1, 1, 2}
	b := []int32{9, 9, 4, 4, 7} // same partition, different labels
	if err := SamePartition(a, b); err != nil {
		t.Fatal(err)
	}
}

func TestSamePartitionRejectsSplit(t *testing.T) {
	a := []int32{0, 0, 0}
	b := []int32{1, 1, 2}
	if err := SamePartition(a, b); err == nil {
		t.Fatal("split not detected")
	}
}

func TestSamePartitionRejectsMerge(t *testing.T) {
	a := []int32{0, 1}
	b := []int32{5, 5}
	if err := SamePartition(a, b); err == nil {
		t.Fatal("merge not detected")
	}
}

func TestSamePartitionLengthMismatch(t *testing.T) {
	if err := SamePartition([]int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestSamePartitionProperty(t *testing.T) {
	// Relabeling by any injective map preserves the partition.
	f := func(labels []uint8, offset int32) bool {
		a := make([]int32, len(labels))
		b := make([]int32, len(labels))
		for i, l := range labels {
			a[i] = int32(l)
			b[i] = int32(l)*7 + offset // injective transform
		}
		return SamePartition(a, b) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForestAcceptsSpanningTree(t *testing.T) {
	g := graph.Path(5)
	if err := Forest(g, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestForestRejectsCycle(t *testing.T) {
	g := graph.Cycle(4)
	if err := Forest(g, []int{0, 1, 2, 3}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestForestRejectsIncomplete(t *testing.T) {
	g := graph.Path(5)
	if err := Forest(g, []int{0, 1}); err == nil {
		t.Fatal("undersized forest accepted")
	}
}

func TestForestRejectsDuplicates(t *testing.T) {
	g := graph.Path(3)
	if err := Forest(g, []int{0, 0}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestForestRejectsOutOfRange(t *testing.T) {
	g := graph.Path(3)
	if err := Forest(g, []int{7}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestForestMultiComponent(t *testing.T) {
	g := graph.DisjointUnion(graph.Path(3), graph.Path(3))
	// Edges 0,1 span the first path; 2,3 the second.
	if err := Forest(g, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsOracle(t *testing.T) {
	g := graph.DisjointUnion(graph.Clique(4), graph.Star(5))
	good := g.ComponentsBFS()
	if err := Components(g, good); err != nil {
		t.Fatal(err)
	}
	bad := make([]int32, g.N)
	if err := Components(g, bad); err == nil {
		t.Fatal("all-zero labeling accepted for 2-component graph")
	}
}

func TestNumLabels(t *testing.T) {
	if NumLabels([]int32{1, 1, 2, 3, 3, 3}) != 3 {
		t.Fatal("wrong label count")
	}
}
