package analysis

import (
	"fmt"
	"go/ast"
	"sort"

	"repro/internal/analysis/load"
)

// Analyzers returns the full cclint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Atomicpub, Zeroalloc, Ctxround, Waldiscipline, Metricdoc}
}

// ByName resolves a comma-free analyzer name, nil if unknown.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// SuiteResult is the outcome of one RunSuite call.
type SuiteResult struct {
	// Diags are the surviving (unsuppressed) diagnostics, sorted by
	// position.
	Diags []Diagnostic
	// Suppressed counts diagnostics silenced by //pramcc:allow.
	Suppressed int
	// Packages counts the root packages analyzed.
	Packages int
}

// RunSuite loads patterns relative to dir and runs the given analyzers
// (all of them when analyzers is nil) over every matched package.
// //pramcc:zeroalloc marks are collected module-wide — from the roots
// and from their module-local dependencies — so partial patterns agree
// with full runs, and //pramcc:allow directives are applied before
// diagnostics are returned.
func RunSuite(dir string, patterns []string, analyzers []*Analyzer) (*SuiteResult, error) {
	if analyzers == nil {
		analyzers = Analyzers()
	}
	res, err := load.Load(dir, patterns)
	if err != nil {
		return nil, err
	}

	marks := map[string]bool{}
	collectMarks := func(importPath string, files []*ast.File) {
		for _, f := range files {
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && hasZeroallocMark(fn) {
					marks[declKey(importPath, fn)] = true
				}
			}
		}
	}
	for _, pkg := range res.Pkgs {
		collectMarks(pkg.ImportPath, pkg.Files)
	}
	depFiles, err := load.ScanDirs(res.Fset, res.DepDirs)
	if err != nil {
		return nil, err
	}
	for importPath, files := range depFiles {
		collectMarks(importPath, files)
	}

	var all []Diagnostic
	allows := map[allowKey][]string{}
	for _, pkg := range res.Pkgs {
		for k, v := range collectAllows(res.Fset, pkg.Files, &all) {
			allows[k] = append(allows[k], v...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Pkg:            pkg,
				Fset:           res.Fset,
				ZeroallocMarks: marks,
				analyzer:       a,
				diags:          &all,
			}
			a.Run(pass)
		}
	}

	out := &SuiteResult{Packages: len(res.Pkgs)}
	for _, d := range all {
		if suppressed(d, allows) {
			out.Suppressed++
			continue
		}
		out.Diags = append(out.Diags, d)
	}
	sort.Slice(out.Diags, func(i, j int) bool {
		a, b := out.Diags[i].Pos, out.Diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// Validate sanity-checks a -run selection against the suite.
func Validate(names []string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range names {
		a := ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (have: atomicpub, zeroalloc, ctxround, waldiscipline, metricdoc)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
