package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/antest"
)

// fixtures is the fixture module root (its own go.mod, so the loader
// resolves fixture packages the same way it resolves real ones).
const fixtures = "testdata/src"

func TestAtomicpub(t *testing.T) {
	antest.Run(t, analysis.Atomicpub, fixtures, "./atomicpub")
}

func TestZeroalloc(t *testing.T) {
	antest.Run(t, analysis.Zeroalloc, fixtures, "./zeroalloc")
}

func TestCtxround(t *testing.T) {
	antest.Run(t, analysis.Ctxround, fixtures, "./native")
}

func TestWaldiscipline(t *testing.T) {
	antest.Run(t, analysis.Waldiscipline, fixtures, "./waldiscipline", "./durable")
}

func TestMetricdoc(t *testing.T) {
	antest.Run(t, analysis.Metricdoc, fixtures, "./metricdoc")
}

// TestMalformedAllowIsDiagnosed pins the directive rule: a suppression
// that fails to parse surfaces as a diagnostic no matter which
// analyzer runs.
func TestMalformedAllowIsDiagnosed(t *testing.T) {
	antest.Run(t, analysis.Atomicpub, fixtures, "./directive")
}
