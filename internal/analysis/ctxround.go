package analysis

import (
	"go/ast"
	"go/types"
)

// ctxroundTargets names the engine packages (by import-path basename)
// whose round/batch loops carry the PR-4 cancellation contract: ctx is
// checked at every round and batch boundary, so a cancelled solve or
// ingest returns within one round. Other packages — the graph loaders,
// the ops binary — have their own latency structure and are not held
// to it.
var ctxroundTargets = map[string]bool{
	"core":        true,
	"native":      true,
	"incremental": true,
	"pram":        true,
	"ccbase":      true,
	"spanning":    true,
}

// Ctxround enforces that contract statically:
//
//  1. In a context-aware function (one that references a
//     context.Context value), every unbounded `for` loop must reach a
//     ctx check — reference ctx in its condition or body, directly or
//     inside a nested closure. Deleting the ctx.Err() at the top of
//     the native engine's round loop trips this rule.
//  2. An exported function that directly contains an unbounded loop
//     must be context-aware: engine entry points accept a
//     context.Context (or a Params struct carrying one) so callers can
//     bound them.
//
// A loop is unbounded unless it ranges, or its condition tests the
// variable its init/post clause drives (a plain counter). CAS retry
// loops — `for { ... CompareAndSwap ... }` — are exempt: they
// terminate in a bounded number of contention retries and are the
// lock-free engines' bread and butter.
var Ctxround = &Analyzer{
	Name: "ctxround",
	Doc:  "engine round/batch loops reach a ctx check; exported entry points with unbounded loops take a Context",
	Run:  runCtxround,
}

func runCtxround(pass *Pass) {
	if !ctxroundTargets[pathBase(pass.Pkg.ImportPath)] {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCtxFunc(pass, fn)
		}
	}
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

func checkCtxFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	aware := referencesContext(info, fn.Body) || funcTypeHasContext(info, fn.Type)

	var loops []*ast.ForStmt
	collectDirectLoops(fn.Body, &loops)
	for _, loop := range loops {
		if boundedLoop(info, loop) || casRetryLoop(loop) {
			continue
		}
		switch {
		case !aware && fn.Name.IsExported():
			pass.Reportf(loop.For, "exported engine entry point %s has an unbounded loop but no context.Context; cancellation must be able to reach it", fn.Name.Name)
		case aware && !referencesContext(info, loopCondAndBody(loop)):
			pass.Reportf(loop.For, "unbounded loop in context-aware function %s never checks ctx; add a ctx.Err()/Done() check at the round boundary", fn.Name.Name)
		}
	}

	// Nested function literals are their own scopes: a closure that
	// captures ctx is context-aware on its own.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		litAware := referencesContext(info, lit.Body)
		var litLoops []*ast.ForStmt
		collectDirectLoops(lit.Body, &litLoops)
		for _, loop := range litLoops {
			if boundedLoop(info, loop) || casRetryLoop(loop) {
				continue
			}
			if litAware && !referencesContext(info, loopCondAndBody(loop)) {
				pass.Reportf(loop.For, "unbounded loop in context-aware closure never checks ctx; add a ctx.Err()/Done() check at the chunk boundary")
			}
		}
		return true
	})
}

// collectDirectLoops gathers the for-loops of body that are not inside
// a nested function literal (those are checked as their own scope).
func collectDirectLoops(body ast.Node, out *[]*ast.ForStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			*out = append(*out, n)
		}
		return true
	})
}

// loopCondAndBody wraps a loop's condition and body for the ctx-usage
// scan; the init/post clauses cannot hold a meaningful check.
func loopCondAndBody(loop *ast.ForStmt) ast.Node {
	if loop.Cond == nil {
		return loop.Body
	}
	return loop // cond included; init/post are counters and harmless to scan
}

// referencesContext reports whether any expression under n has static
// type context.Context — a parameter, local, free variable, or a
// struct field like the incremental engine's spanCtx.
func referencesContext(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.Ident:
			if obj := info.ObjectOf(x); obj != nil {
				if _, isVar := obj.(*types.Var); isVar && isContextType(obj.Type()) {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal && isContextType(sel.Obj().Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// funcTypeHasContext reports whether the signature declares a
// context.Context parameter (counts as aware even if unused — the
// entry-point rule only needs the parameter to exist).
func funcTypeHasContext(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if t := info.TypeOf(f.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// boundedLoop reports whether loop is a plain counter: `for i := lo;
// i < hi; i++` and friends — the condition reads the variable the
// init or post clause drives.
func boundedLoop(info *types.Info, loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return false
	}
	driven := map[types.Object]bool{}
	collect := func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						driven[obj] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					driven[obj] = true
				}
			}
		}
	}
	if loop.Init != nil {
		collect(loop.Init)
	}
	if loop.Post != nil {
		collect(loop.Post)
	}
	if len(driven) == 0 {
		return false
	}
	bounded := false
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && driven[info.ObjectOf(id)] {
			bounded = true
		}
		return !bounded
	})
	return bounded
}

// casRetryLoop reports whether loop's direct body performs a
// compare-and-swap — the lock-free retry shape (casMin, union-by-CAS,
// budget max-combining) that finishes in bounded contention retries.
func casRetryLoop(loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if n, ok := n.(*ast.FuncLit); ok && n != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if name == "CompareAndSwap" || name == "CompareAndSwapInt32" ||
			name == "CompareAndSwapInt64" || name == "CompareAndSwapUint64" ||
			name == "CAS32" || name == "CAS64" {
			found = true
		}
		return !found
	})
	return found
}
