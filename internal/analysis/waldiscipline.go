package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Waldiscipline enforces the PR-7 durability barrier: on any function
// that both publishes a snapshot and works with a durable.Store, the
// WAL append (LogSpan/LogGrow/Checkpoint) must come before the
// publication — otherwise a crash between the two leaves readers
// having observed state the log cannot replay. Publication is the
// Service's publish() helper or a Store call on a field named snap
// (the atomic.Pointer snapshot slot); reordering the WAL append after
// sv.publish in service.go trips this analyzer.
//
// Inside internal/durable itself one more ordering is checked: the
// manifest swap (writeManifest) must be preceded by a data fsync
// (Sync) in the same function, so the manifest never points at a
// snapshot whose bytes may still be in the page cache.
//
// The ordering check is positional over the function body — a
// conservative approximation of CFG dominance that is exact for the
// straight-line persist paths it guards.
var Waldiscipline = &Analyzer{
	Name: "waldiscipline",
	Doc:  "snapshot publication is preceded by the corresponding WAL append; manifest swaps are preceded by fsync",
	Run:  runWaldiscipline,
}

func runWaldiscipline(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkWalOrder(pass, fn)
			if pass.Pkg.Name == "durable" {
				checkManifestOrder(pass, fn)
			}
		}
	}
}

func checkWalOrder(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info

	var walPos []token.Pos
	var pubs []*ast.CallExpr
	usesStore := false

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWalAppendCall(pass, n) {
				walPos = append(walPos, n.Pos())
			} else if isPublishCall(n) {
				pubs = append(pubs, n)
			}
		case *ast.SelectorExpr:
			if t := info.TypeOf(n); t != nil && isDurableStoreType(t) {
				usesStore = true
			}
		case *ast.Ident:
			if obj := info.ObjectOf(n); obj != nil && isDurableStoreType(obj.Type()) {
				usesStore = true
			}
		}
		return true
	})

	if !usesStore || len(pubs) == 0 {
		return
	}
	for _, pub := range pubs {
		preceded := false
		for _, w := range walPos {
			if w < pub.Pos() {
				preceded = true
				break
			}
		}
		if !preceded {
			pass.Reportf(pub.Pos(), "snapshot is published before (or without) the corresponding WAL append; a crash here would lose acknowledged state — log first, publish second")
		}
	}
}

// checkManifestOrder requires a Sync call before any writeManifest call
// in the same durable-package function.
func checkManifestOrder(pass *Pass, fn *ast.FuncDecl) {
	var syncPos []token.Pos
	var manifests []*ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeName(call) {
		case "Sync":
			syncPos = append(syncPos, call.Pos())
		case "writeManifest":
			manifests = append(manifests, call)
		}
		return true
	})
	for _, m := range manifests {
		preceded := false
		for _, s := range syncPos {
			if s < m.Pos() {
				preceded = true
				break
			}
		}
		if !preceded {
			pass.Reportf(m.Pos(), "manifest is swapped before the snapshot data is fsynced; call Sync on the data file first")
		}
	}
}

// isWalAppendCall matches the durable.Store append surface:
// LogSpan/LogGrow/Checkpoint methods on a type named Store in a
// package named durable.
func isWalAppendCall(pass *Pass, call *ast.CallExpr) bool {
	switch calleeName(call) {
	case "LogSpan", "LogGrow", "Checkpoint":
	default:
		return false
	}
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "durable" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedType(sig.Recv().Type())
	return n != nil && n.Obj().Name() == "Store"
}

// isPublishCall matches snapshot publication: the publish() helper, or
// a Store on a field/variable named snap (the atomic snapshot slot).
func isPublishCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name == "publish" {
		return true
	}
	if sel.Sel.Name != "Store" {
		return false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "snap"
	case *ast.Ident:
		return x.Name == "snap"
	}
	return false
}

// isDurableStoreType reports whether t is (a pointer to) the named
// type Store of a package named durable.
func isDurableStoreType(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == "durable" && n.Obj().Name() == "Store"
}

// calleeName extracts the called method/function name from syntax.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
