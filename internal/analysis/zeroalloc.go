package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Zeroalloc audits functions marked `//pramcc:zeroalloc` — the span-
// ingest and query hot paths whose allocation-free contract is pinned
// dynamically by testing.AllocsPerRun tests — for constructs that
// allocate or may allocate:
//
//   - make/new/append and map or slice composite literals
//   - heap-escaping composite literals (&T{...})
//   - closures and go statements
//   - string<->[]byte/[]rune conversions and boxing into interfaces
//   - fmt calls, and calls to any function that is neither marked
//     //pramcc:zeroalloc itself nor on a short allowlist of known
//     non-allocating standard packages (sync/atomic, sync, context,
//     time, math, math/bits)
//
// Two shapes are exempt because the compiler provably keeps them off
// the heap here: a `defer func(){...}()` directly in the function body
// (open-coded defer, not in a loop), and code under an observability
// cold gate — `if obs.Enabled() { ... }` or a bool local bound to it —
// which by contract only runs when a sink is attached and the
// allocation-free guarantee is already waived.
//
// Calls through func-typed values (the engines' pre-bound worker
// closures) are allowed: the allocation happened at bind time, outside
// the marked region.
var Zeroalloc = &Analyzer{
	Name: "zeroalloc",
	Doc:  "//pramcc:zeroalloc-marked functions contain no allocating constructs",
	Run:  runZeroalloc,
}

// zeroallocStdAllow lists standard packages whose calls are accepted in
// marked functions: their relevant entry points (atomic ops, mutexes,
// monotonic clock reads, pure math) do not allocate.
var zeroallocStdAllow = map[string]bool{
	"sync/atomic": true,
	"sync":        true,
	"context":     true,
	"time":        true,
	"math":        true,
	"math/bits":   true,
}

func runZeroalloc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasZeroallocMark(fn) {
				continue
			}
			checkZeroalloc(pass, fn)
		}
	}
}

func checkZeroalloc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Bool locals bound to the obs cold gate: emit := obs.Enabled().
	coldLocals := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isColdGateCall(info, call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				coldLocals[obj] = true
			}
		}
		return true
	})

	// Subtrees excluded from the audit: then-branches of cold gates.
	// FuncLits excluded from the closure rule: non-looped deferred ones.
	skip := map[ast.Node]bool{}
	exemptLit := map[*ast.FuncLit]bool{}
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if isColdGateCond(info, coldLocals, n.Cond) {
				skip[n.Body] = true
			}
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				inLoop := false
				for _, a := range stack {
					switch a.(type) {
					case *ast.ForStmt, *ast.RangeStmt:
						inLoop = true
					}
				}
				if !inLoop {
					exemptLit[lit] = true
				}
			}
		}
		return true
	})

	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		if skip[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkZeroallocCall(pass, fn, n)
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "%s is marked //pramcc:zeroalloc but builds a map literal", fn.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "%s is marked //pramcc:zeroalloc but builds a slice literal", fn.Name.Name)
			default:
				if len(stack) > 0 {
					if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op.String() == "&" {
						pass.Reportf(n.Pos(), "%s is marked //pramcc:zeroalloc but heap-allocates a composite literal with &", fn.Name.Name)
					}
				}
			}
		case *ast.FuncLit:
			if !exemptLit[n] {
				pass.Reportf(n.Pos(), "%s is marked //pramcc:zeroalloc but creates a closure", fn.Name.Name)
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is marked //pramcc:zeroalloc but starts a goroutine", fn.Name.Name)
		}
		return true
	})
}

func checkZeroallocCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.Pkg.Info
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x). Interface targets box; string<->byte/rune
	// slice conversions copy.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		dst := tv.Type
		var src types.Type
		if len(call.Args) == 1 {
			src = info.TypeOf(call.Args[0])
		}
		switch {
		case types.IsInterface(dst.Underlying()) && src != nil && !types.IsInterface(src.Underlying()):
			pass.Reportf(call.Pos(), "%s is marked //pramcc:zeroalloc but boxes a value into interface %s", fn.Name.Name, dst)
		case isStringByteConversion(dst, src):
			pass.Reportf(call.Pos(), "%s is marked //pramcc:zeroalloc but performs an allocating string conversion", fn.Name.Name)
		}
		return
	}

	// Builtins: make/new/append allocate, the rest (len, cap, copy,
	// delete, panic, ...) do not.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s is marked //pramcc:zeroalloc but calls %s", fn.Name.Name, id.Name)
			case "append":
				pass.Reportf(call.Pos(), "%s is marked //pramcc:zeroalloc but calls append, which may grow its backing array; presize outside the marked region", fn.Name.Name)
			}
			return
		}
	}

	callee := calleeFunc(info, call)
	if callee == nil || callee.Pkg() == nil {
		// A dynamic call through a func value: binding allocated
		// earlier, invoking does not.
		return
	}
	pkgPath := callee.Pkg().Path()
	switch {
	case pkgPath == "fmt":
		pass.Reportf(call.Pos(), "%s is marked //pramcc:zeroalloc but calls fmt.%s, which allocates for formatting", fn.Name.Name, callee.Name())
	case zeroallocStdAllow[pkgPath]:
		// Known non-allocating standard package.
	case isModulePath(pass, pkgPath):
		if !pass.ZeroallocMarks[funcKey(callee)] {
			pass.Reportf(call.Pos(), "%s is marked //pramcc:zeroalloc but calls %s, which is not marked //pramcc:zeroalloc", fn.Name.Name, callee.FullName())
		}
	default:
		pass.Reportf(call.Pos(), "%s is marked //pramcc:zeroalloc but calls %s, which is not on the zeroalloc allowlist", fn.Name.Name, callee.FullName())
	}
}

// isModulePath reports whether pkgPath belongs to the module under
// analysis (same-module callees can carry the //pramcc:zeroalloc mark;
// everything else cannot).
func isModulePath(pass *Pass, pkgPath string) bool {
	mod := pass.Pkg.ModulePath
	if mod == "" {
		// Fixture modules loaded without module metadata: treat any
		// non-standard path (one with no dot before the first slash,
		// like the fixture's own packages) as module-local.
		return !strings.Contains(pkgPath, ".") || strings.HasPrefix(pkgPath, pass.Pkg.ImportPath)
	}
	return pkgPath == mod || strings.HasPrefix(pkgPath, mod+"/")
}

// isStringByteConversion reports whether dst(src) is one of the
// copying conversions string <-> []byte / []rune.
func isStringByteConversion(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStr(src))
}

// isColdGateCall reports whether call is the observability gate:
// obs.Enabled() (any package named obs) or the service-level
// obsEnabled().
func isColdGateCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Name() == "obsEnabled" {
		return true
	}
	return fn.Name() == "Enabled" && fn.Pkg() != nil && fn.Pkg().Name() == "obs"
}

// isColdGateCond reports whether an if-condition is gated on the obs
// cold path: a direct obs.Enabled()/obsEnabled() call, a bool local
// bound to one, or a && chain containing either.
func isColdGateCond(info *types.Info, coldLocals map[types.Object]bool, cond ast.Expr) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.CallExpr:
		return isColdGateCall(info, c)
	case *ast.Ident:
		return coldLocals[info.ObjectOf(c)]
	case *ast.BinaryExpr:
		if c.Op.String() == "&&" {
			return isColdGateCond(info, coldLocals, c.X) || isColdGateCond(info, coldLocals, c.Y)
		}
	}
	return false
}
