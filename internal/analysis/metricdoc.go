package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Metricdoc is the scripts/check_docs.sh metric grep rebuilt as a real
// analyzer with positions: every metric registered on the obs registry
// (Counter/Gauge/GaugeFunc/Histogram on obs.Registry) must use a
// compile-time constant name, the name must carry the pramcc_ prefix,
// and the name must appear in OPERATIONS.md at the module root — a
// metric the runbook does not document is a metric on-call cannot use.
var Metricdoc = &Analyzer{
	Name: "metricdoc",
	Doc:  "obs registry metric names are pramcc_-prefixed constants documented in OPERATIONS.md",
	Run:  runMetricdoc,
}

var metricRegistrars = map[string]bool{
	"Counter":    true,
	"Gauge":      true,
	"GaugeFunc":  true,
	"Histogram":  true,
	"CounterVec": true,
	"GaugeVec":   true,
}

func runMetricdoc(pass *Pass) {
	var opsDoc string
	var opsDocErr bool
	loadOps := func() {
		if opsDoc != "" || opsDocErr {
			return
		}
		b, err := os.ReadFile(filepath.Join(pass.Pkg.ModuleDir, "OPERATIONS.md"))
		if err != nil {
			opsDocErr = true
			return
		}
		opsDoc = string(b)
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isRegistryMethod(pass, call) {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time constant string so the runbook check can see it")
				return true
			}
			name := constant.StringVal(tv.Value)
			if !strings.HasPrefix(name, "pramcc_") {
				pass.Reportf(call.Args[0].Pos(), "metric %q is not pramcc_-prefixed; all of this service's metrics share the pramcc_ namespace", name)
				return true
			}
			loadOps()
			if opsDocErr {
				pass.Reportf(call.Args[0].Pos(), "metric %q cannot be checked against OPERATIONS.md: file not found at module root %s", name, pass.Pkg.ModuleDir)
				return true
			}
			if !strings.Contains(opsDoc, name) {
				pass.Reportf(call.Args[0].Pos(), "metric %q is not documented in OPERATIONS.md; add it to the metrics table", name)
			}
			return true
		})
	}
}

// isRegistryMethod matches registration calls on the obs Registry:
// methods named Counter/Gauge/GaugeFunc/Histogram whose receiver is a
// type named Registry in a package named obs.
func isRegistryMethod(pass *Pass, call *ast.CallExpr) bool {
	if !metricRegistrars[calleeName(call)] {
		return false
	}
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedType(sig.Recv().Type())
	return n != nil && n.Obj().Name() == "Registry"
}
