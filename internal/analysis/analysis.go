// Package analysis is cclint's analyzer suite: five static checks
// that hold the repo's load-bearing invariants by construction instead
// of by reviewer folklore and late-firing runtime tests.
//
//   - atomicpub: atomic.Pointer/atomic.Value state is touched only
//     through its atomic methods, and a snapshot is never mutated
//     after it has been Stored (the write-after-publish bug class the
//     Service and the incremental engine are designed around).
//   - zeroalloc: functions marked //pramcc:zeroalloc — the span-ingest
//     and solve hot paths pinned by TestSpanIngestZeroAlloc and
//     TestSolverSolveZeroAllocNative — contain no allocating
//     constructs and call only marked or known-allocation-free code.
//   - ctxround: engine round/batch loops reach a ctx.Err()/Done()
//     check, and exported engine entry points with unbounded loops
//     accept a context.Context (the PR-4 cancellation contract).
//   - waldiscipline: on the Service persist path, snapshot publication
//     is preceded by the corresponding WAL append/checkpoint, and in
//     internal/durable a manifest swap is preceded by a data fsync
//     (the PR-7 durability barrier).
//   - metricdoc: every metric registered on the obs registry uses a
//     constant pramcc_-prefixed name that is documented in
//     OPERATIONS.md (the scripts/check_docs.sh grep, with positions).
//
// Two comment directives steer the suite. `//pramcc:zeroalloc` in a
// function's doc comment opts the function into the zeroalloc check.
// `//pramcc:allow <analyzer> -- <reason>` on (or immediately above) a
// flagged line suppresses one analyzer's diagnostic there; the reason
// is mandatory and the suite's own tests keep the allowlist from
// growing silently. CONTRIBUTING.md documents both.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis/load"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -run selections,
	// and //pramcc:allow directives.
	Name string
	// Doc is a one-line description for cclint -help.
	Doc string
	// Run reports the analyzer's diagnostics for pass.Pkg.
	Run func(pass *Pass)
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Pkg *load.Package
	// Fset positions every node of Pkg.Files.
	Fset *token.FileSet
	// ZeroallocMarks holds the //pramcc:zeroalloc-marked functions of
	// the whole module, keyed by funcKey-style strings, so cross-
	// package calls resolve even under partial patterns.
	ZeroallocMarks map[string]bool

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned for editors and CI logs.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// ---- directives ----

const (
	allowDirective     = "//pramcc:allow"
	zeroallocDirective = "//pramcc:zeroalloc"
)

var allowRe = regexp.MustCompile(`^//pramcc:allow\s+([a-z]+)\s+--\s+\S`)

// allowKey addresses one source line for suppression lookup.
type allowKey struct {
	file string
	line int
}

// collectAllows gathers every //pramcc:allow directive of the files:
// map from (file, line) to the analyzer names allowed there. A
// malformed directive (missing analyzer or missing `-- reason`) is
// itself a diagnostic — a suppression that silently fails to parse
// would un-suppress on refactor.
func collectAllows(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) map[allowKey][]string {
	allows := map[allowKey][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				m := allowRe.FindStringSubmatch(text)
				pos := fset.Position(c.Pos())
				if m == nil {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "directive",
						Message:  "malformed //pramcc:allow: want `//pramcc:allow <analyzer> -- <reason>`",
					})
					continue
				}
				k := allowKey{file: pos.Filename, line: pos.Line}
				allows[k] = append(allows[k], m[1])
			}
		}
	}
	return allows
}

// suppressed reports whether d is covered by an allow directive on the
// same line or the line directly above (the nolint convention).
func suppressed(d Diagnostic, allows map[allowKey][]string) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range allows[allowKey{file: d.Pos.Filename, line: line}] {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// hasZeroallocMark reports whether fn's doc comment carries the
// //pramcc:zeroalloc directive.
func hasZeroallocMark(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), zeroallocDirective) {
			return true
		}
	}
	return false
}

// ---- shared type helpers ----

// namedType unwraps pointers and aliases down to a *types.Named, nil
// when t has none.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// isPkgType reports whether t (through pointers/aliases) is the named
// type pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// isAtomicType reports whether t is a sync/atomic value type
// (Pointer[T], Value, Int64, Bool, ...).
func isAtomicType(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isPkgType(t, "context", "Context")
}

// calleeFunc resolves the *types.Func a call expression statically
// invokes: a plain function, a method, or a generic instance. Dynamic
// calls (through func-typed values) and conversions return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: obs.Enabled().
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// funcKey names a function for the cross-package zeroalloc mark table:
// "pkgpath.Recv.Name" with Recv empty for plain functions. Methods on
// generic types use the origin type name, so atomic.Pointer[T] methods
// collapse to one key.
func funcKey(fn *types.Func) string {
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedType(sig.Recv().Type()); n != nil {
			recv = n.Obj().Name()
		} else {
			recv = "_" // interface or unusual receiver
		}
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	return pkg + "." + recv + "." + fn.Name()
}

// declKey is funcKey computed from syntax, for building the mark table
// before (or without) type-checking a package.
func declKey(pkgPath string, fn *ast.FuncDecl) string {
	recv := ""
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		t := fn.Recv.List[0].Type
		for {
			switch u := t.(type) {
			case *ast.StarExpr:
				t = u.X
				continue
			case *ast.IndexExpr: // generic receiver T[P]
				t = u.X
				continue
			case *ast.IndexListExpr:
				t = u.X
				continue
			case *ast.Ident:
				recv = u.Name
			}
			break
		}
	}
	return pkgPath + "." + recv + "." + fn.Name.Name
}

// walkStack runs fn over every node of root with the ancestor stack
// (outermost first, not including n itself). Returning false prunes
// the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
