package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicpub enforces the atomic-publication discipline behind the
// Service and engine snapshots: state held in sync/atomic value types
// (atomic.Pointer[T], atomic.Value, atomic.Int64, ...) may be touched
// only through its atomic methods — never assigned, copied out, or
// address-taken — and a snapshot handed to Store must not be mutated
// afterwards in the same function. The second rule targets the
// write-after-publish bug class: readers hold the stored pointer
// lock-free forever, so any later write through it is a data race and
// a torn snapshot.
var Atomicpub = &Analyzer{
	Name: "atomicpub",
	Doc:  "atomic.Pointer/Value state is accessed only via atomic methods and never mutated after Store",
	Run:  runAtomicpub,
}

func runAtomicpub(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkStoreThenMutate(pass, n.Body)
				}
			case *ast.SelectorExpr:
				checkAtomicUse(pass, n, stack)
			case *ast.Ident:
				// Package-level atomic vars get the same protection as
				// fields (the obs sink, the publish-age clocks).
				if len(stack) > 0 {
					if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == n {
						return true // handled as SelectorExpr
					}
				}
				if obj, ok := info.Uses[n].(*types.Var); ok && !obj.IsField() && isAtomicType(obj.Type()) {
					checkAtomicExprUse(pass, n, stack)
				}
			}
			return true
		})
	}
}

// checkAtomicUse vets one selector expression that may name an atomic
// field.
func checkAtomicUse(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	s, ok := pass.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	if !isAtomicType(s.Obj().Type()) {
		return
	}
	checkAtomicExprUse(pass, sel, stack)
}

// checkAtomicExprUse checks that the atomic-typed expression e (a field
// selector or a package/local variable) appears only as the receiver
// of a method call. Anything else — assignment in either direction,
// unary &, function argument — bypasses or copies the atomic and is
// exactly the mistake the type exists to prevent.
func checkAtomicExprUse(pass *Pass, e ast.Expr, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]
	// Receiver position: parent is a SelectorExpr whose X is e and
	// which is itself called (or whose selection is a method).
	if psel, ok := parent.(*ast.SelectorExpr); ok && psel.X == e {
		if s, ok := pass.Pkg.Info.Selections[psel]; ok && s.Kind() == types.MethodVal {
			// Method *value* (x.Load stored or passed) still reads the
			// atomic safely; only a call is typical, but both are sound.
			return
		}
	}
	// Declarations and composite-literal zero values are not uses.
	switch parent.(type) {
	case *ast.Field, *ast.ValueSpec:
		return
	}
	name := atomicExprName(e)
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == e {
				pass.Reportf(e.Pos(), "%s has atomic type %s and must not be assigned; use Store", name, typeOf(pass, e))
				return
			}
		}
		pass.Reportf(e.Pos(), "%s has atomic type %s and must not be copied; use Load", name, typeOf(pass, e))
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			pass.Reportf(e.Pos(), "%s has atomic type %s; taking its address defeats the Load/Store discipline", name, typeOf(pass, e))
		}
	default:
		pass.Reportf(e.Pos(), "%s has atomic type %s and may only be used as the receiver of its atomic methods", name, typeOf(pass, e))
	}
}

func typeOf(pass *Pass, e ast.Expr) types.Type {
	return pass.Pkg.Info.TypeOf(e)
}

// atomicExprName renders e for diagnostics.
func atomicExprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return atomicExprName(e.X) + "." + e.Sel.Name
	default:
		return "expression"
	}
}

// checkStoreThenMutate flags writes through a pointer after it has
// been Stored into an atomic.Pointer/atomic.Value within the same
// function body: the snapshot became shared at the Store, so every
// later assignment rooted at it is a write after publish. The check is
// position-based over the function body — a deliberate over-
// approximation (an else-branch write after a then-branch Store is
// still flagged) because the fix, building the snapshot fully before
// publishing it, is always available.
func checkStoreThenMutate(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Pass 1: collect (object, Store position) for every x.Store(ptr)
	// on an atomic.Pointer/Value receiver where ptr is a local.
	type publication struct {
		obj *types.Var
		pos token.Pos
	}
	var pubs []publication
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Store" {
			return true
		}
		recvT := info.TypeOf(sel.X)
		if recvT == nil || !isAtomicType(recvT) {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if id, ok := arg.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				pubs = append(pubs, publication{obj: v, pos: call.Pos()})
			}
		}
		return true
	})
	if len(pubs) == 0 {
		return
	}

	// Pass 2: any assignment whose LHS roots at a published object,
	// positioned after its Store, is a write after publish.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			root := lhsRoot(lhs)
			if root == nil {
				continue
			}
			v, ok := info.Uses[root].(*types.Var)
			if !ok {
				continue
			}
			for _, pub := range pubs {
				if pub.obj == v && as.Pos() > pub.pos && lhs != root {
					pass.Reportf(as.Pos(), "%s is mutated after being published via Store; snapshots must be immutable once stored", v.Name())
					return true
				}
			}
		}
		return true
	})
}

// lhsRoot peels selectors, indexes, and stars off an assignment target
// down to its base identifier: p.Labels[i] -> p. Returns nil when the
// base is not a plain identifier.
func lhsRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
