// Package antest is a minimal analysistest: it runs one analyzer over
// fixture packages and compares the diagnostics against `// want
// "regex"` comments in the fixture sources. Fixtures live under
// internal/analysis/testdata/src, which is its own module (the
// testdata path keeps the go tool from treating it as part of this
// one), so the loader resolves them exactly as it resolves real
// packages.
package antest

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)

// A want is one expected diagnostic: a message pattern anchored to a
// file and line.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the given packages (paths relative to fixtureRoot, e.g.
// "./atomicpub") with the suite loader, runs just analyzer a (plus the
// always-on directive validation), and requires the surviving
// diagnostics to line up one-to-one with the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixtureRoot string, pkgs ...string) {
	t.Helper()

	res, err := analysis.RunSuite(fixtureRoot, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", pkgs, err)
	}

	var wants []*want
	for _, pkg := range pkgs {
		dir := filepath.Join(fixtureRoot, strings.TrimPrefix(pkg, "./"))
		ws, err := scanWants(dir)
		if err != nil {
			t.Fatalf("scanning wants in %s: %v", dir, err)
		}
		wants = append(wants, ws...)
	}

	for _, d := range res.Diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched want covering d and reports whether
// one existed.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || !sameFile(w.file, d.Pos.Filename) {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	if err1 != nil || err2 != nil {
		return a == b
	}
	return aa == bb
}

// scanWants extracts want comments from the non-test .go files of dir.
func scanWants(dir string) ([]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*want
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				lit, err := strconv.Unquote(m[1])
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want literal %s: %v", path, line, m[1], err)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", path, line, lit, err)
				}
				out = append(out, &want{file: path, line: line, pattern: re})
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return out, nil
}
