// Package load turns Go package patterns into type-checked syntax
// trees using nothing but the standard library and the go command —
// the substrate the cclint analyzers (internal/analysis) run on. It
// fills the role golang.org/x/tools/go/packages plays for the upstream
// go/analysis framework: `go list -deps -export -json` resolves the
// pattern to source files plus compiled export data for every
// dependency, and go/types checks each root package from source with
// an importer that reads that export data. The module has no external
// dependencies, so the whole pipeline works offline against the build
// cache.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked root package: the syntax trees with
// comments, the go/types object graph, and enough location metadata
// for analyzers that consult files next to the source (metricdoc reads
// OPERATIONS.md at the module root).
type Package struct {
	// ImportPath is the canonical import path (e.g. repro/internal/native).
	ImportPath string
	// Name is the package name from the package clauses.
	Name string
	// Dir is the directory holding the source files.
	Dir string
	// ModuleDir is the root directory of the module the package
	// belongs to (the directory with go.mod), "" when unknown.
	ModuleDir string
	// ModulePath is the module path from go.mod, "" when unknown.
	ModulePath string
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Module     *struct {
		Path string
		Dir  string
	}
	Error *struct {
		Err string
	}
}

// Result is the outcome of one Load call: the shared FileSet, the
// type-checked root packages, and the source directories of the
// module-local dependencies that were linked as export data only
// (Marks scanning parses those separately, see ScanDirs).
type Result struct {
	Fset *token.FileSet
	// Pkgs are the root packages matched by the patterns, in go list
	// order.
	Pkgs []*Package
	// DepDirs maps import path -> source dir for non-standard,
	// non-root dependencies (module-local helpers a root calls into).
	DepDirs map[string]string
}

// Load resolves patterns (relative to dir) and type-checks every
// matched package from source. Test files are not loaded: the
// invariants cclint enforces live in the shipped code, and fixture
// registries in _test.go files must not trip metricdoc.
func Load(dir string, patterns []string) (*Result, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}

	exports := map[string]string{}
	var roots []listPackage
	depDirs := map[string]string{}
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		switch {
		case !p.DepOnly && !p.Standard:
			roots = append(roots, p)
		case p.DepOnly && !p.Standard:
			depDirs[p.ImportPath] = p.Dir
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("load: no packages matched %v", patterns)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})

	res := &Result{Fset: fset, DepDirs: depDirs}
	for _, lp := range roots {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		res.Pkgs = append(res.Pkgs, pkg)
	}
	return res, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, lp listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load: %s does not type-check:\n  %s", lp.ImportPath, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("load: %s: %v", lp.ImportPath, err)
	}
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	if lp.Module != nil {
		pkg.ModuleDir = lp.Module.Dir
		pkg.ModulePath = lp.Module.Path
	}
	return pkg, nil
}

// ScanDirs parses (without type-checking) the non-test sources of the
// given directories — used to collect //pramcc:zeroalloc marks from
// module-local packages that are dependencies of the analyzed roots
// but not roots themselves, so partial-pattern runs still know which
// callees are marked.
func ScanDirs(fset *token.FileSet, dirs map[string]string) (map[string][]*ast.File, error) {
	out := map[string][]*ast.File{}
	for importPath, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("load: scanning %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("load: %v", err)
			}
			out[importPath] = append(out[importPath], f)
		}
	}
	return out, nil
}
