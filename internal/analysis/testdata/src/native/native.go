// Package native holds fixtures for the ctxround analyzer. The
// package basename matches the targeted engine set, so its loops are
// held to the round-boundary contract; the shapes mirror the real
// native engine's Run loop with and without its ctx.Err() check.
package native

import (
	"context"
	"sync/atomic"
)

// Engine mirrors the real engine's sweep state.
type Engine struct {
	total  int
	cursor atomic.Int64
}

// Run keeps the ctx check at the top of the round loop — the shape the
// analyzer requires.
func (e *Engine) Run(ctx context.Context) (int, error) {
	rounds := 0
	for {
		if err := ctx.Err(); err != nil {
			return rounds, err
		}
		rounds++
		if rounds > e.total {
			return rounds, nil
		}
	}
}

// RunNoCheck is Run with the ctx.Err() check deleted — the acceptance
// bug for this analyzer.
func (e *Engine) RunNoCheck(ctx context.Context) int {
	rounds := 0
	for { // want "never checks ctx"
		rounds++
		if rounds > e.total {
			return rounds
		}
	}
}

// Sweep is an exported entry point whose unbounded loop has no way to
// receive cancellation at all.
func (e *Engine) Sweep() int {
	n := 0
	for { // want "no context.Context"
		n++
		if n > e.total {
			return n
		}
	}
}

// Bounded runs a plain counter loop: near miss, no diagnostic.
func (e *Engine) Bounded(ctx context.Context) int {
	s := 0
	for i := 0; i < e.total; i++ {
		s += i
	}
	if err := ctx.Err(); err != nil {
		return -1
	}
	return s
}

// Bump is a CAS retry loop: near miss, exempt by shape.
func (e *Engine) Bump(ctx context.Context) error {
	for {
		old := e.cursor.Load()
		if e.cursor.CompareAndSwap(old, old+1) {
			return ctx.Err()
		}
	}
}

// Chunks checks ctx inside a worker closure: the closure is its own
// scope and passes because the loop references ctx.
func (e *Engine) Chunks(ctx context.Context, run func(func(int))) {
	run(func(int) {
		for ctx.Err() == nil {
			if int(e.cursor.Add(1)) >= e.total {
				return
			}
		}
	})
}

// ChunksNoCheck is the same closure with the ctx reference dropped
// from the loop.
func (e *Engine) ChunksNoCheck(ctx context.Context, run func(func(int))) {
	if ctx == nil {
		return
	}
	run(func(int) {
		stop := ctx.Err
		_ = stop
		for { // want "closure never checks ctx"
			if int(e.cursor.Add(1)) >= e.total {
				return
			}
		}
	})
}

// spin is unexported and context-free: out of both rules' scope.
func spin(n int) int {
	for {
		n--
		if n <= 0 {
			return n
		}
	}
}
