// Package durable is a fixture stub of the real internal/durable
// surface (the analyzer detects the Store by package and type name)
// plus fixtures for the manifest-after-fsync subrule, which only
// applies inside a package named durable.
package durable

import "os"

// Store mirrors the real WAL-backed store's append surface.
type Store struct {
	f *os.File
}

// LogSpan appends a span batch record to the WAL.
func (s *Store) LogSpan(u, v []int32) error { return nil }

// LogGrow appends a grow record to the WAL.
func (s *Store) LogGrow(n int) error { return nil }

// Checkpoint writes a full snapshot and truncates the WAL.
func (s *Store) Checkpoint(labels []int32) error { return nil }

func writeManifest(dir string) error { return nil }

// swapGood fsyncs the data file before swapping the manifest, like the
// real Checkpoint.
func (s *Store) swapGood() error {
	if err := s.f.Sync(); err != nil {
		return err
	}
	return writeManifest("snap")
}

// swapBad points the manifest at data that may still be in the page
// cache.
func (s *Store) swapBad() error {
	return writeManifest("snap") // want "before the snapshot data is fsynced"
}
