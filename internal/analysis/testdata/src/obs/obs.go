// Package obs is a fixture stub of the real internal/obs surface: the
// analyzers detect the cold gate and the metric registry by package
// and type name, so this stub exercises the same detection paths.
package obs

// Enabled is the observability cold gate.
//
//pramcc:zeroalloc
func Enabled() bool { return false }

// Emit is deliberately unmarked: calls to it must sit under the cold
// gate in zeroalloc-marked functions, exactly like the real Emit.
func Emit(name string) {}

// Registry mirrors the real metric registry's registration surface.
type Registry struct{}

// Default is the fixture's registry instance.
var Default = &Registry{}

// Counter registers a counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string) *Counter { return &Counter{} }

// GaugeFunc registers a computed gauge.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {}

// Histogram registers a histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Counter { return &Counter{} }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *Counter { return &Counter{} }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *Counter { return &Counter{} }

// Counter is the stub metric handle.
type Counter struct{}

// Inc is allocation-free, like the real counter.
//
//pramcc:zeroalloc
func (c *Counter) Inc() {}
