// Package waldiscipline holds fixtures for the WAL-before-publish
// rule: the Service persist-path shape with the append and the
// publication in both orders.
package waldiscipline

import (
	"sync/atomic"

	"fixture/durable"
)

// Result is the published snapshot type.
type Result struct {
	Labels []int32
}

// Service mirrors the real Service: an atomic snapshot slot next to a
// durable store.
type Service struct {
	snap  atomic.Pointer[Result]
	store *durable.Store
}

func (sv *Service) publish(r *Result) { sv.snap.Store(r) }

// goodIngest logs the span, then publishes — the PR-7 order.
func (sv *Service) goodIngest(u, v []int32) error {
	if err := sv.store.LogSpan(u, v); err != nil {
		return err
	}
	sv.publish(&Result{})
	return nil
}

// badIngest publishes state the WAL cannot replay yet — the
// acceptance bug for this analyzer.
func (sv *Service) badIngest(u, v []int32) error {
	sv.publish(&Result{}) // want "published before .or without. the corresponding WAL append"
	return sv.store.LogSpan(u, v)
}

// badDirect stores into the snapshot slot directly, same bug.
func (sv *Service) badDirect(r *Result, n int) error {
	sv.snap.Store(r) // want "published before .or without. the corresponding WAL append"
	return sv.store.LogGrow(n)
}

// goodCheckpoint: a checkpoint is also a WAL-discipline append.
func (sv *Service) goodCheckpoint(r *Result) error {
	if sv.store != nil {
		if err := sv.store.Checkpoint(r.Labels); err != nil {
			return err
		}
	}
	sv.publish(r)
	return nil
}

// memPublish never touches the durable store: near miss, the rule
// does not apply to purely in-memory services.
func (sv *Service) memPublish() {
	sv.publish(&Result{})
}
