// Package zeroalloc holds fixtures for the zeroalloc analyzer: one
// fully compliant hot function, each allocating construct, the cold
// gate, the deferred-closure exemption, and the allow directive.
package zeroalloc

import (
	"fmt"

	"fixture/obs"
)

// hotGood is the labelsInto shape: reuse-or-grow with an allow on the
// grow, a copy, and cold-gated event emission.
//
//pramcc:zeroalloc
func hotGood(dst, src []int32) []int32 {
	if cap(dst) < len(src) {
		//pramcc:allow zeroalloc -- fixture: grow-or-reuse contract
		dst = make([]int32, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	if obs.Enabled() {
		obs.Emit(fmt.Sprintf("copied %d", len(src))) // near miss: cold gate, not flagged
	}
	return dst
}

// hotGated uses the bool-local form of the cold gate.
//
//pramcc:zeroalloc
func hotGated(n int) {
	emit := obs.Enabled()
	if emit {
		fmt.Println(n) // near miss: cold gate via bool local
	}
}

//pramcc:zeroalloc
func hotDeferOK(p *int) {
	defer func() { *p = 0 }() // near miss: open-coded defer closure
	*p = 1
}

//pramcc:zeroalloc
func hotBadMake(n int) []int32 {
	return make([]int32, n) // want "calls make"
}

//pramcc:zeroalloc
func hotBadAppend(xs []int32) []int32 {
	return append(xs, 1) // want "calls append"
}

//pramcc:zeroalloc
func hotBadFmt(n int) {
	fmt.Println(n) // want "calls fmt"
}

//pramcc:zeroalloc
func hotBadClosure(n int) func() int {
	return func() int { return n } // want "creates a closure"
}

//pramcc:zeroalloc
func hotBadBox(n int) any {
	return any(n) // want "boxes a value into interface"
}

//pramcc:zeroalloc
func hotBadString(b []byte) string {
	return string(b) // want "allocating string conversion"
}

//pramcc:zeroalloc
func hotBadMap() int {
	m := map[string]int{} // want "map literal"
	return len(m)
}

//pramcc:zeroalloc
func hotBadGo(f func()) {
	go f() // want "starts a goroutine"
}

//pramcc:zeroalloc
func hotBadCallee(n int) int {
	return helper(n) // want "not marked //pramcc:zeroalloc"
}

// helper allocates nothing, but without the mark the analyzer cannot
// trust it to stay that way.
func helper(n int) int { return n + 1 }

// coldFine is unmarked: allocation is not the analyzer's business here.
func coldFine(n int) []int32 { return make([]int32, n) }

// sched mimics the pool scheduler's shape: a pre-bound func-typed job
// field invoked from the marked claim loop. Binding allocated at
// construction time, outside any marked region; the indirect call in
// the hot loop must not be flagged.
type sched struct {
	job func(worker, lo, hi int) bool
}

// hotChunkLoop is the Shard.claimRange pattern: calling through the
// func-typed field is a dynamic call, allowed in marked code.
//
//pramcc:zeroalloc
func (s *sched) hotChunkLoop(lo, hi int) bool {
	for lo < hi {
		if !s.job(0, lo, lo+1) { // near miss: pre-bound func value, not flagged
			return false
		}
		lo++
	}
	return true
}

// hotBadRebind is the mistake the pattern exists to prevent: binding
// the closure inside the marked sweep instead of at construction.
//
//pramcc:zeroalloc
func (s *sched) hotBadRebind(total int) {
	n := 0
	s.job = func(_, lo, hi int) bool { // want "creates a closure"
		n += hi - lo
		return true
	}
	_ = total
}
