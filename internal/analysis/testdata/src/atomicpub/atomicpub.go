// Package atomicpub holds fixtures for the atomicpub analyzer: atomic
// fields used correctly, each forbidden use shape, and the
// store-then-mutate publication bug.
package atomicpub

import "sync/atomic"

// Snap is the published snapshot type.
type Snap struct {
	Labels []int32
	N      int
}

// S mirrors the Service/Engine shape: an atomic snapshot slot plus
// scalar atomics.
type S struct {
	snap atomic.Pointer[Snap]
	val  atomic.Value
	cnt  atomic.Int64
}

var gate atomic.Bool

// goodUse touches every atomic only through its methods.
func goodUse(s *S) *Snap {
	s.cnt.Add(1)
	if gate.Load() {
		return nil
	}
	p := &Snap{N: 1}
	p.N = 2 // near miss: mutation before the Store is fine
	s.snap.Store(p)
	return s.snap.Load()
}

func badCopy(s *S) {
	_ = s.snap // want "must not be copied"
}

func badAssign(s *S) {
	s.cnt = atomic.Int64{} // want "must not be assigned"
}

func badAddr(s *S) *atomic.Int64 {
	return &s.cnt // want "taking its address"
}

func badPkgVarCopy() {
	c := gate // want "must not be copied"
	_ = c.Load()
}

func badPublish(s *S) {
	p := &Snap{}
	s.snap.Store(p)
	p.N = 2 // want "mutated after being published"
}

func badPublishDeep(s *S) {
	p := &Snap{Labels: make([]int32, 4)}
	s.val.Store(p)
	p.Labels[0] = 1 // want "mutated after being published"
}

func goodRebind(s *S) {
	p := &Snap{N: 1}
	s.snap.Store(p)
	p = &Snap{N: 2} // near miss: rebinding the variable is not a write through it
	s.snap.Store(p)
}
