// Package metricdoc holds fixtures for the metric-name analyzer:
// documented, undocumented, unprefixed, and non-constant names, plus a
// same-named method on a non-registry type.
package metricdoc

import "fixture/obs"

const goodName = "pramcc_documented_total"

var (
	good = obs.Default.Counter(goodName, "documented in the fixture OPERATIONS.md")
	miss = obs.Default.Counter("pramcc_missing_total", "nowhere in the runbook") // want "not documented in OPERATIONS.md"
	pref = obs.Default.Gauge("cc_bad_prefix_total", "wrong namespace")           // want "not pramcc_-prefixed"
	dynm = obs.Default.Counter(dyn(), "assembled at runtime")                    // want "compile-time constant"
)

func dyn() string { return "pramcc_dyn_total" }

// Labeled families go through the same name rules: the family name is
// the constant the runbook documents, whatever label values show up at
// runtime.
var (
	goodVec = obs.Default.CounterVec(goodName, "family under a documented name", "tenant")
	missVec = obs.Default.GaugeVec("pramcc_missing_family", "undocumented family", "shard") // want "not documented in OPERATIONS.md"
)

func init() {
	obs.Default.Histogram("pramcc_documented_total", "re-registered under a documented name", nil)
	obs.Default.GaugeFunc("pramcc_missing_total", "computed", func() float64 { return 0 }) // want "not documented in OPERATIONS.md"
}

// fake has a Counter method that is not a registration: near miss.
type fake struct{}

func (fake) Counter(name, help string) int { return 0 }

var _ = fake{}.Counter("anything_goes", "not a metric")
