// Package directive holds the fixture for allow-directive validation:
// a suppression that fails to parse must be a diagnostic itself, never
// a silent no-op.
package directive

//pramcc:allow zeroalloc missing the reason separator // want "malformed"
func f() int { return 0 }
