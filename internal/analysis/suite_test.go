package analysis_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestSuiteCleanOnTree is the cclint smoke test: the full suite over
// the whole module must produce zero unsuppressed diagnostics — the
// same bar CI holds `go run ./cmd/cclint ./...` to.
func TestSuiteCleanOnTree(t *testing.T) {
	res, err := analysis.RunSuite("../..", []string{"./..."}, nil)
	if err != nil {
		t.Fatalf("running suite over module: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("unsuppressed diagnostic: %s", d)
	}
	if res.Packages < 10 {
		t.Errorf("suite analyzed only %d packages; pattern resolution looks broken", res.Packages)
	}
}

// allowBudget is the number of //pramcc:allow directives in the tree
// (fixtures excluded) at the time the suite landed. The allowlist may
// shrink; growing it needs a reviewed bump here, with the same scrutiny
// as the suppression itself.
// Current suppressions, all grow-or-reuse buffer growth on zeroalloc
// paths: pramcc.labelsInto, pool.Shard.Init's cursor slice, and the
// native engine's packed-arc buffer.
const allowBudget = 3

func TestAllowlistDoesNotGrow(t *testing.T) {
	count := 0
	root := filepath.Clean("../..")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Count directive lines, not substring mentions (this file and
		// the analyzer sources talk about the directive in prose).
		for _, line := range strings.Split(string(b), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "//pramcc:allow") {
				count++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}
	if count > allowBudget {
		t.Errorf("tree has %d //pramcc:allow directives, budget is %d; remove a suppression or bump allowBudget with review", count, allowBudget)
	}
	if count == 0 {
		t.Error("found no //pramcc:allow directives at all; the scan is likely looking in the wrong place")
	}
}
