package spanning

import (
	"repro/internal/expand"
	"repro/internal/hashing"
	"repro/internal/labels"
	"repro/internal/pram"
)

// treeLinkInput gathers everything TREE-LINK (§C.3) consumes: the
// post-EXPAND snapshots H_j(u), the leader vote, and the current arcs.
// Factoring it out of the phase loop lets tests validate Lemmas
// C.4–C.6 directly against BFS ground truth.
type treeLinkInput struct {
	M         *pram.Machine
	Arcs      *labels.ArcStore
	Exp       *expand.Outcome
	Ongoing   []int32
	Leader    []int32
	TableSize int
	HashQ     hashing.Pairwise
	NOngoing  int
}

// treeLinkOutput carries the per-vertex results: u.α (−1 when unset),
// u.β (−1 when unset), and the chosen witness arc index (−1 if none).
type treeLinkOutput struct {
	Alpha  []int32
	Beta   []int32
	Chosen []int32
}

// treeLink executes TREE-LINK steps (1)–(5): it computes α (the
// largest radius with neither collisions, leaders, nor fully dormant
// vertices in B(u,α) — Lemma C.4), β (the distance to the nearest
// leader where defined — Lemma C.5), and for every vertex with β = x a
// witness arc to a neighbour with β = x−1 (Lemma C.6). Step (6), the
// actual link and forest mark, stays with the caller because it
// mutates the digraph.
func treeLink(in treeLinkInput, alpha, beta, leaderNbr, chosen []int32) treeLinkOutput {
	m := in.M
	n := len(in.Ongoing)
	exp := in.Exp
	T := exp.Rounds

	// liveInRound(v, j): not yet dormant after round j (§B.3.1's round
	// numbering: round 0 = after Step (4)).
	liveInRound := func(v int32, j int) bool {
		dr := exp.DormRound[v]
		return dr < 0 || int(dr) > j
	}

	// Step (1): initialize α and Q(u).
	Q := make([]*hashing.Table, n)
	m.Step(n, func(u int) {
		alpha[u] = -1
		if in.Ongoing[u] == 0 || in.Leader[u] == 1 || exp.H[u] == nil {
			return
		}
		alpha[u] = 0
		Q[u] = hashing.NewTable(in.HashQ, in.TableSize)
		Q[u].TryInsert(int32(u))
		m.Alloc(in.TableSize)
	})

	// Step (2): for j = T → 0, try to extend the radius by 2^j
	// (Lemma C.4's halving construction of the maximal good radius).
	chargedProcs := in.NOngoing * in.TableSize * in.TableSize
	for j := T; j >= 0; j-- {
		snap := exp.Snapshots[j]
		m.StepN(chargedProcs, n, func(u int) {
			if in.Ongoing[u] == 0 || alpha[u] < 0 || Q[u] == nil {
				return
			}
			// Every v ∈ Q(u) must be live in round j.
			entries := Q[u].Occupied()
			for _, v := range entries {
				if !liveInRound(v, j) {
					return
				}
			}
			// Build Q′ = ∪_{v∈Q(u)} H_j(v).
			qp := hashing.NewTable(in.HashQ, in.TableSize)
			var vals []int32
			for _, v := range entries {
				hv := snap[v]
				if hv == nil {
					return // fully dormant v: cannot expand
				}
				for _, w := range hv.Occupied() {
					qp.TryInsert(w)
					vals = append(vals, w)
				}
			}
			// Reject on collision or leader in Q′ (property P of the
			// Lemma C.4 proof).
			for _, w := range vals {
				if qp.Collides(w) || in.Leader[w] == 1 {
					return
				}
			}
			Q[u] = qp
			alpha[u] += 1 << uint(j)
		})
	}

	// Step (3): mark leader-neighbours along current arcs.
	pram.Fill32(leaderNbr, 0)
	au, av := in.Arcs.U, in.Arcs.V
	m.Step(in.Arcs.Len(), func(i int) {
		v, w := au[i], av[i]
		if v != w && in.Ongoing[v] == 1 && in.Leader[v] == 1 {
			pram.Store32(&leaderNbr[w], 1)
		}
	})

	// Step (4): derive β = α+1 when Q(u) holds a leader-neighbour.
	m.Step(n, func(u int) {
		beta[u] = -1
		if in.Ongoing[u] == 0 {
			return
		}
		if in.Leader[u] == 1 {
			beta[u] = 0
			return
		}
		if Q[u] == nil {
			return
		}
		for _, w := range Q[u].Occupied() {
			if pram.Load32(&leaderNbr[w]) == 1 {
				beta[u] = alpha[u] + 1
				return
			}
		}
	})

	// Step (5): choose a witness arc (v,w) with β(w) = β(v) − 1.
	pram.Fill32(chosen, -1)
	m.Step(in.Arcs.Len(), func(i int) {
		v, w := au[i], av[i]
		if v == w || in.Ongoing[v] == 0 || in.Ongoing[w] == 0 {
			return
		}
		bv, bw := beta[v], beta[w]
		if bv >= 1 && bw == bv-1 {
			pram.Store32(&chosen[v], int32(i))
		}
	})

	return treeLinkOutput{Alpha: alpha, Beta: beta, Chosen: chosen}
}
