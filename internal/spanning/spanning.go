// Package spanning implements the Spanning Forest algorithm of
// Theorem 2 (§C):
//
//	FOREST-PREPARE; repeat {EXPAND; VOTE; TREE-LINK; TREE-SHORTCUT;
//	ALTER} until no edge exists other than loops.
//
// TREE-LINK (§C.3) assigns every vertex u the largest radius u.α such
// that B(u, u.α) contains neither collisions, leaders, nor fully
// dormant vertices (maintained in a hash table Q(u) by halving the
// doubling radius, Lemma C.4), derives u.β = distance to the nearest
// leader (Lemma C.5), and links each vertex with β = x to a neighbour
// with β = x−1 along a current graph arc whose original arc is marked
// into the forest (Lemma C.6, Corollary C.7). Links strictly decrease
// β, so no cycle forms and tree heights stay ≤ d (Lemma C.8).
package spanning

import (
	"context"
	"math"

	"repro/graph"
	"repro/internal/ccbase"
	"repro/internal/expand"
	"repro/internal/hashing"
	"repro/internal/pram"
	"repro/internal/vanilla"
)

// Params reuses the Theorem 1 parameterization (§C.4: "the remaining
// analysis is almost identical").
type Params = ccbase.Params

// DefaultParams returns the scaled defaults.
func DefaultParams(seed uint64) Params { return ccbase.DefaultParams(seed) }

// PhaseTrace records one phase for the experiment tables.
type PhaseTrace struct {
	Ongoing      int
	B            float64
	ExpandRounds int
	TreeShortcut int // TREE-SHORTCUT iterations (≈ log of tree height ≤ log d)
	Linked       int // vertices that linked in TREE-LINK
}

// Result is the outcome of the algorithm.
type Result struct {
	Labels      []int32
	ForestEdges []int // indices into g.Edges()
	Phases      int
	Prep        int
	Trace       []PhaseTrace
	Failed      bool
	// CtxErr is ctx.Err() when Params.Ctx was cancelled mid-run; Labels
	// and ForestEdges are nil in that case.
	CtxErr error
	Stats  pram.Stats
}

// ForestSpan materializes the forest edges as a columnar arc-pair span
// over the graph the result was computed from — the SoA view of
// ForestEdges, in the same index order, with mirror arcs, ready for
// zero-copy ingestion by the engines (graph.EdgeSpan is the uniform
// edge currency of the data path). Returns an empty span when the run
// failed or was cancelled.
func (r *Result) ForestSpan(g *graph.Graph) graph.EdgeSpan {
	u := make([]int32, 0, 2*len(r.ForestEdges))
	v := make([]int32, 0, 2*len(r.ForestEdges))
	span := g.Span()
	for _, idx := range r.ForestEdges {
		a, b := span.Edge(idx)
		u = append(u, a, b)
		v = append(v, b, a)
	}
	return graph.EdgeSpan{U: u, V: v}
}

// Run executes Spanning Forest algorithm on g.
func Run(m *pram.Machine, g *graph.Graph, p Params) Result {
	if p.BExp == 0 {
		d := DefaultParams(p.Seed)
		d.Mode, d.Ctx = p.Mode, p.Ctx
		p = d
	}
	ctx := p.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.N
	mEdges := max(g.NumEdges(), 1)
	if err := ctx.Err(); err != nil {
		return Result{CtxErr: err}
	}

	st := vanilla.NewSFState(g.N, g.Span(), p.Seed)

	// FOREST-PREPARE: Vanilla-SF phases on sparse inputs.
	prep := 0
	if float64(mEdges)/float64(max(n, 1)) <= p.PrepDensity {
		phases := p.PrepPhases
		if phases <= 0 {
			phases = 2*ceilLog2(ceilLog2(n)+1) + 2
		}
		for i := 0; i < phases; i++ {
			if err := ctx.Err(); err != nil {
				return Result{CtxErr: err, Prep: prep, Stats: m.Stats()}
			}
			prep++
			if !st.RunPhase(m) {
				break
			}
		}
	}
	estimate := float64(n)
	if prep > 0 {
		estimate = math.Max(1, float64(n)*math.Pow(7.0/8.0, float64(prep)))
	}

	res := Result{Prep: prep}
	ongoing := make([]int32, n)
	ongoingB := make([]bool, n)
	incident := make([]int32, n)
	leader := make([]int32, n)
	alpha := make([]int32, n)
	beta := make([]int32, n)
	leaderNbr := make([]int32, n)
	chosen := make([]int32, n)
	coin := pram.Coin{Seed: p.Seed ^ 0x9e3779b97f4a7c15}

	maxPhases := p.MaxPhases
	if maxPhases <= 0 {
		maxPhases = 8*ceilLog2(n) + 64
	}

	for phase := 0; ; phase++ {
		if err := ctx.Err(); err != nil {
			res.CtxErr = err
			res.Labels, res.ForestEdges = nil, nil
			res.Stats = m.Stats()
			return res
		}
		st.Arcs.MarkIncident(m, incident)
		m.Step(n, func(v int) {
			if st.D.Parent[v] == int32(v) && incident[v] == 1 {
				ongoing[v] = 1
				ongoingB[v] = true
			} else {
				ongoing[v] = 0
				ongoingB[v] = false
			}
		})
		nOngoing := 0
		for v := 0; v < n; v++ {
			if ongoing[v] == 1 {
				nOngoing++
			}
		}
		if p.Mode == ccbase.ModeCombining {
			m.ChargeSteps(1)
			estimate = float64(nOngoing)
		}
		if nOngoing == 0 {
			break
		}
		if phase >= maxPhases {
			res.Failed = true
			break
		}

		if estimate < 1 {
			estimate = 1
		}
		delta := math.Max(2, float64(mEdges)/estimate)
		b := math.Max(2, math.Pow(delta, p.BExp))
		tableSize := int(p.TableFactor * b * b)
		if tableSize < 8 {
			tableSize = 8
		}

		spaceBefore := m.Stats().Space

		// EXPAND with per-round snapshots (the H_j(u) of §C.3).
		exp := expand.Run(m, st.Arcs, ongoingB, expand.Params{
			BlockSlack: p.BlockSlack * b,
			TableSize:  tableSize,
			MaxRounds:  p.MaxExpandRounds,
			Snapshot:   true,
			Round:      uint64(phase) + 1,
			Seed:       p.Seed,
		})

		// VOTE (identical to §B.4).
		q := math.Pow(b, -2.0/3.0)
		if q < p.MinLeaderProb {
			q = p.MinLeaderProb
		}
		m.Step(n, func(u int) {
			leader[u] = 0
			if ongoing[u] == 0 {
				return
			}
			if exp.Live[u] {
				l := int32(1)
				t := exp.H[u]
				for c := 0; c < t.Size(); c++ {
					if v := t.At(c); v != -1 && v < int32(u) {
						l = 0
						break
					}
				}
				leader[u] = l
			} else if coin.Bernoulli(uint64(phase)+1, uint64(u), q) {
				leader[u] = 1
			}
		})

		// TREE-LINK Steps (1)-(5): compute α, β, and witness arcs
		// (treelink.go; factored out for the Lemma C.4-C.6 tests).
		hQ := hashing.Family{Seed: p.Seed ^ (uint64(phase)+1)*0x85ebca6b}.At(7)
		treeLink(treeLinkInput{
			M: m, Arcs: st.Arcs, Exp: exp,
			Ongoing: ongoing, Leader: leader,
			TableSize: tableSize, HashQ: hQ, NOngoing: nOngoing,
		}, alpha, beta, leaderNbr, chosen)

		// TREE-LINK Step (6): link and mark the forest arc.
		par := st.D.Parent
		orig := st.Arcs.Orig
		arcV := st.Arcs.V
		m.Step(n, func(u int) {
			e := chosen[u]
			if e < 0 {
				return
			}
			par[u] = arcV[e]
			if o := orig[e]; o >= 0 {
				st.ForestArc[o] = true
			}
		})
		linked := 0
		for v := 0; v < n; v++ {
			if chosen[v] >= 0 {
				linked++
			}
		}

		// Release this phase's table space (the pool is reused).
		m.Free(int(m.Stats().Space - spaceBefore))

		// TREE-SHORTCUT: repeat shortcut until no parent changes. The
		// pass count is bounded by the forest depth, but each pass is a
		// full m.Step over n vertices, so cancellation must be able to
		// land between passes like at any other round boundary.
		shortcuts := 0
		for {
			if err := ctx.Err(); err != nil {
				res.CtxErr = err
				res.Labels, res.ForestEdges = nil, nil
				res.Stats = m.Stats()
				return res
			}
			shortcuts++
			if st.D.Shortcut(m) == 0 {
				break
			}
		}
		// ALTER.
		st.Arcs.Alter(m, st.D)

		res.Trace = append(res.Trace, PhaseTrace{
			Ongoing:      nOngoing,
			B:            b,
			ExpandRounds: exp.Rounds,
			TreeShortcut: shortcuts,
			Linked:       linked,
		})
		res.Phases++

		if p.Mode == ccbase.ModeArbitrary {
			estimate = math.Max(1, estimate/math.Pow(b, 0.25))
		}
	}

	st.D.Flatten(m)
	res.Labels = st.D.Parent
	res.ForestEdges = st.ForestEdges()
	res.Stats = m.Stats()
	return res
}

func ceilLog2(n int) int {
	l := 0
	for x := 1; x < n; x <<= 1 {
		l++
	}
	return l
}
