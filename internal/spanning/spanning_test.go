package spanning

import (
	"fmt"
	"testing"

	"repro/graph"
	"repro/internal/check"
	"repro/internal/pram"
)

func verify(t *testing.T, g *graph.Graph, res Result) {
	t.Helper()
	if res.Failed {
		t.Fatalf("phase cap exhausted after %d phases", res.Phases)
	}
	if err := check.Components(g, res.Labels); err != nil {
		t.Fatalf("labels: %v", err)
	}
	if err := check.Forest(g, res.ForestEdges); err != nil {
		t.Fatalf("forest: %v", err)
	}
}

func TestSpanningForestWorkloads(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":     graph.Path(400),
		"cycle":    graph.Cycle(256),
		"star":     graph.Star(200),
		"grid":     graph.Grid2D(18, 22),
		"tree":     graph.RandomTree(500, 2),
		"gnm-x2":   graph.Gnm(2000, 4000, 1),
		"gnm-x16":  graph.Gnm(2000, 32000, 2),
		"beads":    graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 16, Size: 10, IntraDeg: 8, Bridges: 2, Seed: 3}),
		"multi":    graph.DisjointUnion(graph.Path(64), graph.Clique(20), graph.Cycle(30)),
		"isolated": graph.WithIsolated(graph.Clique(10), 20),
		"parallel": graph.FromEdges(3, [][2]int{{0, 1}, {0, 1}, {1, 2}, {1, 2}}),
	}
	for name, g := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/%d", name, seed), func(t *testing.T) {
				verify(t, g, Run(pram.New(1), g, DefaultParams(seed)))
			})
		}
	}
}

func TestForestEdgesAreInputEdges(t *testing.T) {
	g := graph.Gnm(1000, 5000, 9)
	res := Run(pram.New(1), g, DefaultParams(7))
	for _, idx := range res.ForestEdges {
		if idx < 0 || idx >= g.NumEdges() {
			t.Fatalf("forest edge index %d out of range", idx)
		}
	}
}

func TestTreeShortcutBounded(t *testing.T) {
	// Lemma C.8: tree heights stay ≤ d, so TREE-SHORTCUT needs only
	// O(log d) iterations.
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 32, Size: 10, IntraDeg: 8, Bridges: 2, Seed: 4})
	res := Run(pram.New(1), g, DefaultParams(3))
	d := 2 * 32
	for i, tr := range res.Trace {
		if tr.TreeShortcut > 2*log2(d)+6 {
			t.Fatalf("phase %d: TREE-SHORTCUT took %d iterations (d=%d)", i, tr.TreeShortcut, d)
		}
	}
}

func log2(n int) int {
	l := 0
	for x := 1; x < n; x <<= 1 {
		l++
	}
	return l
}

func TestCombiningMode(t *testing.T) {
	g := graph.Gnm(3000, 15000, 5)
	p := DefaultParams(2)
	p.Mode = 0 // ccbase.ModeCombining
	verify(t, g, Run(pram.New(1), g, p))
}

func TestParallelWorkersForest(t *testing.T) {
	g := graph.Gnm(10000, 40000, 6)
	for _, w := range []int{2, 8} {
		res := Run(pram.New(w), g, DefaultParams(4))
		verify(t, g, res)
	}
}

func TestManySeedsForestValid(t *testing.T) {
	g := graph.DisjointUnion(
		graph.Gnm(1500, 6000, 7),
		graph.Path(200),
	)
	for seed := uint64(1); seed <= 15; seed++ {
		res := Run(pram.New(1), g, DefaultParams(seed))
		verify(t, g, res)
	}
}

func TestEdgeCasesForest(t *testing.T) {
	cases := map[string]*graph.Graph{
		"empty":   graph.New(3),
		"oneEdge": graph.FromEdges(2, [][2]int{{0, 1}}),
		"loops": func() *graph.Graph {
			g := graph.New(2)
			g.AddEdge(0, 0)
			g.AddEdge(0, 1)
			return g
		}(),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			verify(t, g, Run(pram.New(1), g, DefaultParams(1)))
		})
	}
}

func TestForestSizeFormula(t *testing.T) {
	// |F| = n − #components on every run (Lemma C.3 consequence).
	for seed := int64(1); seed <= 8; seed++ {
		g := graph.Gnm(800, 1600, seed)
		res := Run(pram.New(1), g, DefaultParams(uint64(seed)))
		want := g.N - g.NumComponents()
		if len(res.ForestEdges) != want {
			t.Fatalf("seed %d: forest has %d edges, want %d", seed, len(res.ForestEdges), want)
		}
	}
}
