package spanning

import (
	"fmt"
	"testing"

	"repro/graph"
	"repro/internal/expand"
	"repro/internal/hashing"
	"repro/internal/labels"
	"repro/internal/pram"
)

// treeLinkFixture runs EXPAND with generous tables (so nothing goes
// dormant except by the block lottery) and then TREE-LINK with an
// explicit leader set, returning α, β, chosen and the inputs.
func treeLinkFixture(t *testing.T, g *graph.Graph, leaders map[int]bool, tableSize int) (*expand.Outcome, treeLinkOutput) {
	t.Helper()
	m := pram.New(1)
	arcs := labels.NewArcStore(g.Span())
	ongoingB := make([]bool, g.N)
	ongoing := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		ongoingB[v] = true
		ongoing[v] = 1
	}
	exp := expand.Run(m, arcs, ongoingB, expand.Params{
		BlockSlack: 16, TableSize: tableSize, MaxRounds: 32, Snapshot: true, Seed: 5,
	})
	leader := make([]int32, g.N)
	for v := range leaders {
		leader[v] = 1
	}
	alpha := make([]int32, g.N)
	beta := make([]int32, g.N)
	leaderNbr := make([]int32, g.N)
	chosen := make([]int32, g.N)
	out := treeLink(treeLinkInput{
		M: m, Arcs: arcs, Exp: exp,
		Ongoing: ongoing, Leader: leader,
		TableSize: tableSize, HashQ: hashing.Family{Seed: 77}.At(7), NOngoing: g.N,
	}, alpha, beta, leaderNbr, chosen)
	return exp, out
}

// distToLeaders computes min distance from each vertex to a leader.
func distToLeaders(g *graph.Graph, leaders map[int]bool) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	var queue []int32
	for v := range leaders {
		dist[v] = 0
		queue = append(queue, int32(v))
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// TestLemmaC5BetaIsLeaderDistance: with no dormancy and no collisions,
// β (where set) equals the exact distance to the nearest leader.
func TestLemmaC5BetaIsLeaderDistance(t *testing.T) {
	cases := []struct {
		name    string
		g       *graph.Graph
		leaders map[int]bool
	}{
		{"path-end", graph.Path(17), map[int]bool{0: true}},
		{"path-mid", graph.Path(17), map[int]bool{8: true}},
		{"path-two", graph.Path(17), map[int]bool{0: true, 16: true}},
		{"grid", graph.Grid2D(5, 5), map[int]bool{0: true}},
		{"tree", graph.CompleteBinaryTree(31), map[int]bool{0: true}},
		{"cycle", graph.Cycle(12), map[int]bool{3: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exp, out := treeLinkFixture(t, tc.g, tc.leaders, 1024)
			for v := 0; v < tc.g.N; v++ {
				if exp.FullyDorm[v] {
					continue // lost the block lottery: β may be unset
				}
			}
			want := distToLeaders(tc.g, tc.leaders)
			for v := 0; v < tc.g.N; v++ {
				if out.Beta[v] < 0 {
					continue // β unset is allowed (dormancy etc.)
				}
				if out.Beta[v] != want[v] {
					t.Fatalf("vertex %d: β = %d, true leader distance %d", v, out.Beta[v], want[v])
				}
			}
			// With giant tables every live vertex must get β.
			for v := 0; v < tc.g.N; v++ {
				if exp.Live[v] && out.Beta[v] < 0 && want[v] >= 0 {
					t.Fatalf("live vertex %d missing β (true distance %d)", v, want[v])
				}
			}
		})
	}
}

// TestLemmaC6WitnessArcs: every vertex with β = x ≥ 1 has a chosen arc
// to a neighbour with β = x−1.
func TestLemmaC6WitnessArcs(t *testing.T) {
	g := graph.Grid2D(6, 7)
	leaders := map[int]bool{0: true, 41: true}
	_, out := treeLinkFixture(t, g, leaders, 2048)
	arcs := labels.NewArcStore(g.Span())
	for v := 0; v < g.N; v++ {
		if out.Beta[v] < 1 {
			continue
		}
		e := out.Chosen[v]
		if e < 0 {
			t.Fatalf("vertex %d with β=%d has no witness arc", v, out.Beta[v])
		}
		if arcs.U[e] != int32(v) {
			t.Fatalf("vertex %d chose arc starting at %d", v, arcs.U[e])
		}
		w := arcs.V[e]
		if out.Beta[w] != out.Beta[v]-1 {
			t.Fatalf("witness arc (%d,%d): β %d → %d, want decrease by 1",
				v, w, out.Beta[v], out.Beta[w])
		}
	}
}

// TestLemmaC4AlphaExcludesLeaders: B(u, α) contains no leader, and
// B(u, α+1) does (when β is set): α = dist−1 exactly here.
func TestLemmaC4AlphaExcludesLeaders(t *testing.T) {
	g := graph.Path(20)
	leaders := map[int]bool{10: true}
	_, out := treeLinkFixture(t, g, leaders, 1024)
	want := distToLeaders(g, leaders)
	for v := 0; v < g.N; v++ {
		if out.Beta[v] >= 1 {
			if out.Alpha[v] != want[v]-1 {
				t.Fatalf("vertex %d: α = %d, want dist−1 = %d", v, out.Alpha[v], want[v]-1)
			}
		}
	}
}

// TestTreeLinkLinksDecreaseBeta: following chosen arcs from any vertex
// reaches a leader in exactly β steps (the height bound of Lemma C.8).
func TestTreeLinkLinksDecreaseBeta(t *testing.T) {
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 6, Size: 6, IntraDeg: 5, Bridges: 1, Seed: 2})
	leaders := map[int]bool{0: true}
	_, out := treeLinkFixture(t, g, leaders, 4096)
	arcs := labels.NewArcStore(g.Span())
	for v := 0; v < g.N; v++ {
		if out.Beta[v] < 1 {
			continue
		}
		steps := 0
		x := int32(v)
		for out.Beta[x] > 0 {
			e := out.Chosen[x]
			if e < 0 {
				t.Fatalf("chain from %d stuck at %d (β=%d)", v, x, out.Beta[x])
			}
			x = arcs.V[e]
			steps++
			if steps > g.N {
				t.Fatalf("chain from %d does not terminate", v)
			}
		}
		if int32(steps) != out.Beta[v] {
			t.Fatalf("chain from %d took %d steps, β = %d", v, steps, out.Beta[v])
		}
	}
}

// TestTreeLinkNoLeaders: with no leaders at all, no β is set and no
// arcs are chosen.
func TestTreeLinkNoLeaders(t *testing.T) {
	g := graph.Path(10)
	_, out := treeLinkFixture(t, g, map[int]bool{}, 512)
	for v := 0; v < g.N; v++ {
		if out.Beta[v] >= 0 {
			t.Fatalf("vertex %d has β=%d with no leaders", v, out.Beta[v])
		}
		if out.Chosen[v] >= 0 {
			t.Fatalf("vertex %d chose an arc with no leaders", v)
		}
	}
}

// TestTreeLinkTinyTables: with collision-prone tables the lemmas only
// guarantee β ≤ true distance never below; unset β is fine.
func TestTreeLinkTinyTables(t *testing.T) {
	g := graph.Star(64)
	for seed := 0; seed < 3; seed++ {
		leaders := map[int]bool{seed + 1: true}
		_, out := treeLinkFixture(t, g, leaders, 4)
		want := distToLeaders(g, leaders)
		for v := 0; v < g.N; v++ {
			if out.Beta[v] >= 0 && out.Beta[v] != want[v] {
				t.Fatalf(fmt.Sprintf("vertex %d: set β=%d must equal distance %d", v, out.Beta[v], want[v]))
			}
		}
	}
}
