package hashing

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestModP(t *testing.T) {
	cases := []uint64{0, 1, MersenneP - 1, MersenneP, MersenneP + 1, 1<<62 + 12345, ^uint64(0)}
	for _, x := range cases {
		want := new(big.Int).Mod(new(big.Int).SetUint64(x), big.NewInt(MersenneP)).Uint64()
		if got := modP(x); got != want {
			t.Errorf("modP(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestModPProperty(t *testing.T) {
	f := func(x uint64) bool {
		want := new(big.Int).Mod(new(big.Int).SetUint64(x), big.NewInt(MersenneP)).Uint64()
		return modP(x) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulModPProperty(t *testing.T) {
	p := big.NewInt(MersenneP)
	f := func(a, b uint64) bool {
		a, b = modP(a), modP(b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return mulModP(a, b) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseDeterministic(t *testing.T) {
	h := NewPairwise(12345, 67890)
	for x := uint64(0); x < 100; x++ {
		if h.Eval(x) != h.Eval(x) {
			t.Fatalf("Eval(%d) not deterministic", x)
		}
	}
}

func TestPairwiseLinear(t *testing.T) {
	// h(x) = a·x + b mod p exactly.
	h := NewPairwise(999, 7)
	p := big.NewInt(MersenneP)
	for x := uint64(0); x < 50; x++ {
		want := new(big.Int).SetUint64(h.A)
		want.Mul(want, new(big.Int).SetUint64(x))
		want.Add(want, new(big.Int).SetUint64(h.B))
		want.Mod(want, p)
		if got := h.Eval(x); got != want.Uint64() {
			t.Fatalf("Eval(%d) = %d, want %d", x, got, want.Uint64())
		}
	}
}

func TestSlotRange(t *testing.T) {
	f := func(rawA, rawB, x uint64, k uint16) bool {
		kk := int(k%1000) + 1
		s := NewPairwise(rawA, rawB).Slot(x, kk)
		return s >= 0 && s < kk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotUniformity(t *testing.T) {
	// χ²-ish sanity: hashing 0..N-1 into K slots should put roughly
	// N/K in each slot (within 5× for a crude bound).
	const N, K = 100000, 64
	counts := make([]int, K)
	h := Family{Seed: 42}.At(3)
	for x := 0; x < N; x++ {
		counts[h.Slot(uint64(x), K)]++
	}
	want := N / K
	for s, c := range counts {
		if c < want/5 || c > want*5 {
			t.Fatalf("slot %d has %d items, want ≈%d", s, c, want)
		}
	}
}

func TestPairwiseCollisionRate(t *testing.T) {
	// Pairwise independence ⇒ P[h(x)=h(y)] ≈ 1/K for x≠y. Estimate
	// over many function draws.
	const K = 97
	collisions, trials := 0, 0
	for fi := uint64(0); fi < 400; fi++ {
		h := Family{Seed: 7}.At(fi)
		for x := uint64(0); x < 30; x++ {
			for y := x + 1; y < 30; y++ {
				trials++
				if h.Slot(x, K) == h.Slot(y, K) {
					collisions++
				}
			}
		}
	}
	rate := float64(collisions) / float64(trials)
	if rate > 3.0/K || rate < 0.2/K {
		t.Fatalf("collision rate %.5f far from 1/K = %.5f", rate, 1.0/K)
	}
}

func TestFamilyIndependentFunctions(t *testing.T) {
	f0, f1 := Family{Seed: 1}.At(0), Family{Seed: 1}.At(1)
	if f0 == f1 {
		t.Fatal("family returned identical functions for different indices")
	}
	g0 := Family{Seed: 2}.At(0)
	if f0 == g0 {
		t.Fatal("different seeds gave identical functions")
	}
}

func TestNewPairwiseNonzeroA(t *testing.T) {
	h := NewPairwise(0, 0)
	if h.A == 0 {
		t.Fatal("A must be nonzero")
	}
}
