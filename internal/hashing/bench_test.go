package hashing

import "testing"

func BenchmarkPairwiseEval(b *testing.B) {
	h := Family{Seed: 1}.At(0)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += h.Eval(uint64(i))
	}
	_ = sink
}

func BenchmarkTableTryInsert(b *testing.B) {
	t := NewTable(Family{Seed: 1}.At(0), 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&0xffff == 0 {
			t.Clear()
		}
		t.TryInsert(int32(i & 0x7fffffff))
	}
}

func BenchmarkTableOccupiedIteration(b *testing.B) {
	t := NewTable(Family{Seed: 1}.At(0), 1<<14)
	for i := int32(0); i < 4096; i++ {
		t.TryInsert(i)
	}
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		for _, v := range t.Occupied() {
			sink += v
		}
	}
	_ = sink
}
