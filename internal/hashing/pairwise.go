// Package hashing provides the paper's hashing toolkit: a pairwise-
// independent hash family over the Mersenne prime p = 2^61 − 1, and
// fixed-size hash tables with the re-read collision-detection trick of
// §3.3 ("a collision can be detected using the same hash function to
// check the same location again"). All hash functions in the paper are
// pairwise independent so that each hashing processor reads only two
// words (a, b) of shared randomness; we mirror that exactly.
package hashing

import "math/bits"

// MersenneP is the modulus 2^61 − 1.
const MersenneP = (1 << 61) - 1

// Pairwise is a hash function h(x) = ((a·x + b) mod p) drawn from a
// pairwise-independent family. Range reduction to a table of size k is
// done by Slot.
type Pairwise struct {
	A, B uint64 // coefficients in [0, p); A should be nonzero
}

// NewPairwise derives a hash function from two raw random words,
// reducing them into the field and forcing A nonzero.
func NewPairwise(rawA, rawB uint64) Pairwise {
	a := modP(rawA)
	if a == 0 {
		a = 1
	}
	return Pairwise{A: a, B: modP(rawB)}
}

// modP reduces a 64-bit value modulo 2^61−1.
func modP(x uint64) uint64 {
	x = (x & MersenneP) + (x >> 61)
	if x >= MersenneP {
		x -= MersenneP
	}
	return x
}

// mulModP multiplies two field elements modulo 2^61−1 using the
// Mersenne folding identity 2^64 ≡ 8. For a, b < 2^61 the high word
// hi < 2^58, so hi<<3 < 2^61 cannot overflow.
func mulModP(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return modP(modP(lo) + modP(hi<<3))
}

// Eval returns h(x) ∈ [0, p).
func (h Pairwise) Eval(x uint64) uint64 {
	return modP(mulModP(h.A, modP(x)) + h.B)
}

// Slot returns h(x) reduced to a table slot in [0, k).
func (h Pairwise) Slot(x uint64, k int) int {
	return int(h.Eval(x) % uint64(k))
}

// Family deterministically derives independent Pairwise functions from
// a seed; function i is independent of function j ≠ i.
type Family struct {
	Seed uint64
}

// At returns the i-th function of the family.
func (f Family) At(i uint64) Pairwise {
	return NewPairwise(splitmix(f.Seed^splitmix(2*i)), splitmix(f.Seed^splitmix(2*i+1)))
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
