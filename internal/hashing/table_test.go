package hashing

import (
	"testing"
	"testing/quick"
)

func newTestTable(k int) *Table {
	return NewTable(Family{Seed: 99}.At(0), k)
}

func TestTableInsertContains(t *testing.T) {
	tb := newTestTable(64)
	tb.Insert(5)
	if !tb.Contains(5) {
		t.Fatal("5 not found after insert")
	}
	if tb.Collides(5) {
		t.Fatal("5 must not collide with itself")
	}
}

func TestTableCollisionDetection(t *testing.T) {
	// Force a collision: find two values in the same slot of a tiny table.
	tb := newTestTable(2)
	var a, b int32 = -1, -1
	for x := int32(0); x < 100 && b < 0; x++ {
		if a < 0 {
			a = x
			continue
		}
		if tb.Hash(x) == tb.Hash(a) {
			b = x
		}
	}
	if b < 0 {
		t.Skip("no colliding pair found (astronomically unlikely)")
	}
	tb.Insert(a)
	tb.Insert(b) // overwrites
	if !tb.Collides(a) {
		t.Error("a must detect collision after overwrite")
	}
	if tb.Collides(b) {
		t.Error("b occupies its slot, no collision for b")
	}
}

func TestTryInsertFirstWins(t *testing.T) {
	tb := newTestTable(2)
	var a, b int32 = -1, -1
	for x := int32(0); x < 100 && b < 0; x++ {
		if a < 0 {
			a = x
			continue
		}
		if tb.Hash(x) == tb.Hash(a) {
			b = x
		}
	}
	if b < 0 {
		t.Skip("no colliding pair")
	}
	if !tb.TryInsert(a) {
		t.Fatal("first insert must succeed")
	}
	if tb.TryInsert(b) {
		t.Fatal("colliding insert must not overwrite")
	}
	if !tb.Contains(a) || tb.Contains(b) {
		t.Fatal("first writer must win")
	}
	if !tb.Collides(b) {
		t.Fatal("loser must observe a collision")
	}
	if tb.TryInsert(a) {
		t.Fatal("re-inserting present value is not an add")
	}
}

func TestTableEntriesLen(t *testing.T) {
	tb := newTestTable(128)
	vals := []int32{3, 17, 42, 99}
	for _, v := range vals {
		tb.TryInsert(v)
	}
	if got := tb.Len(); got != len(vals) {
		t.Fatalf("Len = %d, want %d", got, len(vals))
	}
	got := map[int32]bool{}
	for _, v := range tb.Entries(nil) {
		got[v] = true
	}
	for _, v := range vals {
		if !got[v] {
			t.Fatalf("entry %d missing", v)
		}
	}
}

func TestTableClear(t *testing.T) {
	tb := newTestTable(16)
	tb.Insert(1)
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatal("table not empty after Clear")
	}
}

func TestTableClone(t *testing.T) {
	tb := newTestTable(16)
	tb.Insert(7)
	c := tb.Clone()
	tb.Insert(9)
	if c.Contains(9) && c.Hash(9) != c.Hash(7) {
		t.Fatal("clone shares storage with original")
	}
	if !c.Contains(7) {
		t.Fatal("clone lost entry")
	}
}

func TestTableMap(t *testing.T) {
	tb := newTestTable(64)
	tb.Insert(4)
	tb.Insert(8)
	tb.Map(func(v int32) int32 { return v + 1 })
	found := map[int32]bool{}
	for _, v := range tb.Entries(nil) {
		found[v] = true
	}
	if !found[5] || !found[9] {
		t.Fatalf("map results wrong: %v", found)
	}
}

func TestTableNoFalseCollisions(t *testing.T) {
	// Inserting distinct values into a large table: each present value
	// must not collide with itself.
	f := func(seed uint64, raw []int32) bool {
		tb := NewTable(Family{Seed: seed}.At(1), 4096)
		for _, v := range raw {
			if v < 0 {
				v = -v
			}
			tb.TryInsert(v)
		}
		for i := 0; i < tb.Size(); i++ {
			if v := tb.At(i); v != Empty && tb.Collides(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinTableSize(t *testing.T) {
	tb := NewTable(Family{Seed: 1}.At(0), 0)
	if tb.Size() < 1 {
		t.Fatal("table must have at least one cell")
	}
}

// TestTryInsertTotalAccounting (property): after any TryInsert
// sequence, every inserted value either occupies its slot (Contains)
// or observes a collision (Collides); the occupancy list holds exactly
// the winners, with no duplicates.
func TestTryInsertTotalAccounting(t *testing.T) {
	f := func(seed uint64, raw []int16) bool {
		tb := NewTable(Family{Seed: seed}.At(2), 64)
		inserted := map[int32]bool{}
		for _, r := range raw {
			v := int32(r)
			if v < 0 {
				v = -v
			}
			tb.TryInsert(v)
			inserted[v] = true
		}
		occ := tb.Occupied()
		seen := map[int32]bool{}
		for _, w := range occ {
			if seen[w] {
				return false // duplicate winner
			}
			seen[w] = true
			if !tb.Contains(w) {
				return false // winner must occupy its slot
			}
		}
		for v := range inserted {
			if tb.Contains(v) != !tb.Collides(v) {
				return false // exactly one of Contains/Collides
			}
			if tb.Contains(v) && !seen[v] {
				return false // occupant missing from occupancy list
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
