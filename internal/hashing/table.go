package hashing

import "sync/atomic"

// Table is the paper's fixed-size hash table H(v): K cells, each
// holding a vertex id or Empty. Writing vertex w stores w into slot
// h(w); a collision exists when, after all concurrent writes of a step,
// some written vertex re-reads a different value from its slot (§3.3's
// re-read trick). Insert and collision detection are therefore two
// separate passes, exactly as on the PRAM.
//
// All mutating methods use atomic stores so tables can be filled by
// concurrent PRAM processors with ARBITRARY write resolution.
type Table struct {
	h     Pairwise
	cells []int32

	// occ is an append-only list of values that won their cell via
	// TryInsert, so iteration costs O(#entries) instead of O(size) —
	// the PRAM walks cells in parallel, the host must not. occCount is
	// advanced atomically by concurrent writers; entries written via
	// plain Insert (overwrite) are NOT tracked here, so algorithms
	// that iterate tables must insert through TryInsert.
	occ      []int32
	occCount int32
}

// Empty marks an unoccupied cell.
const Empty int32 = -1

// NewTable returns a table of k cells using hash function h.
func NewTable(h Pairwise, k int) *Table {
	if k <= 0 {
		k = 1
	}
	cells := make([]int32, k)
	for i := range cells {
		cells[i] = Empty
	}
	// occ holds at most one winner per cell, so k slots always suffice.
	return &Table{h: h, cells: cells, occ: make([]int32, k)}
}

// Size returns the number of cells.
func (t *Table) Size() int { return len(t.cells) }

// Hash returns the slot of vertex w.
func (t *Table) Hash(w int32) int { return t.h.Slot(uint64(w), len(t.cells)) }

// Insert writes w into its slot (concurrent-safe, arbitrary wins).
func (t *Table) Insert(w int32) {
	atomic.StoreInt32(&t.cells[t.Hash(w)], w)
}

// TryInsert writes w into its slot only if the slot is empty or
// already holds w (first-writer-wins resolution — another legal
// ARBITRARY outcome that, unlike overwrite, keeps iterated expansions
// monotone so "a table got a new entry" is well defined). It returns
// added = true when the slot went empty→w this call.
func (t *Table) TryInsert(w int32) (added bool) {
	cell := &t.cells[t.Hash(w)]
	for {
		cur := atomic.LoadInt32(cell)
		if cur == w {
			return false
		}
		if cur != Empty {
			return false // collision: loser keeps Collides(w) == true
		}
		if atomic.CompareAndSwapInt32(cell, Empty, w) {
			t.recordOcc(w)
			return true
		}
	}
}

// recordOcc appends a winning value to the occupancy list. Concurrent
// winners reserve distinct slots with an atomic counter; each cell has
// at most one winner, so the preallocated k slots never overflow. The
// list is read only after the enclosing PRAM step's barrier.
func (t *Table) recordOcc(w int32) {
	idx := atomic.AddInt32(&t.occCount, 1) - 1
	atomic.StoreInt32(&t.occ[idx], w)
}

// Occupied returns the values inserted via TryInsert, in insertion
// order. The returned slice aliases internal storage: read-only, and
// only valid between PRAM steps (no concurrent writers).
func (t *Table) Occupied() []int32 {
	return t.occ[:atomic.LoadInt32(&t.occCount)]
}

// OccCount returns the current occupancy-list length. Because
// TryInsert is append-only, OccupiedPrefix(OccCount()) taken before a
// step is an O(1) snapshot of the table's contents at that instant.
func (t *Table) OccCount() int32 { return atomic.LoadInt32(&t.occCount) }

// OccupiedPrefix returns the first k inserted values (read-only view).
func (t *Table) OccupiedPrefix(k int32) []int32 {
	if n := atomic.LoadInt32(&t.occCount); k > n {
		k = n
	}
	return t.occ[:k]
}

// Collides re-reads w's slot and reports whether a different vertex
// occupies it — the paper's collision check.
func (t *Table) Collides(w int32) bool {
	return atomic.LoadInt32(&t.cells[t.Hash(w)]) != w
}

// Contains reports whether w currently occupies its slot.
func (t *Table) Contains(w int32) bool {
	return atomic.LoadInt32(&t.cells[t.Hash(w)]) == w
}

// At returns the contents of slot i (Empty if unoccupied).
func (t *Table) At(i int) int32 { return atomic.LoadInt32(&t.cells[i]) }

// Entries appends all occupied values to dst and returns it.
func (t *Table) Entries(dst []int32) []int32 {
	for i := range t.cells {
		if v := atomic.LoadInt32(&t.cells[i]); v != Empty {
			dst = append(dst, v)
		}
	}
	return dst
}

// Len returns the number of occupied cells (linear scan).
func (t *Table) Len() int {
	n := 0
	for i := range t.cells {
		if atomic.LoadInt32(&t.cells[i]) != Empty {
			n++
		}
	}
	return n
}

// Clear resets every cell to Empty, keeping the hash function.
func (t *Table) Clear() {
	for i := range t.cells {
		t.cells[i] = Empty
	}
	t.occCount = 0
}

// Clone returns a snapshot copy of the table (same hash function).
func (t *Table) Clone() *Table {
	c := &Table{h: t.h, cells: make([]int32, len(t.cells)), occ: make([]int32, len(t.occ))}
	for i := range t.cells {
		c.cells[i] = atomic.LoadInt32(&t.cells[i])
	}
	n := atomic.LoadInt32(&t.occCount)
	copy(c.occ[:n], t.occ[:n])
	c.occCount = n
	return c
}

// Map applies f to every occupied cell, storing the result in place.
// Used by ALTER to replace each stored vertex by its parent. The
// occupancy list is updated in lockstep; note slots keep the original
// hash positions, so Contains/Collides are meaningless after Map.
func (t *Table) Map(f func(int32) int32) {
	for i := range t.cells {
		if v := atomic.LoadInt32(&t.cells[i]); v != Empty {
			atomic.StoreInt32(&t.cells[i], f(v))
		}
	}
	n := atomic.LoadInt32(&t.occCount)
	for i := int32(0); i < n; i++ {
		t.occ[i] = f(t.occ[i])
	}
}
