// Package native is the shared-memory execution backend: connected
// components computed directly on goroutines with atomic
// compare-and-swap on the label array, aimed at wall-clock speed
// rather than model-cost accounting.
//
// The algorithm is the Liu–Tarjan label-propagation framework
// specialized to its practical core: every round performs a
// link-to-minimum step over the edges (each endpoint's current root
// label is lowered towards the smaller of the two via CAS-min) and a
// shortcutting step over the vertices (pointer jumping repeated to the
// root, compressing every chain to depth one). Labels only ever
// decrease, every vertex's label always names a vertex of the same
// component, and a round with no change is a proof of convergence —
// flat labels that agree across every edge — so no step barrier,
// snapshot semantics, or per-step cost accounting is needed. The
// asynchronous races the simulator's ARBITRARY write-resolution models
// explicitly are simply allowed to happen here; CAS-min makes every
// interleaving safe.
//
// Work is sharded over a reusable worker pool: contiguous chunks of
// the edge (and vertex) ranges are claimed with an atomic cursor, so
// stragglers steal nothing but the remaining range and no goroutines
// are spawned after engine start.
//
// The Engine type is the long-lived form: it owns the worker pool and
// the pre-bound worker closure, so repeated Run calls on same-sized
// graphs perform zero allocations — the shape pramcc.Solver builds on.
// Components remains the one-shot convenience wrapper.
package native

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"

	"repro/graph"
	"repro/internal/obs"
)

// Engine-level metrics: completed runs and link+shortcut rounds,
// process-wide. Counted once per run (not per round), so the hot loop
// pays nothing until convergence.
var (
	mRuns = obs.Default.Counter("pramcc_native_runs_total",
		"completed native-engine Run calls")
	mRounds = obs.Default.Counter("pramcc_native_rounds_total",
		"link+shortcut rounds executed by the native engine")
)

// grain is the number of edges or vertices a worker claims per fetch
// of the shared cursor: large enough to amortize the atomic add, small
// enough to balance skewed chunks across workers.
const grain = 4096

// Options configures an engine run.
type Options struct {
	// Workers is the goroutine count; 0 selects GOMAXPROCS.
	Workers int
}

// Result is a component labeling with engine statistics. Unlike the
// simulated backends there are no model costs: only real quantities.
type Result struct {
	// Labels assigns every vertex a component representative (the
	// minimum vertex id of its component, by the CAS-min discipline).
	Labels []int32
	// Rounds is the number of link+shortcut rounds until convergence.
	Rounds int
	// Workers is the resolved worker count that executed the run.
	Workers int
}

// phase selects the worker body of the current sweep.
const (
	phaseLink int32 = iota
	phaseShortcut
)

// Engine is a reusable shared-memory solver. It owns a worker pool
// spawned once at construction; Run may be called any number of times
// (from one goroutine at a time) and allocates nothing itself — the
// caller provides the label buffer. Close releases the pool.
type Engine struct {
	pool    *Pool
	cursor  atomic.Int64
	changed atomic.Bool

	// Per-run state, written by Run between pool barriers only.
	g      *graph.Graph
	labels []int32
	total  int
	phase  int32

	// work is the worker body bound once at construction so Run does
	// not create a closure (and therefore does not allocate) per call.
	work func(int)
}

// NewEngine spawns an engine with its worker pool; workers ≤ 0 selects
// GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{pool: NewPool(workers)}
	e.work = e.worker
	return e
}

// Workers returns the engine's resolved worker count.
func (e *Engine) Workers() int { return e.pool.Workers() }

// Close releases the worker pool. Idempotent; the engine must be idle.
func (e *Engine) Close() { e.pool.Close() }

// Run computes the connected components of g into labels, which must
// have length g.N; on return labels[v] is the minimum vertex id of
// v's component. It returns the number of link+shortcut rounds run.
//
// ctx is checked at every round boundary: when it is cancelled or past
// its deadline, Run abandons the computation and returns ctx.Err()
// within one round. The labels buffer then holds a partial (monotone
// but unconverged) labeling that the caller must discard.
//
// The returned labeling is exact on every interleaving: correctness
// depends only on the monotone CAS-min discipline, not on scheduling.
//
//pramcc:zeroalloc
func (e *Engine) Run(ctx context.Context, g *graph.Graph, labels []int32) (int, error) {
	if len(labels) != g.N {
		panic("native: label buffer length does not match g.N")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	for i := range labels {
		labels[i] = int32(i)
	}
	numEdges := g.NumEdges()
	if g.N == 0 || numEdges == 0 {
		return 0, ctx.Err()
	}
	e.g, e.labels = g, labels
	defer func() { e.g, e.labels = nil, nil }()

	// Event emission is decided once per run: the envelope (and its
	// measures map) is built only when an operator attached a sink, so
	// the default round loop stays allocation-free.
	emit := obs.Enabled()
	var roundStart time.Time
	rounds := 0
	for {
		if err := ctx.Err(); err != nil {
			if emit {
				obs.Emit(obs.Event{Source: "native", Category: "engine",
					Name: "run", Status: obs.StatusCancelled,
					Measures: map[string]float64{"rounds": float64(rounds)}})
			}
			return rounds, err
		}
		rounds++
		if emit {
			roundStart = time.Now()
		}
		linked := e.sweep(phaseLink, numEdges)
		cut := e.sweep(phaseShortcut, g.N)
		if emit {
			obs.Emit(obs.Event{Source: "native", Category: "engine",
				Name: "round", Status: obs.StatusOK,
				DurationMS: float64(time.Since(roundStart).Nanoseconds()) / 1e6,
				Measures: map[string]float64{
					"round":   float64(rounds),
					"changed": b2f(linked || cut),
				}})
		}
		// A full round with no successful CAS means the labels are flat
		// and agree across every edge: were some edge's labels unequal,
		// the link CAS-min on its larger side would have succeeded
		// against a flat (self-parented) label. Labels strictly
		// decrease on every change, so this point is always reached.
		if !linked && !cut {
			mRuns.Inc()
			mRounds.Add(int64(rounds))
			return rounds, nil
		}
	}
}

// b2f encodes a bool as a 0/1 event measure.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sweep shards [0, total) into grain-sized chunks claimed off the
// shared cursor and reports whether any worker changed a label.
//
//pramcc:zeroalloc
func (e *Engine) sweep(phase int32, total int) bool {
	e.phase, e.total = phase, total
	e.cursor.Store(0)
	e.changed.Store(false)
	e.pool.Run(e.work)
	return e.changed.Load()
}

// worker is the per-goroutine body of a sweep.
//
//pramcc:zeroalloc
func (e *Engine) worker(int) {
	local := false
	for {
		lo := int(e.cursor.Add(grain)) - grain
		if lo >= e.total {
			break
		}
		hi := lo + grain
		if hi > e.total {
			hi = e.total
		}
		if e.phase == phaseLink {
			local = e.link(lo, hi) || local
		} else {
			local = e.shortcut(lo, hi) || local
		}
	}
	if local {
		e.changed.Store(true)
	}
}

// link lowers both endpoints of every edge in [lo, hi) towards the
// smaller of their two current labels. Arcs come in mirror pairs, so
// scanning arc 2e covers edge e in both directions (the update is
// symmetric in u and v).
//
//pramcc:zeroalloc
func (e *Engine) link(lo, hi int) bool {
	g, labels := e.g, e.labels
	local := false
	for i := lo; i < hi; i++ {
		u, v := g.U[2*i], g.V[2*i]
		if u == v {
			continue
		}
		pu := atomic.LoadInt32(&labels[u])
		pv := atomic.LoadInt32(&labels[v])
		switch {
		case pv < pu:
			local = casMin(labels, pu, pv) || local
		case pu < pv:
			local = casMin(labels, pv, pu) || local
		}
	}
	return local
}

// shortcut pointer-jumps every vertex in [lo, hi) to its root.
//
//pramcc:zeroalloc
func (e *Engine) shortcut(lo, hi int) bool {
	labels := e.labels
	local := false
	for v := lo; v < hi; v++ {
		root := atomic.LoadInt32(&labels[v])
		for {
			parent := atomic.LoadInt32(&labels[root])
			if parent == root {
				break
			}
			root = parent
		}
		local = casMin(labels, int32(v), root) || local
	}
	return local
}

// Components computes the connected components of g one-shot: a fresh
// engine (and worker pool) is built and torn down around a single Run.
// Long-lived callers should hold an Engine (or a pramcc.Solver) to
// amortize that construction.
func Components(g *graph.Graph, opt Options) *Result {
	e := NewEngine(opt.Workers)
	defer e.Close()
	labels := make([]int32, g.N)
	rounds, _ := e.Run(context.Background(), g, labels)
	return &Result{Labels: labels, Rounds: rounds, Workers: e.Workers()}
}

// casMin lowers labels[at] to val if val is smaller, retrying on
// contention. It reports whether it wrote. Labels only ever decrease,
// so the invariant "labels[x] names a vertex of x's component" is
// preserved by every interleaving of casMin calls.
//
//pramcc:zeroalloc
func casMin(labels []int32, at, val int32) bool {
	for {
		cur := atomic.LoadInt32(&labels[at])
		if val >= cur {
			return false
		}
		if atomic.CompareAndSwapInt32(&labels[at], cur, val) {
			return true
		}
	}
}
