// Package native is the shared-memory execution backend: connected
// components computed directly on goroutines with atomic
// compare-and-swap on the label array, aimed at wall-clock speed
// rather than model-cost accounting.
//
// The algorithm is the Liu–Tarjan label-propagation framework
// specialized to its practical core: every round performs a
// link-to-minimum step over the edges (each endpoint's current root
// label is lowered towards the smaller of the two via CAS-min) and a
// shortcutting step over the vertices (pointer jumping repeated to the
// root, compressing every chain to depth one). Labels only ever
// decrease, every vertex's label always names a vertex of the same
// component, and a round with no change is a proof of convergence —
// flat labels that agree across every edge — so no step barrier,
// snapshot semantics, or per-step cost accounting is needed. The
// asynchronous races the simulator's ARBITRARY write-resolution models
// explicitly are simply allowed to happen here; CAS-min makes every
// interleaving safe.
//
// Work is sharded over a reusable worker pool: contiguous chunks of
// the edge (and vertex) ranges are claimed with an atomic cursor, so
// stragglers steal nothing but the remaining range and no goroutines
// are spawned after engine start.
package native

import (
	"runtime"
	"sync/atomic"

	"repro/graph"
)

// grain is the number of edges or vertices a worker claims per fetch
// of the shared cursor: large enough to amortize the atomic add, small
// enough to balance skewed chunks across workers.
const grain = 4096

// Options configures an engine run.
type Options struct {
	// Workers is the goroutine count; 0 selects GOMAXPROCS.
	Workers int
}

// Result is a component labeling with engine statistics. Unlike the
// simulated backends there are no model costs: only real quantities.
type Result struct {
	// Labels assigns every vertex a component representative (the
	// minimum vertex id of its component, by the CAS-min discipline).
	Labels []int32
	// Rounds is the number of link+shortcut rounds until convergence.
	Rounds int
	// Workers is the resolved worker count that executed the run.
	Workers int
}

// Components computes the connected components of g. The returned
// labeling is exact on every interleaving: correctness depends only on
// the monotone CAS-min discipline, not on scheduling.
func Components(g *graph.Graph, opt Options) *Result {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.N
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	res := &Result{Labels: labels, Workers: workers}
	numEdges := g.NumEdges()
	if n == 0 || numEdges == 0 {
		return res
	}

	p := NewPool(workers)
	defer p.Close()

	var cursor atomic.Int64
	var changed atomic.Bool

	// sweep shards [0, total) into grain-sized chunks claimed off a
	// shared cursor; body reports whether it changed any label.
	sweep := func(total int, body func(lo, hi int) bool) bool {
		cursor.Store(0)
		changed.Store(false)
		p.Run(func(int) {
			local := false
			for {
				lo := int(cursor.Add(grain)) - grain
				if lo >= total {
					break
				}
				hi := lo + grain
				if hi > total {
					hi = total
				}
				if body(lo, hi) {
					local = true
				}
			}
			if local {
				changed.Store(true)
			}
		})
		return changed.Load()
	}

	// Arcs come in mirror pairs, so scanning arc 2e covers edge e in
	// both directions (the link below is symmetric in u and v).
	link := func(lo, hi int) bool {
		local := false
		for e := lo; e < hi; e++ {
			u, v := g.U[2*e], g.V[2*e]
			if u == v {
				continue
			}
			pu := atomic.LoadInt32(&labels[u])
			pv := atomic.LoadInt32(&labels[v])
			switch {
			case pv < pu:
				local = casMin(labels, pu, pv) || local
			case pu < pv:
				local = casMin(labels, pv, pu) || local
			}
		}
		return local
	}

	shortcut := func(lo, hi int) bool {
		local := false
		for v := lo; v < hi; v++ {
			root := atomic.LoadInt32(&labels[v])
			for {
				parent := atomic.LoadInt32(&labels[root])
				if parent == root {
					break
				}
				root = parent
			}
			local = casMin(labels, int32(v), root) || local
		}
		return local
	}

	for {
		res.Rounds++
		linked := sweep(numEdges, link)
		cut := sweep(n, shortcut)
		// A full round with no successful CAS means the labels are flat
		// and agree across every edge: were some edge's labels unequal,
		// the link CAS-min on its larger side would have succeeded
		// against a flat (self-parented) label. Labels strictly
		// decrease on every change, so this point is always reached.
		if !linked && !cut {
			break
		}
	}
	return res
}

// casMin lowers labels[at] to val if val is smaller, retrying on
// contention. It reports whether it wrote. Labels only ever decrease,
// so the invariant "labels[x] names a vertex of x's component" is
// preserved by every interleaving of casMin calls.
func casMin(labels []int32, at, val int32) bool {
	for {
		cur := atomic.LoadInt32(&labels[at])
		if val >= cur {
			return false
		}
		if atomic.CompareAndSwapInt32(&labels[at], cur, val) {
			return true
		}
	}
}
