// Package native is the shared-memory execution backend: connected
// components computed directly on goroutines with atomic
// compare-and-swap on the label array, aimed at wall-clock speed
// rather than model-cost accounting.
//
// The algorithm is the Liu–Tarjan label-propagation framework
// specialized to its practical core: every round performs a
// link-to-minimum step over the edges (each endpoint's current root
// label is lowered towards the smaller of the two via CAS-min) and a
// shortcutting step over the vertices (pointer jumping repeated to the
// root, compressing every chain to depth one). Labels only ever
// decrease, every vertex's label always names a vertex of the same
// component, and a round with no change is a proof of convergence —
// flat labels that agree across every edge — so no step barrier,
// snapshot semantics, or per-step cost accounting is needed. The
// asynchronous races the simulator's ARBITRARY write-resolution models
// explicitly are simply allowed to happen here; CAS-min makes every
// interleaving safe.
//
// Work is sharded over the locality-aware grain-claim scheduler in
// internal/pool: each worker sweeps a sticky contiguous home range of
// the edge (and vertex) space first and steals from other ranges only
// after exhausting it, so the same label cache lines keep landing in
// the same core across the rounds of a solve. The first link sweep is
// fused: it links each edge to the root (the incremental engine's
// union discipline, with path splitting), which connects the whole
// label forest in one pass regardless of diameter, while packing the
// two stride-2 arc columns (U[2i], V[2i]) into one contiguous
// interleaved buffer. The rounds that follow are then cheap
// verification sweeps over half the bytes, and the convergence test —
// a full round with no change — is unchanged and still ranges over
// every edge. Options carries ablation switches for both.
//
// The Engine type is the long-lived form: it owns the worker pool and
// the packed-arc buffer, so repeated Run calls on same-sized graphs
// perform zero allocations — the shape pramcc.Solver builds on.
// Components remains the one-shot convenience wrapper.
package native

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"

	"repro/graph"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Engine-level metrics: completed runs and link+shortcut rounds,
// process-wide. Counted once per run (not per round), so the hot loop
// pays nothing until convergence.
var (
	mRuns = obs.Default.Counter("pramcc_native_runs_total",
		"completed native-engine Run calls")
	mRounds = obs.Default.Counter("pramcc_native_rounds_total",
		"link+shortcut rounds executed by the native engine")
)

// Options configures an engine run.
type Options struct {
	// Workers is the goroutine count; 0 selects GOMAXPROCS.
	Workers int
	// Grain is the number of edges or vertices a worker claims per
	// fetch of a range cursor; 0 derives pool.AdaptiveGrain from the
	// sweep size and worker count.
	Grain int
	// NoAffinity disables the sticky range-to-worker assignment and
	// claims from one shared cursor (the pre-scheduler behavior).
	NoAffinity bool
	// NoPack disables the fused first sweep — root-linking plus arc
	// packing — and performs one-hop CAS-min over the stride-2 graph
	// columns on every link sweep (the pre-scheduler behavior). Both
	// No* switches exist for the E17 ablation.
	NoPack bool
}

// Result is a component labeling with engine statistics. Unlike the
// simulated backends there are no model costs: only real quantities.
type Result struct {
	// Labels assigns every vertex a component representative (the
	// minimum vertex id of its component, by the CAS-min discipline).
	Labels []int32
	// Rounds is the number of link+shortcut rounds until convergence.
	Rounds int
	// Workers is the resolved worker count that executed the run.
	Workers int
}

// phase selects the chunk body of the current sweep.
const (
	phaseLink       int32 = iota // link from the stride-2 graph columns (NoPack)
	phaseLinkPack                // link from the graph columns, packing arcs as it goes
	phaseLinkPacked              // link from the packed interleaved buffer
	phaseShortcut
)

// Engine is a reusable shared-memory solver. It owns a worker pool
// spawned once at construction; Run may be called any number of times
// (from one goroutine at a time) and allocates nothing itself — the
// caller provides the label buffer. Close releases the pool.
//
// The engine retains its packed-arc buffer across runs (grow-or-reuse,
// 8 bytes per edge at high-water mark); callers that solve one huge
// graph and then hold the engine idle should Close and rebuild it.
type Engine struct {
	pool       *Pool
	changed    atomic.Bool
	grain      int
	noAffinity bool
	noPack     bool

	// Per-run state, written by Run between pool barriers only. arcs
	// holds the even (representative) arcs interleaved [u0 v0 u1 v1 …],
	// filled by the first link sweep and read by every later one.
	g      *graph.Graph
	labels []int32
	phase  int32
	arcs   []int32

	// chunk is the sweep body bound once at construction so Run does
	// not create a closure (and therefore does not allocate) per call.
	chunk func(worker, lo, hi int) bool
}

// NewEngine spawns an engine with its worker pool; workers ≤ 0 selects
// GOMAXPROCS.
func NewEngine(workers int) *Engine {
	return NewEngineOpt(Options{Workers: workers})
}

// NewEngineOpt spawns an engine with the full option set.
func NewEngineOpt(opt Options) *Engine {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		pool:       NewPool(workers),
		grain:      opt.Grain,
		noAffinity: opt.NoAffinity,
		noPack:     opt.NoPack,
	}
	e.chunk = e.chunkBody
	return e
}

// Workers returns the engine's resolved worker count.
func (e *Engine) Workers() int { return e.pool.Workers() }

// Grain returns the configured claim grain (0 = adaptive).
func (e *Engine) Grain() int { return e.grain }

// Close releases the worker pool. Idempotent; the engine must be idle.
func (e *Engine) Close() { e.pool.Close() }

// Run computes the connected components of g into labels, which must
// have length g.N; on return labels[v] is the minimum vertex id of
// v's component. It returns the number of link+shortcut rounds run.
//
// ctx is checked at every round boundary: when it is cancelled or past
// its deadline, Run abandons the computation and returns ctx.Err()
// within one round. The labels buffer then holds a partial (monotone
// but unconverged) labeling that the caller must discard.
//
// The returned labeling is exact on every interleaving: correctness
// depends only on the monotone CAS-min discipline, not on scheduling.
//
//pramcc:zeroalloc
func (e *Engine) Run(ctx context.Context, g *graph.Graph, labels []int32) (int, error) {
	if len(labels) != g.N {
		panic("native: label buffer length does not match g.N")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	for i := range labels {
		labels[i] = int32(i)
	}
	numEdges := g.NumEdges()
	if g.N == 0 || numEdges == 0 {
		return 0, ctx.Err()
	}
	e.g, e.labels = g, labels
	defer func() { e.g, e.labels = nil, nil }()

	linkPhase := phaseLink
	if !e.noPack {
		linkPhase = phaseLinkPack
		if cap(e.arcs) < 2*numEdges {
			//pramcc:allow zeroalloc -- grow-or-reuse contract: allocates only when the edge count outgrows the retained buffer
			e.arcs = make([]int32, 2*numEdges)
		}
		e.arcs = e.arcs[:2*numEdges]
	}

	// Event emission is decided once per run: the envelope (and its
	// measures map) is built only when an operator attached a sink, so
	// the default round loop stays allocation-free.
	emit := obs.Enabled()
	var roundStart time.Time
	rounds := 0
	for {
		if err := ctx.Err(); err != nil {
			if emit {
				obs.Emit(obs.Event{Source: "native", Category: "engine",
					Name: "run", Status: obs.StatusCancelled,
					Measures: map[string]float64{"rounds": float64(rounds)}})
			}
			return rounds, err
		}
		rounds++
		if emit {
			roundStart = time.Now()
		}
		linked := e.sweep(linkPhase, numEdges)
		if linkPhase == phaseLinkPack {
			linkPhase = phaseLinkPacked
		}
		cut := e.sweep(phaseShortcut, g.N)
		if emit {
			obs.Emit(obs.Event{Source: "native", Category: "engine",
				Name: "round", Status: obs.StatusOK,
				DurationMS: float64(time.Since(roundStart).Nanoseconds()) / 1e6,
				Measures: map[string]float64{
					"round":   float64(rounds),
					"changed": b2f(linked || cut),
				}})
		}
		// A full round with no successful CAS means the labels are flat
		// and agree across every edge: were some edge's labels unequal,
		// the link CAS-min on its larger side would have succeeded
		// against a flat (self-parented) label. Labels strictly
		// decrease on every change, so this point is always reached.
		if !linked && !cut {
			mRuns.Inc()
			mRounds.Add(int64(rounds))
			return rounds, nil
		}
	}
}

// b2f encodes a bool as a 0/1 event measure.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sweep runs the current phase over [0, total) on the shared
// locality-aware scheduler and reports whether any worker changed a
// label.
//
//pramcc:zeroalloc
func (e *Engine) sweep(phase int32, total int) bool {
	e.phase = phase
	e.changed.Store(false)
	e.pool.ShardedOpt(total, pool.ShardOptions{Grain: e.grain, NoAffinity: e.noAffinity}, e.chunk)
	return e.changed.Load()
}

// chunkBody dispatches one claimed chunk to the current phase's sweep
// body. It always returns true: the native engine cancels at round
// boundaries, not per chunk.
//
//pramcc:zeroalloc
func (e *Engine) chunkBody(_, lo, hi int) bool {
	var local bool
	switch e.phase {
	case phaseLink:
		local = e.link(lo, hi)
	case phaseLinkPack:
		local = e.linkPack(lo, hi)
	case phaseLinkPacked:
		local = e.linkPacked(lo, hi)
	default:
		local = e.shortcut(lo, hi)
	}
	if local {
		e.changed.Store(true)
	}
	return true
}

// link lowers both endpoints of every edge in [lo, hi) towards the
// smaller of their two current labels, reading the stride-2 graph
// columns. Arcs come in mirror pairs, so scanning arc 2e covers edge e
// in both directions (the update is symmetric in u and v).
//
//pramcc:zeroalloc
func (e *Engine) link(lo, hi int) bool {
	g, labels := e.g, e.labels
	local := false
	for i := lo; i < hi; i++ {
		u, v := g.U[2*i], g.V[2*i]
		if u == v {
			continue
		}
		pu := atomic.LoadInt32(&labels[u])
		pv := atomic.LoadInt32(&labels[v])
		switch {
		case pv < pu:
			local = casMin(labels, pu, pv) || local
		case pu < pv:
			local = casMin(labels, pv, pu) || local
		}
	}
	return local
}

// linkPack is the fused first sweep: it packs the even arcs into the
// interleaved buffer while linking each edge all the way — the larger
// root is CAS-linked under the smaller, retrying from the fresh roots
// on contention, so both endpoints share a root when the call moves
// on (the incremental engine's union discipline). One such sweep
// connects the whole label forest regardless of diameter, so the
// rounds that follow are cheap all-labels-equal verification sweeps
// instead of further rounds of propagation. The packing traffic rides
// on a sweep that had to read the graph columns anyway.
//
//pramcc:zeroalloc
func (e *Engine) linkPack(lo, hi int) bool {
	g, labels, arcs := e.g, e.labels, e.arcs
	local := false
	for i := lo; i < hi; i++ {
		u, v := g.U[2*i], g.V[2*i]
		arcs[2*i], arcs[2*i+1] = u, v
		if u == v {
			continue
		}
		local = rootLink(labels, u, v) || local
	}
	return local
}

// rootLink links the roots of u and v by index minimum, retrying on a
// lost race, and reports whether it wrote. Writes target current
// roots only and labels strictly decrease, so parent[x] ≤ x and
// acyclicity hold on every interleaving — the same argument as the
// incremental engine's union.
//
//pramcc:zeroalloc
func rootLink(labels []int32, u, v int32) bool {
	wrote := false
	for {
		ru, rv := findRoot(labels, u), findRoot(labels, v)
		if ru == rv {
			return wrote
		}
		if ru > rv {
			ru, rv = rv, ru
		}
		if atomic.CompareAndSwapInt32(&labels[rv], rv, ru) {
			return true
		}
		u, v = ru, rv
	}
}

// findRoot returns the root of x with path splitting: each visited
// vertex is CASed from its parent to its grandparent. A failed CAS
// means a racing find already improved the pointer; progress stays
// monotone because labels strictly decrease along every path.
//
//pramcc:zeroalloc
func findRoot(labels []int32, x int32) int32 {
	for {
		p := atomic.LoadInt32(&labels[x])
		if p == x {
			return x
		}
		gp := atomic.LoadInt32(&labels[p])
		if gp == p {
			return p
		}
		atomic.CompareAndSwapInt32(&labels[x], p, gp)
		x = gp
	}
}

// linkPacked is link reading the interleaved packed buffer: half the
// memory traffic of the stride-2 column walk, which is the whole cost
// of a link sweep once the labels are cache-resident.
//
//pramcc:zeroalloc
func (e *Engine) linkPacked(lo, hi int) bool {
	labels, arcs := e.labels, e.arcs
	local := false
	for i := lo; i < hi; i++ {
		u, v := arcs[2*i], arcs[2*i+1]
		if u == v {
			continue
		}
		pu := atomic.LoadInt32(&labels[u])
		pv := atomic.LoadInt32(&labels[v])
		switch {
		case pv < pu:
			local = casMin(labels, pu, pv) || local
		case pu < pv:
			local = casMin(labels, pv, pu) || local
		}
	}
	return local
}

// shortcut pointer-jumps every vertex in [lo, hi) to its root.
//
//pramcc:zeroalloc
func (e *Engine) shortcut(lo, hi int) bool {
	labels := e.labels
	local := false
	for v := lo; v < hi; v++ {
		root := atomic.LoadInt32(&labels[v])
		for {
			parent := atomic.LoadInt32(&labels[root])
			if parent == root {
				break
			}
			root = parent
		}
		local = casMin(labels, int32(v), root) || local
	}
	return local
}

// Components computes the connected components of g one-shot: a fresh
// engine (and worker pool) is built and torn down around a single Run.
// Long-lived callers should hold an Engine (or a pramcc.Solver) to
// amortize that construction.
func Components(g *graph.Graph, opt Options) *Result {
	e := NewEngineOpt(opt)
	defer e.Close()
	labels := make([]int32, g.N)
	rounds, _ := e.Run(context.Background(), g, labels)
	return &Result{Labels: labels, Rounds: rounds, Workers: e.Workers()}
}

// casMin lowers labels[at] to val if val is smaller, retrying on
// contention. It reports whether it wrote. Labels only ever decrease,
// so the invariant "labels[x] names a vertex of x's component" is
// preserved by every interleaving of casMin calls.
//
//pramcc:zeroalloc
func casMin(labels []int32, at, val int32) bool {
	for {
		cur := atomic.LoadInt32(&labels[at])
		if val >= cur {
			return false
		}
		if atomic.CompareAndSwapInt32(&labels[at], cur, val) {
			return true
		}
	}
}
