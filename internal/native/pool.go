package native

import "sync"

// pool is a reusable fixed-size worker pool. The workers are spawned
// once per engine run and fed one job per round via per-worker
// channels, instead of spawning a fresh goroutine set for every
// parallel step the way the PRAM simulator does. run broadcasts the
// job to all workers and blocks until every worker has returned.
type pool struct {
	jobs []chan func(worker int)
	wg   sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{jobs: make([]chan func(worker int), workers)}
	for i := range p.jobs {
		ch := make(chan func(worker int))
		p.jobs[i] = ch
		go func(worker int, ch chan func(worker int)) {
			for f := range ch {
				f(worker)
				p.wg.Done()
			}
		}(i, ch)
	}
	return p
}

// run executes f once on every worker and waits for all of them.
func (p *pool) run(f func(worker int)) {
	p.wg.Add(len(p.jobs))
	for _, ch := range p.jobs {
		ch <- f
	}
	p.wg.Wait()
}

// close terminates the worker goroutines. The pool must be idle.
func (p *pool) close() {
	for _, ch := range p.jobs {
		close(ch)
	}
}
