package native

import "repro/internal/pool"

// Pool is the reusable fixed-size worker pool this engine runs on. The
// implementation lives in internal/pool so packages that sit below the
// engines in the import graph — notably package graph's parallel
// loader — can share it without a cycle; this alias keeps the engine's
// historical spelling (native.Pool, used by internal/incremental)
// working.
type Pool = pool.Pool

// NewPool spawns a pool of the given worker count (must be > 0).
func NewPool(workers int) *Pool { return pool.New(workers) }
