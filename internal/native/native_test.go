package native

import (
	"context"
	"testing"

	"repro/graph"
	"repro/internal/baseline"
	"repro/internal/check"
)

func requireOracle(t *testing.T, g *graph.Graph, labels []int32) {
	t.Helper()
	if err := check.Components(g, labels); err != nil {
		t.Fatal(err)
	}
}

func TestSmallGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.New(0)},
		{"isolated", graph.New(5)},
		{"single-edge", graph.FromEdges(2, [][2]int{{0, 1}})},
		{"self-loops", graph.FromEdges(3, [][2]int{{0, 0}, {1, 1}, {0, 1}})},
		{"parallel-edges", graph.FromEdges(3, [][2]int{{0, 1}, {0, 1}, {1, 2}})},
		{"path", graph.Path(17)},
		{"cycle", graph.Cycle(12)},
		{"star", graph.Star(9)},
		{"two-comps", graph.DisjointUnion(graph.Path(6), graph.Clique(5))},
		{"with-isolated", graph.WithIsolated(graph.Grid2D(4, 5), 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Components(tc.g, Options{})
			requireOracle(t, tc.g, res.Labels)
			if len(res.Labels) != tc.g.N {
				t.Fatalf("got %d labels for %d vertices", len(res.Labels), tc.g.N)
			}
		})
	}
}

// TestMinLabelRepresentatives: the CAS-min discipline converges to the
// minimum vertex id of each component, giving canonical labels.
func TestMinLabelRepresentatives(t *testing.T) {
	g := graph.DisjointUnion(graph.Cycle(10), graph.Star(7), graph.Path(4))
	res := Components(g, Options{})
	uf := baseline.Components(g)
	min := map[int32]int32{}
	for v, r := range uf {
		if cur, ok := min[r]; !ok || int32(v) < cur {
			min[r] = int32(v)
		}
	}
	for v := range res.Labels {
		if want := min[uf[v]]; res.Labels[v] != want {
			t.Fatalf("vertex %d: label %d, want component minimum %d", v, res.Labels[v], want)
		}
	}
}

// TestWorkersSweep: every worker count induces the same partition as
// the sequential union-find oracle.
func TestWorkersSweep(t *testing.T) {
	gs := []*graph.Graph{
		graph.Gnm(5000, 20000, 1),
		graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 64, Size: 24, IntraDeg: 20, Bridges: 2, Seed: 2}),
		graph.Permuted(graph.Grid2D(40, 50), 3),
	}
	for _, g := range gs {
		oracle := baseline.Components(g)
		for _, w := range []int{1, 2, 3, 7, 16} {
			res := Components(g, Options{Workers: w})
			if res.Workers != w {
				t.Fatalf("workers=%d: resolved to %d", w, res.Workers)
			}
			if err := check.SamePartition(res.Labels, oracle); err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
		}
	}
}

// TestRaceStress hammers the CAS paths with heavy contention: a
// high-diameter workload (long shortcut chains) and a dense one (many
// conflicting links), repeatedly, with more workers than cores. Run
// under -race this is the engine's memory-model check.
func TestRaceStress(t *testing.T) {
	gs := []*graph.Graph{
		graph.Path(30000),
		graph.Gnm(20000, 120000, 11),
		graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 256, Size: 24, IntraDeg: 20, Bridges: 2, Seed: 12}),
	}
	iters := 5
	if testing.Short() {
		iters = 2
	}
	for _, g := range gs {
		oracle := baseline.Components(g)
		for i := 0; i < iters; i++ {
			res := Components(g, Options{Workers: 32})
			if err := check.SamePartition(res.Labels, oracle); err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
		}
	}
}

// TestRoundsAreFew: repeated shortcutting to the root keeps rounds far
// below the diameter — the whole point over naive label propagation.
func TestRoundsAreFew(t *testing.T) {
	g := graph.Path(100000)
	res := Components(g, Options{})
	requireOracle(t, g, res.Labels)
	if res.Rounds > 40 {
		t.Fatalf("path-100000 took %d rounds, want O(log n)-ish", res.Rounds)
	}
}

func BenchmarkNativeGnm(b *testing.B) {
	g := graph.Gnm(100000, 400000, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Components(g, Options{})
	}
}

func BenchmarkNativeHighDiameter(b *testing.B) {
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 1024, Size: 24, IntraDeg: 20, Bridges: 2, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Components(g, Options{})
	}
}

// TestEngineReuse: the long-lived Engine form must match the one-shot
// Components across repeated runs on differently-sized graphs, with
// the caller-owned label buffer regrown as needed.
func TestEngineReuse(t *testing.T) {
	e := NewEngine(3)
	defer e.Close()
	graphs := []*graph.Graph{
		graph.Gnm(2000, 6000, 1),
		graph.Path(301),
		graph.Gnm(5000, 1000, 2),
		graph.Clique(64),
	}
	var labels []int32
	for i, g := range graphs {
		if cap(labels) >= g.N {
			labels = labels[:g.N]
		} else {
			labels = make([]int32, g.N)
		}
		rounds, err := e.Run(context.Background(), g, labels)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if g.NumEdges() > 0 && rounds == 0 {
			t.Fatalf("graph %d: zero rounds", i)
		}
		requireOracle(t, g, labels)
		if err := check.SamePartition(labels, baseline.Components(g)); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
	}
}

// TestEngineRunCancellation: a cancelled context aborts Run at a round
// boundary with ctx.Err(), and the engine stays usable.
func TestEngineRunCancellation(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	g := graph.Gnm(3000, 9000, 4)
	labels := make([]int32, g.N)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, g, labels); err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if _, err := e.Run(context.Background(), g, labels); err != nil {
		t.Fatal(err)
	}
	requireOracle(t, g, labels)
}

// TestEngineRunBadBuffer: a mis-sized label buffer is a programming
// error and must panic loudly, not corrupt memory.
func TestEngineRunBadBuffer(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted a short label buffer")
		}
	}()
	_, _ = e.Run(context.Background(), graph.Path(10), make([]int32, 3))
}
