// Package pool provides the reusable fixed-size worker pool shared by
// every parallel engine in the module: the native one-shot engine, the
// incremental streaming engine, and the parallel graph loader. It lives
// below all of them (and below package graph) so that none of those
// packages need to import each other for a goroutine pool.
package pool

import (
	"sync"

	"repro/internal/obs"
)

// Worker-pool occupancy metrics: live workers across every pool in the
// process, how many of them are inside a sharded run right now, and
// how many runs have been dispatched. Plain atomic adds on the Run
// barrier path — noise next to the channel sends the barrier already
// pays, and allocation-free by the obs contract.
var (
	mWorkers = obs.Default.Gauge("pramcc_pool_workers",
		"live worker goroutines across all worker pools in the process")
	mBusy = obs.Default.Gauge("pramcc_pool_busy_workers",
		"pool workers currently executing a sharded parallel run")
	mRuns = obs.Default.Counter("pramcc_pool_runs_total",
		"sharded parallel runs dispatched to worker pools")
)

// Pool is a reusable fixed-size worker pool. The workers are spawned
// once and fed one job per round via per-worker channels, instead of
// spawning a fresh goroutine set for every parallel step the way the
// PRAM simulator does. Run broadcasts the job to all workers and
// blocks until every worker has returned.
type Pool struct {
	jobs      []chan func(worker int)
	wg        sync.WaitGroup
	closeOnce sync.Once

	// shard is the pool-owned claim state behind Sharded/ShardedOpt,
	// with shardWork pre-bound once here so dispatching a sharded
	// sweep allocates nothing.
	shard     Shard
	shardWork func(worker int)
}

// New spawns a pool of the given worker count (must be > 0).
func New(workers int) *Pool {
	p := &Pool{jobs: make([]chan func(worker int), workers)}
	p.shardWork = p.shard.Work
	for i := range p.jobs {
		ch := make(chan func(worker int))
		p.jobs[i] = ch
		go func(worker int, ch chan func(worker int)) {
			for f := range ch {
				f(worker)
				p.wg.Done()
			}
		}(i, ch)
	}
	mWorkers.Add(int64(workers))
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return len(p.jobs) }

// Run executes f once on every worker and waits for all of them.
//
//pramcc:zeroalloc
func (p *Pool) Run(f func(worker int)) {
	mRuns.Inc()
	mBusy.Add(int64(len(p.jobs)))
	p.wg.Add(len(p.jobs))
	for _, ch := range p.jobs {
		ch <- f
	}
	p.wg.Wait()
	mBusy.Add(int64(-len(p.jobs)))
}

// Close terminates the worker goroutines. The pool must be idle.
// Close is idempotent: long-lived owners (pramcc.Solver, the shared
// engines behind the compatibility wrappers) may be closed from
// multiple cleanup paths.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		for _, ch := range p.jobs {
			close(ch)
		}
		mWorkers.Add(int64(-len(p.jobs)))
	})
}
