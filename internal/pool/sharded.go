// Sharded work scheduling: the grain-claim loop that used to be
// copy-pasted into every parallel engine (native sweep, incremental
// span union and publish flatten, the parallel loader's chunk fan-out)
// now lives here, with two upgrades the copies never had:
//
//   - Adaptive grain sizing. The old engines hard-coded grain = 4096.
//     That is the right ceiling for huge inputs (small enough to
//     balance skewed chunks) but wildly too coarse for small ones: a
//     100k-item sweep over 8 workers is only 24 claims at 4096, so one
//     slow worker strands an eighth of the input. AdaptiveGrain derives
//     the grain from total/workers with an amortization floor (a claim
//     must cover enough items to pay for its atomic add) and that same
//     load-balance ceiling.
//
//   - Sticky range-to-worker affinity. Each worker owns a
//     deterministic contiguous home range of the index space
//     [r*total/n, (r+1)*total/n) and sweeps it first every round, so
//     across the many rounds a solve performs, the same label/parent/
//     span cache lines keep landing in the same core's cache. Only
//     after its home range is exhausted does a worker steal — from the
//     most loaded remaining range, the one with the most unclaimed
//     items — so skew still cannot strand work, and the thieves pile
//     onto the range that actually needs the help.
//
// A Shard is plain value state (no goroutines, no channels): Init it,
// then have each participating worker call Work. Pool.Sharded wires
// this to the pool's broadcast barrier; the PRAM simulator drives a
// stack-local Shard from its own per-step goroutines.
package pool

import (
	"sync/atomic"

	"repro/internal/obs"
)

const (
	// MinGrain is the amortization floor: the fewest items a claim may
	// cover, so the shared cursor's atomic add is paid for by real work.
	MinGrain = 64
	// MaxGrain is the load-balance ceiling — the grain both engines
	// hard-coded before this scheduler existed: large enough to
	// amortize the atomic add, small enough that a skewed chunk
	// (a hub vertex's arcs, a long path compression) cannot strand a
	// big contiguous slab behind one worker.
	MaxGrain = 4096
	// chunksPerRange is how many claims a worker's home range splits
	// into at adaptive grain: enough that stealing can rebalance a
	// slow range, few enough that the cursor stays cheap.
	chunksPerRange = 8
)

// Sharded-run metrics: how often exhausted workers cross into another
// worker's home range (high steal rates mean skew or a grain set too
// coarse), and the grain of the most recent run (0 before any run;
// watch it when tuning -grain).
var (
	mSteals = obs.Default.Counter("pramcc_pool_steals_total",
		"chunks claimed from another worker's home range after the claimer's own range was exhausted")
	mGrain = obs.Default.Gauge("pramcc_pool_grain",
		"items per cursor claim (grain) of the most recent sharded run")
)

// AdaptiveGrain derives the claim size for a sweep of total items over
// the given worker count: total/(workers*chunksPerRange), clamped to
// [MinGrain, MaxGrain].
//
//pramcc:zeroalloc
func AdaptiveGrain(total, workers int) int {
	if workers < 1 {
		workers = 1
	}
	g := total / (workers * chunksPerRange)
	if g < MinGrain {
		g = MinGrain
	}
	if g > MaxGrain {
		g = MaxGrain
	}
	return g
}

// padCursor is one range's claim cursor on its own cache line, so
// worker A hammering its home cursor never invalidates the line worker
// B's cursor lives on (the false-sharing failure mode that a plain
// []atomic.Int64 would reintroduce).
type padCursor struct {
	c atomic.Int64
	_ [56]byte
}

// ShardOptions tunes one sharded run.
type ShardOptions struct {
	// Grain is the number of items a worker claims per fetch of a
	// range cursor; 0 derives AdaptiveGrain(total, workers).
	Grain int
	// NoAffinity collapses the per-worker home ranges into one shared
	// cursor (the pre-scheduler behavior). Used by the E17 ablation
	// and by callers whose per-item cost is too uneven for sticky
	// ranges to help.
	NoAffinity bool
}

// Shard is the claim state for one parallel sweep of [0, total):
// per-range cache-line-padded cursors plus the job to run on each
// claimed chunk. The zero value is ready for Init; the cursor slice is
// reused across Inits (grow-or-reuse), so a long-lived owner performs
// no steady-state allocation.
//
// Init-then-Work is one sweep: Init from the coordinating goroutine,
// then Work from each participating worker. A Shard must not be
// re-Init'ed while workers are inside Work.
type Shard struct {
	total   int
	grain   int
	ranges  int
	job     func(worker, lo, hi int) bool
	cursors []padCursor
}

// Init arms the shard for one sweep of [0, total) by the given worker
// count. grain <= 0 selects AdaptiveGrain. With affinity, worker w's
// home range is [w*total/workers, (w+1)*total/workers); without, a
// single shared cursor spans the whole interval. job is called on
// contiguous chunks [lo, hi); returning false stops that worker's
// claim loop (the per-chunk ctx-cancellation contract — other workers
// observe the same condition through their own job calls).
//
//pramcc:zeroalloc
func (s *Shard) Init(total, grain, workers int, affinity bool, job func(worker, lo, hi int) bool) {
	if workers < 1 {
		workers = 1
	}
	if grain <= 0 {
		grain = AdaptiveGrain(total, workers)
	}
	n := 1
	if affinity {
		n = workers
	}
	s.total, s.grain, s.ranges, s.job = total, grain, n, job
	if cap(s.cursors) < n {
		//pramcc:allow zeroalloc -- grow-or-reuse contract: allocates only when the worker count grows, never per sweep
		s.cursors = make([]padCursor, n)
	}
	s.cursors = s.cursors[:n]
	for r := 0; r < n; r++ {
		s.cursors[r].c.Store(int64(s.rangeLo(r)))
	}
	mGrain.Set(int64(grain))
}

// Grain returns the grain Init settled on (after adaptive derivation).
func (s *Shard) Grain() int { return s.grain }

// rangeLo is the first index of range r; ranges partition [0, total)
// into s.ranges near-equal contiguous pieces.
//
//pramcc:zeroalloc
func (s *Shard) rangeLo(r int) int { return r * s.total / s.ranges }

//pramcc:zeroalloc
func (s *Shard) rangeHi(r int) int { return (r + 1) * s.total / s.ranges }

// Work is one worker's claim loop: drain the home range first, then
// repeatedly steal from the most loaded remaining range — the one
// whose cursor is furthest from its end — until every range is
// drained. Safe to call concurrently from s's worker set after one
// Init.
//
//pramcc:zeroalloc
func (s *Shard) Work(worker int) {
	n := s.ranges
	home := worker
	if home >= n {
		home %= n
	}
	if !s.claimRange(worker, home, false) {
		return
	}
	for n > 1 {
		// Victim selection: the range with the most unclaimed items.
		// The cursor loads race with other claimers, but a stale read
		// only misdirects one steal round — claimRange re-reads the
		// cursor on every claim, so exactly-once coverage never depends
		// on this scan.
		victim, best := -1, 0
		for r := 0; r < n; r++ {
			if r == home {
				continue
			}
			if rem := s.rangeHi(r) - int(s.cursors[r].c.Load()); rem > best {
				victim, best = r, rem
			}
		}
		if victim < 0 {
			return
		}
		if !s.claimRange(worker, victim, true) {
			return
		}
	}
}

// claimRange drains range r chunk by chunk; stolen marks claims made
// outside the worker's home range. Returns false when the job asked to
// stop.
//
//pramcc:zeroalloc
func (s *Shard) claimRange(worker, r int, stolen bool) bool {
	hi := s.rangeHi(r)
	grain := int64(s.grain)
	for {
		lo := int(s.cursors[r].c.Add(grain) - grain)
		if lo >= hi {
			return true
		}
		chunkHi := lo + s.grain
		if chunkHi > hi {
			chunkHi = hi
		}
		if stolen {
			mSteals.Inc()
		}
		if !s.job(worker, lo, chunkHi) {
			return false
		}
	}
}

// Sharded runs job over [0, total) on p's workers at adaptive grain
// with range affinity — the common case; ShardedOpt takes the tuning
// knobs.
//
//pramcc:zeroalloc
func Sharded(p *Pool, total int, job func(worker, lo, hi int) bool) {
	p.ShardedOpt(total, ShardOptions{}, job)
}

// Sharded is the method spelling of the package-level Sharded with an
// explicit grain (0 = adaptive).
//
//pramcc:zeroalloc
func (p *Pool) Sharded(total, grain int, job func(worker, lo, hi int) bool) {
	p.ShardedOpt(total, ShardOptions{Grain: grain}, job)
}

// ShardedOpt runs job over contiguous chunks of [0, total) on p's
// workers: each worker sweeps its sticky home range first, then steals.
// job returning false stops that worker's claiming (per-chunk
// cancellation). Tiny sweeps (one grain or fewer, or a one-worker
// pool) run inline on the caller, skipping the broadcast barrier.
//
// Like Run, a pool runs one sharded sweep at a time; callers
// coordinate rounds themselves.
//
//pramcc:zeroalloc
func (p *Pool) ShardedOpt(total int, o ShardOptions, job func(worker, lo, hi int) bool) {
	if total <= 0 {
		return
	}
	w := len(p.jobs)
	p.shard.Init(total, o.Grain, w, !o.NoAffinity, job)
	if w == 1 || total <= p.shard.grain {
		mRuns.Inc()
		p.shard.Work(0)
		return
	}
	p.Run(p.shardWork)
}
