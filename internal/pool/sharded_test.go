package pool

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestAdaptiveGrain(t *testing.T) {
	cases := []struct {
		total, workers, want int
	}{
		{0, 1, MinGrain},                         // empty sweep clamps to the floor
		{100, 8, MinGrain},                       // tiny sweep: floor
		{1 << 20, 1, MaxGrain},                   // huge single-worker sweep: ceiling
		{1 << 20, 4, MaxGrain},                   // 1Mi/32 = 32768 -> ceiling
		{64 * 8 * 4, 4, 64},                      // exactly workers*chunksPerRange*64
		{8 * chunksPerRange * 100, 8, 100},       // mid-range: total/(workers*8)
		{10, 0, MinGrain},                        // workers clamped to 1
		{MaxGrain * chunksPerRange, 1, MaxGrain}, // single worker at the ceiling boundary
	}
	for _, c := range cases {
		if got := AdaptiveGrain(c.total, c.workers); got != c.want {
			t.Errorf("AdaptiveGrain(%d, %d) = %d, want %d", c.total, c.workers, got, c.want)
		}
	}
}

// TestShardedCoversExactlyOnce is the scheduler's core contract: every
// index in [0, total) is visited by exactly one chunk, across grain
// sizes (including 1, 7, the legacy 4096, and adaptive), affinity on
// and off, worker counts, and totals that do and don't divide evenly.
// Run under -race this doubles as the scheduler stress test.
func TestShardedCoversExactlyOnce(t *testing.T) {
	grains := []int{1, 7, 64, 4096, 0} // 0 = adaptive
	totals := []int{1, 5, 63, 64, 65, 1000, 4096, 10000}
	workers := []int{1, 2, 3, 8}
	for _, w := range workers {
		p := New(w)
		for _, g := range grains {
			for _, total := range totals {
				for _, noAff := range []bool{false, true} {
					seen := make([]atomic.Int32, total)
					p.ShardedOpt(total, ShardOptions{Grain: g, NoAffinity: noAff}, func(_, lo, hi int) bool {
						if lo < 0 || hi > total || lo >= hi {
							t.Errorf("bad chunk [%d,%d) for total=%d", lo, hi, total)
							return false
						}
						for i := lo; i < hi; i++ {
							seen[i].Add(1)
						}
						return true
					})
					for i := range seen {
						if n := seen[i].Load(); n != 1 {
							t.Fatalf("workers=%d grain=%d total=%d noAffinity=%v: index %d visited %d times",
								w, g, total, noAff, i, n)
						}
					}
				}
			}
		}
		p.Close()
	}
}

func TestShardedZeroTotal(t *testing.T) {
	p := New(2)
	defer p.Close()
	called := atomic.Int32{}
	p.Sharded(0, 0, func(_, _, _ int) bool { called.Add(1); return true })
	p.Sharded(-5, 0, func(_, _, _ int) bool { called.Add(1); return true })
	if n := called.Load(); n != 0 {
		t.Fatalf("job called %d times for empty sweeps, want 0", n)
	}
}

// TestShardedStopsOnFalse pins the per-chunk cancellation contract: a
// job returning false ends that worker's claim loop, including its
// stealing phase.
func TestShardedStopsOnFalse(t *testing.T) {
	p := New(1)
	defer p.Close()
	calls := 0
	p.Sharded(10000, 64, func(_, _, _ int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("single worker made %d chunk calls after returning false on the first, want 1", calls)
	}
}

// TestShardedStealingEngages makes one home range artificially slow and
// asserts other workers steal from it: with worker 0 sleeping on every
// chunk it executes, the bulk of range 0's indexes must be processed by
// workers whose home lies elsewhere. This holds even on one CPU — the
// sleeping worker blocks and yields its P to the thieves.
func TestShardedStealingEngages(t *testing.T) {
	const (
		w     = 4
		grain = 16
		total = 1024 // range 0 = [0, 256): 16 chunks of slow work
	)
	p := New(w)
	defer p.Close()
	executor := make([]atomic.Int32, total)
	p.ShardedOpt(total, ShardOptions{Grain: grain}, func(worker, lo, hi int) bool {
		if worker == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		for i := lo; i < hi; i++ {
			executor[i].Store(int32(worker) + 1)
		}
		return true
	})
	stolen := 0
	for i := 0; i < total/w; i++ {
		switch e := executor[i].Load(); e {
		case 0:
			t.Fatalf("index %d never executed", i)
		case 1: // worker 0, the home owner
		default:
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatal("no index of the slow home range was stolen by another worker")
	}
}

// TestShardedStealsFromMostLoaded pins the victim-selection policy by
// driving a Shard sequentially: after draining its home range, a
// worker must steal from the range with the most unclaimed items
// first, not simply the next one over.
func TestShardedStealsFromMostLoaded(t *testing.T) {
	var s Shard
	stopAfter := 0
	var order []int
	// Ranges of [0, 90) over 3 workers: [0,30), [30,60), [60,90).
	s.Init(90, 10, 3, true, func(worker, lo, _ int) bool {
		if worker == 1 {
			stopAfter--
			return stopAfter > 0
		}
		order = append(order, lo)
		return true
	})
	// Worker 1 claims two chunks of its home range and stops, leaving
	// [50, 60) unclaimed there.
	stopAfter = 2
	s.Work(1)
	// Worker 0 drains its home [0, 30), then must steal from range 2
	// (30 items left) before finishing range 1 (10 items left).
	s.Work(0)
	want := []int{0, 10, 20, 60, 70, 80, 50}
	if len(order) != len(want) {
		t.Fatalf("worker 0 claimed chunks at %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("worker 0 claimed chunks at %v, want %v (most-loaded range first)", order, want)
		}
	}
}

// TestShardedHomeRangesAreSticky pins the affinity property on an
// uncontended sweep: with every worker equally fast and chunked home
// ranges, each worker's first claim lands inside its own home range.
func TestShardedHomeRangesAreSticky(t *testing.T) {
	const (
		w     = 4
		total = 4 * 4096
	)
	p := New(w)
	defer p.Close()
	var firstLo [w]atomic.Int64
	for i := range firstLo {
		firstLo[i].Store(-1)
	}
	p.ShardedOpt(total, ShardOptions{Grain: 64}, func(worker, lo, _ int) bool {
		firstLo[worker].CompareAndSwap(-1, int64(lo))
		return true
	})
	for worker := 0; worker < w; worker++ {
		lo := firstLo[worker].Load()
		if lo < 0 {
			continue // this worker never got a chunk; fine on a loaded box
		}
		home := worker * total / w
		if lo < int64(home) || lo >= int64(home+total/w) {
			t.Errorf("worker %d's first claim was %d, outside home range [%d, %d)",
				worker, lo, home, home+total/w)
		}
	}
}
