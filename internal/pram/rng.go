package pram

// Schedule-independent randomness. A PRAM algorithm's random choices
// must not depend on the host scheduler, so per-processor coins are
// derived by hashing (seed, round, index) with SplitMix64. Two runs
// with the same seed make identical random choices regardless of the
// worker count; only ARBITRARY write resolutions may differ.

// SplitMix64 is the standard splitmix64 finalizer.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Coin is a deterministic per-(seed, round, index) random source.
type Coin struct {
	Seed uint64
}

// U64 returns a uniform 64-bit value for the given round and index.
func (c Coin) U64(round, index uint64) uint64 {
	return SplitMix64(c.Seed ^ SplitMix64(round*0x9e3779b97f4a7c15^index))
}

// Float returns a uniform value in [0,1).
func (c Coin) Float(round, index uint64) float64 {
	return float64(c.U64(round, index)>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (c Coin) Bernoulli(round, index uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return c.Float(round, index) < p
}

// Intn returns a uniform value in [0,n).
func (c Coin) Intn(round, index uint64, n int) int {
	if n <= 0 {
		panic("pram: Intn with non-positive n")
	}
	return int(c.U64(round, index) % uint64(n))
}
