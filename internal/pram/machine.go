// Package pram simulates the ARBITRARY CRCW PRAM of the paper (§1.1):
// a set of processors with O(1) private memory each, a large common
// memory, and synchronous constant-time steps. Any number of processors
// may read or write the same common-memory cell concurrently; when
// several write the same cell in one step, an arbitrary one succeeds.
//
// The simulator is coarse-grained: Machine.Step(procs, f) runs one PRAM
// time unit by evaluating f(i) for every processor index i over a fixed
// pool of worker goroutines, with a barrier at the end of the step.
// Concurrent writes inside a step must go through the atomic helpers in
// cells.go; the scheduler then picks the surviving writer, which is a
// legal ARBITRARY resolution. The machine accounts simulated time
// (steps), per-step processor usage, and total work, so experiments
// report model costs rather than host wall clock.
package pram

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/pool"
)

// Machine is an ARBITRARY CRCW PRAM simulator with cost accounting.
// The zero value is not usable; call New.
type Machine struct {
	workers int

	// shard is the reusable claim state behind runSharded, so the
	// simulator's per-step hot loop doesn't allocate a fresh cursor
	// slice every Step. shardBusy guards it: a nested step (a step body
	// invoking another Step) finds it taken and falls back to a
	// stack-local Shard.
	shard     pool.Shard
	shardBusy atomic.Bool

	steps    atomic.Int64 // simulated PRAM time units
	work     atomic.Int64 // sum over steps of processors used
	maxProcs atomic.Int64 // maximum processors used in a single step
	space    atomic.Int64 // currently allocated common-memory words
	maxSpace atomic.Int64 // peak allocated common-memory words
}

// New returns a machine executing steps over the given number of worker
// goroutines. workers <= 0 selects GOMAXPROCS. workers == 1 yields a
// deterministic sequential schedule (processor 0,1,2,… in order), which
// tests use to pin down exact behaviour.
func New(workers int) *Machine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Machine{workers: workers}
}

// Workers reports the size of the host worker pool.
func (m *Machine) Workers() int { return m.workers }

// Step executes one PRAM time unit with procs processors: f(i) is
// invoked exactly once for each i in [0, procs). All invocations of one
// step happen before Step returns (barrier semantics). Charging: one
// time unit, procs work.
func (m *Machine) Step(procs int, f func(i int)) {
	m.StepCost(1, procs, f)
}

// StepCost is Step but charges cost time units (used where the paper
// charges a known super-constant cost for a black-box primitive, e.g.
// approximate compaction's O(log* n)).
func (m *Machine) StepCost(cost, procs int, f func(i int)) {
	if cost < 0 || procs < 0 {
		panic(fmt.Sprintf("pram: negative cost %d or procs %d", cost, procs))
	}
	m.steps.Add(int64(cost))
	m.work.Add(int64(cost) * int64(procs))
	for {
		old := m.maxProcs.Load()
		if int64(procs) <= old || m.maxProcs.CompareAndSwap(old, int64(procs)) {
			break
		}
	}
	if procs == 0 {
		return
	}
	if m.workers == 1 || procs < 2048 {
		for i := 0; i < procs; i++ {
			f(i)
		}
		return
	}
	m.runSharded(procs, f)
}

// runSharded fans f over [0, total) on per-step goroutines, claiming
// chunks through a locality-aware shard (internal/pool): each worker
// sweeps a sticky home range of the processor index space first and
// steals from the others after — the same scheduler the native and
// incremental engines run on, so the spanning backend's tree-shortcut
// sweeps get the same range affinity. The worker count is capped at
// total so a step smaller than the pool never spawns goroutines whose
// home range would be empty. The machine's reusable shard (cursor
// slice and all) serves the common non-nested case; a nested step (a
// step body invoking another Step) finds shardBusy taken and runs on
// a stack-local Shard instead.
func (m *Machine) runSharded(total int, f func(i int)) {
	workers := m.workers
	if workers > total {
		workers = total
	}
	sh := &m.shard
	owned := m.shardBusy.CompareAndSwap(false, true)
	var nested pool.Shard
	if !owned {
		sh = &nested
	}
	sh.Init(total, 0, workers, true, func(_, lo, hi int) bool {
		for i := lo; i < hi; i++ {
			f(i)
		}
		return true
	})
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			sh.Work(w)
		}(w)
	}
	wg.Wait()
	if owned {
		m.shardBusy.Store(false)
	}
}

// StepN executes one PRAM time unit whose model cost is chargedProcs
// processors, while the host realizes it as iters loop iterations
// (e.g. the paper runs one processor per table-cell pair, but the host
// iterates per table owner). f(i) is invoked once per i in [0, iters).
func (m *Machine) StepN(chargedProcs, iters int, f func(i int)) {
	m.steps.Add(1)
	m.work.Add(int64(chargedProcs))
	for {
		old := m.maxProcs.Load()
		if int64(chargedProcs) <= old || m.maxProcs.CompareAndSwap(old, int64(chargedProcs)) {
			break
		}
	}
	if iters == 0 {
		return
	}
	if m.workers == 1 || iters < 256 {
		for i := 0; i < iters; i++ {
			f(i)
		}
		return
	}
	m.runSharded(iters, f)
}

// ChargeSteps adds time units without running processors. Used when an
// algorithm performs a constant number of bookkeeping sub-steps that
// the host executes inline.
func (m *Machine) ChargeSteps(n int) { m.steps.Add(int64(n)) }

// Alloc records the allocation of words of common memory (a processor
// block in the paper's terminology) and updates the peak.
func (m *Machine) Alloc(words int) {
	now := m.space.Add(int64(words))
	for {
		old := m.maxSpace.Load()
		if now <= old || m.maxSpace.CompareAndSwap(old, now) {
			break
		}
	}
}

// Free records the release of words of common memory.
func (m *Machine) Free(words int) { m.space.Add(-int64(words)) }

// Stats is a snapshot of the machine's cost counters.
type Stats struct {
	Steps    int64 // simulated PRAM time
	Work     int64 // Σ steps × processors
	MaxProcs int64 // peak processors in one step
	Space    int64 // currently allocated common-memory words
	MaxSpace int64 // peak allocated common-memory words
}

// Stats returns a snapshot of the cost counters.
func (m *Machine) Stats() Stats {
	return Stats{
		Steps:    m.steps.Load(),
		Work:     m.work.Load(),
		MaxProcs: m.maxProcs.Load(),
		Space:    m.space.Load(),
		MaxSpace: m.maxSpace.Load(),
	}
}

// Reset zeroes all counters; the worker pool size is kept.
func (m *Machine) Reset() {
	m.steps.Store(0)
	m.work.Store(0)
	m.maxProcs.Store(0)
	m.space.Store(0)
	m.maxSpace.Store(0)
}
