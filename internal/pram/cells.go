package pram

import "sync/atomic"

// Atomic helpers giving common-memory cells ARBITRARY CRCW semantics.
// Within one Machine.Step, processors writing the same cell race; the
// host scheduler's last writer wins, which is one legal arbitrary
// resolution. Reads of cells that may be written in the same step must
// use Load32/Load64 so the race is well-defined under the Go memory
// model. Cells only read in a step may be accessed directly.

// Store32 performs a concurrent write of v into cell (arbitrary wins).
func Store32(cell *int32, v int32) { atomic.StoreInt32(cell, v) }

// Load32 performs a concurrent read of a cell.
func Load32(cell *int32) int32 { return atomic.LoadInt32(cell) }

// Store64 performs a concurrent write of v into cell (arbitrary wins).
func Store64(cell *int64, v int64) { atomic.StoreInt64(cell, v) }

// Load64 performs a concurrent read of a cell.
func Load64(cell *int64) int64 { return atomic.LoadInt64(cell) }

// CAS32 performs a compare-and-swap on a cell. The PRAM model does not
// have CAS; it is used only to implement primitives the paper proves
// are O(1)-time on an ARBITRARY CRCW PRAM (see MaxCombine64).
func CAS32(cell *int32, old, new int32) bool {
	return atomic.CompareAndSwapInt32(cell, old, new)
}

// MaxCombine64 atomically raises *cell to v if v is larger. The paper's
// MAXLINK needs "parent with maximum level among neighbours" in O(1)
// PRAM time, which §3.3 implements with a per-vertex array of O(log n)
// level slots plus one processor per slot pair. We realize the same
// reduction with a pack-max: callers pack (level << 32 | vertex) so a
// single max yields the argmax vertex. The CAS loop is a host-machine
// execution detail; the charged PRAM cost stays O(1) per the paper.
func MaxCombine64(cell *int64, v int64) {
	for {
		old := atomic.LoadInt64(cell)
		if v <= old || atomic.CompareAndSwapInt64(cell, old, v) {
			return
		}
	}
}

// Fill32 sets every element of s to v (host-side initialization; charge
// separately if it corresponds to a PRAM step).
func Fill32(s []int32, v int32) {
	for i := range s {
		s[i] = v
	}
}

// Fill64 sets every element of s to v.
func Fill64(s []int64, v int64) {
	for i := range s {
		s[i] = v
	}
}

// PackLevelVertex packs a (level, vertex) pair so that integer max
// orders by level first and vertex id second.
func PackLevelVertex(level int32, vertex int32) int64 {
	return int64(level)<<32 | int64(uint32(vertex))
}

// UnpackLevelVertex reverses PackLevelVertex.
func UnpackLevelVertex(p int64) (level int32, vertex int32) {
	return int32(p >> 32), int32(uint32(p))
}
