package pram

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestStepRunsEveryProcessorOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		m := New(workers)
		const procs = 5000
		hits := make([]int32, procs)
		m.Step(procs, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: processor %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestStepAccounting(t *testing.T) {
	m := New(1)
	m.Step(10, func(int) {})
	m.Step(100, func(int) {})
	m.StepCost(3, 7, func(int) {})
	s := m.Stats()
	if s.Steps != 1+1+3 {
		t.Errorf("steps = %d, want 5", s.Steps)
	}
	if s.Work != 10+100+21 {
		t.Errorf("work = %d, want 131", s.Work)
	}
	if s.MaxProcs != 100 {
		t.Errorf("maxProcs = %d, want 100", s.MaxProcs)
	}
}

func TestStepN(t *testing.T) {
	m := New(4)
	var count int64
	m.StepN(1000, 37, func(int) { atomic.AddInt64(&count, 1) })
	if count != 37 {
		t.Errorf("iterations = %d, want 37", count)
	}
	s := m.Stats()
	if s.Work != 1000 || s.Steps != 1 || s.MaxProcs != 1000 {
		t.Errorf("accounting wrong: %+v", s)
	}
}

func TestZeroProcsStep(t *testing.T) {
	m := New(4)
	m.Step(0, func(int) { t.Fatal("must not run") })
	if m.Stats().Steps != 1 {
		t.Error("zero-proc step still costs one time unit")
	}
}

func TestAllocFree(t *testing.T) {
	m := New(1)
	m.Alloc(100)
	m.Alloc(50)
	m.Free(120)
	s := m.Stats()
	if s.Space != 30 || s.MaxSpace != 150 {
		t.Errorf("space=%d maxSpace=%d, want 30, 150", s.Space, s.MaxSpace)
	}
}

func TestReset(t *testing.T) {
	m := New(1)
	m.Step(5, func(int) {})
	m.Alloc(9)
	m.Reset()
	if s := m.Stats(); s != (Stats{}) {
		t.Errorf("stats not zeroed: %+v", s)
	}
}

func TestCoinDeterministic(t *testing.T) {
	f := func(seed, round, index uint64) bool {
		c := Coin{Seed: seed}
		return c.U64(round, index) == c.U64(round, index) &&
			c.Float(round, index) >= 0 && c.Float(round, index) < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoinBernoulliBounds(t *testing.T) {
	c := Coin{Seed: 7}
	if c.Bernoulli(1, 1, 0) {
		t.Error("p=0 must be false")
	}
	if !c.Bernoulli(1, 1, 1) {
		t.Error("p=1 must be true")
	}
}

func TestCoinBernoulliFrequency(t *testing.T) {
	c := Coin{Seed: 11}
	const trials = 100000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < trials; i++ {
			if c.Bernoulli(3, uint64(i), p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if got < p-0.01 || got > p+0.01 {
			t.Errorf("Bernoulli(%.1f) frequency %.4f", p, got)
		}
	}
}

func TestCoinIntnRange(t *testing.T) {
	c := Coin{Seed: 3}
	for i := 0; i < 1000; i++ {
		v := c.Intn(1, uint64(i), 17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestMaxCombine(t *testing.T) {
	var cell int64
	MaxCombine64(&cell, 5)
	MaxCombine64(&cell, 3)
	MaxCombine64(&cell, 9)
	if cell != 9 {
		t.Errorf("max = %d, want 9", cell)
	}
}

func TestPackUnpackLevelVertex(t *testing.T) {
	f := func(level int32, vertex int32) bool {
		if level < 0 {
			level = -level
		}
		l, v := UnpackLevelVertex(PackLevelVertex(level, vertex))
		return l == level && v == vertex
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackOrdering(t *testing.T) {
	// Higher level must always pack greater regardless of vertex ids.
	lo := PackLevelVertex(2, 1<<30)
	hi := PackLevelVertex(3, 0)
	if lo >= hi {
		t.Error("packing does not order by level first")
	}
}

func TestConcurrentMaxCombine(t *testing.T) {
	m := New(8)
	var cell int64
	m.Step(10000, func(i int) {
		MaxCombine64(&cell, int64(i))
	})
	if cell != 9999 {
		t.Errorf("concurrent max = %d, want 9999", cell)
	}
}

func TestSplitMix64NotIdentity(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		v := SplitMix64(i)
		if seen[v] {
			t.Fatalf("collision at %d", i)
		}
		seen[v] = true
	}
}
