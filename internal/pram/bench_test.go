package pram

import (
	"sync/atomic"
	"testing"
)

// Micro-benchmarks for the simulator primitives; these put numbers on
// the "simulation overhead" column of the engineering discussion.

func BenchmarkStepSequential(b *testing.B) {
	m := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		m.Step(1024, func(p int) {
			atomic.AddInt64(&sink, int64(p))
		})
	}
}

func BenchmarkStepParallel(b *testing.B) {
	m := New(0)
	var sink int64
	for i := 0; i < b.N; i++ {
		m.Step(1<<16, func(p int) {
			atomic.AddInt64(&sink, 1)
		})
	}
}

func BenchmarkCoinBernoulli(b *testing.B) {
	c := Coin{Seed: 1}
	for i := 0; i < b.N; i++ {
		c.Bernoulli(3, uint64(i), 0.25)
	}
}

func BenchmarkMaxCombine(b *testing.B) {
	var cell int64
	for i := 0; i < b.N; i++ {
		MaxCombine64(&cell, int64(i))
	}
}
