package ccbase

import (
	"fmt"
	"testing"

	"repro/graph"
	"repro/internal/check"
	"repro/internal/pram"
)

func TestSmokeCCBase(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path64":  graph.Path(64),
		"gnm":     graph.Gnm(2000, 8000, 7),
		"beads":   graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 8, Size: 16, IntraDeg: 15, Seed: 3}),
		"twocomp": graph.DisjointUnion(graph.Path(50), graph.Clique(20)),
	}
	for name, g := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/%d", name, seed), func(t *testing.T) {
				m := pram.New(0)
				res := Run(m, g, DefaultParams(seed))
				if res.Failed {
					t.Fatalf("failed flag set, phases=%d", res.Phases)
				}
				if err := check.Components(g, res.Labels); err != nil {
					t.Fatalf("phases=%d: %v", res.Phases, err)
				}
			})
		}
	}
}
