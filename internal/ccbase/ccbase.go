// Package ccbase implements the O(log d · log log_{m/n} n) Connected
// Components algorithm of Theorem 1 (§B):
//
//	PREPARE; repeat {EXPAND; VOTE; LINK; SHORTCUT; ALTER} until no
//	edge exists other than loops.
//
// PREPARE densifies the instance with Vanilla phases when m/n is small
// (Lemma B.5). Each phase expands neighbour sets by distance doubling
// (package expand), votes leaders (min-id for live vertices, coin flip
// with probability b^{-2/3} for dormant ones — §B.4), links non-leaders
// to leaders, shortcuts and alters. The number of ongoing vertices
// shrinks by a power of δ = m/n′ per phase, giving O(log log_{m/n} n)
// phases of O(log d) time each.
//
// Two execution modes mirror §B.5: ModeCombining assumes the exact
// ongoing count n′ is available each phase (COMBINING CRCW);
// ModeArbitrary uses only the pessimistic estimate ñ with the update
// rule ñ := ñ / b^{1/4}, as required on an ARBITRARY CRCW PRAM.
package ccbase

import (
	"context"
	"math"

	"repro/graph"
	"repro/internal/expand"
	"repro/internal/pram"
	"repro/internal/vanilla"
)

// Mode selects how the per-phase vertex count is obtained (§B.5).
type Mode int

const (
	// ModeCombining computes the exact ongoing count n′ each phase, as
	// a COMBINING CRCW PRAM would with a sum-combining write.
	ModeCombining Mode = iota
	// ModeArbitrary never counts; it uses the update rule of §B.5.
	ModeArbitrary
)

// Params are the scaled constants of the algorithm; each field's
// comment names the paper value it stands in for.
type Params struct {
	Mode Mode
	Seed uint64

	// Ctx, when non-nil, is checked at every phase boundary (and
	// between PREPARE phases): on cancellation the run stops promptly,
	// Result.CtxErr records ctx.Err(), and Result.Labels is nil.
	Ctx context.Context

	// BExp is the exponent in b = δ^BExp (paper: 1/18, scaled default 1/4).
	BExp float64
	// TableFactor sizes tables as TableFactor·b² cells (paper: b⁶ = δ^{1/3}).
	TableFactor float64
	// BlockSlack multiplies the block count: blocks = BlockSlack·b·n′
	// (paper: m/δ^{2/3} blocks so ownership fails w.p. δ^{-1/3}).
	BlockSlack float64
	// PrepDensity is the m/n threshold below which PREPARE runs Vanilla
	// phases (paper: log^c n).
	PrepDensity float64
	// PrepPhases is the number of Vanilla phases PREPARE runs
	// (paper: c·log_{8/7} log n). ≤0 derives 2·ceil(log2 log2 n)+2.
	PrepPhases int
	// MaxPhases caps the main loop; exhausting it sets Result.Failed
	// (the paper's 1/poly bad-probability event). ≤0 derives a default.
	MaxPhases int
	// MaxExpandRounds caps EXPAND's inner doubling loop (≥ log2 d + 2).
	MaxExpandRounds int
	// MinLeaderProb floors the dormant-leader coin so tiny instances
	// cannot stall (the paper's asymptotics make this irrelevant).
	MinLeaderProb float64
}

// DefaultParams returns the scaled defaults used by the experiments.
func DefaultParams(seed uint64) Params {
	return Params{
		Mode:          ModeArbitrary,
		Seed:          seed,
		BExp:          0.25,
		TableFactor:   4,
		BlockSlack:    2,
		PrepDensity:   8,
		MinLeaderProb: 0.05,
	}
}

// PhaseTrace records one phase for the experiment tables.
type PhaseTrace struct {
	Ongoing      int // ongoing vertices at phase start (exact, host-counted for reporting)
	Estimate     int // ñ used for parameters (equals Ongoing in ModeCombining)
	B            float64
	ExpandRounds int   // distance-doubling iterations in EXPAND
	Live         int   // live vertices after EXPAND
	TableSpace   int64 // words allocated to tables this phase
}

// Result is the outcome of the algorithm.
type Result struct {
	Labels []int32
	Phases int
	Prep   int // Vanilla phases run by PREPARE
	Trace  []PhaseTrace
	Failed bool // MaxPhases exhausted with non-loop edges left
	// CtxErr is ctx.Err() when Params.Ctx was cancelled mid-run; Labels
	// is nil in that case.
	CtxErr error
	Stats  pram.Stats
}

// Run executes Connected Components algorithm on g.
func Run(m *pram.Machine, g *graph.Graph, p Params) Result {
	if p.BExp == 0 {
		p = fillDefaults(p)
	}
	ctx := p.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.N
	mEdges := maxInt(g.NumEdges(), 1)
	if err := ctx.Err(); err != nil {
		return Result{CtxErr: err}
	}

	st := vanilla.NewState(g.N, g.Span(), p.Seed)

	// PREPARE (§B.2): densify sparse instances with Vanilla phases.
	prep := 0
	if float64(mEdges)/float64(maxInt(n, 1)) <= p.PrepDensity {
		phases := p.PrepPhases
		if phases <= 0 {
			phases = 2*ceilLog2(ceilLog2(n)+1) + 2
		}
		for i := 0; i < phases; i++ {
			if err := ctx.Err(); err != nil {
				return Result{CtxErr: err, Prep: prep, Stats: m.Stats()}
			}
			prep++
			if !st.RunPhase(m) {
				break
			}
		}
	}

	// ñ initialisation (§B.5): n in the dense case; the PREPARE shrink
	// estimate otherwise (Corollary B.4's (7/8)^k expectation bound).
	estimate := float64(n)
	if prep > 0 {
		estimate = float64(n) * math.Pow(7.0/8.0, float64(prep))
		if estimate < 1 {
			estimate = 1
		}
	}

	res := Result{Prep: prep}
	ongoing := make([]int32, n)
	ongoingB := make([]bool, n)
	incident := make([]int32, n)

	maxPhases := p.MaxPhases
	if maxPhases <= 0 {
		maxPhases = 8*ceilLog2(n) + 64
	}

	coin := pram.Coin{Seed: p.Seed ^ 0xcbf29ce484222325}
	leader := make([]int32, n)

	for phase := 0; ; phase++ {
		if err := ctx.Err(); err != nil {
			res.CtxErr = err
			res.Stats = m.Stats()
			return res
		}
		// Identify ongoing vertices: roots with an incident non-loop
		// edge (Lemma B.2; trees are flat at phase start).
		st.Arcs.MarkIncident(m, incident)
		m.Step(n, func(v int) {
			if st.D.Parent[v] == int32(v) && incident[v] == 1 {
				ongoing[v] = 1
				ongoingB[v] = true
			} else {
				ongoing[v] = 0
				ongoingB[v] = false
			}
		})
		// Exact count: one combining write in ModeCombining; in
		// ModeArbitrary it is host-side reporting only.
		nOngoing := 0
		for v := 0; v < n; v++ {
			if ongoing[v] == 1 {
				nOngoing++
			}
		}
		if p.Mode == ModeCombining {
			m.ChargeSteps(1) // the sum-combining concurrent write
			estimate = float64(nOngoing)
		}
		if nOngoing == 0 {
			break
		}
		if phase >= maxPhases {
			res.Failed = true
			break
		}

		// Per-phase parameters from δ = m/ñ (§B.3.1, scaled).
		if estimate < 1 {
			estimate = 1
		}
		delta := math.Max(2, float64(mEdges)/estimate)
		b := math.Max(2, math.Pow(delta, p.BExp))
		tableSize := int(p.TableFactor * b * b)
		if tableSize < 8 {
			tableSize = 8
		}
		blockSlack := p.BlockSlack * b

		spaceBefore := m.Stats().Space
		exp := expand.Run(m, st.Arcs, ongoingB, expand.Params{
			BlockSlack: blockSlack,
			TableSize:  tableSize,
			MaxRounds:  p.MaxExpandRounds,
			Round:      uint64(phase) + 1,
			Seed:       p.Seed,
		})

		// VOTE (§B.4).
		q := math.Pow(b, -2.0/3.0)
		if q < p.MinLeaderProb {
			q = p.MinLeaderProb
		}
		m.Step(n, func(u int) {
			if ongoing[u] == 0 {
				leader[u] = 0
				return
			}
			if exp.Live[u] {
				// Leader iff minimal in its table (which holds its
				// whole component — Lemma B.7 discussion).
				l := int32(1)
				for _, v := range exp.H[u].Occupied() {
					if v < int32(u) {
						l = 0
						break
					}
				}
				leader[u] = l
			} else {
				if coin.Bernoulli(uint64(phase)+1, uint64(u), q) {
					leader[u] = 1
				} else {
					leader[u] = 0
				}
			}
		})

		// LINK: ongoing non-leader v links to any leader in its
		// neighbour set (table entries plus direct arc neighbours).
		par := st.D.Parent
		m.Step(n, func(v int) {
			if ongoing[v] == 0 || leader[v] == 1 {
				return
			}
			if t := exp.H[v]; t != nil {
				for _, w := range t.Occupied() {
					if w != int32(v) && leader[w] == 1 && ongoing[w] == 1 {
						pram.Store32(&par[v], w)
						return
					}
				}
			}
		})
		au, av := st.Arcs.U, st.Arcs.V
		m.Step(st.Arcs.Len(), func(i int) {
			v, w := au[i], av[i]
			if v == w || ongoing[v] == 0 || ongoing[w] == 0 {
				return
			}
			if leader[v] == 0 && leader[w] == 1 && pram.Load32(&par[v]) == v {
				pram.Store32(&par[v], w)
			}
		})

		// SHORTCUT; ALTER.
		st.D.Shortcut(m)
		st.Arcs.Alter(m, st.D)

		liveCount := 0
		for v := 0; v < n; v++ {
			if ongoingB[v] && exp.Live[v] {
				liveCount++
			}
		}
		res.Trace = append(res.Trace, PhaseTrace{
			Ongoing:      nOngoing,
			Estimate:     int(estimate),
			B:            b,
			ExpandRounds: exp.Rounds,
			Live:         liveCount,
			TableSpace:   m.Stats().Space - spaceBefore,
		})
		res.Phases++

		// Release table space (the paper reuses the processor pool).
		m.Free(int(m.Stats().Space - spaceBefore))

		// ñ update rule (§B.5).
		if p.Mode == ModeArbitrary {
			estimate = estimate / math.Pow(b, 0.25)
			if estimate < 1 {
				estimate = 1
			}
		}
	}

	st.D.Flatten(m)
	res.Labels = st.D.Parent
	res.Stats = m.Stats()
	return res
}

func fillDefaults(p Params) Params {
	d := DefaultParams(p.Seed)
	d.Mode = p.Mode
	d.Ctx = p.Ctx
	if p.MaxPhases > 0 {
		d.MaxPhases = p.MaxPhases
	}
	if p.MaxExpandRounds > 0 {
		d.MaxExpandRounds = p.MaxExpandRounds
	}
	if p.PrepPhases > 0 {
		d.PrepPhases = p.PrepPhases
	}
	return d
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func ceilLog2(n int) int {
	l := 0
	for x := 1; x < n; x <<= 1 {
		l++
	}
	return l
}
