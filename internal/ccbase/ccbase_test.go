package ccbase

import (
	"fmt"
	"testing"

	"repro/graph"
	"repro/internal/check"
	"repro/internal/pram"
)

func TestCorrectnessAcrossWorkloadsAndModes(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":     graph.Path(500),
		"cycle":    graph.Cycle(300),
		"star":     graph.Star(256),
		"grid":     graph.Grid2D(20, 25),
		"gnm-x2":   graph.Gnm(3000, 6000, 1),
		"gnm-x16":  graph.Gnm(3000, 48000, 2),
		"beads":    graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 20, Size: 12, IntraDeg: 10, Bridges: 2, Seed: 3}),
		"multi":    graph.DisjointUnion(graph.Path(100), graph.Clique(30), graph.Star(40)),
		"isolated": graph.WithIsolated(graph.Gnm(500, 2000, 4), 50),
	}
	for name, g := range cases {
		for _, mode := range []Mode{ModeArbitrary, ModeCombining} {
			for seed := uint64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/mode%d/seed%d", name, mode, seed), func(t *testing.T) {
					p := DefaultParams(seed)
					p.Mode = mode
					res := Run(pram.New(1), g, p)
					if res.Failed {
						t.Fatalf("phase cap exhausted after %d phases", res.Phases)
					}
					if err := check.Components(g, res.Labels); err != nil {
						t.Fatalf("phases=%d: %v", res.Phases, err)
					}
				})
			}
		}
	}
}

func TestPhasesDecreaseWithDensity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed density sweep (~11s) skipped in -short; CI's scheduled full run covers it")
	}
	// The log log_{m/n} n term: aggregate over seeds, denser graphs
	// should not need more phases than much sparser ones.
	n := 20000
	total := func(mult int) int {
		sum := 0
		for seed := uint64(1); seed <= 3; seed++ {
			g := graph.Gnm(n, n*mult, int64(seed))
			res := Run(pram.New(0), g, DefaultParams(seed))
			sum += res.Phases
		}
		return sum
	}
	sparse, dense := total(2), total(64)
	if dense > sparse+6 {
		t.Fatalf("denser graphs took more phases: x2→%d, x64→%d", sparse, dense)
	}
}

func TestOngoingShrinksMonotonically(t *testing.T) {
	g := graph.Gnm(10000, 80000, 7)
	res := Run(pram.New(1), g, DefaultParams(5))
	prev := 1 << 30
	for i, tr := range res.Trace {
		if tr.Ongoing > prev {
			t.Fatalf("phase %d: ongoing grew %d → %d", i, prev, tr.Ongoing)
		}
		prev = tr.Ongoing
	}
}

func TestExpandRoundsBoundedByLogDiameter(t *testing.T) {
	// Each phase's EXPAND is O(log d) rounds (Lemma B.8). Diameter
	// never grows, so every phase's inner rounds obey the bound of the
	// ORIGINAL diameter (plus slack for the dormancy-propagation tail,
	// which still respects O(log d) asymptotically).
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 64, Size: 12, IntraDeg: 10, Bridges: 2, Seed: 1})
	d := 2 * 64
	res := Run(pram.New(1), g, DefaultParams(2))
	bound := 3*log2(d) + 8
	for i, tr := range res.Trace {
		if tr.ExpandRounds > bound {
			t.Fatalf("phase %d: EXPAND took %d rounds, bound %d (d=%d)", i, tr.ExpandRounds, bound, d)
		}
	}
}

func log2(n int) int {
	l := 0
	for x := 1; x < n; x <<= 1 {
		l++
	}
	return l
}

func TestCombiningUsesExactCount(t *testing.T) {
	g := graph.Gnm(5000, 20000, 3)
	p := DefaultParams(4)
	p.Mode = ModeCombining
	res := Run(pram.New(1), g, p)
	for i, tr := range res.Trace {
		if tr.Estimate != tr.Ongoing {
			t.Fatalf("phase %d: combining mode must use exact count (%d vs %d)",
				i, tr.Estimate, tr.Ongoing)
		}
	}
}

func TestPrepareOnlyOnSparse(t *testing.T) {
	sparse := graph.Gnm(2000, 4000, 1)
	dense := graph.Gnm(2000, 40000, 1)
	rs := Run(pram.New(1), sparse, DefaultParams(1))
	rd := Run(pram.New(1), dense, DefaultParams(1))
	if rs.Prep == 0 {
		t.Error("PREPARE must run on m/n = 2")
	}
	if rd.Prep != 0 {
		t.Error("PREPARE must be skipped on m/n = 20")
	}
}

func TestParallelWorkers(t *testing.T) {
	g := graph.Gnm(20000, 80000, 6)
	for _, w := range []int{2, 8} {
		res := Run(pram.New(w), g, DefaultParams(2))
		if err := check.Components(g, res.Labels); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	cases := map[string]*graph.Graph{
		"empty":     graph.New(4),
		"oneVertex": graph.New(1),
		"oneEdge":   graph.FromEdges(2, [][2]int{{0, 1}}),
		"loops": func() *graph.Graph {
			g := graph.New(2)
			g.AddEdge(0, 0)
			g.AddEdge(1, 1)
			return g
		}(),
		"parallel": graph.FromEdges(2, [][2]int{{0, 1}, {0, 1}, {1, 0}}),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			res := Run(pram.New(1), g, DefaultParams(1))
			if err := check.Components(g, res.Labels); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestManySeedsNoFailures(t *testing.T) {
	g := graph.Gnm(2000, 10000, 5)
	failures := 0
	for seed := uint64(1); seed <= 20; seed++ {
		res := Run(pram.New(1), g, DefaultParams(seed))
		if res.Failed {
			failures++
		}
		if err := check.Components(g, res.Labels); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if failures > 1 {
		t.Fatalf("%d/20 seeds hit the phase cap", failures)
	}
}
