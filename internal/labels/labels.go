// Package labels implements the labeled-digraph framework of §2.1–2.2:
// every vertex v carries a parent pointer v.p defining a digraph whose
// only cycles are self-loops, so it is a forest of rooted trees. The
// building blocks are direct links, parent links, SHORTCUT, and ALTER.
// The package also provides the structural checks (acyclicity,
// flatness, partition extraction) the correctness lemmas rely on.
package labels

import (
	"fmt"

	"repro/internal/pram"
)

// Digraph is the labeled digraph: Parent[v] is v.p. A vertex v is a
// root iff Parent[v] == v.
type Digraph struct {
	Parent []int32
}

// NewSelfLabeled returns the initial labeling v.p = v (§2.1).
func NewSelfLabeled(n int) *Digraph {
	d := &Digraph{Parent: make([]int32, n)}
	for i := range d.Parent {
		d.Parent[i] = int32(i)
	}
	return d
}

// N returns the number of vertices.
func (d *Digraph) N() int { return len(d.Parent) }

// IsRoot reports whether v is a root.
func (d *Digraph) IsRoot(v int32) bool { return d.Parent[v] == v }

// Root follows parent pointers to the root of v's tree (host-side walk
// used by verification, not charged as PRAM time).
func (d *Digraph) Root(v int32) int32 {
	for d.Parent[v] != v {
		v = d.Parent[v]
	}
	return v
}

// Shortcut performs one parallel SHORTCUT: for each v, v.p := v.p.p.
// It reads the old parents atomically and writes the new ones in the
// same step, which is safe because v.p.p in the old digraph is well
// defined and per-vertex writes are distinct. Returns the number of
// parents that changed.
func (d *Digraph) Shortcut(m *pram.Machine) int {
	n := len(d.Parent)
	old := make([]int32, n)
	copy(old, d.Parent) // the PRAM's read phase: snapshot all parents
	var changed int64
	m.Step(n, func(v int) {
		gp := old[old[v]]
		if gp != old[v] {
			pram.Store64(&changed, 1) // arbitrary write: "some parent changed"
		}
		if gp != d.Parent[v] {
			pram.Store32(&d.Parent[v], gp)
		}
	})
	return int(pram.Load64(&changed))
}

// ShortcutInPlace performs SHORTCUT without the snapshot: v.p := v.p.p
// with racy reads. On an ARBITRARY CRCW PRAM reads of a round happen
// before writes; the racy version can only jump further up the tree,
// which every algorithm in the paper tolerates. Returns 1 if any parent
// changed (flag semantics, not an exact count).
func (d *Digraph) ShortcutInPlace(m *pram.Machine) int {
	n := len(d.Parent)
	var changed int64
	m.Step(n, func(v int) {
		p := pram.Load32(&d.Parent[v])
		gp := pram.Load32(&d.Parent[p])
		if gp != p {
			pram.Store32(&d.Parent[v], gp)
			pram.Store64(&changed, 1)
		}
	})
	return int(pram.Load64(&changed))
}

// Flatten repeatedly shortcuts until every tree is flat, charging one
// step per iteration. Returns the number of iterations.
func (d *Digraph) Flatten(m *pram.Machine) int {
	iters := 0
	for {
		iters++
		if d.Shortcut(m) == 0 {
			return iters
		}
	}
}

// IsFlat reports whether every tree is flat (each parent is a root).
func (d *Digraph) IsFlat() bool {
	for _, p := range d.Parent {
		if d.Parent[p] != p {
			return false
		}
	}
	return true
}

// CheckAcyclic verifies that the only cycles are self-loops. Returns an
// error naming a vertex on a nontrivial cycle if one exists.
func (d *Digraph) CheckAcyclic() error {
	n := len(d.Parent)
	state := make([]int8, n) // 0 unvisited, 1 on stack, 2 done
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		v := int32(s)
		var path []int32
		for state[v] == 0 {
			state[v] = 1
			path = append(path, v)
			p := d.Parent[v]
			if p == v {
				break
			}
			if state[p] == 1 {
				return fmt.Errorf("labels: nontrivial cycle through vertex %d", p)
			}
			v = p
		}
		for _, u := range path {
			state[u] = 2
		}
	}
	return nil
}

// RootsOf returns, for each vertex, the root of its tree (host walk
// with memoization; used by verification and postprocessing glue).
func (d *Digraph) RootsOf() []int32 {
	n := len(d.Parent)
	root := make([]int32, n)
	for i := range root {
		root[i] = -1
	}
	var stack []int32
	for s := 0; s < n; s++ {
		v := int32(s)
		stack = stack[:0]
		for root[v] < 0 && d.Parent[v] != v {
			stack = append(stack, v)
			v = d.Parent[v]
		}
		r := root[v]
		if r < 0 {
			r = v
		}
		root[s] = r
		for _, u := range stack {
			root[u] = r
		}
	}
	return root
}

// TreeHeights returns the height of each root's tree (0 for flat roots
// with no children) indexed by root id, and the maximum height.
func (d *Digraph) TreeHeights() (byRoot map[int32]int, max int) {
	byRoot = make(map[int32]int)
	n := len(d.Parent)
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	var walk func(v int32) int32
	walk = func(v int32) int32 {
		if depth[v] >= 0 {
			return depth[v]
		}
		if d.Parent[v] == v {
			depth[v] = 0
			return 0
		}
		depth[v] = walk(d.Parent[v]) + 1
		return depth[v]
	}
	for v := 0; v < n; v++ {
		dv := int(walk(int32(v)))
		r := d.Root(int32(v))
		if dv > byRoot[r] {
			byRoot[r] = dv
		}
		if dv > max {
			max = dv
		}
	}
	return byRoot, max
}
