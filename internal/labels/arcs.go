package labels

import (
	"repro/graph"
	"repro/internal/pram"
)

// ArcStore holds the current (altered) graph arcs together with the
// identity of the original input arc each one descends from. ALTER
// (§2.2) replaces arc (v,w) by (v.p, w.p); the original arc index is
// what the spanning-forest algorithms mark (eˆ.f = 1 in §C).
type ArcStore struct {
	U, V []int32 // current endpoints, altered over rounds
	Orig []int32 // index into the input graph's arc list, or -1 for added arcs
}

// NewArcStore copies the arc columns of span; Orig[i] = i. Taking the
// columnar view (rather than a *graph.Graph) keeps the simulator
// layers on the same uniform data path as the native and incremental
// engines: any SoA arc source — a Graph's Span(), a loader span, a
// replay batch — seeds the store without boxing into pairs first.
func NewArcStore(span graph.EdgeSpan) *ArcStore {
	a := &ArcStore{
		U:    make([]int32, len(span.U)),
		V:    make([]int32, len(span.V)),
		Orig: make([]int32, len(span.U)),
	}
	copy(a.U, span.U)
	copy(a.V, span.V)
	for i := range a.Orig {
		a.Orig[i] = int32(i)
	}
	return a
}

// Len returns the number of arcs.
func (a *ArcStore) Len() int { return len(a.U) }

// Append adds an arc (u,v) descended from original arc orig (-1 for
// edges added by EXPAND). Not safe for concurrent use; callers append
// from the host between PRAM steps.
func (a *ArcStore) Append(u, v, orig int32) {
	a.U = append(a.U, u)
	a.V = append(a.V, v)
	a.Orig = append(a.Orig, orig)
}

// Alter replaces every arc (v,w) by (v.p, w.p) in one PRAM step, one
// processor per arc ("each edge corresponds to a distinct processor").
func (a *ArcStore) Alter(m *pram.Machine, d *Digraph) {
	u, v, par := a.U, a.V, d.Parent
	m.Step(len(u), func(i int) {
		u[i] = par[u[i]]
		v[i] = par[v[i]]
	})
}

// HasNonLoop reports (in one PRAM step) whether any arc is a non-loop;
// the break condition of the Vanilla and Theorem-1 loops ("until no
// edge exists other than loops").
func (a *ArcStore) HasNonLoop(m *pram.Machine) bool {
	var flag int64
	u, v := a.U, a.V
	m.Step(len(u), func(i int) {
		if u[i] != v[i] {
			pram.Store64(&flag, 1)
		}
	})
	return pram.Load64(&flag) == 1
}

// MarkIncident sets inc[x]=1 for every endpoint of a non-loop arc, in
// one PRAM step. Lemma B.2 uses this to identify ongoing vertices.
func (a *ArcStore) MarkIncident(m *pram.Machine, inc []int32) {
	pram.Fill32(inc, 0)
	u, v := a.U, a.V
	m.Step(len(u), func(i int) {
		if u[i] != v[i] {
			pram.Store32(&inc[u[i]], 1)
			pram.Store32(&inc[v[i]], 1)
		}
	})
}
