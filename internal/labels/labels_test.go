package labels

import (
	"testing"
	"testing/quick"

	"repro/graph"
	"repro/internal/pram"
)

func chain(n int) *Digraph {
	d := NewSelfLabeled(n)
	for i := 1; i < n; i++ {
		d.Parent[i] = int32(i - 1)
	}
	return d
}

func TestSelfLabeled(t *testing.T) {
	d := NewSelfLabeled(10)
	for v := int32(0); v < 10; v++ {
		if !d.IsRoot(v) || d.Root(v) != v {
			t.Fatalf("vertex %d not self-labeled", v)
		}
	}
	if d.N() != 10 {
		t.Fatalf("N = %d", d.N())
	}
}

func TestShortcutHalvesDepth(t *testing.T) {
	m := pram.New(1)
	d := chain(17) // height 16
	iters := 0
	for !d.IsFlat() {
		d.Shortcut(m)
		iters++
		if iters > 10 {
			t.Fatal("shortcut did not converge")
		}
	}
	// ceil(log2(16)) = 4 shortcuts flatten a height-16 chain.
	if iters > 5 {
		t.Fatalf("flattening a height-16 chain took %d shortcuts", iters)
	}
	for v := 0; v < 17; v++ {
		if d.Parent[v] != 0 {
			t.Fatalf("vertex %d not pointing at root", v)
		}
	}
}

func TestShortcutReturnsChangeFlag(t *testing.T) {
	m := pram.New(1)
	d := chain(5)
	if d.Shortcut(m) == 0 {
		t.Fatal("shortcut on a chain must report changes")
	}
	d.Flatten(m)
	if d.Shortcut(m) != 0 {
		t.Fatal("shortcut on a flat digraph must report no change")
	}
}

func TestFlattenIterationsLogarithmic(t *testing.T) {
	m := pram.New(1)
	d := chain(1 << 12)
	iters := d.Flatten(m)
	if iters > 14 {
		t.Fatalf("flatten of 4096-chain took %d iterations, want ≈12", iters)
	}
	if !d.IsFlat() {
		t.Fatal("not flat after Flatten")
	}
}

func TestCheckAcyclic(t *testing.T) {
	d := chain(6)
	if err := d.CheckAcyclic(); err != nil {
		t.Fatalf("chain reported cyclic: %v", err)
	}
	d.Parent[0] = 5 // close the cycle
	if err := d.CheckAcyclic(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestCheckAcyclicProperty(t *testing.T) {
	// Random parent assignments where parent[v] < v are always acyclic.
	f := func(raw []uint8) bool {
		n := len(raw) + 1
		d := NewSelfLabeled(n)
		for i := 1; i < n; i++ {
			d.Parent[i] = int32(int(raw[i-1]) % i)
		}
		return d.CheckAcyclic() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRootsOf(t *testing.T) {
	d := NewSelfLabeled(6)
	d.Parent[1] = 0
	d.Parent[2] = 1
	d.Parent[4] = 3
	roots := d.RootsOf()
	want := []int32{0, 0, 0, 3, 3, 5}
	for i, r := range roots {
		if r != want[i] {
			t.Fatalf("RootsOf[%d] = %d, want %d", i, r, want[i])
		}
	}
}

func TestTreeHeights(t *testing.T) {
	d := chain(5)
	byRoot, max := d.TreeHeights()
	if max != 4 || byRoot[0] != 4 {
		t.Fatalf("heights wrong: %v max=%d", byRoot, max)
	}
}

func TestArcStoreAlter(t *testing.T) {
	g := graph.Path(4) // arcs (0,1),(1,0),(1,2),(2,1),(2,3),(3,2)
	a := NewArcStore(g.Span())
	d := NewSelfLabeled(4)
	d.Parent[1] = 0
	d.Parent[3] = 2
	m := pram.New(1)
	a.Alter(m, d)
	// Arc (1,2) must become (0,2).
	found := false
	for i := 0; i < a.Len(); i++ {
		if a.U[i] == 0 && a.V[i] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("alter did not map arc endpoints to parents")
	}
	// Orig indices unchanged.
	for i, o := range a.Orig {
		if int(o) != i {
			t.Fatal("orig index corrupted by alter")
		}
	}
}

func TestArcStoreHasNonLoop(t *testing.T) {
	g := graph.Path(3)
	a := NewArcStore(g.Span())
	m := pram.New(1)
	if !a.HasNonLoop(m) {
		t.Fatal("path arcs are non-loops")
	}
	d := NewSelfLabeled(3)
	d.Parent[1] = 0
	d.Parent[2] = 0
	a.Alter(m, d)
	if a.HasNonLoop(m) {
		t.Fatal("all arcs should be loops after contracting to one root")
	}
}

func TestMarkIncident(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 2) // self-loop must not mark
	a := NewArcStore(g.Span())
	m := pram.New(1)
	inc := make([]int32, 4)
	a.MarkIncident(m, inc)
	want := []int32{1, 1, 0, 0}
	for i := range want {
		if inc[i] != want[i] {
			t.Fatalf("incident[%d] = %d, want %d", i, inc[i], want[i])
		}
	}
}

func TestAlterPreservesPartitionProperty(t *testing.T) {
	// Alter maps arcs within the union of the graph partition induced
	// by trees: endpoints stay in the same component of (graph ∪ trees).
	f := func(seed int64) bool {
		g := graph.Gnm(50, 100, seed)
		a := NewArcStore(g.Span())
		d := NewSelfLabeled(50)
		// Random valid links: parent to smaller id keeps acyclicity.
		coin := pram.Coin{Seed: uint64(seed)}
		for v := 1; v < 50; v++ {
			if coin.Bernoulli(0, uint64(v), 0.5) {
				d.Parent[v] = int32(coin.Intn(1, uint64(v), v))
			}
		}
		m := pram.New(1)
		a.Alter(m, d)
		for i := 0; i < a.Len(); i++ {
			if a.U[i] != d.Parent[g.U[i]] || a.V[i] != d.Parent[g.V[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
