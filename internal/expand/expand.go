// Package expand implements the EXPAND procedure of §B.3: every
// ongoing vertex tries to collect, by repeated distance doubling
// through size-limited hash tables, all vertices within distance 2^i of
// itself. Vertices that lose the block lottery are fully dormant;
// vertices whose tables collide (or that see a dormant vertex in their
// table) become half dormant and keep their table as is. Lemma B.7:
// while live, H_j(u) = B(u, 2^j); the loop runs O(log d) rounds.
//
// The same machinery, with per-round table snapshots kept, drives the
// spanning-forest TREE-LINK (§C.3), so snapshots are optional here.
package expand

import (
	"repro/internal/hashing"
	"repro/internal/labels"
	"repro/internal/pram"
)

// Params control one EXPAND invocation. The paper sets BlockCount =
// m/δ^{2/3} blocks of δ^{2/3} processors and tables of size δ^{1/3}
// with δ = m/n′; we expose the two knobs that matter for behaviour.
type Params struct {
	BlockSlack float64 // blocks = ceil(BlockSlack · #ongoing); paper ≈ m/δ^{2/3} ≥ n′·δ^{1/3}… (≥1 required)
	TableSize  int     // cells per table (δ^{1/3} in the paper)
	MaxRounds  int     // cap on step-(5) iterations (≥ log2(d)+2 needed)
	Snapshot   bool    // keep H_j per round for TREE-LINK
	Round      uint64  // phase number, salts the hash functions
	Seed       uint64
}

// Outcome is the result of EXPAND.
type Outcome struct {
	H         []*hashing.Table   // H(u), nil if u not ongoing or no block
	Snapshots [][]*hashing.Table // Snapshots[j][u] = H_j(u) if Params.Snapshot
	Live      []bool             // live after EXPAND (table holds whole component)
	FullyDorm []bool             // dormant before round 0 (no block)
	Dormant   []bool             // any dormant (fully or half)
	DormRound []int32            // first round u became dormant (-1 if live, 0 = steps 2–4)
	Rounds    int                // iterations of step (5) executed
	NewEntry  bool               // safety: true if loop was stopped by MaxRounds
}

// Run executes EXPAND over the ongoing vertices. ongoing[v] marks
// participants; arcs supplies the current (altered) graph arcs.
func Run(m *pram.Machine, arcs *labels.ArcStore, ongoing []bool, p Params) *Outcome {
	n := len(ongoing)
	nOngoing := 0
	for _, o := range ongoing {
		if o {
			nOngoing++
		}
	}
	out := &Outcome{
		H:         make([]*hashing.Table, n),
		Live:      make([]bool, n),
		FullyDorm: make([]bool, n),
		Dormant:   make([]bool, n),
		DormRound: make([]int32, n),
	}
	for i := range out.DormRound {
		out.DormRound[i] = -1
	}
	if nOngoing == 0 {
		return out
	}

	fam := hashing.Family{Seed: p.Seed ^ (p.Round * 0x9e3779b97f4a7c15)}
	hB := fam.At(0) // block mapping
	hV := fam.At(1) // table hashing

	blocks := int(p.BlockSlack * float64(nOngoing))
	if blocks < 1 {
		blocks = 1
	}
	tableSize := p.TableSize
	if tableSize < 2 {
		tableSize = 2
	}

	// Step (1): mark every ongoing vertex live.
	m.Step(n, func(v int) {
		out.Live[v] = ongoing[v]
	})

	// Step (2): map vertices to blocks with hB; a vertex owns a block
	// only if it is the sole ongoing vertex mapped there. O(1)-time
	// uniqueness test on ARBITRARY CRCW: write id; losers flag the cell.
	claim := make([]int32, blocks)
	conflict := make([]int32, blocks)
	pram.Fill32(claim, -1)
	m.Step(n, func(v int) {
		if ongoing[v] {
			pram.Store32(&claim[hB.Slot(uint64(v), blocks)], int32(v))
		}
	})
	m.Step(n, func(v int) {
		if ongoing[v] && pram.Load32(&claim[hB.Slot(uint64(v), blocks)]) != int32(v) {
			pram.Store32(&conflict[hB.Slot(uint64(v), blocks)], 1)
		}
	})
	m.Step(n, func(v int) {
		if !ongoing[v] {
			return
		}
		s := hB.Slot(uint64(v), blocks)
		if pram.Load32(&claim[s]) == int32(v) && pram.Load32(&conflict[s]) == 0 {
			out.H[v] = hashing.NewTable(hV, tableSize)
			m.Alloc(tableSize)
		} else {
			out.Live[v] = false
			out.FullyDorm[v] = true
			out.Dormant[v] = true
			out.DormRound[v] = 0
		}
	})

	// Step (3): for each arc (v,w): if v live, hash v and w into H(v);
	// else mark w dormant (half dormant, round 0).
	au, av := arcs.U, arcs.V
	dormantNow := make([]int32, n) // marks applied after the step
	m.Step(arcs.Len(), func(i int) {
		v, w := au[i], av[i]
		if !ongoing[v] || !ongoing[w] {
			return
		}
		if out.H[v] != nil && !out.FullyDorm[v] {
			out.H[v].TryInsert(v)
			out.H[v].TryInsert(w)
		} else {
			pram.Store32(&dormantNow[w], 1)
		}
	})

	// Step (4): collision detection by re-reading (the §3.3 trick).
	m.Step(arcs.Len(), func(i int) {
		v, w := au[i], av[i]
		if !ongoing[v] || !ongoing[w] || out.H[v] == nil {
			return
		}
		if out.H[v].Collides(v) || out.H[v].Collides(w) {
			pram.Store32(&dormantNow[v], 1)
		}
	})
	m.Step(n, func(v int) {
		if ongoing[v] && dormantNow[v] == 1 && !out.Dormant[v] {
			out.Dormant[v] = true
			out.Live[v] = false
			out.DormRound[v] = 0
		}
	})

	if p.Snapshot {
		out.Snapshots = append(out.Snapshots, snapshotTables(out.H, ongoing))
	}

	// Step (5): distance doubling until tables stabilize.
	maxRounds := p.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	chargedProcs := nOngoing * tableSize * tableSize // one processor per (p,q) cell pair per block
	occAt := make([]int32, n)                        // O(1) per-table snapshots: occupancy prefix lengths
	for r := 1; r <= maxRounds; r++ {
		var newEntry, newDormant int64
		pram.Fill32(dormantNow, 0)
		for v := 0; v < n; v++ {
			if t := out.H[v]; t != nil {
				occAt[v] = t.OccCount()
			}
		}
		oldDormant := make([]bool, n)
		copy(oldDormant, out.Dormant)

		// (5a): one processor per (p,q) table-cell pair in the model;
		// the host iterates per vertex. TryInsert is append-only, so
		// the occupancy prefix recorded above is the round-start
		// snapshot of every table (the PRAM's read-before-write).
		m.StepN(chargedProcs, n, func(u int) {
			if !ongoing[u] || out.H[u] == nil {
				return
			}
			for _, v := range out.H[u].OccupiedPrefix(occAt[u]) {
				if oldDormant[v] {
					pram.Store32(&dormantNow[u], 1)
				}
				if ov := out.H[v]; ov != nil {
					for _, w := range ov.OccupiedPrefix(occAt[v]) {
						if out.H[u].TryInsert(w) {
							pram.Store64(&newEntry, 1)
						}
					}
				}
			}
		})

		// (5b): collision check — every source value must occupy its
		// slot in the (now grown) table; losers went to occupied cells.
		m.StepN(chargedProcs, n, func(u int) {
			if !ongoing[u] || out.H[u] == nil {
				return
			}
			coll := false
			for _, v := range out.H[u].OccupiedPrefix(occAt[u]) {
				if out.H[u].Collides(v) {
					coll = true
					break
				}
				if ov := out.H[v]; ov != nil {
					for _, w := range ov.OccupiedPrefix(occAt[v]) {
						if out.H[u].Collides(w) {
							coll = true
							break
						}
					}
				}
				if coll {
					break
				}
			}
			if coll {
				pram.Store32(&dormantNow[u], 1)
			}
		})

		m.Step(n, func(v int) {
			if ongoing[v] && dormantNow[v] == 1 && !out.Dormant[v] {
				out.Dormant[v] = true
				out.Live[v] = false
				out.DormRound[v] = int32(r)
				pram.Store64(&newDormant, 1)
			}
		})

		out.Rounds = r
		if p.Snapshot {
			out.Snapshots = append(out.Snapshots, snapshotTables(out.H, ongoing))
		}
		if pram.Load64(&newEntry) == 0 && pram.Load64(&newDormant) == 0 {
			return out
		}
	}
	out.NewEntry = true // stopped by the cap; callers treat as a failure event
	return out
}

func snapshotTables(h []*hashing.Table, ongoing []bool) []*hashing.Table {
	out := make([]*hashing.Table, len(h))
	for i, t := range h {
		if t != nil && ongoing[i] {
			out[i] = t.Clone()
		}
	}
	return out
}
