package expand

import (
	"testing"

	"repro/graph"
	"repro/internal/labels"
	"repro/internal/pram"
)

func runExpand(t *testing.T, g *graph.Graph, p Params) *Outcome {
	t.Helper()
	arcs := labels.NewArcStore(g.Span())
	ongoing := make([]bool, g.N)
	for v := range ongoing {
		ongoing[v] = true
	}
	return Run(pram.New(1), arcs, ongoing, p)
}

func bigParams(seed uint64) Params {
	return Params{BlockSlack: 8, TableSize: 512, MaxRounds: 32, Seed: seed}
}

// ballSizes computes |B(u, r)| via BFS for verification of Lemma B.7.
func ball(g *graph.Graph, u, r int) map[int32]bool {
	dist, _ := g.BFS(u)
	out := map[int32]bool{}
	for v, dv := range dist {
		if dv >= 0 && int(dv) <= r {
			out[int32(v)] = true
		}
	}
	return out
}

func TestExpandLiveTablesHoldBalls(t *testing.T) {
	// With huge tables and generous blocks, everything stays live and
	// each final table holds the whole component (Lemma B.7 at i = T).
	g := graph.Path(20)
	out := runExpand(t, g, bigParams(3))
	for v := 0; v < g.N; v++ {
		if !out.Live[v] {
			continue // block-lottery losses are possible but rare
		}
		comp := ball(g, v, g.N)
		got := out.H[v].Entries(nil)
		gotSet := map[int32]bool{}
		for _, w := range got {
			gotSet[w] = true
		}
		for w := range comp {
			if !gotSet[w] {
				t.Fatalf("live vertex %d missing component member %d", v, w)
			}
		}
		for w := range gotSet {
			if !comp[w] {
				t.Fatalf("live vertex %d has foreign vertex %d", v, w)
			}
		}
	}
}

func TestExpandRoundsLogDiameter(t *testing.T) {
	// Distance doubling: the loop should finish in ≈log2(d)+O(1)
	// rounds when nothing collides.
	for _, n := range []int{8, 32, 128} {
		g := graph.Path(n)
		out := runExpand(t, g, bigParams(7))
		allLive := true
		for v := 0; v < g.N; v++ {
			allLive = allLive && out.Live[v]
		}
		if !allLive {
			t.Skipf("n=%d: a vertex lost the block lottery; rerun", n)
		}
		maxRounds := log2(n) + 3
		if out.Rounds > maxRounds {
			t.Fatalf("n=%d: expand took %d rounds, want ≤ %d", n, out.Rounds, maxRounds)
		}
	}
}

func log2(n int) int {
	l := 0
	for x := 1; x < n; x <<= 1 {
		l++
	}
	return l
}

func TestExpandTinyTablesGoDormant(t *testing.T) {
	// A star with tiny tables must produce collisions at the hub, and
	// dormancy must propagate to vertices that saw the hub.
	g := graph.Star(64)
	out := runExpand(t, g, Params{BlockSlack: 8, TableSize: 4, MaxRounds: 16, Seed: 1})
	if !out.Dormant[0] {
		t.Fatal("hub of a 64-star cannot fit its neighbours in a 4-cell table")
	}
}

func TestExpandFullyDormant(t *testing.T) {
	// With BlockSlack ≪ 1 most vertices share blocks and become fully
	// dormant (no table).
	g := graph.Cycle(100)
	arcs := labels.NewArcStore(g.Span())
	ongoing := make([]bool, g.N)
	for v := range ongoing {
		ongoing[v] = true
	}
	out := Run(pram.New(1), arcs, ongoing, Params{BlockSlack: 0.02, TableSize: 8, MaxRounds: 8, Seed: 2})
	fully := 0
	for v := 0; v < g.N; v++ {
		if out.FullyDorm[v] {
			fully++
			if out.H[v] != nil {
				t.Fatal("fully dormant vertex must not own a table")
			}
			if out.DormRound[v] != 0 {
				t.Fatal("fully dormant vertices are dormant from round 0")
			}
		}
	}
	if fully < 50 {
		t.Fatalf("only %d fully dormant vertices with 2 blocks", fully)
	}
}

func TestExpandRespectsOngoingMask(t *testing.T) {
	g := graph.Path(10)
	arcs := labels.NewArcStore(g.Span())
	ongoing := make([]bool, g.N) // nobody participates
	out := Run(pram.New(1), arcs, ongoing, bigParams(4))
	for v := 0; v < g.N; v++ {
		if out.H[v] != nil || out.Live[v] {
			t.Fatal("non-ongoing vertex got state")
		}
	}
}

func TestExpandSnapshotsMonotone(t *testing.T) {
	// H_j(u) ⊆ H_{j+1}(u) under first-writer-wins insertion.
	g := graph.Path(32)
	arcs := labels.NewArcStore(g.Span())
	ongoing := make([]bool, g.N)
	for v := range ongoing {
		ongoing[v] = true
	}
	p := bigParams(5)
	p.Snapshot = true
	out := Run(pram.New(1), arcs, ongoing, p)
	if len(out.Snapshots) != out.Rounds+1 {
		t.Fatalf("snapshots = %d, rounds = %d", len(out.Snapshots), out.Rounds)
	}
	for j := 0; j+1 < len(out.Snapshots); j++ {
		for v := 0; v < g.N; v++ {
			prev, next := out.Snapshots[j][v], out.Snapshots[j+1][v]
			if prev == nil {
				continue
			}
			for _, w := range prev.Entries(nil) {
				if !next.Contains(w) {
					t.Fatalf("round %d: vertex %d lost entry %d", j+1, v, w)
				}
			}
		}
	}
}

func TestExpandBallInvariant(t *testing.T) {
	// Lemma B.7: while live at round j, H_j(u) = B(u, 2^j).
	g := graph.Path(17)
	arcs := labels.NewArcStore(g.Span())
	ongoing := make([]bool, g.N)
	for v := range ongoing {
		ongoing[v] = true
	}
	p := bigParams(11)
	p.Snapshot = true
	out := Run(pram.New(1), arcs, ongoing, p)
	for j := 0; j < len(out.Snapshots); j++ {
		for v := 0; v < g.N; v++ {
			if out.DormRound[v] >= 0 && int(out.DormRound[v]) <= j {
				continue // dormant by round j: only ⊆ holds
			}
			tbl := out.Snapshots[j][v]
			if tbl == nil {
				continue
			}
			want := ball(g, v, 1<<uint(j))
			got := map[int32]bool{}
			for _, w := range tbl.Entries(nil) {
				got[w] = true
			}
			for w := range want {
				if !got[w] {
					t.Fatalf("round %d vertex %d: B(u,2^j) member %d missing", j, v, w)
				}
			}
			for w := range got {
				if !want[w] {
					t.Fatalf("round %d vertex %d: foreign entry %d", j, v, w)
				}
			}
		}
	}
}

func TestExpandChargesCosts(t *testing.T) {
	g := graph.Path(16)
	arcs := labels.NewArcStore(g.Span())
	ongoing := make([]bool, g.N)
	for v := range ongoing {
		ongoing[v] = true
	}
	m := pram.New(1)
	Run(m, arcs, ongoing, bigParams(6))
	s := m.Stats()
	if s.Steps == 0 || s.Work == 0 || s.MaxSpace == 0 {
		t.Fatalf("costs not charged: %+v", s)
	}
}
