package vanilla

import (
	"repro/graph"
	"repro/internal/pram"
)

// SFState extends State with the spanning-forest bookkeeping of §C.1:
// per-vertex chosen arc v.e (an index into the current arc store, whose
// Orig field is v.eˆ), and the forest marks eˆ.f on original arcs.
type SFState struct {
	State
	ChosenArc []int32 // v.e: current arc index chosen by MARK-EDGE, -1 if none
	ForestArc []bool  // eˆ.f indexed by original arc index
}

// NewSFState initializes Vanilla-SF state for n vertices and the
// columnar arc span (see NewState).
func NewSFState(n int, span graph.EdgeSpan, seed uint64) *SFState {
	s := &SFState{
		State:     *NewState(n, span, seed),
		ChosenArc: make([]int32, n),
		ForestArc: make([]bool, len(span.U)),
	}
	return s
}

// RunPhase executes one Vanilla-SF phase: RANDOM-VOTE; MARK-EDGE;
// LINK; SHORTCUT; ALTER. Returns whether non-loop edges remain.
func (s *SFState) RunPhase(m *pram.Machine) bool {
	n := s.D.N()
	coin := s.Coin
	phase := uint64(s.Phase)
	s.Phase++
	leader := s.leader

	// RANDOM-VOTE.
	m.Step(n, func(u int) {
		if coin.Bernoulli(phase, uint64(u), 0.5) {
			leader[u] = 1
		} else {
			leader[u] = 0
		}
	})

	// MARK-EDGE: for each current arc e=(v,w): if v.l=0 and w.l=1 then
	// v.e := e (arbitrary winner).
	au, av := s.Arcs.U, s.Arcs.V
	chosen := s.ChosenArc
	pram.Fill32(chosen, -1)
	m.Step(s.Arcs.Len(), func(i int) {
		v, w := au[i], av[i]
		if v != w && leader[v] == 0 && leader[w] == 1 {
			pram.Store32(&chosen[v], int32(i))
		}
	})

	// LINK: if u.e=(u,w) exists: u.p := w; u.eˆ.f := 1.
	par := s.D.Parent
	orig := s.Arcs.Orig
	m.Step(n, func(u int) {
		e := chosen[u]
		if e < 0 {
			return
		}
		par[u] = av[e]
		if o := orig[e]; o >= 0 {
			s.ForestArc[o] = true
		}
	})

	s.D.Shortcut(m)
	s.Arcs.Alter(m, s.D)
	return s.Arcs.HasNonLoop(m)
}

// ForestEdges returns the marked original edges as indices into
// g.Edges() (arc-pair indices), deduplicated across directions.
func (s *SFState) ForestEdges() []int {
	var out []int
	for a, marked := range s.ForestArc {
		if marked && a%2 == 0 {
			out = append(out, a/2)
		}
	}
	for a, marked := range s.ForestArc {
		if marked && a%2 == 1 && !s.ForestArc[a-1] {
			out = append(out, a/2)
		}
	}
	return out
}

// SFResult is the outcome of a complete Vanilla-SF run.
type SFResult struct {
	Labels      []int32
	ForestEdges []int // indices into g.Edges()
	Phases      int
	Stats       pram.Stats
}

// RunSF executes Vanilla-SF until only loops remain.
func RunSF(m *pram.Machine, g *graph.Graph, seed uint64, maxPhases int) SFResult {
	s := NewSFState(g.N, g.Span(), seed)
	if maxPhases <= 0 {
		maxPhases = defaultPhaseCap(g.N)
	}
	for s.RunPhase(m) && s.Phase < maxPhases {
	}
	s.D.Flatten(m)
	return SFResult{
		Labels:      s.D.Parent,
		ForestEdges: s.ForestEdges(),
		Phases:      s.Phase,
		Stats:       m.Stats(),
	}
}
