package vanilla

import (
	"fmt"
	"testing"

	"repro/graph"
	"repro/internal/check"
	"repro/internal/pram"
)

func TestVanillaCorrectness(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":     graph.Path(200),
		"cycle":    graph.Cycle(128),
		"star":     graph.Star(100),
		"gnm":      graph.Gnm(1000, 3000, 3),
		"multi":    graph.DisjointUnion(graph.Path(40), graph.Clique(10), graph.Star(25)),
		"isolated": graph.WithIsolated(graph.Clique(5), 7),
		"loops": func() *graph.Graph {
			g := graph.Path(6)
			g.AddEdge(2, 2)
			return g
		}(),
	}
	for name, g := range cases {
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				res := Run(pram.New(1), g, seed, 0)
				if err := check.Components(g, res.Labels); err != nil {
					t.Fatalf("phases=%d: %v", res.Phases, err)
				}
			})
		}
	}
}

func TestVanillaPhasesLogarithmic(t *testing.T) {
	// Corollary B.4: O(log n) phases w.h.p. Allow a generous constant.
	for _, n := range []int{256, 1024, 4096} {
		g := graph.Path(n)
		res := Run(pram.New(1), g, 7, 0)
		bound := 6*log2(n) + 10
		if res.Phases > bound {
			t.Fatalf("n=%d: %d phases > bound %d", n, res.Phases, bound)
		}
	}
}

func log2(n int) int {
	l := 0
	for x := 1; x < n; x <<= 1 {
		l++
	}
	return l
}

func TestVanillaFlatAtPhaseStart(t *testing.T) {
	// Lemma B.2: trees are flat at the start of every phase.
	g := graph.Gnm(500, 1500, 9)
	s := NewState(g.N, g.Span(), 3)
	m := pram.New(1)
	for i := 0; i < 20; i++ {
		if !s.D.IsFlat() {
			t.Fatalf("digraph not flat before phase %d", i)
		}
		if err := s.D.CheckAcyclic(); err != nil {
			t.Fatalf("phase %d: %v", i, err)
		}
		if !s.RunPhase(m) {
			break
		}
	}
}

func TestVanillaMonotone(t *testing.T) {
	// Monotonicity (§2.1): the partition only coarsens; two vertices in
	// the same tree stay in the same tree.
	g := graph.Gnm(300, 900, 11)
	s := NewState(g.N, g.Span(), 5)
	m := pram.New(1)
	prev := s.D.RootsOf()
	for i := 0; i < 20; i++ {
		if !s.RunPhase(m) {
			break
		}
		cur := s.D.RootsOf()
		// Every previous group must be contained in a current group.
		rep := make(map[int32]int32)
		for v := 0; v < g.N; v++ {
			if r, ok := rep[prev[v]]; ok {
				if cur[v] != r {
					t.Fatalf("phase %d: tree split — vertices with old root %d now have roots %d and %d",
						i, prev[v], r, cur[v])
				}
			} else {
				rep[prev[v]] = cur[v]
			}
		}
		prev = cur
	}
}

func TestVanillaSFCorrectAndValid(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":  graph.Path(128),
		"gnm":   graph.Gnm(800, 2400, 3),
		"multi": graph.DisjointUnion(graph.Cycle(50), graph.Clique(12)),
		"grid":  graph.Grid2D(12, 12),
	}
	for name, g := range cases {
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				res := RunSF(pram.New(1), g, seed, 0)
				if err := check.Components(g, res.Labels); err != nil {
					t.Fatalf("labels: %v", err)
				}
				if err := check.Forest(g, res.ForestEdges); err != nil {
					t.Fatalf("forest: %v", err)
				}
			})
		}
	}
}

func TestVanillaSFForestGrowsMonotonically(t *testing.T) {
	g := graph.Gnm(400, 1200, 13)
	s := NewSFState(g.N, g.Span(), 2)
	m := pram.New(1)
	prevMarks := 0
	for i := 0; i < 30; i++ {
		cont := s.RunPhase(m)
		marks := 0
		for _, f := range s.ForestArc {
			if f {
				marks++
			}
		}
		if marks < prevMarks {
			t.Fatal("forest marks disappeared")
		}
		prevMarks = marks
		if !cont {
			break
		}
	}
}

func TestVanillaEmptyAndTinyGraphs(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		g := graph.New(n)
		res := Run(pram.New(1), g, 1, 0)
		if err := check.Components(g, res.Labels); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	g := graph.New(2)
	g.AddEdge(0, 1)
	res := Run(pram.New(1), g, 1, 0)
	if res.Labels[0] != res.Labels[1] {
		t.Fatal("single edge not contracted")
	}
}
