// Package vanilla implements Reif's randomized algorithm in the
// paper's framework (§B.1) and its spanning-forest extension
// Vanilla-SF (§C.1). Each phase is RANDOM-VOTE; LINK; SHORTCUT; ALTER
// and finishes each vertex with constant probability, so the algorithm
// runs in O(log n) phases w.h.p. (Lemma B.3, Corollary B.4). It doubles
// as the PREPARE / FOREST-PREPARE subroutine of the main algorithms.
package vanilla

import (
	"repro/graph"
	"repro/internal/labels"
	"repro/internal/pram"
)

// State is the mutable execution state, shared with callers that embed
// vanilla phases as preprocessing (PREPARE in §B.2, COMPACT in §D).
type State struct {
	D     *labels.Digraph
	Arcs  *labels.ArcStore
	Coin  pram.Coin
	Phase int // phases executed so far

	leader []int32 // u.l of the current phase
}

// NewState initializes the self-labeled digraph and arc store for n
// vertices and the columnar arc span — the same SoA view the native
// and incremental engines ingest, so simulator callers pass g.Span()
// (or any loader/replay span) without boxing.
func NewState(n int, span graph.EdgeSpan, seed uint64) *State {
	return &State{
		D:      labels.NewSelfLabeled(n),
		Arcs:   labels.NewArcStore(span),
		Coin:   pram.Coin{Seed: seed},
		leader: make([]int32, n),
	}
}

// RunPhase executes one phase of Vanilla algorithm and reports whether
// any non-loop edge remains (the repeat-loop condition).
func (s *State) RunPhase(m *pram.Machine) bool {
	n := s.D.N()
	coin := s.Coin
	phase := uint64(s.Phase)
	s.Phase++
	leader := s.leader

	// RANDOM-VOTE: u.l := 1 with probability 1/2.
	m.Step(n, func(u int) {
		if coin.Bernoulli(phase, uint64(u), 0.5) {
			leader[u] = 1
		} else {
			leader[u] = 0
		}
	})

	// LINK: for each graph arc (v,w): if v.l=0 and w.l=1, v.p := w.
	// Trees are flat at phase start (Lemma B.2), so v and w are roots;
	// concurrent writes to v.p resolve arbitrarily.
	au, av, par := s.Arcs.U, s.Arcs.V, s.D.Parent
	m.Step(s.Arcs.Len(), func(i int) {
		v, w := au[i], av[i]
		if v != w && leader[v] == 0 && leader[w] == 1 {
			pram.Store32(&par[v], w)
		}
	})

	// SHORTCUT; ALTER.
	s.D.Shortcut(m)
	s.Arcs.Alter(m, s.D)

	return s.Arcs.HasNonLoop(m)
}

// Result is the outcome of a complete run.
type Result struct {
	Labels []int32 // final component labels (root of each tree)
	Phases int
	Stats  pram.Stats
}

// Run executes Vanilla algorithm until only loops remain. maxPhases
// bounds the loop defensively (≤0 means 4·log2(n)+32).
func Run(m *pram.Machine, g *graph.Graph, seed uint64, maxPhases int) Result {
	s := NewState(g.N, g.Span(), seed)
	if maxPhases <= 0 {
		maxPhases = defaultPhaseCap(g.N)
	}
	for s.RunPhase(m) && s.Phase < maxPhases {
	}
	// All trees are flat and each component has one root (Lemma B.2).
	s.D.Flatten(m)
	return Result{Labels: s.D.Parent, Phases: s.Phase, Stats: m.Stats()}
}

func defaultPhaseCap(n int) int {
	limit := 32
	for x := n; x > 0; x >>= 1 {
		limit += 4
	}
	return limit
}
