package core

import (
	"testing"
	"time"

	"repro/graph"
	"repro/internal/check"
	"repro/internal/pram"
)

func TestDenseGnmConverges(t *testing.T) {
	g := graph.Gnm(20000, 20000*32, 5)
	start := time.Now()
	res := Run(pram.New(0), g, DefaultParams(3))
	el := time.Since(start)
	t.Logf("rounds=%d maxLevel=%d failed=%v cum/m=%.2f elapsed=%v",
		res.Rounds, res.MaxLevel, res.Failed, float64(res.CumBlockWords)/float64(g.NumEdges()), el)
	for i, tr := range res.Trace {
		if i < 40 {
			t.Logf("round %2d: roots=%6d maxlvl=%2d boost=%5d dorm=%6d parch=%d added=%d words=%d",
				i+1, tr.Roots, tr.MaxLevel, tr.LevelUpsBoost, tr.Dormant, tr.ParentChanges, tr.NewAdded, tr.BlockWords)
		}
	}
	if res.Failed {
		t.Errorf("dense Gnm hit the round cap")
	}
	if err := check.Components(g, res.Labels); err != nil {
		t.Fatal(err)
	}
}
