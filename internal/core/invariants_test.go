package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/graph"
	"repro/internal/check"
	"repro/internal/pram"
)

// TestLemma32Invariant runs the full algorithm with per-round
// validation of Lemma 3.2 (acyclic digraph; non-root level strictly
// below parent level) across workload families and seeds.
func TestLemma32Invariant(t *testing.T) {
	cases := map[string]*graph.Graph{
		"beads": graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 24, Size: 16, IntraDeg: 14, Bridges: 2, Seed: 5}),
		"gnm":   graph.Gnm(5000, 40000, 6),
		"grid":  graph.Grid2D(40, 40),
		"path":  graph.Path(2000),
	}
	for name, g := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/%d", name, seed), func(t *testing.T) {
				p := DefaultParams(seed)
				p.CheckInvariants = true
				res := Run(pram.New(1), g, p)
				if res.InvariantErr != nil {
					t.Fatalf("invariant violated: %v", res.InvariantErr)
				}
				if err := check.Components(g, res.Labels); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestBreakConditionMeansDiameterOne: when the repeat loop breaks on
// its own (not the cap), the pre-postprocess digraph must satisfy the
// paper's break state — every component holds at most a bounded
// number of mutually adjacent roots (diameter ≤ 1) and all trees flat.
func TestBreakConditionState(t *testing.T) {
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 32, Size: 24, IntraDeg: 20, Bridges: 2, Seed: 9})
	p := DefaultParams(3)
	p.SkipPostprocess = true
	res := Run(pram.New(1), g, p)
	if res.Failed {
		t.Skip("cap exhausted — bad-probability event, not the break path")
	}
	// The labels are roots. Components of the input map onto groups of
	// roots; the paper's Theorem-1 stage then finishes in O(1) diameter.
	oracle := g.ComponentsBFS()
	rootsPerComp := map[int32]map[int32]bool{}
	for v := 0; v < g.N; v++ {
		c := oracle[v]
		if rootsPerComp[c] == nil {
			rootsPerComp[c] = map[int32]bool{}
		}
		rootsPerComp[c][res.Labels[v]] = true
	}
	for c, roots := range rootsPerComp {
		if len(roots) > 8 {
			t.Fatalf("component %d still split across %d roots at break", c, len(roots))
		}
	}
}

func TestBudgetTableMonotoneAndCapped(t *testing.T) {
	bt := newBudgetTable(16, 1.25, 2, 1000)
	prev := int64(0)
	for l := int32(1); l < 64; l++ {
		b := bt.at(l)
		if b < prev {
			t.Fatalf("budget decreased at level %d: %d < %d", l, b, prev)
		}
		if b > bt.cap {
			t.Fatalf("budget exceeds cap at level %d", l)
		}
		prev = b
	}
	if bt.at(0) != 0 {
		t.Fatal("level 0 must have no budget")
	}
	// The cap's table must hold any component: √cap ≥ 2(n+2).
	if ts := tableSize(bt.cap); ts < 2*(1000+2) {
		t.Fatalf("cap table size %d cannot hold all %d vertices", ts, 1000)
	}
}

func TestTableSizeSqrt(t *testing.T) {
	if tableSize(0) != 0 {
		t.Fatal("zero budget must have no table")
	}
	if tableSize(100) != 10 {
		t.Fatalf("tableSize(100) = %d", tableSize(100))
	}
	if tableSize(5) != 4 {
		t.Fatalf("tiny budgets floor at 4, got %d", tableSize(5))
	}
}

func TestSkipPostprocessLabelsAreRoots(t *testing.T) {
	g := graph.Gnm(2000, 16000, 4)
	p := DefaultParams(5)
	p.SkipPostprocess = true
	res := Run(pram.New(1), g, p)
	// Labels are parents after flatten: label[label[v]] == label[v].
	for v := 0; v < g.N; v++ {
		l := res.Labels[v]
		if res.Labels[l] != l {
			t.Fatalf("label of %d is not a root", v)
		}
	}
}

func TestMaxRoundsCapStillCorrect(t *testing.T) {
	// Starve the loop: with MaxRounds=1 the postprocessing stage must
	// still deliver correct components (it is a full Theorem-1 run).
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 16, Size: 12, IntraDeg: 10, Bridges: 1, Seed: 2})
	p := DefaultParams(1)
	p.MaxRounds = 1
	res := Run(pram.New(1), g, p)
	if !res.Failed {
		t.Log("note: loop finished within 1 round")
	}
	if err := check.Components(g, res.Labels); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(5)
	res := Run(pram.New(1), g, DefaultParams(1))
	if err := check.Components(g, res.Labels); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoopsOnly(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 0)
	g.AddEdge(2, 2)
	res := Run(pram.New(1), g, DefaultParams(1))
	if err := check.Components(g, res.Labels); err != nil {
		t.Fatal(err)
	}
}

func TestParallelEdges(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 10; i++ {
		g.AddEdge(0, 1)
		g.AddEdge(2, 3)
	}
	res := Run(pram.New(1), g, DefaultParams(1))
	if err := check.Components(g, res.Labels); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicWithSeedSequential(t *testing.T) {
	g := graph.Gnm(1000, 4000, 8)
	p := DefaultParams(77)
	a := Run(pram.New(1), g, p)
	b := Run(pram.New(1), g, p)
	if a.Rounds != b.Rounds || a.MaxLevel != b.MaxLevel {
		t.Fatalf("sequential runs with same seed diverged: %d/%d vs %d/%d",
			a.Rounds, a.MaxLevel, b.Rounds, b.MaxLevel)
	}
	for v := range a.Labels {
		if a.Labels[v] != b.Labels[v] {
			t.Fatalf("labels diverged at %d", v)
		}
	}
}

func TestParallelWorkersCorrect(t *testing.T) {
	// Concurrency changes arbitrary-write resolutions but never
	// correctness.
	g := graph.Gnm(20000, 100000, 9)
	for _, workers := range []int{2, 4, 8} {
		res := Run(pram.New(workers), g, DefaultParams(3))
		if err := check.Components(g, res.Labels); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestLevelsNeverDecreaseAcrossTrace(t *testing.T) {
	g := graph.Gnm(4000, 32000, 10)
	res := Run(pram.New(1), g, DefaultParams(5))
	prevMax := int32(0)
	for i, tr := range res.Trace {
		if tr.MaxLevel < prevMax {
			t.Fatalf("round %d: max level decreased %d → %d", i+1, prevMax, tr.MaxLevel)
		}
		prevMax = tr.MaxLevel
	}
}

// TestBudgetTableProperty (property): for any growth γ ∈ (1, 2] and
// any n, the ladder is monotone, starts at b₁ ≥ 4, saturates at the
// cap, and its top table size covers any component.
func TestBudgetTableProperty(t *testing.T) {
	f := func(gRaw uint8, nRaw uint16, b1Raw uint8) bool {
		gamma := 1.05 + float64(gRaw%90)/100.0
		n := int(nRaw)%50000 + 2
		b1 := float64(b1Raw%200) + 4
		bt := newBudgetTable(b1, gamma, 2, n)
		prev := int64(0)
		for l := int32(0); l < 200; l++ {
			b := bt.at(l)
			if b < prev || b > bt.cap {
				return false
			}
			prev = b
		}
		return tableSize(bt.cap) >= 2*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
