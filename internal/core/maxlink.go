package core

import (
	"repro/internal/labels"
	"repro/internal/pram"
)

// maxlink performs the MAXLINK subroutine of §3.1: repeat twice { for
// each vertex v: u := argmax_{w ∈ N(v).p} ℓ(w); if ℓ(u) > ℓ(v) then
// v.p := u }. N(v) contains v itself, the endpoints of incident
// original (altered) arcs, and the endpoints of incident added arcs.
//
// Each iteration is two PRAM sub-steps: a read phase that combines
// (level, vertex) maxima per vertex — O(1) time on an ARBITRARY CRCW
// PRAM via the per-level array trick of §3.3, realized here as a
// packed atomic max — and a write phase that re-parents. Links always
// target a strictly higher level, so Lemma 3.2's invariant
// ℓ(v) < ℓ(v.p) for non-roots is maintained and no cycle can form.
func (s *state) maxlink() {
	m, n := s.m, s.n
	iters := s.p.MaxLinkIters
	if iters <= 0 {
		iters = 2
	}
	for it := 0; it < iters; it++ {
		best := s.best
		par := s.d.Parent
		lvl := s.level

		// Read phase: seed with v's own parent (v ∈ N(v)), then fold
		// in w.p for every neighbour w along both arc stores.
		m.Step(n, func(v int) {
			p := par[v]
			best[v] = pram.PackLevelVertex(lvl[p], p)
		})
		fold := func(st *labels.ArcStore) {
			u, w := st.U, st.V
			m.Step(st.Len(), func(i int) {
				a, b := u[i], w[i]
				if a == b {
					return
				}
				bp := par[b]
				pram.MaxCombine64(&best[a], pram.PackLevelVertex(lvl[bp], bp))
			})
		}
		fold(s.arcs)
		fold(s.added)

		// Write phase: adopt the argmax parent if strictly higher.
		m.Step(n, func(v int) {
			l, u := pram.UnpackLevelVertex(best[v])
			if l > lvl[v] && u != par[v] {
				par[v] = u
				pram.Store64(&s.parChange, 1)
			}
		})
	}
}
