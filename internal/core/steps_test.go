package core

import (
	"testing"

	"repro/graph"
	"repro/internal/hashing"
	"repro/internal/labels"
	"repro/internal/pram"
	"repro/internal/vanilla"
)

// newTestState builds a minimal state over g with every vertex an
// ongoing level-1 root, bypassing COMPACT.
func newTestState(g *graph.Graph, params Params) *state {
	p := params.filled()
	vst := vanilla.NewState(g.N, g.Span(), p.Seed)
	s := &state{
		p: p, n: g.N, m: pram.New(1),
		coin:    pram.Coin{Seed: p.Seed},
		d:       vst.D,
		arcs:    vst.Arcs,
		added:   &labels.ArcStore{},
		level:   make([]int32, g.N),
		budget:  make([]int64, g.N),
		tables:  make([]*hashing.Table, g.N),
		dormant: make([]int32, g.N),
		boosted: make([]int32, g.N),
		best:    make([]int64, g.N),
		fam:     hashing.Family{Seed: p.Seed ^ 1},
	}
	s.budgets = newBudgetTable(16, p.Growth, p.BudgetCapFactor, g.N)
	for v := 0; v < g.N; v++ {
		s.level[v] = 1
		s.budget[v] = s.budgets.at(1)
	}
	return s
}

func TestMaxlinkLinksToHigherLevel(t *testing.T) {
	// 0 - 1 - 2 path; raise ℓ(1). After one MAXLINK, 0 and 2 must both
	// adopt 1 as parent (their neighbour's parent with highest level).
	g := graph.Path(3)
	s := newTestState(g, DefaultParams(1))
	s.level[1] = 2
	s.budget[1] = s.budgets.at(2)
	s.maxlink()
	if s.d.Parent[0] != 1 || s.d.Parent[2] != 1 {
		t.Fatalf("parents = %v, want both linked to 1", s.d.Parent)
	}
	if s.d.Parent[1] != 1 {
		t.Fatal("the high-level vertex must stay a root")
	}
}

func TestMaxlinkNeverLinksEqualLevels(t *testing.T) {
	g := graph.Clique(5)
	s := newTestState(g, DefaultParams(2))
	s.maxlink()
	for v := 0; v < g.N; v++ {
		if s.d.Parent[v] != int32(v) {
			t.Fatalf("vertex %d linked despite equal levels", v)
		}
	}
}

func TestMaxlinkTwoIterationsReachDistance2(t *testing.T) {
	// 0 - 1 - 2 - 3 - 4 with ℓ(4)=2: one MAXLINK links 3 (and the
	// second iteration inside the same call propagates 4's parenthood
	// to 2 via N(2) ∋ 3, since 3.p = 4 has level 2 > ℓ(2)).
	g := graph.Path(5)
	s := newTestState(g, DefaultParams(3))
	s.level[4] = 2
	s.budget[4] = s.budgets.at(2)
	s.maxlink()
	if s.d.Parent[3] != 4 {
		t.Fatalf("3.p = %d, want 4", s.d.Parent[3])
	}
	if s.d.Parent[2] != 4 {
		t.Fatalf("2.p = %d, want 4 after two iterations", s.d.Parent[2])
	}
	// Iteration 2's read phase precedes its writes, so vertex 1 (at
	// distance 3) sees 2's pre-update parent and must NOT link yet —
	// exactly why a round combines MAXLINK with table expansion.
	if s.d.Parent[1] != 1 {
		t.Fatalf("1.p = %d, distance-3 vertices must not link in one call", s.d.Parent[1])
	}
}

func TestMaxlinkSingleIterationShallower(t *testing.T) {
	g := graph.Path(5)
	p := DefaultParams(3)
	p.MaxLinkIters = 1
	s := newTestState(g, p)
	s.level[4] = 2
	s.budget[4] = s.budgets.at(2)
	s.maxlink()
	if s.d.Parent[3] != 4 {
		t.Fatalf("3.p = %d, want 4", s.d.Parent[3])
	}
	if s.d.Parent[1] != 1 {
		t.Fatalf("1.p = %d, one iteration cannot reach distance 3", s.d.Parent[1])
	}
}

func TestMaxlinkPreservesLemma32(t *testing.T) {
	g := graph.Gnm(200, 800, 7)
	s := newTestState(g, DefaultParams(5))
	// Random levels 1..4 (budgets consistent).
	coin := pram.Coin{Seed: 3}
	for v := 0; v < g.N; v++ {
		s.level[v] = int32(1 + coin.Intn(0, uint64(v), 4))
		s.budget[v] = s.budgets.at(s.level[v])
	}
	s.maxlink()
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDedupAddedRemovesDuplicatesAndLoops(t *testing.T) {
	g := graph.Path(4)
	p := DefaultParams(1)
	p.AddedCap = 0.0001 // force dedup
	s := newTestState(g, p)
	for i := 0; i < 500; i++ {
		s.added.Append(1, 2, -1)
		s.added.Append(2, 1, -1)
		s.added.Append(3, 3, -1) // loop: dropped
	}
	s.dedupAdded()
	if s.added.Len() != 2 {
		t.Fatalf("added arcs after dedup = %d, want 2", s.added.Len())
	}
}

func TestDedupAddedNoopUnderLimit(t *testing.T) {
	g := graph.Path(4)
	s := newTestState(g, DefaultParams(1))
	s.added.Append(1, 2, -1)
	s.added.Append(2, 1, -1)
	s.dedupAdded()
	if s.added.Len() != 2 {
		t.Fatal("dedup must not run below the cap")
	}
}

func TestRoundStep3BudgetMatching(t *testing.T) {
	// Two cliques at different levels joined by a bridge: after one
	// round, tables only ever contain same-budget roots (checked via
	// the step-3 filter being observable in the round trace's dormancy
	// pattern — here we drive round() directly and inspect tables).
	g := graph.Barbell(4, 1)
	s := newTestState(g, DefaultParams(9))
	// Left clique at level 2.
	for v := 0; v < 4; v++ {
		s.level[v] = 2
		s.budget[v] = s.budgets.at(2)
	}
	var res Result
	s.round(1, &res)
	for v := 0; v < s.n; v++ {
		tb := s.tables[v]
		if tb == nil {
			continue
		}
		for _, w := range tb.Occupied() {
			if w == int32(v) {
				continue
			}
			if s.budget[w] != s.budget[v] {
				t.Fatalf("table of %d (budget %d) contains %d (budget %d)",
					v, s.budget[v], w, s.budget[w])
			}
		}
	}
}

func TestRoundMaterializesAddedEdges(t *testing.T) {
	g := graph.Clique(6)
	s := newTestState(g, DefaultParams(4))
	var res Result
	s.round(1, &res)
	if s.added.Len() == 0 && res.Trace[0].Dormant < 6 {
		t.Fatal("a clique round must either add edges or mark dormancy")
	}
	// Added arcs must connect same-component vertices.
	for i := 0; i < s.added.Len(); i++ {
		if s.added.Orig[i] != -1 {
			t.Fatal("added arcs must carry orig = -1")
		}
	}
}

func TestBudgetGuardFires(t *testing.T) {
	g := graph.Clique(8)
	p := DefaultParams(2)
	p.SpaceCap = 0.0001 // absurdly small: first expansion trips it
	s := newTestState(g, p)
	var res Result
	s.round(1, &res)
	if !s.overBudget {
		t.Fatal("space guard must fire with SpaceCap ≈ 0")
	}
}

func TestCheckInvariantsDetectsViolation(t *testing.T) {
	g := graph.Path(3)
	s := newTestState(g, DefaultParams(1))
	s.d.Parent[0] = 1 // non-root at equal level: Lemma 3.2 violated
	if err := s.checkInvariants(); err == nil {
		t.Fatal("violation not detected")
	}
	s.level[1] = 2
	if err := s.checkInvariants(); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
}

func TestRemainingGraphDropsLoops(t *testing.T) {
	g := graph.Path(3)
	s := newTestState(g, DefaultParams(1))
	s.d.Parent[0] = 1
	s.level[1] = 2
	s.arcs.Alter(s.m, s.d) // arc (0,1) becomes (1,1): loop
	rem := s.remainingGraph()
	for i := 0; i < len(rem.U); i++ {
		if rem.U[i] == rem.V[i] {
			t.Fatal("remaining graph contains a loop")
		}
	}
}
