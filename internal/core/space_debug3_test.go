package core

import (
	"testing"

	"repro/graph"
	"repro/internal/pram"
)

func TestDebugGrowthSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("growth-sweep convergence loop (~3s) skipped in -short; CI's scheduled full run covers it")
	}
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 2048, Size: 24, IntraDeg: 20, Bridges: 2, Seed: 4})
	g2 := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 128, Size: 24, IntraDeg: 20, Bridges: 2, Seed: 4})
	for _, gamma := range []float64{1.1, 1.15, 1.2, 1.25} {
		p := DefaultParams(23)
		p.Growth = gamma
		res := Run(pram.New(0), g, p)
		p2 := DefaultParams(23)
		p2.Growth = gamma
		res2 := Run(pram.New(0), g2, p2)
		t.Logf("gamma=%.2f: beads2048 rounds=%d maxlvl=%d cum/m=%.2f failed=%v | beads128 rounds=%d cum/m=%.2f",
			gamma, res.Rounds, res.MaxLevel, float64(res.CumBlockWords)/float64(g.NumEdges()), res.Failed,
			res2.Rounds, float64(res2.CumBlockWords)/float64(g2.NumEdges()))
	}
}
