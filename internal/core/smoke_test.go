package core

import (
	"fmt"
	"testing"

	"repro/graph"
	"repro/internal/check"
	"repro/internal/pram"
)

func TestSmokeSmallGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path64", graph.Path(64)},
		{"cycle100", graph.Cycle(100)},
		{"star200", graph.Star(200)},
		{"grid8x8", graph.Grid2D(8, 8)},
		{"gnm1000", graph.Gnm(1000, 3000, 7)},
		{"two-comps", graph.DisjointUnion(graph.Path(50), graph.Clique(20))},
		{"isolated", graph.WithIsolated(graph.Path(10), 5)},
		{"beads", graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 10, Size: 12, IntraDeg: 11, Seed: 3})},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				m := pram.New(0)
				res := Run(m, tc.g, DefaultParams(seed))
				if err := check.Components(tc.g, res.Labels); err != nil {
					t.Fatalf("labels wrong (rounds=%d failed=%v): %v", res.Rounds, res.Failed, err)
				}
			})
		}
	}
}
