// Package core implements the paper's primary contribution: the
// O(log d + log log_{m/n} n)-time connected components algorithm of
// Theorem 3 (§3, §D).
//
//	Faster Connected Components algorithm: COMPACT;
//	repeat {EXPAND-MAXLINK} until the graph has diameter ≤ 1 and all
//	trees are flat; run Connected Components algorithm from Theorem 1.
//
// Each round of EXPAND-MAXLINK executes the eight steps of §3.1:
// MAXLINK+ALTER, random level boost, budget-matched hashing of
// neighbour roots into per-root tables, dormancy propagation on
// collisions, one distance-doubling table expansion, MAXLINK+SHORTCUT+
// ALTER, dormant level increase, and block (re)allocation sized by the
// new level. Levels only increase, a non-root's level is forever below
// its parent's (Lemma 3.2), and budgets grow double-exponentially so
// every vertex can afford a table holding its whole component after
// O(log log_{m/n} n) level increases, while the path-potential argument
// (§3.5) bounds the number of rounds by O(log d + log log_{m/n} n).
package core

import (
	"context"
	"math"

	"repro/internal/pram"
)

// Params are the scaled constants of the algorithm; each field's
// comment maps it to the paper's value and justifies the scaling.
type Params struct {
	Seed uint64

	// Ctx, when non-nil, is checked at every round boundary of the
	// repeat loop (and between PREPARE phases): on cancellation or
	// deadline the run stops promptly, Result.CtxErr records ctx.Err(),
	// and Result.Labels is nil — a cancelled run never returns a
	// partial labeling.
	Ctx context.Context

	// MinBudget floors the initial budget b₁ = max(m/n′, MinBudget)
	// (paper: max{m/n, log^c n}/log² n with c = 200). Default 16.
	MinBudget float64
	// Growth is γ in b_{ℓ+1} = b_ℓ^γ (paper: exponent 1.01 on the
	// exponent tower, i.e. b_ℓ = b₁^{1.01^{ℓ-1}}). Default 1.15 — the
	// ablation sweep (E10) shows coarser ladders overshoot the top
	// budgets and break the O(m) space shape at bench scales.
	Growth float64
	// BudgetCapFactor caps budgets at (BudgetCapFactor·(n+2))² so the
	// top-level table (of size √b) holds any component — the paper's
	// maximal level L ("a vertex at level L must have enough space to
	// find all vertices in its component", §1.2.1).
	BudgetCapFactor float64
	// BoostC and BoostExp define the step-(2) level-increase
	// probability min(BoostCap, BoostC·ln(n)/b^BoostExp)
	// (paper: 10·log n / b^0.1). Defaults 0.3, 0.5.
	BoostC, BoostExp float64
	// BoostCap caps the boost probability. Default 0.25.
	BoostCap float64
	// PrepDensity and PrepPhases parameterize COMPACT's Vanilla
	// preprocessing, as in ccbase.
	PrepDensity float64
	PrepPhases  int
	// MaxRounds caps the repeat loop; exhausting it sets Result.Failed
	// and falls through to the Theorem-1 postprocessing, which is
	// always correct. ≤0 derives a default.
	MaxRounds int
	// MaxLinkIters is the number of MAXLINK iterations (paper: 2;
	// ablation E10 sets 1).
	MaxLinkIters int
	// DisableBoost turns step (2) off (ablation E10).
	DisableBoost bool
	// SkipPostprocess stops after the repeat loop, returning the raw
	// root labels without the Theorem-1 stage (tests and ablations;
	// labels are then correct only if every component has one root).
	SkipPostprocess bool
	// AddedCap bounds the added-edge store as a multiple of m before a
	// dedup pass is forced. Default 4.
	AddedCap float64
	// SpaceCap aborts the repeat loop (Failed=true, Theorem-1
	// postprocessing still yields correct labels) when the blocks
	// requested in a single round exceed SpaceCap*m words. The machine
	// owns Theta(m) processors, so needing more is exactly the paper's
	// bad-probability event (Lemma 3.10 fails). Default 256.
	SpaceCap float64
	// CheckInvariants validates Lemma 3.2 (levels strictly increase
	// along parent pointers) and acyclicity after every round,
	// recording the first violation in Result.InvariantErr. Test-only;
	// costs O(n) host time per round.
	CheckInvariants bool
}

// DefaultParams returns the scaled defaults used by the experiments.
func DefaultParams(seed uint64) Params {
	return Params{
		Seed:            seed,
		MinBudget:       16,
		Growth:          1.15,
		BudgetCapFactor: 2,
		BoostC:          0.3,
		BoostExp:        0.5,
		BoostCap:        0.25,
		PrepDensity:     8,
		MaxLinkIters:    2,
		AddedCap:        4,
		SpaceCap:        256,
	}
}

func (p Params) filled() Params {
	d := DefaultParams(p.Seed)
	if p.MinBudget == 0 {
		p.MinBudget = d.MinBudget
	}
	if p.Growth == 0 {
		p.Growth = d.Growth
	}
	if p.BudgetCapFactor == 0 {
		p.BudgetCapFactor = d.BudgetCapFactor
	}
	if p.BoostC == 0 {
		p.BoostC = d.BoostC
	}
	if p.BoostExp == 0 {
		p.BoostExp = d.BoostExp
	}
	if p.BoostCap == 0 {
		p.BoostCap = d.BoostCap
	}
	if p.PrepDensity == 0 {
		p.PrepDensity = d.PrepDensity
	}
	if p.MaxLinkIters == 0 {
		p.MaxLinkIters = d.MaxLinkIters
	}
	if p.AddedCap == 0 {
		p.AddedCap = d.AddedCap
	}
	if p.SpaceCap == 0 {
		p.SpaceCap = d.SpaceCap
	}
	return p
}

// RoundTrace records one EXPAND-MAXLINK round for the experiments.
type RoundTrace struct {
	Roots         int   // roots at round start
	MaxLevel      int32 // maximum level after the round
	LevelUpsBoost int   // step-(2) increases
	LevelUpsDorm  int   // step-(7) increases
	Dormant       int   // roots marked dormant this round
	NewAdded      int   // new added edges materialized from tables
	BlockWords    int64 // block words allocated in step (8)
	ParentChanges int   // parent updates in this round (MAXLINKs + SHORTCUT)
	// LevelHist counts roots by level at round start (Experiment E6:
	// per-budget level-up probabilities, Lemma 3.9).
	LevelHist map[int32]int
	// LevelUpsByLevel counts level increases by the root's level at
	// round start.
	LevelUpsByLevel map[int32]int
}

// Result is the outcome of Faster Connected Components.
type Result struct {
	Labels []int32
	Rounds int // EXPAND-MAXLINK rounds
	Prep   int // Vanilla phases inside COMPACT
	// PostPhases is the number of Theorem-1 phases of the final stage.
	PostPhases int
	MaxLevel   int32
	// CumBlockWords is Σ over rounds of step-(8) allocations — the
	// quantity Lemma 3.10 bounds by O(m).
	CumBlockWords int64
	// PeakBlockWords is the largest single-round allocation.
	PeakBlockWords int64
	AddedEdges     int // distinct added edges materialized over the run
	CompactRounds  int // hashing rounds used by approximate compaction
	Trace          []RoundTrace
	Failed         bool  // round cap exhausted (bad-probability event)
	InvariantErr   error // first Lemma 3.2 violation (CheckInvariants only)
	// CtxErr is ctx.Err() when Params.Ctx was cancelled mid-run; Labels
	// is nil in that case.
	CtxErr error
	Stats  pram.Stats
}

// budgetTable precomputes b_ℓ for ℓ = 1..maxLevels with growth γ and a
// cap; budgets are strictly increasing until they reach the cap.
type budgetTable struct {
	b   []int64 // b[ℓ] for ℓ ≥ 1; b[0] = 0
	cap int64
}

func newBudgetTable(b1 float64, growth, capf float64, n int) *budgetTable {
	capV := int64(capf*float64(n+2)) * int64(capf*float64(n+2))
	if capV < 16 {
		capV = 16
	}
	t := &budgetTable{cap: capV}
	t.b = append(t.b, 0) // level 0: no block
	cur := b1
	if cur < 4 {
		cur = 4
	}
	for {
		v := int64(cur)
		if v >= capV {
			t.b = append(t.b, capV)
			break
		}
		t.b = append(t.b, v)
		next := math.Pow(cur, growth)
		if next <= cur+1 {
			next = cur + 1
		}
		cur = next
		if len(t.b) > 192 {
			t.b = append(t.b, capV)
			break
		}
	}
	return t
}

// at returns b_ℓ, saturating at the cap for levels beyond the table.
func (t *budgetTable) at(level int32) int64 {
	if level <= 0 {
		return 0
	}
	if int(level) < len(t.b) {
		return t.b[level]
	}
	return t.cap
}

// tableSize returns the size √b of the first table of a block of size b.
func tableSize(b int64) int {
	if b <= 0 {
		return 0
	}
	s := int(math.Sqrt(float64(b)))
	if s < 4 {
		s = 4
	}
	return s
}
