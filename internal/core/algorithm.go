package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/graph"
	"repro/internal/ccbase"
	"repro/internal/compaction"
	"repro/internal/hashing"
	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/pram"
	"repro/internal/vanilla"
)

// mRounds counts EXPAND-MAXLINK rounds process-wide; round-boundary
// events carry the per-round detail when a sink is attached.
var mRounds = obs.Default.Counter("pramcc_sim_rounds_total",
	"EXPAND-MAXLINK rounds executed by the simulated backend")

// state is the mutable execution state of the repeat loop.
type state struct {
	p    Params
	n    int
	m    *pram.Machine
	coin pram.Coin

	d     *labels.Digraph
	arcs  *labels.ArcStore // altered original edges
	added *labels.ArcStore // altered added edges (materialized tables)

	level  []int32 // ℓ(v)
	budget []int64 // b(v): size of the block currently owned by v

	budgets *budgetTable
	fam     hashing.Family

	// Per-round scratch.
	tables     []*hashing.Table
	dormant    []int32
	boosted    []int32
	best       []int64
	parChange  int64
	lvlChange  int64
	overBudget bool
	incident   []int32 // per-round: endpoint of a non-loop edge
}

// Run executes Faster Connected Components algorithm on g.
func Run(m *pram.Machine, g *graph.Graph, p Params) Result {
	p = p.filled()
	ctx := p.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.N
	res := Result{}
	if err := ctx.Err(); err != nil {
		res.CtxErr = err
		return res
	}

	// ---- COMPACT (§D): PREPARE + approximate compaction renaming ----
	vst := vanilla.NewState(g.N, g.Span(), p.Seed)
	mEdges := g.NumEdges()
	if mEdges == 0 {
		res.Labels = vst.D.Parent
		res.Stats = m.Stats()
		return res
	}
	if float64(mEdges)/float64(max(n, 1)) <= p.PrepDensity {
		phases := p.PrepPhases
		if phases <= 0 {
			phases = 2*ceilLog2(ceilLog2(n)+1) + 2
		}
		for i := 0; i < phases; i++ {
			if err := ctx.Err(); err != nil {
				res.CtxErr = err
				res.Stats = m.Stats()
				return res
			}
			res.Prep++
			if !vst.RunPhase(m) {
				break
			}
		}
	}

	s := &state{
		p:       p,
		n:       n,
		m:       m,
		coin:    pram.Coin{Seed: p.Seed ^ 0x51afd7ed558ccd25},
		d:       vst.D,
		arcs:    vst.Arcs,
		added:   &labels.ArcStore{},
		level:   make([]int32, n),
		budget:  make([]int64, n),
		tables:  make([]*hashing.Table, n),
		dormant: make([]int32, n),
		boosted: make([]int32, n),
		best:    make([]int64, n),
		fam:     hashing.Family{Seed: p.Seed ^ 0xb5026f5aa96619e9},
	}

	// Ongoing roots start at level 1 with budget b₁; everything else
	// (non-roots, finished roots) stays at level 0 (§D.1).
	incident := make([]int32, n)
	s.arcs.MarkIncident(m, incident)
	ongoing := make([]bool, n)
	nOngoing := 0
	m.Step(n, func(v int) {
		if s.d.Parent[v] == int32(v) && incident[v] == 1 {
			ongoing[v] = true
		}
	})
	for v := 0; v < n; v++ {
		if ongoing[v] {
			nOngoing++
		}
	}
	if nOngoing > 0 {
		// Approximate compaction renames the ongoing vertices into a
		// dense id range so all later block allocations are O(1)-time
		// (Lemma D.3). The renamed ids feed only the allocator, so we
		// record the cost and the success of the mapping.
		cres := compaction.Compact(m, hashing.Family{Seed: p.Seed ^ 0x2545f4914f6cdd1d}, ongoing, false)
		res.CompactRounds = cres.Rounds
		if cres.Failed {
			res.Failed = true
		}
	}
	// Assumption 3.1 / Lemma D.3: the initial budget derives from the
	// ORIGINAL density m/n (the paper: max{m/n, log^c n}/log^2 n), not
	// from the post-PREPARE ongoing count - budgets must start small
	// and climb the ladder; the total initial allocation then stays
	// far below O(m) after PREPARE shrinks the root set.
	b1 := math.Max(float64(mEdges)/math.Max(float64(n), 1), p.MinBudget)
	s.budgets = newBudgetTable(b1, p.Growth, p.BudgetCapFactor, n)
	var initWords int64
	m.Step(n, func(v int) {
		if ongoing[v] {
			s.level[v] = 1
			s.budget[v] = s.budgets.at(1)
		}
	})
	for v := 0; v < n; v++ {
		if ongoing[v] {
			initWords += s.budget[v]
		}
	}
	m.Alloc(int(initWords))
	res.CumBlockWords += initWords
	if initWords > res.PeakBlockWords {
		res.PeakBlockWords = initWords
	}

	// ---- repeat { EXPAND-MAXLINK } ----
	maxRounds := p.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 8*ceilLog2(n) + 96
	}
	// As in the native engine: the event envelope is built only when a
	// sink is attached, decided once per run.
	emit := obs.Enabled()
	var roundStart time.Time
	for round := 1; nOngoing > 0; round++ {
		if err := ctx.Err(); err != nil {
			res.CtxErr = err
			res.Stats = m.Stats()
			return res
		}
		if round > maxRounds {
			res.Failed = true
			break
		}
		if emit {
			roundStart = time.Now()
		}
		done := s.round(round, &res)
		res.Rounds++
		mRounds.Inc()
		if emit {
			tr := res.Trace[len(res.Trace)-1]
			obs.Emit(obs.Event{Source: "simulated", Category: "engine",
				Name: "round", Status: obs.StatusOK,
				DurationMS: float64(time.Since(roundStart).Nanoseconds()) / 1e6,
				Measures: map[string]float64{
					"round":          float64(round),
					"roots":          float64(tr.Roots),
					"max_level":      float64(tr.MaxLevel),
					"parent_changes": float64(tr.ParentChanges),
				}})
		}
		if s.overBudget {
			res.Failed = true
			break
		}
		if done {
			break
		}
	}

	// ---- Theorem-1 postprocessing on the remaining graph ----
	s.d.Flatten(m)
	if p.SkipPostprocess {
		out := make([]int32, n)
		copy(out, s.d.Parent)
		res.Labels = out
		for v := 0; v < n; v++ {
			if s.level[v] > res.MaxLevel {
				res.MaxLevel = s.level[v]
			}
		}
		res.AddedEdges = s.added.Len() / 2
		res.Stats = m.Stats()
		return res
	}
	rem := s.remainingGraph()
	ccp := ccbase.DefaultParams(p.Seed ^ 0x94d049bb133111eb)
	ccp.MaxExpandRounds = 8 // diameter is O(1) here
	ccp.Ctx = p.Ctx
	ccr := ccbase.Run(m, rem, ccp)
	if ccr.CtxErr != nil {
		res.CtxErr = ccr.CtxErr
		res.Stats = m.Stats()
		return res
	}
	if ccr.Failed {
		res.Failed = true
	}
	res.PostPhases = ccr.Phases

	// Compose: label of v = Theorem-1 label of v's root.
	out := make([]int32, n)
	m.Step(n, func(v int) {
		out[v] = ccr.Labels[s.d.Parent[v]]
	})
	res.Labels = out
	for v := 0; v < n; v++ {
		if s.level[v] > res.MaxLevel {
			res.MaxLevel = s.level[v]
		}
	}
	res.AddedEdges = s.added.Len() / 2
	res.Stats = m.Stats()
	return res
}

// remainingGraph collects the current non-loop edges (original +
// added) into a plain graph for the Theorem-1 postprocessing stage.
func (s *state) remainingGraph() *graph.Graph {
	g := graph.New(s.n)
	add := func(st *labels.ArcStore) {
		for i := 0; i < st.Len(); i += 2 {
			u, v := st.U[i], st.V[i]
			if u != v {
				g.AddEdge(int(u), int(v))
			}
		}
	}
	add(s.arcs)
	add(s.added)
	return g
}

// round executes one EXPAND-MAXLINK (§3.1) and reports whether the
// break condition holds (diameter ≤ 1 and all trees flat).
func (s *state) round(round int, res *Result) bool {
	m, n := s.m, s.n
	tr := RoundTrace{}
	s.parChange = 0
	s.lvlChange = 0

	// Step (1): MAXLINK; ALTER.
	s.maxlink()
	s.alterAll()

	roots := 0
	tr.LevelHist = make(map[int32]int)
	tr.LevelUpsByLevel = make(map[int32]int)
	startLevel := make([]int32, n)
	copy(startLevel, s.level)
	for v := 0; v < n; v++ {
		if s.d.Parent[v] == int32(v) && s.level[v] >= 1 {
			roots++
			tr.LevelHist[s.level[v]]++
		}
	}
	tr.Roots = roots

	// Finished roots (no incident non-loop edge: their component is
	// fully computed, §D.1 "all other vertices are ignored") take no
	// further part in level increases.
	if s.incident == nil {
		s.incident = make([]int32, n)
	}
	pram.Fill32(s.incident, 0)
	markIncident := func(st *labels.ArcStore) {
		u, w := st.U, st.V
		m.Step(st.Len(), func(i int) {
			if u[i] != w[i] {
				pram.Store32(&s.incident[u[i]], 1)
				pram.Store32(&s.incident[w[i]], 1)
			}
		})
	}
	markIncident(s.arcs)
	markIncident(s.added)

	// Step (2): random level boost for roots.
	pram.Fill32(s.boosted, 0)
	if !s.p.DisableBoost {
		coin := s.coin
		logn := math.Log(float64(n) + 2)
		m.Step(n, func(v int) {
			if s.level[v] < 1 || s.d.Parent[v] != int32(v) || s.incident[v] == 0 {
				return
			}
			if s.budget[v] >= s.budgets.cap {
				return // at maximal level L: the block already holds any component
			}
			prob := math.Min(s.p.BoostCap, s.p.BoostC*logn/math.Pow(float64(s.budget[v]), s.p.BoostExp))
			if coin.Bernoulli(uint64(round)*3+1, uint64(v), prob) {
				s.level[v]++
				s.boosted[v] = 1
				pram.Store64(&s.lvlChange, 1)
			}
		})
	}
	for v := 0; v < n; v++ {
		if s.boosted[v] == 1 {
			tr.LevelUpsBoost++
		}
	}

	// Step (3): per-root tables; hash equal-budget neighbour roots.
	h := s.fam.At(uint64(round))
	for v := 0; v < n; v++ {
		s.tables[v] = nil
	}
	m.Step(n, func(v int) {
		if s.d.Parent[v] == int32(v) && s.level[v] >= 1 {
			t := hashing.NewTable(h, tableSize(s.budget[v]))
			t.TryInsert(int32(v)) // v ∈ N(v)
			s.tables[v] = t
		}
	})
	insertRootNeighbors := func(st *labels.ArcStore) {
		u, w := st.U, st.V
		m.Step(st.Len(), func(i int) {
			a, b := u[i], w[i]
			if a == b {
				return
			}
			ta := s.tables[a]
			if ta == nil || s.tables[b] == nil {
				return // endpoint not a root
			}
			if s.budget[a] == s.budget[b] {
				ta.TryInsert(b)
			}
		})
	}
	insertRootNeighbors(s.arcs)
	insertRootNeighbors(s.added)

	// Step (4): collision ⇒ dormant; dormant member ⇒ dormant.
	pram.Fill32(s.dormant, 0)
	checkCollisions := func(st *labels.ArcStore) {
		u, w := st.U, st.V
		m.Step(st.Len(), func(i int) {
			a, b := u[i], w[i]
			if a == b {
				return
			}
			ta := s.tables[a]
			if ta == nil || s.tables[b] == nil || s.budget[a] != s.budget[b] {
				return
			}
			if ta.Collides(b) {
				pram.Store32(&s.dormant[a], 1)
			}
		})
	}
	checkCollisions(s.arcs)
	checkCollisions(s.added)
	m.Step(n, func(v int) {
		t := s.tables[v]
		if t == nil {
			return
		}
		if t.Collides(int32(v)) {
			pram.Store32(&s.dormant[v], 1)
		}
	})
	// Dormancy propagation ("if there is a dormant vertex in H(v)").
	m.Step(n, func(v int) {
		t := s.tables[v]
		if t == nil || pram.Load32(&s.dormant[v]) == 1 {
			return
		}
		for _, w := range t.Occupied() {
			if pram.Load32(&s.dormant[w]) == 1 {
				pram.Store32(&s.dormant[v], 1)
				return
			}
		}
	})

	// Step (5): one distance-doubling expansion into fresh tables,
	// keeping the old tables as sources (§3.1 "Hashing").
	old := s.tables
	newTables := make([]*hashing.Table, n)
	var totalBudget int64
	for v := 0; v < n; v++ {
		if old[v] != nil {
			totalBudget += s.budget[v]
		}
	}
	// Processor-budget guard: the machine owns Theta(m) processors; a
	// round demanding more than SpaceCap*m block words is the paper's
	// bad-probability event (the Lemma 3.10 union bound failed). Abort
	// the loop; the Theorem-1 stage still computes correct components.
	if float64(totalBudget) > s.p.SpaceCap*float64(s.arcs.Len()) {
		s.overBudget = true
		return true
	}
	var breakNewEntry int64
	m.StepN(int(totalBudget), n, func(v int) {
		ot := old[v]
		if ot == nil {
			return
		}
		nt := hashing.NewTable(h, ot.Size())
		for _, w := range ot.Occupied() {
			nt.TryInsert(w)
			if ow := old[w]; ow != nil {
				for _, u := range ow.Occupied() {
					if !ot.Contains(u) {
						pram.Store64(&breakNewEntry, 1) // break-condition (ii)
					}
					nt.TryInsert(u)
				}
			}
		}
		newTables[v] = nt
	})
	// Collision check on the new tables: every source value must
	// survive; otherwise v is dormant.
	m.StepN(int(totalBudget), n, func(v int) {
		ot, nt := old[v], newTables[v]
		if ot == nil || nt == nil {
			return
		}
		for _, w := range ot.Occupied() {
			if nt.Collides(w) {
				pram.Store32(&s.dormant[v], 1)
				return
			}
			if ow := old[w]; ow != nil {
				for _, u := range ow.Occupied() {
					if nt.Collides(u) {
						pram.Store32(&s.dormant[v], 1)
						return
					}
				}
			}
		}
	})
	s.tables = newTables

	// Materialize the added edges {v,w} for w ∈ H(v) (§2.2: "for each
	// w ∈ H(u) after the expansion, {u,w} is considered an added edge").
	before := s.added.Len()
	for v := 0; v < n; v++ {
		t := s.tables[v]
		if t == nil {
			continue
		}
		for _, w := range t.Occupied() {
			if w != int32(v) {
				s.added.Append(int32(v), w, -1)
				s.added.Append(w, int32(v), -1)
			}
		}
	}
	tr.NewAdded = (s.added.Len() - before) / 2

	// Step (6): MAXLINK; SHORTCUT; ALTER.
	s.maxlink()
	if s.d.Shortcut(m) != 0 {
		s.parChange = 1
	}
	s.alterAll()
	s.dedupAdded()

	// Step (7): dormant roots that did not boost increase level
	// (unless already at the maximal level L or finished).
	m.Step(n, func(v int) {
		if s.d.Parent[v] == int32(v) && s.level[v] >= 1 &&
			pram.Load32(&s.dormant[v]) == 1 && s.boosted[v] == 0 &&
			s.budget[v] < s.budgets.cap && s.incident[v] == 1 {
			s.level[v]++
			pram.Store64(&s.lvlChange, 1)
		}
	})
	for v := 0; v < n; v++ {
		if s.dormant[v] == 1 {
			tr.Dormant++
		}
		if s.dormant[v] == 1 && s.boosted[v] == 0 && s.d.Parent[v] == int32(v) && s.level[v] >= 1 {
			tr.LevelUpsDorm++
		}
	}

	// Step (8): (re)allocate blocks for roots whose level grew.
	var newWords int64
	m.Step(n, func(v int) {
		if s.d.Parent[v] != int32(v) || s.level[v] < 1 {
			return
		}
		want := s.budgets.at(s.level[v])
		if want > s.budget[v] {
			s.budget[v] = want
		}
	})
	for v := 0; v < n; v++ {
		if lvl := s.level[v]; lvl >= 1 && s.d.Parent[v] == int32(v) {
			if w := s.budgets.at(lvl); w == s.budget[v] && (s.boosted[v] == 1 || s.dormant[v] == 1) {
				newWords += w
			}
		}
	}
	m.Alloc(int(newWords))
	tr.BlockWords = newWords
	res.CumBlockWords += newWords
	if newWords > res.PeakBlockWords {
		res.PeakBlockWords = newWords
	}

	maxLevel := int32(0)
	for v := 0; v < n; v++ {
		if s.level[v] > maxLevel {
			maxLevel = s.level[v]
		}
		if s.level[v] > startLevel[v] {
			tr.LevelUpsByLevel[startLevel[v]]++
		}
	}
	tr.MaxLevel = maxLevel
	tr.ParentChanges = int(pram.Load64(&s.parChange))
	res.Trace = append(res.Trace, tr)

	if s.p.CheckInvariants && res.InvariantErr == nil {
		res.InvariantErr = s.checkInvariants()
	}

	// Break condition (§3.3): (i) no parent or level changed this
	// round, (ii) step (5) added nothing new to any table.
	return pram.Load64(&s.parChange) == 0 &&
		pram.Load64(&s.lvlChange) == 0 &&
		pram.Load64(&breakNewEntry) == 0
}

// alterAll applies ALTER to the original and added edge stores.
func (s *state) alterAll() {
	s.arcs.Alter(s.m, s.d)
	s.added.Alter(s.m, s.d)
}

// dedupAdded sorts and deduplicates the added-edge store, dropping
// loops, whenever it exceeds AddedCap·m arcs. Host-side bookkeeping:
// the paper's tables deduplicate by construction ("hashing naturally
// removes the duplicate neighbors").
func (s *state) dedupAdded() {
	limit := int(s.p.AddedCap * float64(s.arcs.Len()))
	if limit < 1024 {
		limit = 1024
	}
	if s.added.Len() <= limit {
		return
	}
	pairs := make([]uint64, 0, s.added.Len())
	for i := 0; i < s.added.Len(); i++ {
		u, v := s.added.U[i], s.added.V[i]
		if u == v {
			continue
		}
		pairs = append(pairs, uint64(uint32(u))<<32|uint64(uint32(v)))
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	s.added.U = s.added.U[:0]
	s.added.V = s.added.V[:0]
	s.added.Orig = s.added.Orig[:0]
	var prev uint64 = math.MaxUint64
	for _, p := range pairs {
		if p == prev {
			continue
		}
		prev = p
		s.added.Append(int32(p>>32), int32(uint32(p)), -1)
	}
}

// checkInvariants verifies Lemma 3.2 after a round: the labeled
// digraph is acyclic and every non-root's level is strictly below its
// parent's level.
func (s *state) checkInvariants() error {
	if err := s.d.CheckAcyclic(); err != nil {
		return err
	}
	for v := 0; v < s.n; v++ {
		p := s.d.Parent[v]
		if p == int32(v) {
			continue
		}
		if s.level[v] >= s.level[p] {
			return fmt.Errorf("core: Lemma 3.2 violated: non-root %d has level %d >= parent %d's level %d",
				v, s.level[v], p, s.level[p])
		}
	}
	return nil
}

func ceilLog2(n int) int {
	l := 0
	for x := 1; x < n; x <<= 1 {
		l++
	}
	return l
}
