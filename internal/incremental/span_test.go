package incremental

import (
	"context"
	"math/rand"
	"testing"

	"repro/graph"
	"repro/internal/baseline"
	"repro/internal/check"
	"repro/internal/native"
)

// TestAddSpanMatchesAddEdges: replaying the same graph through the
// columnar span path and the boxed pair path must produce the exact
// same labels — and both must match the one-shot native engine — for
// every structural family and across random batch splits.
func TestAddSpanMatchesAddEdges(t *testing.T) {
	for name, g := range zoo() {
		t.Run(name, func(t *testing.T) {
			want := native.Components(g, native.Options{}).Labels
			rng := rand.New(rand.NewSource(19))
			for trial := 0; trial < 3; trial++ {
				k := 1 + rng.Intn(9)
				spanEng := New(g.N, Options{Workers: 1 + rng.Intn(8)})
				for _, b := range g.SpanBatches(k) {
					if _, err := spanEng.AddSpan(b); err != nil {
						t.Fatal(err)
					}
				}
				pairEng := New(g.N, Options{Workers: 1 + rng.Intn(8)})
				for _, b := range g.EdgeBatches(k) {
					if _, err := pairEng.AddEdges(b); err != nil {
						t.Fatal(err)
					}
				}
				spanLabels := spanEng.Snapshot().Labels
				pairLabels := pairEng.Snapshot().Labels
				for v := range want {
					if spanLabels[v] != want[v] || pairLabels[v] != want[v] {
						t.Fatalf("trial %d (k=%d): label[%d] span=%d pairs=%d native=%d",
							trial, k, v, spanLabels[v], pairLabels[v], want[v])
					}
				}
				spanEng.Close()
				pairEng.Close()
			}
		})
	}
}

// TestAddSpanRejects: malformed spans are rejected whole, with no
// partial application and no snapshot advance.
func TestAddSpanRejects(t *testing.T) {
	e := New(4, Options{Workers: 2})
	defer e.Close()
	before := e.Snapshot()
	bad := map[string]graph.EdgeSpan{
		"column length mismatch": {U: []int32{0, 1}, V: []int32{1}},
		"odd arc count":          {U: []int32{0}, V: []int32{1}},
		"out of range":           {U: []int32{0, 1, 2, 9}, V: []int32{1, 0, 9, 2}},
		"negative endpoint":      {U: []int32{0, 1, -1, 2}, V: []int32{1, 0, 2, -1}},
	}
	for name, s := range bad {
		if _, err := e.AddSpan(s); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if e.Snapshot() != before {
		t.Fatal("rejected span advanced the snapshot")
	}
	if e.SameComponent(0, 1) {
		t.Fatal("rejected span was partially applied")
	}
}

// TestAddSpanDegenerate: empty spans publish (batch bookkeeping
// advances), self-loops and parallel edges are absorbed, and the
// mirror arcs of a span are never consulted by ingestion.
func TestAddSpanDegenerate(t *testing.T) {
	e := New(5, Options{Workers: 3})
	defer e.Close()
	if s, err := e.AddSpan(graph.EdgeSpan{}); err != nil || s.Batches != 1 || s.Components != 5 {
		t.Fatalf("empty span: %+v, %v", s, err)
	}
	s, err := e.AddSpan(graph.FromPairs([][2]int{{2, 2}, {0, 1}, {1, 0}, {0, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if s.Components != 4 || s.Edges != 4 || s.Batches != 2 {
		t.Fatalf("degenerate span snapshot: %+v", s)
	}
	if !e.SameComponent(0, 1) || e.SameComponent(0, 2) {
		t.Fatal("SameComponent wrong after degenerate span")
	}
}

// TestAddSpanContextCancelled: the cancellation contract of the span
// path matches AddEdgesContext — nothing published, idempotent
// completion on resubmission.
func TestAddSpanContextCancelled(t *testing.T) {
	g := graph.Gnm(3000, 12000, 23)
	e := New(g.N, Options{Workers: 2})
	defer e.Close()
	batches := g.SpanBatches(3)
	if _, err := e.AddSpan(batches[0]); err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AddSpanContext(ctx, batches[1]); err != context.Canceled {
		t.Fatalf("AddSpanContext = %v, want context.Canceled", err)
	}
	if e.Snapshot() != before {
		t.Fatal("cancelled span advanced the snapshot")
	}
	for _, b := range batches[1:] {
		if _, err := e.AddSpan(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := check.SamePartition(e.Snapshot().Labels, baseline.Components(g)); err != nil {
		t.Fatal(err)
	}
}

// TestSpanIngestZeroAlloc pins the tentpole property: the replay
// layer between a span and the union-find — validation plus the
// sharded ingest through the pre-bound worker — performs zero heap
// allocations. Only snapshot publication (the labels slice and the
// Snapshot struct, measured separately) allocates per batch.
//
// ingestSpan also carries the observability instrumentation (batch and
// edge counters, plus the sink-gated batch event), so this test doubly
// pins the no-sink-is-free contract: the counters must advance inside
// the measured region while the region still allocates nothing.
func TestSpanIngestZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not exact under the race detector")
	}
	g := graph.Gnm(20000, 80000, 31)
	e := New(g.N, Options{})
	defer e.Close()
	span := g.Span()
	ctx := context.Background()
	// Warm: the forest absorbs the edges once; re-ingesting the same
	// span is idempotent, so steady state re-runs the full union scan.
	if _, err := e.AddSpanContext(ctx, span); err != nil {
		t.Fatal(err)
	}
	const runs = 10
	batchesBefore, edgesBefore := mBatches.Value(), mEdges.Value()
	if avg := testing.AllocsPerRun(runs, func() {
		if err := e.validateSpan(span); err != nil {
			t.Fatal(err)
		}
		if err := e.ingestSpan(ctx, span); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("span replay layer allocates %.1f times per batch, want 0", avg)
	}
	// AllocsPerRun executes runs+1 iterations (one warmup). Other tests
	// may ingest concurrently with -parallel, hence >= not ==.
	if d := mBatches.Value() - batchesBefore; d < runs+1 {
		t.Errorf("pramcc_uf_batches_total advanced by %d inside the zero-alloc region, want >= %d", d, runs+1)
	}
	if d := mEdges.Value() - edgesBefore; d < int64(runs+1)*int64(span.Len()) {
		t.Errorf("pramcc_uf_edges_total advanced by %d inside the zero-alloc region, want >= %d", d, int64(runs+1)*int64(span.Len()))
	}
}

// BenchmarkEngineIngestSpan / BenchmarkEngineIngestPairs: the replay
// comparison at the engine layer (fresh forest per iteration, batch
// construction included — the quantity experiment E14 sweeps at full
// scale and scripts/bench_baseline.sh tracks).
func BenchmarkEngineIngestSpan(b *testing.B) {
	g := graph.Gnm(100000, 400000, 42)
	b.SetBytes(int64(g.NumEdges()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(g.N, Options{})
		for _, batch := range g.SpanBatches(16) {
			if _, err := e.AddSpan(batch); err != nil {
				b.Fatal(err)
			}
		}
		e.Close()
	}
}

func BenchmarkEngineIngestPairs(b *testing.B) {
	g := graph.Gnm(100000, 400000, 42)
	b.SetBytes(int64(g.NumEdges()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(g.N, Options{})
		for _, batch := range g.EdgeBatches(16) {
			if _, err := e.AddEdges(batch); err != nil {
				b.Fatal(err)
			}
		}
		e.Close()
	}
}
