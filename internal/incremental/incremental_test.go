package incremental

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/graph"
	"repro/internal/baseline"
	"repro/internal/check"
	"repro/internal/native"
)

// zoo is a compact generator spread: every structural family the
// engine could plausibly mishandle (deep paths, stars, dense cliques,
// multigraphs, isolated vertices, multiple components).
func zoo() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":        graph.Path(300),
		"star":        graph.Star(200),
		"grid2d":      graph.Grid2D(17, 23),
		"clique":      graph.Clique(40),
		"gnm":         graph.Gnm(2500, 8000, 7),
		"gnm-sparse":  graph.Gnm(2000, 700, 8),
		"rmat":        graph.RMAT(1024, 4000, 9),
		"beads":       graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 24, Size: 10, IntraDeg: 6, Bridges: 2, Seed: 5}),
		"disjoint":    graph.DisjointUnion(graph.Path(80), graph.Clique(15), graph.Gnm(400, 1200, 11)),
		"isolated":    graph.WithIsolated(graph.Grid2D(8, 8), 13),
		"caterpillar": graph.Caterpillar(40, 3),
	}
}

// TestEngineMatchesNativeLabels: one-batch ingestion must produce the
// exact labels of the native engine (both canonicalize to component
// minima), not merely the same partition.
func TestEngineMatchesNativeLabels(t *testing.T) {
	for name, g := range zoo() {
		t.Run(name, func(t *testing.T) {
			e := New(g.N, Options{})
			defer e.Close()
			snap := e.AddGraph(g)
			nat := native.Components(g, native.Options{})
			if len(snap.Labels) != len(nat.Labels) {
				t.Fatalf("label lengths differ: %d vs %d", len(snap.Labels), len(nat.Labels))
			}
			for v := range snap.Labels {
				if snap.Labels[v] != nat.Labels[v] {
					t.Fatalf("label[%d] = %d, native %d", v, snap.Labels[v], nat.Labels[v])
				}
			}
			if err := check.SamePartition(snap.Labels, baseline.Components(g)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBatchSplitInvariance: the final partition must not depend on how
// the edge stream is cut into batches, on the batch sizes, or on the
// (shuffled) edge order within the stream.
func TestBatchSplitInvariance(t *testing.T) {
	for name, g := range zoo() {
		t.Run(name, func(t *testing.T) {
			want := native.Components(g, native.Options{}).Labels
			rng := rand.New(rand.NewSource(42))
			edges := g.Edges()
			for trial := 0; trial < 4; trial++ {
				rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
				e := New(g.N, Options{Workers: 1 + rng.Intn(8)})
				// Random cut points: between 1 and 7 batches of random sizes.
				for lo := 0; lo < len(edges); {
					hi := lo + 1 + rng.Intn(len(edges)-lo)
					e.AddEdges(edges[lo:hi])
					lo = hi
				}
				snap := e.Snapshot()
				for v := range want {
					if snap.Labels[v] != want[v] {
						t.Fatalf("trial %d: label[%d] = %d, want %d", trial, v, snap.Labels[v], want[v])
					}
				}
				if got := countDistinct(want); snap.Components != got {
					t.Fatalf("trial %d: %d components, want %d", trial, snap.Components, got)
				}
				e.Close()
			}
		})
	}
}

func countDistinct(labels []int32) int {
	seen := map[int32]struct{}{}
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// TestSnapshotMonotonicity: the component count never increases as
// batches arrive, and queries between batches reflect exactly the
// edges ingested so far (checked against a union-find replay).
func TestSnapshotMonotonicity(t *testing.T) {
	g := graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 16, Size: 8, IntraDeg: 5, Bridges: 1, Seed: 3})
	e := New(g.N, Options{})
	defer e.Close()
	if e.ComponentCount() != g.N {
		t.Fatalf("empty engine has %d components, want %d", e.ComponentCount(), g.N)
	}
	uf := baseline.NewUnionFind(g.N)
	prev := g.N
	for _, batch := range g.EdgeBatches(9) {
		snap, err := e.AddEdges(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, ed := range batch {
			uf.Union(int32(ed[0]), int32(ed[1]))
		}
		if snap.Components > prev {
			t.Fatalf("component count rose from %d to %d", prev, snap.Components)
		}
		prev = snap.Components
		oracle := make([]int32, g.N)
		for v := range oracle {
			oracle[v] = uf.Find(int32(v))
		}
		if err := check.SamePartition(snap.Labels, oracle); err != nil {
			t.Fatalf("mid-stream snapshot wrong: %v", err)
		}
	}
}

// TestConcurrentQueriesDuringIngest: SameComponent/ComponentCount/
// Snapshot racing an in-flight AddEdges must be safe (the race
// detector is the assertion) and must only ever observe consistent
// batch-boundary states: a snapshot's component count always matches
// its labels.
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	g := graph.Gnm(4000, 20000, 21)
	e := New(g.N, Options{})
	defer e.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := e.Snapshot()
				if got := countDistinct(s.Labels); got != s.Components {
					t.Errorf("inconsistent snapshot: %d distinct labels, Components=%d", got, s.Components)
					return
				}
				_ = e.SameComponent(r, g.N-1-r)
			}
		}(r)
	}
	for _, batch := range g.EdgeBatches(50) {
		e.AddEdges(batch)
	}
	close(stop)
	wg.Wait()
	if err := check.SamePartition(e.Snapshot().Labels, baseline.Components(g)); err != nil {
		t.Fatal(err)
	}
}

// TestDegenerateInputs: empty graphs, self-loops, parallel edges,
// empty batches.
func TestDegenerateInputs(t *testing.T) {
	e := New(0, Options{})
	if s, err := e.AddEdges(nil); err != nil || s.Components != 0 || s.Batches != 1 {
		t.Fatalf("empty engine snapshot: %+v, %v", s, err)
	}
	e.Close()

	e = New(5, Options{Workers: 3})
	defer e.Close()
	e.AddEdges(nil) // empty batch still publishes
	if e.Batches() != 1 || e.ComponentCount() != 5 {
		t.Fatalf("after empty batch: batches=%d components=%d", e.Batches(), e.ComponentCount())
	}
	snap, err := e.AddEdges([][2]int{{2, 2}, {0, 1}, {1, 0}, {0, 1}}) // self-loop + parallels
	if err != nil {
		t.Fatal(err)
	}
	if snap.Components != 4 {
		t.Fatalf("components = %d, want 4", snap.Components)
	}
	if snap.Edges != 4 || snap.Batches != 2 {
		t.Fatalf("snapshot bookkeeping: %+v", snap)
	}
	if !e.SameComponent(0, 1) || e.SameComponent(0, 2) {
		t.Fatal("SameComponent wrong after degenerate batch")
	}

	if _, err := e.AddEdges([][2]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	// A rejected batch must not be applied even partially: the valid
	// {0,2} edge precedes the bad one, yet 2 must stay isolated.
	if _, err := e.AddEdges([][2]int{{0, 2}, {-1, 2}}); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	if e.SameComponent(0, 2) || e.Batches() != 2 {
		t.Fatal("rejected batch was partially applied")
	}
}

// TestWorkerCounts: every worker count gives the same labels.
func TestWorkerCounts(t *testing.T) {
	g := graph.Gnm(3000, 9000, 17)
	want := native.Components(g, native.Options{}).Labels
	for _, w := range []int{1, 2, 3, 7, 16} {
		e := New(g.N, Options{Workers: w})
		snap := e.AddGraph(g)
		for v := range want {
			if snap.Labels[v] != want[v] {
				t.Fatalf("workers=%d: label[%d] = %d, want %d", w, v, snap.Labels[v], want[v])
			}
		}
		if e.Workers() != w {
			t.Fatalf("Workers() = %d, want %d", e.Workers(), w)
		}
		e.Close()
	}
}

func BenchmarkIncrementalOneBatch(b *testing.B) {
	g := graph.Gnm(100000, 400000, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(g.N, Options{})
		e.AddGraph(g)
		e.Close()
	}
}

func BenchmarkIncrementalStream16(b *testing.B) {
	g := graph.Gnm(100000, 400000, 42)
	batches := g.EdgeBatches(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(g.N, Options{})
		for _, batch := range batches {
			e.AddEdges(batch)
		}
		e.Close()
	}
}

// BenchmarkIncrementalAppendBatch measures the steady-state cost of
// one small append batch against an already-built labeling — the
// latency a streaming consumer actually pays per update.
func BenchmarkIncrementalAppendBatch(b *testing.B) {
	g := graph.Gnm(100000, 400000, 42)
	e := New(g.N, Options{})
	defer e.Close()
	e.AddGraph(g)
	rng := rand.New(rand.NewSource(7))
	batch := make([][2]int, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = [2]int{rng.Intn(g.N), rng.Intn(g.N)}
		}
		e.AddEdges(batch)
	}
}

// TestEngineReset: a Reset engine (buffer and pool reuse) must be
// indistinguishable from a freshly built one, across shrinking and
// growing vertex counts.
func TestEngineReset(t *testing.T) {
	e := New(0, Options{Workers: 3})
	defer e.Close()
	graphs := []*graph.Graph{
		graph.Gnm(2000, 6000, 1),
		graph.Path(301),
		graph.Gnm(5000, 1200, 2),
	}
	for i, g := range graphs {
		e.Reset(g.N)
		if e.N() != g.N || e.ComponentCount() != g.N || e.Batches() != 0 || e.EdgesIngested() != 0 {
			t.Fatalf("graph %d: reset state wrong: n=%d comps=%d batches=%d edges=%d",
				i, e.N(), e.ComponentCount(), e.Batches(), e.EdgesIngested())
		}
		snap := e.AddGraph(g)
		if snap.Batches != 1 {
			t.Fatalf("graph %d: batches=%d after one AddGraph", i, snap.Batches)
		}
		if err := check.SamePartition(snap.Labels, baseline.Components(g)); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
	}
}

// TestEngineGrow: Grow preserves components, isolates the new
// vertices, and lets later batches connect them.
func TestEngineGrow(t *testing.T) {
	e := New(10, Options{Workers: 2})
	defer e.Close()
	if _, err := e.AddEdges([][2]int{{0, 1}, {1, 2}}); err != nil {
		t.Fatal(err)
	}
	e.Grow(12)
	e.Grow(5) // no-op shrink attempt
	if e.N() != 12 {
		t.Fatalf("N after grow = %d", e.N())
	}
	snap, err := e.AddEdges([][2]int{{2, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Labels) != 12 {
		t.Fatalf("snapshot over %d vertices, want 12", len(snap.Labels))
	}
	if snap.Labels[10] != snap.Labels[0] || snap.Labels[11] != 11 {
		t.Fatalf("grown-vertex labels wrong: %v", snap.Labels)
	}
	// 12 vertices, component {0,1,2,10}, 8 singletons => 9 components.
	if snap.Components != 9 {
		t.Fatalf("components = %d, want 9", snap.Components)
	}
}

// TestAddEdgesContextCancelled: a cancelled batch publishes nothing —
// queries keep seeing the previous batch boundary — and re-submitting
// the batch completes it exactly (unions are idempotent).
func TestAddEdgesContextCancelled(t *testing.T) {
	g := graph.Gnm(3000, 12000, 17)
	e := New(g.N, Options{Workers: 2})
	defer e.Close()
	batches := g.EdgeBatches(3)
	if _, err := e.AddEdges(batches[0]); err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AddEdgesContext(ctx, batches[1]); err != context.Canceled {
		t.Fatalf("AddEdgesContext = %v, want context.Canceled", err)
	}
	if e.Snapshot() != before {
		t.Fatal("cancelled batch advanced the snapshot")
	}
	for _, b := range batches[1:] {
		if _, err := e.AddEdges(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := check.SamePartition(e.Snapshot().Labels, baseline.Components(g)); err != nil {
		t.Fatal(err)
	}
}
