//go:build race

package incremental

// raceEnabled: see race_off.go.
const raceEnabled = true
