//go:build !race

package incremental

// raceEnabled reports whether the race detector instruments this
// build. The zero-allocation regression tests consult it: the
// detector's shadow-memory bookkeeping shows up in allocation counts,
// so the exact-zero assertions only run on uninstrumented builds.
const raceEnabled = false
