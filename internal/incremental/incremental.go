// Package incremental is the streaming execution backend: a concurrent
// union-find engine that maintains a live component labeling while
// edges arrive in batches, so component queries stay fresh without
// recomputing from scratch on every update.
//
// The data structure is a lock-free disjoint-set forest (Jayanti–
// Tarjan style): parents are updated only with compare-and-swap,
// roots are linked by index (the larger root is CASed under the
// smaller), and finds do path splitting (each visited node is CASed
// from its parent to its grandparent). Three invariants make every
// interleaving safe:
//
//  1. parent[x] ≤ x always — links attach larger roots under smaller
//     ones and splitting replaces a parent with an ancestor, so parent
//     chains strictly decrease and can never form a cycle;
//  2. a link CAS succeeds only while the target is still a root, so a
//     lost race just means someone else linked first and the union
//     retries from the new roots;
//  3. parent[x] always names a vertex of x's component, so no CAS can
//     merge components that share no edge.
//
// Batches are ingested by sharding the edge range over a reusable
// internal/native worker pool (contiguous grain-sized chunks claimed
// off an atomic cursor). After the pool barrier at the end of each
// batch, every component ingested so far is a single tree whose root
// is the minimum vertex id of the component — the same canonical
// labeling the one-shot native engine produces — and the engine
// flattens the forest into a fresh labels slice published via an
// atomic pointer. A batch therefore costs Θ(batch) near-constant-time
// unions plus a Θ(n) flatten-and-publish pass: the per-update price of
// snapshot-consistent O(1) queries. What streaming saves over
// recompute-per-batch is the repeated multi-round Θ(n + m) scans of
// the whole edge set, not the per-vertex pass. Queries (SameComponent, ComponentCount, Snapshot)
// read whichever snapshot is currently published, so they are safe to
// call concurrently with an in-flight AddEdges and always observe a
// consistent batch boundary, never a half-ingested batch. AddEdges
// itself must be called from one goroutine at a time.
package incremental

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/graph"
	"repro/internal/native"
)

// grain is the number of edges or vertices a worker claims per fetch
// of the shared cursor, as in the one-shot native engine.
const grain = 4096

// Options configures an engine.
type Options struct {
	// Workers is the goroutine count of the batch pool; 0 selects
	// GOMAXPROCS.
	Workers int
}

// Snapshot is a consistent view of the labeling as of a batch
// boundary. Labels is shared and must not be modified.
type Snapshot struct {
	// Labels assigns every vertex its component representative (the
	// minimum vertex id of the component, as in the native engine).
	Labels []int32
	// Components is the number of distinct labels.
	Components int
	// Batches is how many batches had been ingested when this
	// snapshot was taken.
	Batches int
	// Edges is the total number of edges ingested across all batches.
	Edges int64
}

// Engine is a concurrent union-find maintaining connected components
// under streaming edge batches. Queries may run concurrently with one
// AddEdges/AddGraph call; ingestion itself is single-writer.
type Engine struct {
	n      int
	parent []int32 // CAS-only disjoint-set forest, parent[x] <= x
	pool   *native.Pool
	snap   atomic.Pointer[Snapshot]

	batches int
	edges   int64
}

// New returns an engine over n isolated vertices with a live worker
// pool. Close must be called to release the pool's goroutines.
func New(n int, opt Options) *Engine {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		n:      n,
		parent: make([]int32, n),
		pool:   native.NewPool(workers),
	}
	labels := make([]int32, n)
	for i := range labels {
		e.parent[i] = int32(i)
		labels[i] = int32(i)
	}
	e.snap.Store(&Snapshot{Labels: labels, Components: n})
	return e
}

// Workers returns the resolved worker count of the batch pool.
func (e *Engine) Workers() int { return e.pool.Workers() }

// N returns the vertex count.
func (e *Engine) N() int { return e.n }

// Close releases the worker pool. The engine's snapshot remains
// queryable; further AddEdges calls are invalid.
func (e *Engine) Close() { e.pool.Close() }

// Snapshot returns the labeling as of the last completed batch.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// SameComponent reports whether v and w are connected by the edges
// ingested up to the last completed batch.
func (e *Engine) SameComponent(v, w int) bool {
	s := e.snap.Load()
	return s.Labels[v] == s.Labels[w]
}

// ComponentCount returns the number of components as of the last
// completed batch.
func (e *Engine) ComponentCount() int { return e.snap.Load().Components }

// Batches returns how many batches have been ingested.
func (e *Engine) Batches() int { return e.snap.Load().Batches }

// EdgesIngested returns the total edge count across all batches.
func (e *Engine) EdgesIngested() int64 { return e.snap.Load().Edges }

// AddEdges ingests one batch of undirected edges and publishes a new
// snapshot. A batch with an endpoint outside [0, n) is rejected whole
// — the error names the offending edge and nothing is applied.
func (e *Engine) AddEdges(edges [][2]int) (*Snapshot, error) {
	for i, ed := range edges {
		if ed[0] < 0 || ed[0] >= e.n || ed[1] < 0 || ed[1] >= e.n {
			return nil, fmt.Errorf("incremental: batch edge %d = {%d,%d} out of range [0,%d)", i, ed[0], ed[1], e.n)
		}
	}
	e.ingest(len(edges), func(i int) (int32, int32) {
		return int32(edges[i][0]), int32(edges[i][1])
	})
	return e.publish(int64(len(edges))), nil
}

// AddGraph ingests every edge of g as one batch. g must have the same
// vertex count the engine was created with; its edges are in range by
// the graph package's own construction-time validation.
func (e *Engine) AddGraph(g *graph.Graph) *Snapshot {
	if g.N != e.n {
		panic("incremental: graph vertex count mismatch")
	}
	// Arcs come in mirror pairs; arc 2i covers undirected edge i.
	e.ingest(g.NumEdges(), func(i int) (int32, int32) {
		return g.U[2*i], g.V[2*i]
	})
	return e.publish(int64(g.NumEdges()))
}

// ingest shards [0, total) over the pool and unions each edge.
func (e *Engine) ingest(total int, edge func(i int) (int32, int32)) {
	if total == 0 {
		return
	}
	var cursor atomic.Int64
	e.pool.Run(func(int) {
		for {
			lo := int(cursor.Add(grain)) - grain
			if lo >= total {
				return
			}
			hi := lo + grain
			if hi > total {
				hi = total
			}
			for i := lo; i < hi; i++ {
				u, v := edge(i)
				e.union(u, v)
			}
		}
	})
}

// publish flattens the forest into a fresh snapshot. It runs after the
// ingest barrier, so every tree is stable: finds during the flatten
// only compress paths, never change roots.
func (e *Engine) publish(edges int64) *Snapshot {
	e.batches++
	e.edges += edges
	labels := make([]int32, e.n)
	var roots atomic.Int64
	var cursor atomic.Int64
	e.pool.Run(func(int) {
		local := int64(0)
		for {
			lo := int(cursor.Add(grain)) - grain
			if lo >= e.n {
				break
			}
			hi := lo + grain
			if hi > e.n {
				hi = e.n
			}
			for v := lo; v < hi; v++ {
				r := e.find(int32(v))
				labels[v] = r
				if r == int32(v) {
					local++
				}
			}
		}
		if local != 0 {
			roots.Add(local)
		}
	})
	s := &Snapshot{
		Labels:     labels,
		Components: int(roots.Load()),
		Batches:    e.batches,
		Edges:      e.edges,
	}
	e.snap.Store(s)
	return s
}

// find returns the root of x with path splitting: each visited node is
// CASed from its parent to its grandparent. A failed CAS means a racing
// find already improved the pointer; either way progress is monotone
// because parents strictly decrease along every path.
func (e *Engine) find(x int32) int32 {
	for {
		p := atomic.LoadInt32(&e.parent[x])
		if p == x {
			return x
		}
		gp := atomic.LoadInt32(&e.parent[p])
		if gp == p {
			return p
		}
		atomic.CompareAndSwapInt32(&e.parent[x], p, gp)
		x = gp
	}
}

// union links the roots of u and v by index: the larger root is CASed
// under the smaller, which preserves parent[x] ≤ x and therefore
// acyclicity on every interleaving. A lost race means another worker
// linked one of the roots first; retry from the new roots.
func (e *Engine) union(u, v int32) {
	for {
		ru, rv := e.find(u), e.find(v)
		if ru == rv {
			return
		}
		if ru > rv {
			ru, rv = rv, ru
		}
		if atomic.CompareAndSwapInt32(&e.parent[rv], rv, ru) {
			return
		}
		u, v = ru, rv
	}
}
