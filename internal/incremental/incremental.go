// Package incremental is the streaming execution backend: a concurrent
// union-find engine that maintains a live component labeling while
// edges arrive in batches, so component queries stay fresh without
// recomputing from scratch on every update.
//
// The data structure is a lock-free disjoint-set forest (Jayanti–
// Tarjan style): parents are updated only with compare-and-swap,
// roots are linked by index (the larger root is CASed under the
// smaller), and finds do path splitting (each visited node is CASed
// from its parent to its grandparent). Three invariants make every
// interleaving safe:
//
//  1. parent[x] ≤ x always — links attach larger roots under smaller
//     ones and splitting replaces a parent with an ancestor, so parent
//     chains strictly decrease and can never form a cycle;
//  2. a link CAS succeeds only while the target is still a root, so a
//     lost race just means someone else linked first and the union
//     retries from the new roots;
//  3. parent[x] always names a vertex of x's component, so no CAS can
//     merge components that share no edge.
//
// Batches are ingested by sharding the edge range over the
// locality-aware grain-claim scheduler in internal/pool (contiguous
// chunks claimed off per-worker range cursors, with stealing after a
// worker's sticky home range is exhausted). After the pool barrier at
// the end of each
// batch, every component ingested so far is a single tree whose root
// is the minimum vertex id of the component — the same canonical
// labeling the one-shot native engine produces — and the engine
// flattens the forest into a fresh labels slice published via an
// atomic pointer. A batch therefore costs Θ(batch) near-constant-time
// unions plus a Θ(n) flatten-and-publish pass: the per-update price of
// snapshot-consistent O(1) queries. What streaming saves over
// recompute-per-batch is the repeated multi-round Θ(n + m) scans of
// the whole edge set, not the per-vertex pass. Queries (SameComponent, ComponentCount, Snapshot)
// read whichever snapshot is currently published, so they are safe to
// call concurrently with an in-flight AddEdges and always observe a
// consistent batch boundary, never a half-ingested batch. AddEdges
// itself must be called from one goroutine at a time.
package incremental

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/graph"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Union-find ingest metrics, process-wide across engines. The adds sit
// inside the sharded-ingest path — the region TestSpanIngestZeroAlloc
// pins at zero allocations — which is exactly why they are plain
// atomic counters and the event envelope is gated on an attached sink.
var (
	mBatches = obs.Default.Counter("pramcc_uf_batches_total",
		"edge batches absorbed by the streaming union-find")
	mEdges = obs.Default.Counter("pramcc_uf_edges_total",
		"edges unioned into the streaming union-find")
)

// Options configures an engine.
type Options struct {
	// Workers is the goroutine count of the batch pool; 0 selects
	// GOMAXPROCS.
	Workers int
	// Grain is the number of edges or vertices a worker claims per
	// fetch of a range cursor; 0 derives pool.AdaptiveGrain from the
	// batch size and worker count.
	Grain int
	// NoAffinity disables the sticky range-to-worker assignment and
	// claims from one shared cursor (the pre-scheduler behavior; kept
	// for the E17 ablation).
	NoAffinity bool
}

// Snapshot is a consistent view of the labeling as of a batch
// boundary. Labels is shared and must not be modified.
type Snapshot struct {
	// Labels assigns every vertex its component representative (the
	// minimum vertex id of the component, as in the native engine).
	Labels []int32
	// Components is the number of distinct labels.
	Components int
	// Batches is how many batches had been ingested when this
	// snapshot was taken.
	Batches int
	// Edges is the total number of edges ingested across all batches.
	Edges int64
}

// Engine is a concurrent union-find maintaining connected components
// under streaming edge batches. Queries may run concurrently with one
// AddEdges/AddGraph/AddSpan call; ingestion itself is single-writer.
type Engine struct {
	n      int
	parent []int32 // CAS-only disjoint-set forest, parent[x] <= x
	pool   *pool.Pool
	snap   atomic.Pointer[Snapshot]

	grain      int
	noAffinity bool

	batches int
	edges   int64

	// Span-ingest state, written by the single writer between pool
	// barriers only. The chunk bodies are bound once at construction
	// so a steady-state span batch allocates nothing on the ingest
	// path (the native.Engine discipline): spanChunk unions the
	// columns of [spanU, spanV], pubChunk flattens the forest into
	// pubLabels. The claim cursors live in the scheduler.
	spanU, spanV []int32
	spanCtx      context.Context
	spanChunk    func(worker, lo, hi int) bool

	pubLabels []int32
	pubRoots  atomic.Int64
	pubChunk  func(worker, lo, hi int) bool
}

// New returns an engine over n isolated vertices with a live worker
// pool. Close must be called to release the pool's goroutines.
func New(n int, opt Options) *Engine {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{pool: pool.New(workers), grain: opt.Grain, noAffinity: opt.NoAffinity}
	e.spanChunk = e.spanChunkBody
	e.pubChunk = e.pubChunkBody
	e.Reset(n)
	return e
}

// Reset discards the ingested state and re-initialises the engine over
// n isolated vertices, reusing the parent buffer (and keeping the
// worker pool alive) when capacity allows. It publishes a fresh
// identity snapshot; snapshots handed out earlier stay valid. Reset is
// a writer operation: it must not race AddEdges/AddGraph.
func (e *Engine) Reset(n int) {
	if cap(e.parent) >= n {
		e.parent = e.parent[:n]
	} else {
		e.parent = make([]int32, n)
	}
	e.n = n
	labels := make([]int32, n)
	for i := range labels {
		e.parent[i] = int32(i)
		labels[i] = int32(i)
	}
	e.batches, e.edges = 0, 0
	e.snap.Store(&Snapshot{Labels: labels, Components: n})
}

// RestoreLabels discards the ingested state and re-initialises the
// forest to the exact components of a previously published labeling,
// republishing it as the current snapshot. labels must be a canonical
// engine labeling (labels[v] is the minimum vertex id of v's
// component), which makes it directly usable as a depth-one parent
// forest. This is the recovery path for a writer whose destructive
// rebuild (Reset + re-ingest) was cancelled midway: the live labeling
// snaps back to the snapshot the readers never stopped seeing. Writer
// operation, like Reset.
func (e *Engine) RestoreLabels(labels []int32) {
	n := len(labels)
	if cap(e.parent) >= n {
		e.parent = e.parent[:n]
	} else {
		e.parent = make([]int32, n)
	}
	e.n = n
	copy(e.parent, labels)
	snap := make([]int32, n)
	copy(snap, labels)
	comps := 0
	for v, l := range labels {
		if int(l) == v {
			comps++
		}
	}
	e.batches, e.edges = 0, 0
	e.snap.Store(&Snapshot{Labels: snap, Components: comps})
}

// Grow extends the vertex set to n, preserving every component built
// so far; the new vertices are isolated. A no-op when n ≤ N(). Grow is
// a writer operation like AddEdges; the published snapshot is not
// advanced (the new vertices appear in the snapshot after the next
// completed batch).
func (e *Engine) Grow(n int) {
	if n <= e.n {
		return
	}
	if cap(e.parent) >= n {
		e.parent = e.parent[:n]
	} else {
		parent := make([]int32, n)
		copy(parent, e.parent)
		e.parent = parent
	}
	for v := e.n; v < n; v++ {
		e.parent[v] = int32(v)
	}
	e.n = n
}

// Workers returns the resolved worker count of the batch pool.
func (e *Engine) Workers() int { return e.pool.Workers() }

// Grain returns the configured claim grain (0 = adaptive).
func (e *Engine) Grain() int { return e.grain }

// N returns the vertex count.
//
//pramcc:zeroalloc
func (e *Engine) N() int { return e.n }

// Close releases the worker pool. The engine's snapshot remains
// queryable; further AddEdges calls are invalid.
func (e *Engine) Close() { e.pool.Close() }

// Snapshot returns the labeling as of the last completed batch.
//
//pramcc:zeroalloc
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// SameComponent reports whether v and w are connected by the edges
// ingested up to the last completed batch.
//
//pramcc:zeroalloc
func (e *Engine) SameComponent(v, w int) bool {
	s := e.snap.Load()
	return s.Labels[v] == s.Labels[w]
}

// ComponentCount returns the number of components as of the last
// completed batch.
//
//pramcc:zeroalloc
func (e *Engine) ComponentCount() int { return e.snap.Load().Components }

// Batches returns how many batches have been ingested.
func (e *Engine) Batches() int { return e.snap.Load().Batches }

// EdgesIngested returns the total edge count across all batches.
func (e *Engine) EdgesIngested() int64 { return e.snap.Load().Edges }

// AddEdges ingests one batch of undirected edges and publishes a new
// snapshot. A batch with an endpoint outside [0, n) is rejected whole
// — the error names the offending edge and nothing is applied.
func (e *Engine) AddEdges(edges [][2]int) (*Snapshot, error) {
	return e.AddEdgesContext(context.Background(), edges)
}

// AddEdgesContext is AddEdges with cancellation: ctx is checked before
// any work and at every chunk boundary of the sharded ingest. On
// cancellation no snapshot is published and ctx.Err() is returned —
// queries keep observing the last completed batch, never a partial
// one. The cancelled batch may have been partially unioned into the
// (unpublished) forest; because unions are idempotent, re-submitting
// the same batch after cancellation yields exactly the labeling the
// uncancelled call would have produced.
func (e *Engine) AddEdgesContext(ctx context.Context, edges [][2]int) (*Snapshot, error) {
	for i, ed := range edges {
		if ed[0] < 0 || ed[0] >= e.n || ed[1] < 0 || ed[1] >= e.n {
			return nil, fmt.Errorf("incremental: batch edge %d = {%d,%d} out of range [0,%d)", i, ed[0], ed[1], e.n)
		}
	}
	if err := e.ingest(ctx, len(edges), func(i int) (int32, int32) {
		return int32(edges[i][0]), int32(edges[i][1])
	}); err != nil {
		return nil, err
	}
	return e.publish(int64(len(edges))), nil
}

// AddGraph ingests every edge of g as one batch. g must have the same
// vertex count the engine was created with; its edges are in range by
// the graph package's own construction-time validation.
func (e *Engine) AddGraph(g *graph.Graph) *Snapshot {
	s, _ := e.AddGraphContext(context.Background(), g)
	return s
}

// AddGraphContext is AddGraph with the cancellation semantics of
// AddEdgesContext. It rides the columnar span path: the graph's arc
// columns are sharded over the pool directly, with no per-edge
// accessor indirection and no validation pass (the graph's own
// construction already guarantees its endpoints).
func (e *Engine) AddGraphContext(ctx context.Context, g *graph.Graph) (*Snapshot, error) {
	if g.N != e.n {
		panic("incremental: graph vertex count mismatch")
	}
	if err := e.ingestSpan(ctx, g.Span()); err != nil {
		return nil, err
	}
	return e.publish(int64(g.NumEdges())), nil
}

// AddSpan ingests one batch given as a columnar arc-pair span and
// publishes a new snapshot — the zero-copy twin of AddEdges: the
// span's columns are sharded over the worker pool as-is, so a batch
// sliced from a Graph (SpanBatches) or a loader span reaches the
// union-find with no copy, no boxing, and no per-edge allocation. A
// span with an even-arc endpoint outside [0, n) is rejected whole —
// the error names the offending edge and nothing is applied.
func (e *Engine) AddSpan(span graph.EdgeSpan) (*Snapshot, error) {
	return e.AddSpanContext(context.Background(), span)
}

// AddSpanContext is AddSpan with the cancellation semantics of
// AddEdgesContext: checked before any work and at every chunk
// boundary; on cancellation no snapshot is published, and
// re-submitting the span completes the cancelled batch exactly
// (unions are idempotent).
func (e *Engine) AddSpanContext(ctx context.Context, span graph.EdgeSpan) (*Snapshot, error) {
	if err := e.validateSpan(span); err != nil {
		return nil, err
	}
	if err := e.ingestSpan(ctx, span); err != nil {
		return nil, err
	}
	return e.publish(int64(span.Len())), nil
}

// validateSpan rejects spans the forest cannot absorb: mismatched or
// odd columns, and even-arc endpoints outside [0, n). Mirror arcs are
// not consulted — ingest reads only the even arcs, exactly as the
// graph path does — so their consistency is the caller's contract,
// not a correctness requirement here.
func (e *Engine) validateSpan(span graph.EdgeSpan) error {
	if len(span.U) != len(span.V) {
		return fmt.Errorf("incremental: span columns have different lengths %d, %d", len(span.U), len(span.V))
	}
	if len(span.U)%2 != 0 {
		return fmt.Errorf("incremental: span has odd arc count %d, arcs must come in mirror pairs", len(span.U))
	}
	n := uint32(e.n)
	for i := 0; i < len(span.U); i += 2 {
		if uint32(span.U[i]) >= n || uint32(span.V[i]) >= n {
			return fmt.Errorf("incremental: span edge %d = {%d,%d} out of range [0,%d)", i/2, span.U[i], span.V[i], e.n)
		}
	}
	return nil
}

// ingestSpan shards the span's edge range over the scheduler through
// the pre-bound spanChunk, so a steady-state batch performs zero
// allocations between validation and publish. Writer-only, like
// ingest.
//
//pramcc:zeroalloc
func (e *Engine) ingestSpan(ctx context.Context, span graph.EdgeSpan) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if span.Len() == 0 {
		e.noteIngest(0, 0)
		return nil
	}
	emit := obs.Enabled()
	var start time.Time
	if emit {
		start = time.Now()
	}
	e.spanU, e.spanV = span.U, span.V
	e.spanCtx = ctx
	e.pool.ShardedOpt(span.Len(), pool.ShardOptions{Grain: e.grain, NoAffinity: e.noAffinity}, e.spanChunk)
	e.spanU, e.spanV, e.spanCtx = nil, nil, nil
	if err := ctx.Err(); err != nil {
		e.noteIngestErr(err)
		return err
	}
	e.noteIngest(span.Len(), elapsedIf(emit, start))
	return nil
}

// noteIngest records a completed batch on the union-find metrics and,
// when a sink is attached, emits the batch-boundary event. Counter
// adds are atomic and allocation-free; the envelope (with its measures
// map) is built only under an attached sink — this function runs
// inside the region TestSpanIngestZeroAlloc holds at zero allocations.
//
//pramcc:zeroalloc
func (e *Engine) noteIngest(edges int, d time.Duration) {
	mBatches.Inc()
	mEdges.Add(int64(edges))
	if obs.Enabled() {
		obs.Emit(obs.Event{Source: "incremental", Category: "engine",
			Name: "batch", Status: obs.StatusOK,
			DurationMS: float64(d.Nanoseconds()) / 1e6,
			Measures:   map[string]float64{"edges": float64(edges)}})
	}
}

// noteIngestErr emits the cancelled-batch event; the batch is not
// counted (nothing was published).
//
//pramcc:zeroalloc
func (e *Engine) noteIngestErr(err error) {
	if obs.Enabled() {
		status := obs.StatusError
		if err == context.Canceled || err == context.DeadlineExceeded {
			status = obs.StatusCancelled
		}
		obs.Emit(obs.Event{Source: "incremental", Category: "engine",
			Name: "batch", Status: status})
	}
}

// elapsedIf returns the elapsed time since start when timing was
// enabled, 0 otherwise (start is the zero Time then).
//
//pramcc:zeroalloc
func elapsedIf(enabled bool, start time.Time) time.Duration {
	if !enabled {
		return 0
	}
	return time.Since(start)
}

// spanChunkBody unions the even arcs of one claimed edge chunk
// straight out of the span columns. The ctx check per chunk is the
// cancellation contract: returning false stops this worker's claim
// loop, and the other workers observe the same ctx on their own next
// chunk.
//
//pramcc:zeroalloc
func (e *Engine) spanChunkBody(_, lo, hi int) bool {
	if e.spanCtx.Err() != nil {
		return false
	}
	u, v := e.spanU, e.spanV
	for i := lo; i < hi; i++ {
		e.union(u[2*i], v[2*i])
	}
	return true
}

// ingest shards [0, total) over the pool and unions each edge,
// checking ctx between grain-sized chunks.
func (e *Engine) ingest(ctx context.Context, total int, edge func(i int) (int32, int32)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if total == 0 {
		e.noteIngest(0, 0)
		return nil
	}
	emit := obs.Enabled()
	var start time.Time
	if emit {
		start = time.Now()
	}
	e.pool.ShardedOpt(total, pool.ShardOptions{Grain: e.grain, NoAffinity: e.noAffinity}, func(_, lo, hi int) bool {
		if ctx.Err() != nil {
			return false
		}
		for i := lo; i < hi; i++ {
			u, v := edge(i)
			e.union(u, v)
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		e.noteIngestErr(err)
		return err
	}
	e.noteIngest(total, elapsedIf(emit, start))
	return nil
}

// publish flattens the forest into a fresh snapshot. It runs after the
// ingest barrier, so every tree is stable: finds during the flatten
// only compress paths, never change roots. The labels slice and the
// Snapshot itself are the only allocations of a whole batch on the
// span path — inherent to immutable snapshot publication, since
// earlier snapshots stay queryable forever.
func (e *Engine) publish(edges int64) *Snapshot {
	e.batches++
	e.edges += edges
	labels := make([]int32, e.n)
	e.pubLabels = labels
	e.pubRoots.Store(0)
	e.pool.ShardedOpt(e.n, pool.ShardOptions{Grain: e.grain, NoAffinity: e.noAffinity}, e.pubChunk)
	e.pubLabels = nil
	s := &Snapshot{
		Labels:     labels,
		Components: int(e.pubRoots.Load()),
		Batches:    e.batches,
		Edges:      e.edges,
	}
	e.snap.Store(s)
	return s
}

// pubChunkBody flattens one claimed vertex chunk: resolve each
// vertex's root into the labels being published and count the roots
// seen.
//
//pramcc:zeroalloc
func (e *Engine) pubChunkBody(_, lo, hi int) bool {
	labels := e.pubLabels
	local := int64(0)
	for v := lo; v < hi; v++ {
		r := e.find(int32(v))
		labels[v] = r
		if r == int32(v) {
			local++
		}
	}
	if local != 0 {
		e.pubRoots.Add(local)
	}
	return true
}

// find returns the root of x with path splitting: each visited node is
// CASed from its parent to its grandparent. A failed CAS means a racing
// find already improved the pointer; either way progress is monotone
// because parents strictly decrease along every path.
//
//pramcc:zeroalloc
func (e *Engine) find(x int32) int32 {
	for {
		p := atomic.LoadInt32(&e.parent[x])
		if p == x {
			return x
		}
		gp := atomic.LoadInt32(&e.parent[p])
		if gp == p {
			return p
		}
		atomic.CompareAndSwapInt32(&e.parent[x], p, gp)
		x = gp
	}
}

// union links the roots of u and v by index: the larger root is CASed
// under the smaller, which preserves parent[x] ≤ x and therefore
// acyclicity on every interleaving. A lost race means another worker
// linked one of the roots first; retry from the new roots.
//
//pramcc:zeroalloc
func (e *Engine) union(u, v int32) {
	for {
		ru, rv := e.find(u), e.find(v)
		if ru == rv {
			return
		}
		if ru > rv {
			ru, rv = rv, ru
		}
		if atomic.CompareAndSwapInt32(&e.parent[rv], rv, ru) {
			return
		}
		u, v = ru, rv
	}
}
