// Package obs is the observability spine of the module: a structured
// JSON event envelope with a swappable sink, and a lock-free
// counter/gauge/histogram registry rendered in Prometheus text
// exposition format. Every layer of the stack — the worker pool, the
// three engines, the pramcc Service, and the ccserve ops binary —
// emits into this one surface instead of inventing its own.
//
// The package is built around one performance contract, pinned by
// TestSpanIngestZeroAlloc next to the ingest hot path: when no sink is
// attached, instrumentation is free. Counters and gauges are plain
// atomic adds (always on, allocation-free); event emission is gated on
// Enabled(), a single atomic pointer load, so instrumented code builds
// the envelope — the only allocating part — exclusively when an
// operator has opted in with SetSink. Metric registration happens once
// at package init; scraping snapshots the atomics without stopping
// writers.
//
// OPERATIONS.md documents the envelope schema field by field and every
// registered metric; scripts/check_docs.sh fails CI when a registered
// metric is missing from those docs.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Event is the structured envelope every emission uses — the schema is
// fixed so that any consumer (a log pipeline, jq, the E15 overhead
// experiment) can rely on the same six fields from every source.
type Event struct {
	// Source is the emitting subsystem: "native", "simulated",
	// "incremental", "service", "ccserve".
	Source string `json:"source"`
	// Category groups events within a source: "engine" for
	// round/batch boundaries, "serve" for public API calls, "http"
	// for the ops front end.
	Category string `json:"category"`
	// Name is the specific boundary: "round", "batch", "update",
	// "ingest_span", "grow", "request".
	Name string `json:"name"`
	// Status is "ok", "error", or "cancelled".
	Status string `json:"status"`
	// DurationMS is the wall-clock duration of the unit the event
	// closes, in milliseconds (0 when the event has no duration).
	DurationMS float64 `json:"duration_ms"`
	// Measures carries event-specific numeric payloads (edge counts,
	// round indices, component counts); nil when there are none.
	Measures map[string]float64 `json:"measures,omitempty"`
}

// The Status values every emitter uses.
const (
	StatusOK        = "ok"
	StatusError     = "error"
	StatusCancelled = "cancelled"
)

// Sink consumes emitted events. Emit may be called concurrently from
// any goroutine; implementations serialize internally.
type Sink interface {
	Emit(Event)
}

// sink is the process-wide event sink. A pointer-to-interface so the
// no-sink check is one atomic pointer load against nil — the whole
// cost of instrumentation when observability is off.
var sink atomic.Pointer[Sink]

// SetSink installs s as the process-wide event sink (nil detaches,
// restoring the free no-op default). Emissions racing a SetSink go to
// whichever sink the atomic load observes.
func SetSink(s Sink) {
	if s == nil {
		sink.Store(nil)
		return
	}
	sink.Store(&s)
}

// Enabled reports whether a sink is attached. Instrumented code gates
// envelope construction on it so the disabled path allocates nothing:
//
//	if obs.Enabled() {
//		obs.Emit(obs.Event{...}) // built only when someone listens
//	}
//
//pramcc:zeroalloc
func Enabled() bool { return sink.Load() != nil }

// Emit delivers e to the attached sink, if any.
func Emit(e Event) {
	if p := sink.Load(); p != nil {
		(*p).Emit(e)
	}
}

// JSONSink writes one JSON object per event, newline-delimited, to an
// io.Writer — the machine-readable stream OPERATIONS.md documents.
// Safe for concurrent Emit calls.
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSink returns a sink encoding events as JSON lines on w.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// Emit encodes e as one JSON line. Encoding errors are dropped: an
// observability sink must never fail the operation it observes.
func (s *JSONSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(e)
}
