package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric: a single atomic int64.
// Add and Inc are lock-free and allocation-free — safe on the hottest
// paths in the module.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// Inc adds 1.
//
//pramcc:zeroalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the counter to stay monotone).
//
//pramcc:zeroalloc
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
//
//pramcc:zeroalloc
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down: a single atomic int64.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set stores n.
//
//pramcc:zeroalloc
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
//
//pramcc:zeroalloc
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
//
//pramcc:zeroalloc
func (g *Gauge) Value() int64 { return g.v.Load() }

// gaugeFunc is a gauge whose value is computed at scrape time — the
// shape for derived quantities like snapshot age, where storing the
// value would require a background updater.
type gaugeFunc struct {
	name string
	help string
	f    func() float64
}

// DefDurationBuckets are the default histogram bounds for durations in
// seconds: 100µs to 10s, roughly ×2.5 per step — wide enough to cover
// a sub-millisecond span ingest and a full-graph simulated solve in
// the same histogram.
var DefDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram of float64 observations
// (durations in seconds by convention). Observe is lock-free: one
// atomic add on the bucket counter, one on the count, and a CAS loop
// on the bit-packed float sum. Rendered in the Prometheus histogram
// convention (cumulative _bucket{le=...} series plus _sum and _count).
type Histogram struct {
	name   string
	help   string
	bounds []float64 // upper bounds, ascending; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records v.
//
//pramcc:zeroalloc
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
//
//pramcc:zeroalloc
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one registered entry, whatever its kind.
type metric struct {
	name string
	typ  string // "counter", "gauge", "histogram"
	help string
	c    *Counter
	g    *Gauge
	gf   *gaugeFunc
	h    *Histogram
	cv   *CounterVec
	gv   *GaugeVec
}

// Registry is a named collection of metrics. Registration (Counter,
// Gauge, GaugeFunc, Histogram) happens at package init or construction
// time and takes a lock; the returned handles are updated lock-free.
// Duplicate names panic: two subsystems claiming one metric is a
// programming error, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]bool
}

// NewRegistry returns an empty registry. Most callers use Default.
func NewRegistry() *Registry { return &Registry{byName: map[string]bool{}} }

// Default is the process-wide registry every package-level metric in
// the module registers into, and the one /metrics scrapes.
var Default = NewRegistry()

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[m.name] {
		panic("obs: duplicate metric " + m.name)
	}
	r.byName[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(metric{name: name, typ: "counter", help: help, c: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(metric{name: name, typ: "gauge", help: help, g: g})
	return g
}

// GaugeFunc registers a gauge whose value is f() at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(metric{name: name, typ: "gauge", help: help,
		gf: &gaugeFunc{name: name, help: help, f: f}})
}

// Histogram registers and returns a new histogram over the given
// ascending upper bounds (nil selects DefDurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefDurationBuckets
	}
	h := &Histogram{name: name, help: help, bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1)}
	r.register(metric{name: name, typ: "histogram", help: help, h: h})
	return h
}

// Names returns every registered metric name, sorted — the generated
// list scripts/check_docs.sh compares OPERATIONS.md against.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.name
	}
	sort.Strings(out)
	return out
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): # HELP and # TYPE comments
// followed by the samples, histograms as cumulative le-labelled
// buckets plus _sum and _count. Values are snapshots of the atomics;
// writers are never blocked by a scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, m := range metrics {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		switch {
		case m.c != nil:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.c.Value())
		case m.g != nil:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.g.Value())
		case m.gf != nil:
			fmt.Fprintf(bw, "%s %s\n", m.name, formatFloat(m.gf.f()))
		case m.cv != nil:
			for _, s := range m.cv.samples() {
				fmt.Fprintf(bw, "%s{%s=\"%s\"} %d\n", m.name, m.cv.label, escapeLabel(s.value), s.n)
			}
		case m.gv != nil:
			for _, s := range m.gv.samples() {
				fmt.Fprintf(bw, "%s{%s=\"%s\"} %d\n", m.name, m.gv.label, escapeLabel(s.value), s.n)
			}
		case m.h != nil:
			cum := int64(0)
			for i, b := range m.h.bounds {
				cum += m.h.counts[i].Load()
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", m.name, formatFloat(b), cum)
			}
			cum += m.h.counts[len(m.h.bounds)].Load()
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(bw, "%s_sum %s\n", m.name, formatFloat(m.h.Sum()))
			fmt.Fprintf(bw, "%s_count %d\n", m.name, m.h.Count())
		}
	}
	return bw.Flush()
}

// formatFloat renders a float the way Prometheus expects: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
