package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEventJSONSchema pins the envelope's wire format: the six fields
// OPERATIONS.md documents, with exactly these JSON names, and Measures
// omitted when empty.
func TestEventJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONSink(&buf)
	s.Emit(Event{
		Source: "native", Category: "engine", Name: "round",
		Status: StatusOK, DurationMS: 1.5,
		Measures: map[string]float64{"round": 3, "edges": 80000},
	})
	s.Emit(Event{Source: "service", Category: "serve", Name: "grow", Status: StatusOK})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"source", "category", "name", "status", "duration_ms", "measures"} {
		if _, ok := m[k]; !ok {
			t.Errorf("field %q missing from envelope: %s", k, lines[0])
		}
	}
	if m["source"] != "native" || m["duration_ms"] != 1.5 {
		t.Errorf("envelope values wrong: %v", m)
	}
	if strings.Contains(lines[1], "measures") {
		t.Errorf("empty measures not omitted: %s", lines[1])
	}
}

// TestSinkSwap: no sink drops events; SetSink routes them; nil
// detaches again.
func TestSinkSwap(t *testing.T) {
	SetSink(nil)
	if Enabled() {
		t.Fatal("Enabled with no sink")
	}
	Emit(Event{Source: "test"}) // must not panic

	var buf bytes.Buffer
	SetSink(NewJSONSink(&buf))
	defer SetSink(nil)
	if !Enabled() {
		t.Fatal("not Enabled after SetSink")
	}
	Emit(Event{Source: "test", Name: "one"})
	SetSink(nil)
	Emit(Event{Source: "test", Name: "two"})
	if got := buf.String(); !strings.Contains(got, `"one"`) || strings.Contains(got, `"two"`) {
		t.Fatalf("sink routing wrong: %q", got)
	}
}

// TestEmitDisabledZeroAlloc pins the contract the ingest hot path
// relies on: with no sink attached, the full instrumentation pattern —
// counter add, gauge set, histogram observe, gated emit — performs
// zero heap allocations.
func TestEmitDisabledZeroAlloc(t *testing.T) {
	SetSink(nil)
	r := NewRegistry()
	c := r.Counter("t_total", "t")
	g := r.Gauge("t_gauge", "t")
	h := r.Histogram("t_seconds", "t", nil)
	if avg := testing.AllocsPerRun(100, func() {
		c.Add(3)
		g.Set(7)
		h.Observe(0.002)
		if Enabled() {
			Emit(Event{Source: "test", Measures: map[string]float64{"x": 1}})
		}
	}); avg != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f times, want 0", avg)
	}
}

// TestCounterGaugeHistogram: the arithmetic under concurrency.
func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", []float64{0.01, 0.1, 1})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.05)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if got, want := h.Sum(), 8000*0.05; got < want*0.999 || got > want*1.001 {
		t.Errorf("histogram sum = %g, want ≈ %g", got, want)
	}
	h.ObserveDuration(2 * time.Second)
	if h.Count() != 8001 {
		t.Errorf("ObserveDuration did not count")
	}
}

// TestWritePrometheus: the exposition format — HELP/TYPE comments,
// cumulative histogram buckets, +Inf, _sum/_count — and Names.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "things done")
	g := r.Gauge("x_depth", "queue depth")
	r.GaugeFunc("x_age_seconds", "age", func() float64 { return 2.5 })
	h := r.Histogram("x_seconds", "latency", []float64{0.1, 1})
	c.Add(5)
	g.Set(-2)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP x_total things done",
		"# TYPE x_total counter",
		"x_total 5",
		"# TYPE x_depth gauge",
		"x_depth -2",
		"x_age_seconds 2.5",
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{le="0.1"} 1`,
		`x_seconds_bucket{le="1"} 2`,
		`x_seconds_bucket{le="+Inf"} 3`,
		"x_seconds_sum 99.55",
		"x_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	names := r.Names()
	want := []string{"x_age_seconds", "x_depth", "x_seconds", "x_total"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

// TestDuplicateMetricPanics: claiming a registered name is a
// programming error.
func TestDuplicateMetricPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup_total", "b")
}
