package obs

import (
	"strings"
	"testing"
)

func TestVecChildrenAndRendering(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("pramcc_test_family_total", "a labeled counter family", "tenant")
	gv := r.GaugeVec("pramcc_test_depth", "a labeled gauge family", "shard")

	if cv.With("acme") != cv.With("acme") {
		t.Fatal("With must return the same child for the same label value")
	}
	cv.With("acme").Add(3)
	cv.With("zebra").Inc()
	cv.With(`we"ird\na"me`).Inc()
	gv.With("0").Set(7)
	gv.With("1").Set(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE pramcc_test_family_total counter",
		`pramcc_test_family_total{tenant="acme"} 3`,
		`pramcc_test_family_total{tenant="zebra"} 1`,
		`pramcc_test_family_total{tenant="we\"ird\\na\"me"} 1`,
		"# TYPE pramcc_test_depth gauge",
		`pramcc_test_depth{shard="0"} 7`,
		`pramcc_test_depth{shard="1"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered output missing %q\n%s", want, text)
		}
	}
	// Children render sorted by label value regardless of creation order.
	if strings.Index(text, `tenant="acme"`) > strings.Index(text, `tenant="zebra"`) {
		t.Error("vec children not sorted by label value")
	}
	// The family name is registered once: Names lists it, duplicates panic.
	found := false
	for _, n := range r.Names() {
		if n == "pramcc_test_family_total" {
			found = true
		}
	}
	if !found {
		t.Error("family name missing from Names()")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate family registration did not panic")
			}
		}()
		r.CounterVec("pramcc_test_family_total", "dup", "tenant")
	}()
}

func TestVecConcurrentWith(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("pramcc_test_conc_total", "concurrency check", "tenant")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				cv.With("t").Inc()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := cv.With("t").Value(); got != 8000 {
		t.Fatalf("concurrent increments lost: %d != 8000", got)
	}
}
