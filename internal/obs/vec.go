package obs

import (
	"sort"
	"strings"
	"sync"
)

// CounterVec is a family of counters sharing one name and help string,
// distinguished by the value of a single label — the shape of the
// sharded service's per-tenant and per-shard metrics, where the set of
// label values (tenant ids, shard indices) is only known at runtime
// but the family name is a compile-time constant the runbook can
// document. With lazily creates (and then reuses) the child for a
// label value; callers on hot paths cache the returned handle so the
// per-update cost is the child's own atomic add, not a map lookup.
type CounterVec struct {
	name, help, label string
	mu                sync.Mutex
	children          map[string]*Counter
}

// With returns the counter for the given label value, creating it on
// first use. Safe for concurrent use; the returned handle is the same
// for every call with the same value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{name: v.name, help: v.help}
		v.children[value] = c
	}
	return c
}

// GaugeVec is the gauge form of CounterVec: one family name, one label
// key, lazily created children per label value.
type GaugeVec struct {
	name, help, label string
	mu                sync.Mutex
	children          map[string]*Gauge
}

// With returns the gauge for the given label value, creating it on
// first use. Safe for concurrent use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[value]
	if !ok {
		g = &Gauge{name: v.name, help: v.help}
		v.children[value] = g
	}
	return g
}

// CounterVec registers and returns a counter family with one label
// key. The family name follows the same rules as plain metrics
// (constant, documented); label values are runtime data and are
// escaped on rendering.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label,
		children: map[string]*Counter{}}
	r.register(metric{name: name, typ: "counter", help: help, cv: v})
	return v
}

// GaugeVec registers and returns a gauge family with one label key.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{name: name, help: help, label: label,
		children: map[string]*Gauge{}}
	r.register(metric{name: name, typ: "gauge", help: help, gv: v})
	return v
}

// vecSample is one rendered child: label value plus current reading.
type vecSample struct {
	value string
	n     int64
}

// samples snapshots a vec's children sorted by label value, so scrapes
// are deterministic regardless of creation order.
func (v *CounterVec) samples() []vecSample {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]vecSample, 0, len(v.children))
	for val, c := range v.children {
		out = append(out, vecSample{val, c.Value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

func (v *GaugeVec) samples() []vecSample {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]vecSample, 0, len(v.children))
	for val, g := range v.children {
		out = append(out, vecSample{val, g.Value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote, and newline.
var escapeLabel = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace
