package durable

import (
	"fmt"
	"testing"

	"repro/graph"
)

// miniUF is the test oracle: a tiny min-label union-find that tracks
// what labeling a store's record stream should reconstruct.
type miniUF struct{ parent []int32 }

func newMiniUF(n int) *miniUF {
	u := &miniUF{parent: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

func (u *miniUF) find(v int32) int32 {
	for u.parent[v] != v {
		u.parent[v] = u.parent[u.parent[v]]
		v = u.parent[v]
	}
	return v
}

func (u *miniUF) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra // smaller id stays root: canonical min-labeling
}

func (u *miniUF) grow(n int) {
	for v := len(u.parent); v < n; v++ {
		u.parent = append(u.parent, int32(v))
	}
}

func (u *miniUF) labels() []int32 {
	out := make([]int32, len(u.parent))
	for v := range u.parent {
		out[v] = u.find(int32(v))
	}
	return out
}

func (u *miniUF) apply(r Record) {
	switch r.Kind {
	case KindGrow:
		u.grow(r.N)
	case KindSpan:
		for i := 0; i < r.Span.Len(); i++ {
			a, b := r.Span.Edge(i)
			u.union(int32(a), int32(b))
		}
	}
}

// crashWorkload drives a fixed store workload — initial checkpoint,
// span batches, a grow, periodic checkpoints — through fsys, stopping
// at the first error (the injected crash). It returns the last batch
// seq the store acknowledged as durable (0 when even the initial
// checkpoint did not complete).
func crashWorkload(dir string, fsys FS) (acked uint64) {
	batches := crashBatches()
	s, rec, err := Open(dir, fsys)
	if err != nil {
		return 0
	}
	defer s.Close()
	if rec != nil {
		panic("crash workload ran against a dirty directory")
	}
	if err := s.Checkpoint(isolated(crashN), 0); err != nil {
		return 0
	}
	uf := newMiniUF(crashN)
	for i, b := range batches {
		if b.growTo > 0 {
			if _, err := s.LogGrow(b.growTo); err != nil {
				return acked
			}
			uf.grow(b.growTo)
		} else {
			if _, err := s.LogSpan(b.span); err != nil {
				return acked
			}
			uf.apply(Record{Kind: KindSpan, Span: b.span})
		}
		acked = uint64(i + 1)
		if s.BatchesSinceCheckpoint() >= 2 {
			if err := s.Checkpoint(uf.labels(), acked); err != nil {
				return acked
			}
		}
	}
	return acked
}

const crashN = 6

type crashBatch struct {
	span   graph.EdgeSpan
	growTo int
}

func crashBatches() []crashBatch {
	return []crashBatch{
		{span: span([2]int{0, 1}, [2]int{2, 3})},
		{span: span([2]int{1, 2})},
		{growTo: 8},
		{span: span([2]int{6, 7}, [2]int{4, 5})},
		{span: span([2]int{3, 6})},
		{span: span([2]int{0, 5})},
	}
}

// TestCrashEveryWriteOffset is the store-level crash suite: the
// workload runs once per write budget in [0, total), each run crashing
// at a different byte of a different write site, and after every crash
// the directory must reopen through a clean filesystem to a labeling
// the workload actually acknowledged — never a torn one — with every
// batch acknowledged before the crash still present.
func TestCrashEveryWriteOffset(t *testing.T) {
	probe := NewFailFS(OSFS{}, 1<<40)
	crashWorkload(t.TempDir(), probe)
	total := probe.Cost()
	if total < 100 {
		t.Fatalf("workload cost only %d write units; the sweep would be vacuous", total)
	}

	// The expected labeling after each batch prefix.
	batches := crashBatches()
	wantAt := make([][]int32, len(batches)+1)
	oracle := newMiniUF(crashN)
	wantAt[0] = oracle.labels()
	for i, b := range batches {
		if b.growTo > 0 {
			oracle.grow(b.growTo)
		} else {
			oracle.apply(Record{Kind: KindSpan, Span: b.span})
		}
		wantAt[i+1] = oracle.labels()
	}

	// Every offset in the full suite; a coprime stride in -short mode
	// (the race lane) still lands on every write site, just not on
	// every byte of every record.
	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	for budget := int64(0); budget < total; budget += stride {
		dir := t.TempDir()
		ffs := NewFailFS(OSFS{}, budget)
		acked := crashWorkload(dir, ffs)
		if !ffs.Dead() {
			t.Fatalf("budget %d: workload finished without crashing (total was %d)", budget, total)
		}

		s, rec, err := Open(dir, nil)
		if err != nil {
			t.Fatalf("budget %d: reopen after crash: %v", budget, err)
		}
		if rec == nil {
			// Crashed before the initial checkpoint made the manifest: the
			// directory is legitimately fresh, and nothing was acked.
			if acked != 0 {
				t.Fatalf("budget %d: %d batches acked but reopen found a fresh store", budget, acked)
			}
			s.Close()
			continue
		}
		if s.Seq() < acked {
			t.Fatalf("budget %d: reopened seq %d lost acknowledged batch %d", budget, s.Seq(), acked)
		}
		if s.Seq() > uint64(len(batches)) {
			t.Fatalf("budget %d: reopened seq %d beyond the %d batches ever written", budget, s.Seq(), len(batches))
		}
		replayed := newMiniUF(len(rec.Labels))
		copy(replayed.parent, rec.Labels)
		for _, r := range rec.Records {
			replayed.apply(r)
		}
		got, want := replayed.labels(), wantAt[s.Seq()]
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("budget %d: recovered labeling %v at seq %d, want %v", budget, got, s.Seq(), want)
		}
		s.Close()
	}
}
