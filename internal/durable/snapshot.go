package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Snapshot file format (PCCS), version 1. All integers little-endian,
// following the graph package's PCCG conventions (fixed-width records,
// header-declared counts validated against the bytes that actually
// arrived) plus a CRC32 footer, because a snapshot — unlike a graph
// file — is read back after crashes:
//
//	offset  size  field
//	0       4     magic "PCCS"
//	4       4     format version (currently 1)
//	8       8     n — vertex count (uint64, must fit int32)
//	16      8     seq — batch sequence number the labeling reflects
//	24      4·n   label records: int32 LE, one per vertex
//	24+4n   4     CRC32 (IEEE) of bytes [0, 24+4n)
//
// The labels must be a canonical engine labeling: labels[v] is the
// minimum vertex id of v's component, so labels[v] ≤ v and
// labels[labels[v]] == labels[v]. The decoder enforces this, which is
// what lets recovery feed the labels straight back into the
// incremental engine's depth-one parent forest (RestoreLabels).
const (
	snapMagic      = "PCCS"
	snapVersion    = 1
	snapHeaderSize = 24
)

// AppendSnapshot appends the PCCS encoding of (seq, labels) to buf and
// returns the extended slice.
func AppendSnapshot(buf []byte, seq uint64, labels []int32) []byte {
	start := len(buf)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(labels)))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	for _, l := range labels {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// WriteSnapshot writes the PCCS encoding of (seq, labels) to w.
func WriteSnapshot(w io.Writer, seq uint64, labels []int32) error {
	_, err := w.Write(AppendSnapshot(make([]byte, 0, snapHeaderSize+4*len(labels)+4), seq, labels))
	return err
}

// DecodeSnapshot parses a PCCS snapshot. It validates the magic,
// version, CRC, exact length, and the canonical-labeling invariant,
// and rejects truncated data and trailing garbage with descriptive
// errors. The labels slice is sized by the bytes that actually
// arrived, never by the header alone, so a corrupt header cannot force
// a huge allocation.
func DecodeSnapshot(data []byte) (seq uint64, labels []int32, err error) {
	if len(data) < snapHeaderSize+4 {
		return 0, nil, fmt.Errorf("durable: snapshot truncated at %d bytes (header is %d)", len(data), snapHeaderSize+4)
	}
	if string(data[0:4]) != snapMagic {
		return 0, nil, fmt.Errorf("durable: bad snapshot magic %q (want %q)", data[0:4], snapMagic)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != snapVersion {
		return 0, nil, fmt.Errorf("durable: unsupported snapshot version %d (want %d)", v, snapVersion)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	seq = binary.LittleEndian.Uint64(data[16:24])
	want := uint64(snapHeaderSize) + 4*n + 4
	if n > uint64(1)<<31-1 || uint64(len(data)) != want {
		return 0, nil, fmt.Errorf("durable: snapshot declares %d labels but holds %d bytes (want %d)", n, len(data), want)
	}
	body, foot := data[:len(data)-4], data[len(data)-4:]
	if got, sum := binary.LittleEndian.Uint32(foot), crc32.ChecksumIEEE(body); got != sum {
		return 0, nil, fmt.Errorf("durable: snapshot CRC mismatch: stored %08x, computed %08x", got, sum)
	}
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = int32(binary.LittleEndian.Uint32(data[snapHeaderSize+4*i:]))
	}
	for v, l := range labels {
		if l < 0 || int(l) > v || labels[l] != l {
			return 0, nil, fmt.Errorf("durable: snapshot label[%d] = %d is not canonical (want the minimum vertex of the component)", v, l)
		}
	}
	return seq, labels, nil
}
