package durable

import "errors"

// ErrInjectedFault is the error every FailFS operation returns once
// its write budget is exhausted.
var ErrInjectedFault = errors.New("durable: injected crash")

// FailFS is the crash-injection harness: an FS wrapper that simulates
// power loss after a byte-exact amount of write activity. Every write
// site costs budget — file writes cost their byte count (and a write
// that overruns the budget persists only the prefix that fit: a torn
// write), while Create/Sync/Rename/Remove/Truncate/SyncDir cost one
// unit each — and once the budget is exhausted the filesystem is dead:
// every subsequent mutation fails with ErrInjectedFault, modelling a
// fail-stop crash rather than intermittent errors. Reads always pass
// through, so a test can inspect the wreckage.
//
// The crash-injection suite measures a workload's total cost with an
// effectively infinite budget, then replays it once per budget in
// [0, total), reopening the store through a clean FS after each
// simulated crash — every byte offset of every write site becomes a
// crash point.
type FailFS struct {
	inner  FS
	budget int64
	cost   int64
	dead   bool
}

// NewFailFS wraps inner with a write budget.
func NewFailFS(inner FS, budget int64) *FailFS {
	return &FailFS{inner: inner, budget: budget}
}

// Cost returns the write cost consumed so far — run a workload with a
// huge budget to measure its total, then crash at every point below it.
func (f *FailFS) Cost() int64 { return f.cost }

// Dead reports whether the injected crash has fired.
func (f *FailFS) Dead() bool { return f.dead }

// charge consumes n units, killing the filesystem when the budget is
// exceeded. It returns the units actually available (< n on the fatal
// overrun).
func (f *FailFS) charge(n int64) (int64, error) {
	if f.dead {
		return 0, ErrInjectedFault
	}
	avail := f.budget - f.cost
	if avail >= n {
		f.cost += n
		return n, nil
	}
	f.cost += avail
	f.dead = true
	return avail, ErrInjectedFault
}

// MkdirAll implements FS; directory creation is free (it is part of
// opening a store, not of the durability write path).
func (f *FailFS) MkdirAll(dir string) error {
	if f.dead {
		return ErrInjectedFault
	}
	return f.inner.MkdirAll(dir)
}

// Create implements FS, costing one unit.
func (f *FailFS) Create(name string) (File, error) {
	if _, err := f.charge(1); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &failFile{fs: f, inner: file}, nil
}

// ReadFile implements FS; reads are free and survive the crash.
func (f *FailFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// ReadDir implements FS; reads are free and survive the crash.
func (f *FailFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

// Rename implements FS, costing one unit.
func (f *FailFS) Rename(oldname, newname string) error {
	if _, err := f.charge(1); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

// Remove implements FS, costing one unit.
func (f *FailFS) Remove(name string) error {
	if _, err := f.charge(1); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Truncate implements FS, costing one unit.
func (f *FailFS) Truncate(name string, size int64) error {
	if _, err := f.charge(1); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

// SyncDir implements FS, costing one unit.
func (f *FailFS) SyncDir(dir string) error {
	if _, err := f.charge(1); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// failFile charges writes by byte and syncs by unit against the shared
// budget; a write that overruns persists only its affordable prefix —
// the torn-write case every decoder must tolerate.
type failFile struct {
	fs    *FailFS
	inner File
}

func (f *failFile) Write(p []byte) (int, error) {
	n, err := f.fs.charge(int64(len(p)))
	if n > 0 {
		if _, werr := f.inner.Write(p[:n]); werr != nil {
			return 0, werr
		}
	}
	if err != nil {
		return int(n), err
	}
	return len(p), nil
}

func (f *failFile) Sync() error {
	if _, err := f.fs.charge(1); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close is free: closing neither writes nor makes anything durable,
// and even a dying process's descriptors get closed.
func (f *failFile) Close() error { return f.inner.Close() }
