package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/graph"
)

// Write-ahead-log segment format (PCCW), version 1. All integers
// little-endian. A segment holds a contiguous run of batch records:
//
//	offset  size  field
//	0       4     magic "PCCW"
//	4       4     format version (currently 1)
//	8       8     firstSeq — sequence number of the segment's first record
//
// followed by zero or more records, each:
//
//	offset  size  field
//	0       1     kind (1 = span batch, 2 = grow)
//	1       8     seq — must be firstSeq + record index (contiguous)
//	9       4     payload length in bytes
//	13      len   payload
//	13+len  4     CRC32 (IEEE) of bytes [0, 13+len)
//
// A span-batch payload is the batch's undirected edges as fixed-width
// records (u uint32, v uint32 — even arcs only; mirror arcs are
// implicit, as in PCCG). A grow payload is the new vertex count
// (uint64). Appends are fsynced per batch, so the only incomplete
// record a crash can leave is the last one: the decoder stops at the
// first record whose header, payload, CRC, or sequence number is bad
// and reports the byte offset, and recovery truncates the segment
// there — the torn tail is dropped, every record before it is kept.
const (
	walMagic      = "PCCW"
	walVersion    = 1
	walHeaderSize = 16
	recHeaderSize = 13
)

// WAL record kinds.
const (
	KindSpan byte = 1 // payload: the batch's undirected edges
	KindGrow byte = 2 // payload: the new vertex count
)

// Record is one decoded WAL record: a span batch (Kind KindSpan, Span
// set) or a vertex-set grow (Kind KindGrow, N set).
type Record struct {
	Seq  uint64
	Kind byte
	Span graph.EdgeSpan
	N    int
}

// appendSegmentHeader appends a PCCW segment header for a segment
// whose first record will carry firstSeq.
func appendSegmentHeader(buf []byte, firstSeq uint64) []byte {
	buf = append(buf, walMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, walVersion)
	return binary.LittleEndian.AppendUint64(buf, firstSeq)
}

// appendRecordFrame appends one framed record: header, the payload
// bytes produced by the callback, a patched-in payload length, and the
// CRC footer — shared by both record kinds so they cannot drift on the
// checksum discipline.
func appendRecordFrame(buf []byte, kind byte, seq uint64, payload func([]byte) []byte) []byte {
	start := len(buf)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // payload length, patched below
	buf = payload(buf)
	binary.LittleEndian.PutUint32(buf[start+9:], uint32(len(buf)-start-recHeaderSize))
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// AppendSpanRecord appends a span-batch record: the span's even arcs
// as fixed-width edge records.
func AppendSpanRecord(buf []byte, seq uint64, span graph.EdgeSpan) []byte {
	return appendRecordFrame(buf, KindSpan, seq, func(b []byte) []byte {
		for i := 0; i < span.Len(); i++ {
			u, v := span.Edge(i)
			b = binary.LittleEndian.AppendUint32(b, uint32(u))
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
		return b
	})
}

// AppendGrowRecord appends a grow record carrying the new vertex count.
func AppendGrowRecord(buf []byte, seq uint64, n int) []byte {
	return appendRecordFrame(buf, KindGrow, seq, func(b []byte) []byte {
		return binary.LittleEndian.AppendUint64(b, uint64(n))
	})
}

// DecodeSegment parses a PCCW segment. It returns the segment's
// firstSeq, every complete and checksummed record in order, and the
// byte offset of the first bad record (== len(data) when the whole
// segment decoded) — the truncation point for torn-tail repair. Only a
// bad segment header is an error: record-level damage terminates the
// decode cleanly instead, because a torn tail is an expected crash
// artifact, not corruption. Decoded spans are sized by the payload
// bytes actually present, never by a declared length alone, so corrupt
// lengths cannot force large allocations.
func DecodeSegment(data []byte) (firstSeq uint64, recs []Record, tornAt int, err error) {
	if len(data) < walHeaderSize {
		return 0, nil, 0, fmt.Errorf("durable: wal segment truncated at %d bytes (header is %d)", len(data), walHeaderSize)
	}
	if string(data[0:4]) != walMagic {
		return 0, nil, 0, fmt.Errorf("durable: bad wal magic %q (want %q)", data[0:4], walMagic)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != walVersion {
		return 0, nil, 0, fmt.Errorf("durable: unsupported wal version %d (want %d)", v, walVersion)
	}
	firstSeq = binary.LittleEndian.Uint64(data[8:16])
	off := walHeaderSize
	for {
		rec, next, ok := decodeRecord(data, off, firstSeq+uint64(len(recs)))
		if !ok {
			return firstSeq, recs, off, nil
		}
		recs = append(recs, rec)
		off = next
	}
}

// decodeRecord decodes one record at data[off:], requiring the
// sequence number wantSeq (records are contiguous within a segment).
// ok is false when the record is incomplete, checksummed wrong, or
// structurally invalid — the torn-tail conditions.
func decodeRecord(data []byte, off int, wantSeq uint64) (rec Record, next int, ok bool) {
	if len(data)-off < recHeaderSize+4 {
		return Record{}, 0, false
	}
	kind := data[off]
	seq := binary.LittleEndian.Uint64(data[off+1:])
	plen := int64(binary.LittleEndian.Uint32(data[off+9:]))
	if plen > int64(len(data)-off-recHeaderSize-4) {
		return Record{}, 0, false
	}
	end := off + recHeaderSize + int(plen)
	body, foot := data[off:end], data[end:end+4]
	if binary.LittleEndian.Uint32(foot) != crc32.ChecksumIEEE(body) {
		return Record{}, 0, false
	}
	if seq != wantSeq {
		return Record{}, 0, false
	}
	payload := data[off+recHeaderSize : end]
	switch kind {
	case KindSpan:
		if plen%8 != 0 {
			return Record{}, 0, false
		}
		m := int(plen / 8)
		span := graph.EdgeSpan{U: make([]int32, 2*m), V: make([]int32, 2*m)}
		for i := 0; i < m; i++ {
			u := binary.LittleEndian.Uint32(payload[8*i:])
			v := binary.LittleEndian.Uint32(payload[8*i+4:])
			if u > math.MaxInt32 || v > math.MaxInt32 {
				return Record{}, 0, false
			}
			span.U[2*i], span.U[2*i+1] = int32(u), int32(v)
			span.V[2*i], span.V[2*i+1] = int32(v), int32(u)
		}
		rec = Record{Seq: seq, Kind: kind, Span: span}
	case KindGrow:
		if plen != 8 {
			return Record{}, 0, false
		}
		n := binary.LittleEndian.Uint64(payload)
		if n > math.MaxInt32 {
			return Record{}, 0, false
		}
		rec = Record{Seq: seq, Kind: kind, N: int(n)}
	default:
		return Record{}, 0, false
	}
	return rec, end + 4, true
}
