package durable

import (
	"testing"

	"repro/graph"
)

// benchSpan builds a 64-edge batch over n vertices.
func benchSpan(n int) graph.EdgeSpan {
	pairs := make([][2]int, 64)
	for i := range pairs {
		pairs[i] = [2]int{i % n, (i*7 + 1) % n}
	}
	return graph.FromPairs(pairs)
}

// BenchmarkWALAppend measures the durable-ack cost of one logged batch:
// encode, write, and the per-batch fsync that dominates it.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	s, _, err := Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.Checkpoint(isolated(1024), 0); err != nil {
		b.Fatal(err)
	}
	batch := benchSpan(1024)
	b.SetBytes(int64(batch.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.LogSpan(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover measures a warm-start recovery: decode the
// snapshot, scan the WAL, and materialize the pending records — 32
// batches past a 4096-vertex snapshot.
func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	s, _, err := Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Checkpoint(isolated(4096), 0); err != nil {
		b.Fatal(err)
	}
	batch := benchSpan(4096)
	for i := 0; i < 32; i++ {
		if _, err := s.LogSpan(batch); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, rec, err := Open(dir, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rec == nil || len(rec.Records) != 32 {
			b.Fatalf("recovered %+v", rec)
		}
		s.Close()
	}
	b.ReportMetric(32, "batches/op")
}
