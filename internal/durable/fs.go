package durable

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the store writes through. It exists so
// the crash-injection harness (FailFS) can cut power at any byte of
// any write site; production code uses OSFS. The surface is
// deliberately narrow — whole-file reads, create-truncate writes,
// atomic rename — because those are the only primitives the
// snapshot/WAL/manifest machinery needs, and every one of them must be
// exercised by the crash tests.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the sorted base names of the entries of dir.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes (the torn-tail repair).
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making renames and file
	// creations durable.
	SyncDir(dir string) error
}

// File is a writable file handle: sequential writes, explicit
// durability via Sync, and Close.
type File interface {
	io.Writer
	// Sync flushes the file's written data to stable storage.
	Sync() error
	// Close closes the handle (without an implicit Sync).
	Close() error
}

// OSFS is the production FS: the os package, verbatim.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS. Directory fsync is how a rename or create is
// made durable on POSIX filesystems; platforms where directories
// cannot be fsynced surface the error to the caller, which treats any
// durability failure as fatal for the store.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
