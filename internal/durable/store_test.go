package durable

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/graph"
)

// span builds an EdgeSpan from undirected pairs.
func span(pairs ...[2]int) graph.EdgeSpan { return graph.FromPairs(pairs) }

// isolated returns the n-isolated-vertices canonical labeling.
func isolated(n int) []int32 {
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	return labels
}

// mustOpen opens a store and fails the test on error.
func mustOpen(t *testing.T, dir string) (*Store, *Recovered) {
	t.Helper()
	s, rec, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

// dirNames lists the store directory's entries.
func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	names, err := OSFS{}.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	return names
}

func TestStoreFreshThenReopen(t *testing.T) {
	dir := t.TempDir()
	s, rec := mustOpen(t, dir)
	if rec != nil {
		t.Fatalf("fresh Open returned recovered state %+v", rec)
	}
	if err := s.Checkpoint(isolated(6), 0); err != nil {
		t.Fatalf("initial Checkpoint: %v", err)
	}
	if seq, err := s.LogSpan(span([2]int{0, 1}, [2]int{2, 3})); err != nil || seq != 1 {
		t.Fatalf("LogSpan #1 = (%d, %v), want (1, nil)", seq, err)
	}
	if seq, err := s.LogGrow(8); err != nil || seq != 2 {
		t.Fatalf("LogGrow = (%d, %v), want (2, nil)", seq, err)
	}
	if seq, err := s.LogSpan(span([2]int{6, 7})); err != nil || seq != 3 {
		t.Fatalf("LogSpan #2 = (%d, %v), want (3, nil)", seq, err)
	}
	if got := s.BatchesSinceCheckpoint(); got != 3 {
		t.Fatalf("BatchesSinceCheckpoint = %d, want 3", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec2 := mustOpen(t, dir)
	defer s2.Close()
	if rec2 == nil {
		t.Fatal("reopen of a checkpointed store returned nil Recovered")
	}
	if rec2.SnapshotSeq != 0 {
		t.Fatalf("SnapshotSeq = %d, want 0", rec2.SnapshotSeq)
	}
	if len(rec2.Labels) != 6 {
		t.Fatalf("recovered %d labels, want 6", len(rec2.Labels))
	}
	if len(rec2.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec2.Records))
	}
	wantKinds := []byte{KindSpan, KindGrow, KindSpan}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) || r.Kind != wantKinds[i] {
			t.Fatalf("record %d = {Seq:%d Kind:%d}, want {Seq:%d Kind:%d}", i, r.Seq, r.Kind, i+1, wantKinds[i])
		}
	}
	if got := rec2.Records[1].N; got != 8 {
		t.Fatalf("grow record N = %d, want 8", got)
	}
	sp := rec2.Records[0].Span
	if sp.Len() != 2 {
		t.Fatalf("span record has %d edges, want 2", sp.Len())
	}
	if u, v := sp.Edge(0); u != 0 || v != 1 {
		t.Fatalf("span edge 0 = (%d,%d), want (0,1)", u, v)
	}
	if s2.Seq() != 3 || s2.BatchesSinceCheckpoint() != 3 {
		t.Fatalf("reopened Seq/sinceCkpt = %d/%d, want 3/3", s2.Seq(), s2.BatchesSinceCheckpoint())
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name        string
		mangle      func(data []byte) []byte
		wantRecords int
	}{
		{"trailing garbage", func(d []byte) []byte { return append(d, 0xde, 0xad, 0xbe, 0xef) }, 2},
		{"half a record", func(d []byte) []byte { return append(d, AppendGrowRecord(nil, 3, 9)[:7]...) }, 2},
		{"flipped crc bit", func(d []byte) []byte { d[len(d)-1] ^= 0x01; return d }, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, _ := mustOpen(t, dir)
			if err := s.Checkpoint(isolated(4), 0); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			if _, err := s.LogSpan(span([2]int{0, 1})); err != nil {
				t.Fatalf("LogSpan: %v", err)
			}
			if _, err := s.LogSpan(span([2]int{2, 3})); err != nil {
				t.Fatalf("LogSpan: %v", err)
			}
			s.Close()

			tail := filepath.Join(dir, "wal-0000000000000001.pccw")
			data, err := os.ReadFile(tail)
			if err != nil {
				t.Fatalf("read tail: %v", err)
			}
			if err := os.WriteFile(tail, tc.mangle(data), 0o644); err != nil {
				t.Fatalf("mangle tail: %v", err)
			}

			s2, rec := mustOpen(t, dir)
			defer s2.Close()
			if len(rec.Records) != tc.wantRecords {
				t.Fatalf("recovered %d records, want %d", len(rec.Records), tc.wantRecords)
			}
			if want := uint64(tc.wantRecords); s2.Seq() != want {
				t.Fatalf("Seq = %d, want %d", s2.Seq(), want)
			}

			// The damage must be cut away: a third reopen sees the same.
			s2.Close()
			s3, rec3 := mustOpen(t, dir)
			defer s3.Close()
			if len(rec3.Records) != tc.wantRecords {
				t.Fatalf("second reopen recovered %d records, want %d", len(rec3.Records), tc.wantRecords)
			}
		})
	}
}

func TestStoreManifestFallback(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	if err := s.Checkpoint(isolated(4), 0); err != nil {
		t.Fatalf("Checkpoint(0): %v", err)
	}
	if _, err := s.LogSpan(span([2]int{0, 1})); err != nil {
		t.Fatalf("LogSpan: %v", err)
	}
	if _, err := s.LogSpan(span([2]int{1, 2})); err != nil {
		t.Fatalf("LogSpan: %v", err)
	}
	if err := s.Checkpoint([]int32{0, 0, 0, 3}, 2); err != nil {
		t.Fatalf("Checkpoint(2): %v", err)
	}
	if _, err := s.LogSpan(span([2]int{2, 3})); err != nil {
		t.Fatalf("LogSpan: %v", err)
	}
	s.Close()

	// Destroy the newest snapshot: recovery must fall back to the seq-0
	// snapshot and still reach seq 3 purely from the retained WAL.
	newest := filepath.Join(dir, "snap-0000000000000002.pccs")
	if err := os.WriteFile(newest, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatalf("corrupt newest snapshot: %v", err)
	}
	s2, rec := mustOpen(t, dir)
	defer s2.Close()
	if rec.SnapshotSeq != 0 {
		t.Fatalf("fell back to snapshot seq %d, want 0", rec.SnapshotSeq)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records from fallback, want 3", len(rec.Records))
	}
	if s2.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", s2.Seq())
	}
}

func TestStoreCheckpointRetention(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	if err := s.Checkpoint(isolated(4), 0); err != nil {
		t.Fatalf("Checkpoint(0): %v", err)
	}
	labels := []int32{0, 0, 0, 3}
	for seq := uint64(1); seq <= 4; seq++ {
		if _, err := s.LogSpan(span([2]int{0, 1})); err != nil {
			t.Fatalf("LogSpan #%d: %v", seq, err)
		}
		if seq%2 == 0 {
			if err := s.Checkpoint(labels, seq); err != nil {
				t.Fatalf("Checkpoint(%d): %v", seq, err)
			}
		}
	}
	s.Close()

	// After the seq-4 checkpoint the manifest is [snap4, snap2]: the
	// seq-0 snapshot and the records at seqs 1–2 (superseded by the
	// fallback snapshot) must be gone; records 3–4 must be retained.
	names := dirNames(t, dir)
	for _, gone := range []string{"snap-0000000000000000.pccs", "wal-0000000000000001.pccw"} {
		for _, n := range names {
			if n == gone {
				t.Fatalf("%s still present after retention: %v", gone, names)
			}
		}
	}
	var snaps, wals int
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "snap-"):
			snaps++
		case strings.HasPrefix(n, "wal-"):
			wals++
		}
	}
	if snaps != 2 {
		t.Fatalf("retained %d snapshots, want 2 (current + fallback): %v", snaps, names)
	}
	if wals < 1 || wals > 2 {
		t.Fatalf("retained %d wal segments, want 1 or 2: %v", wals, names)
	}

	s2, rec := mustOpen(t, dir)
	defer s2.Close()
	if rec.SnapshotSeq != 4 || len(rec.Records) != 0 {
		t.Fatalf("recovered (snapSeq=%d, %d records), want (4, 0)", rec.SnapshotSeq, len(rec.Records))
	}
}

func TestStoreCheckpointSeqOutOfStep(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	if err := s.Checkpoint(isolated(2), 0); err != nil {
		t.Fatalf("Checkpoint(0): %v", err)
	}
	// Seq is 0: a checkpoint may cover 0 (boundary) or 1 (a rebuild),
	// nothing else.
	if err := s.Checkpoint(isolated(2), 2); err == nil {
		t.Fatal("Checkpoint two seqs ahead succeeded, want error")
	}
	if s.Failed() != nil {
		t.Fatalf("seq validation poisoned the store: %v", s.Failed())
	}
	if err := s.Checkpoint(isolated(2), 1); err != nil {
		t.Fatalf("rebuild checkpoint at seq+1: %v", err)
	}
	if s.Seq() != 1 {
		t.Fatalf("Seq after rebuild checkpoint = %d, want 1", s.Seq())
	}
}

func TestStorePoisonedAfterWriteFailure(t *testing.T) {
	dir := t.TempDir()
	// Budget measured so the store opens and checkpoints fine, then dies
	// inside the second LogSpan's write.
	probe := NewFailFS(OSFS{}, 1<<40)
	s, _, err := Open(dir, probe)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Checkpoint(isolated(2), 0); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := s.LogSpan(span([2]int{0, 1})); err != nil {
		t.Fatalf("LogSpan: %v", err)
	}
	budget := probe.Cost() + 3 // partway into the next append's bytes
	s.Close()

	dir2 := t.TempDir()
	s2, _, err := Open(dir2, NewFailFS(OSFS{}, budget))
	if err != nil {
		t.Fatalf("Open under budget: %v", err)
	}
	if err := s2.Checkpoint(isolated(2), 0); err != nil {
		t.Fatalf("Checkpoint under budget: %v", err)
	}
	if _, err := s2.LogSpan(span([2]int{0, 1})); err != nil {
		t.Fatalf("first LogSpan under budget: %v", err)
	}
	if _, err := s2.LogSpan(span([2]int{0, 1})); err == nil {
		t.Fatal("LogSpan past the write budget succeeded, want injected fault")
	}
	if s2.Failed() == nil {
		t.Fatal("store not poisoned after a write failure")
	}
	if _, err := s2.LogSpan(span([2]int{0, 1})); err == nil {
		t.Fatal("LogSpan on a poisoned store succeeded")
	}
	if err := s2.Checkpoint(isolated(2), 2); err == nil {
		t.Fatal("Checkpoint on a poisoned store succeeded")
	}
}
