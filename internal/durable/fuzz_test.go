package durable

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode hardens DecodeSnapshot against arbitrary bytes:
// it must never panic or over-allocate, and anything it accepts must
// be a canonical labeling that re-encodes to exactly the input (the
// format has one valid encoding per labeling, so decode∘encode is the
// identity on accepted inputs).
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(AppendSnapshot(nil, 0, nil))
	f.Add(AppendSnapshot(nil, 7, []int32{0, 0, 2, 2, 0}))
	good := AppendSnapshot(nil, 3, []int32{0, 1, 1})
	f.Add(good[:len(good)-1]) // truncated
	f.Add(append(good, 0x00)) // trailing garbage
	flipped := append([]byte(nil), good...)
	flipped[9] ^= 0x40
	f.Add(flipped) // corrupt count
	f.Add([]byte("PCCS"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, labels, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		for v, l := range labels {
			if l < 0 || int(l) > v || labels[l] != l {
				t.Fatalf("decoder accepted non-canonical label[%d] = %d", v, l)
			}
		}
		if re := AppendSnapshot(nil, seq, labels); !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not the identity: %d byte input, %d byte re-encoding", len(data), len(re))
		}
	})
}

// FuzzWALDecode hardens DecodeSegment: arbitrary bytes must never
// panic or over-allocate, a decode error is only ever a segment-header
// problem, and whatever records are accepted must re-encode to exactly
// the accepted prefix data[:tornAt] with contiguous sequence numbers.
func FuzzWALDecode(f *testing.F) {
	seg := appendSegmentHeader(nil, 5)
	seg = AppendSpanRecord(seg, 5, span([2]int{0, 1}, [2]int{3, 2}))
	seg = AppendGrowRecord(seg, 6, 9)
	seg = AppendSpanRecord(seg, 7, span())
	f.Add(seg)
	f.Add(seg[:len(seg)-3])    // torn tail
	f.Add(append(seg, 0xff))   // trailing garbage
	f.Add(seg[:walHeaderSize]) // empty segment
	f.Add([]byte("PCCW"))
	f.Fuzz(func(t *testing.T, data []byte) {
		firstSeq, recs, tornAt, err := DecodeSegment(data)
		if err != nil {
			return
		}
		if tornAt < walHeaderSize || tornAt > len(data) {
			t.Fatalf("tornAt %d outside [%d, %d]", tornAt, walHeaderSize, len(data))
		}
		re := appendSegmentHeader(nil, firstSeq)
		for i, r := range recs {
			if r.Seq != firstSeq+uint64(i) {
				t.Fatalf("record %d has seq %d, want contiguous %d", i, r.Seq, firstSeq+uint64(i))
			}
			switch r.Kind {
			case KindSpan:
				re = AppendSpanRecord(re, r.Seq, r.Span)
			case KindGrow:
				re = AppendGrowRecord(re, r.Seq, r.N)
			default:
				t.Fatalf("record %d has unknown kind %d", i, r.Kind)
			}
		}
		if !bytes.Equal(re, data[:tornAt]) {
			t.Fatalf("accepted prefix does not re-encode: %d records, tornAt %d, re-encoded %d bytes", len(recs), tornAt, len(re))
		}
	})
}
