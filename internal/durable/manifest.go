package durable

import (
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strings"
)

// The manifest is the root of truth of a store directory: a small text
// file named MANIFEST listing (snapshot file, last-applied batch seq)
// pairs, newest first, with a CRC32 footer line:
//
//	PCCM 1
//	snapshot snap-0000000000000006.pccs 6
//	snapshot snap-0000000000000004.pccs 4
//	crc 1a2b3c4d
//
// Recovery starts from the first pair whose snapshot file decodes
// clean and replays the WAL from that pair's seq; the older pair is
// the fallback, and the WAL is retained back to it (segments are only
// deleted once they precede the fallback snapshot), so recovery from
// either pair converges on the same labeling. The manifest is replaced
// atomically — written to MANIFEST.tmp, fsynced, renamed over MANIFEST,
// directory fsynced — so there is always exactly one complete manifest
// on disk and a crash can never tear it.
const (
	manifestName    = "MANIFEST"
	manifestTmpName = "MANIFEST.tmp"
	manifestMagic   = "PCCM 1"
	// manifestDepth is how many (snapshot, seq) pairs the manifest
	// retains: the current snapshot plus one fallback.
	manifestDepth = 2
)

// manifestEntry is one (snapshot file, last-applied seq) pair.
type manifestEntry struct {
	file string
	seq  uint64
}

// encodeManifest renders entries in the MANIFEST text format.
func encodeManifest(entries []manifestEntry) []byte {
	var b strings.Builder
	b.WriteString(manifestMagic + "\n")
	for _, e := range entries {
		fmt.Fprintf(&b, "snapshot %s %d\n", e.file, e.seq)
	}
	body := b.String()
	return []byte(fmt.Sprintf("%scrc %08x\n", body, crc32.ChecksumIEEE([]byte(body))))
}

// decodeManifest parses the MANIFEST text format, validating the magic
// line, the CRC footer, and every entry.
func decodeManifest(data []byte) ([]manifestEntry, error) {
	text := string(data)
	i := strings.LastIndex(text, "crc ")
	if i < 0 || !strings.HasSuffix(text, "\n") {
		return nil, fmt.Errorf("durable: manifest has no crc footer")
	}
	body, foot := text[:i], strings.TrimSpace(text[i+len("crc "):])
	var stored uint32
	if _, err := fmt.Sscanf(foot, "%08x", &stored); err != nil {
		return nil, fmt.Errorf("durable: bad manifest crc line %q", foot)
	}
	if sum := crc32.ChecksumIEEE([]byte(body)); sum != stored {
		return nil, fmt.Errorf("durable: manifest CRC mismatch: stored %08x, computed %08x", stored, sum)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) == 0 || lines[0] != manifestMagic {
		return nil, fmt.Errorf("durable: bad manifest magic (want %q)", manifestMagic)
	}
	var entries []manifestEntry
	for _, line := range lines[1:] {
		var e manifestEntry
		if _, err := fmt.Sscanf(line, "snapshot %s %d", &e.file, &e.seq); err != nil {
			return nil, fmt.Errorf("durable: bad manifest line %q", line)
		}
		if e.file != filepath.Base(e.file) || e.file == "" {
			return nil, fmt.Errorf("durable: manifest snapshot name %q is not a bare file name", e.file)
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("durable: manifest lists no snapshots")
	}
	return entries, nil
}

// writeManifest atomically replaces dir's MANIFEST with entries: temp
// write, file sync, rename, directory sync. Any failure leaves the old
// manifest in effect.
func writeManifest(fsys FS, dir string, entries []manifestEntry) error {
	tmp := filepath.Join(dir, manifestTmpName)
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeManifest(entries)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
