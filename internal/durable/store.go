// Package durable is the persistence subsystem behind pramcc.Open and
// Service.Persist: snapshot files (PCCS) for published labelings, a
// write-ahead log (PCCW segments) of ingested batches, and an
// atomically-replaced MANIFEST tying them together. The contract is
// checkpoint-plus-delta-stream: a dense snapshot is written rarely
// (every K batches), the batch stream is logged continuously with one
// fsync per batch, and recovery is the newest valid snapshot plus an
// exactly-once replay of the WAL records past its sequence number.
//
// Crash discipline, enforced by the crash-injection suite
// (crash_test.go) at every write-site byte offset:
//
//   - WAL appends are framed with per-record CRCs and fsynced per
//     batch, so a crash can only tear the final record; recovery
//     truncates the segment at the first bad record and keeps
//     everything before it.
//   - Snapshots are written to fresh uniquely-named files and become
//     reachable only when the MANIFEST — replaced via write-temp,
//     fsync, rename, fsync-dir — points at them, so a half-written
//     snapshot is never consulted.
//   - The WAL is retained back to the manifest's fallback snapshot, so
//     recovery converges on the same labeling from either manifest
//     entry even if the newest snapshot file is damaged.
//
// Any write or sync failure poisons the store: the failed write leaves
// the durable tail unknowable (the fsync-error discipline), so every
// later mutation returns the original error and the caller keeps
// serving from memory while refusing to acknowledge new durable state.
package durable

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/graph"
	"repro/internal/obs"
)

// Durability metrics, process-wide across stores (ccserve, the
// intended operator surface, runs exactly one).
var (
	mWALAppends = obs.Default.Counter("pramcc_wal_appends_total",
		"batch records appended (and fsynced) to the ingest write-ahead log")
	mWALBytes = obs.Default.Counter("pramcc_wal_append_bytes_total",
		"bytes appended to the ingest write-ahead log")
	mCheckpoints = obs.Default.Counter("pramcc_checkpoints_total",
		"snapshot checkpoints written by durable stores")
	mDurableSeq = obs.Default.Gauge("pramcc_durable_seq",
		"last batch sequence number made durable (logged and fsynced) by the most recent store")
	mDurableSnapSeq = obs.Default.Gauge("pramcc_durable_snapshot_seq",
		"batch sequence number covered by the most recently checkpointed snapshot")
)

// lastCheckpointNanos feeds the scrape-time checkpoint-age gauge.
var lastCheckpointNanos atomic.Int64

func init() {
	obs.Default.GaugeFunc("pramcc_durable_snapshot_age_seconds",
		"seconds since a durable store last checkpointed a snapshot (-1 before the first)",
		func() float64 {
			ns := lastCheckpointNanos.Load()
			if ns == 0 {
				return -1
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
}

// Recovered is the warm-start state Open reconstructs from an existing
// store directory: the newest valid snapshot's labeling and the WAL
// records logged after it, in sequence order. The caller restores the
// labeling and replays the records exactly once.
type Recovered struct {
	// Labels is the snapshot's canonical labeling (labels[v] is the
	// minimum vertex id of v's component).
	Labels []int32
	// SnapshotSeq is the batch sequence number the snapshot reflects.
	SnapshotSeq uint64
	// Records are the pending WAL records with Seq > SnapshotSeq,
	// contiguous and ascending.
	Records []Record
}

// segInfo tracks one live WAL segment file.
type segInfo struct {
	name  string
	start uint64 // sequence number of the segment's first record
}

// Store is a durable snapshot + WAL store rooted at one directory.
// Writers (LogSpan, LogGrow, Checkpoint) must be externally
// serialized, exactly like the Service write path that drives them.
type Store struct {
	dir  string
	fsys FS

	seq         uint64 // last durably logged batch seq
	snapSeq     uint64 // seq covered by the manifest's newest snapshot
	snapFile    string
	prevSeq     uint64 // fallback snapshot seq (WAL retention floor)
	prevFile    string
	segments    []segInfo // live segments, ascending start; last is open
	seg         File      // open tail segment
	sinceCkpt   int       // batches logged since the last checkpoint
	encBuf      []byte    // reusable record encode buffer
	failed      error
	hasSnapshot bool
}

// Open opens the store directory, creating it (and returning a nil
// Recovered) when it holds no MANIFEST. With a manifest present it
// recovers: newest valid snapshot, WAL scan with torn-tail truncation,
// and the pending record list — see Recovered.
func Open(dir string, fsys FS) (*Store, *Recovered, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, err
	}
	s := &Store{dir: dir, fsys: fsys}
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		// Fresh store. Stray snapshot/WAL files from a crash before the
		// first checkpoint are unreachable (no manifest names them);
		// clear them so the directory starts clean.
		names, err := fsys.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		for _, name := range names {
			if strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, "snap-") {
				if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
					return nil, nil, err
				}
			}
		}
		if err := s.openSegment(1); err != nil {
			return nil, nil, err
		}
		return s, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	entries, err := decodeManifest(data)
	if err != nil {
		return nil, nil, err
	}
	rec, err := s.recover(entries)
	if err != nil {
		return nil, nil, err
	}
	// A recovered empty tail (its start is exactly seq+1 — had it held
	// records, seq would have advanced past it) is recreated by
	// openSegment under the same name; untrack it first so the segment
	// list never holds the tail twice.
	if n := len(s.segments); n > 0 && s.segments[n-1].start == s.seq+1 {
		s.segments = s.segments[:n-1]
	}
	if err := s.openSegment(s.seq + 1); err != nil {
		return nil, nil, err
	}
	mDurableSeq.Set(int64(s.seq))
	mDurableSnapSeq.Set(int64(s.snapSeq))
	return s, rec, nil
}

// recover loads the newest valid snapshot among entries and scans the
// WAL for the records past it.
func (s *Store) recover(entries []manifestEntry) (*Recovered, error) {
	var labels []int32
	var snapErrs []error
	ok := false
	for _, e := range entries {
		data, err := s.fsys.ReadFile(filepath.Join(s.dir, e.file))
		if err == nil {
			var seq uint64
			seq, labels, err = DecodeSnapshot(data)
			if err == nil && seq == e.seq {
				s.snapSeq, s.snapFile, ok = e.seq, e.file, true
				break
			}
			if err == nil {
				err = fmt.Errorf("durable: snapshot %s carries seq %d, manifest says %d", e.file, seq, e.seq)
			}
		}
		snapErrs = append(snapErrs, err)
	}
	if !ok {
		return nil, fmt.Errorf("durable: no manifest snapshot is readable: %v", snapErrs)
	}
	s.hasSnapshot = true
	s.prevSeq, s.prevFile = entries[len(entries)-1].seq, entries[len(entries)-1].file
	s.seq = s.snapSeq

	names, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, name := range names {
		var start uint64
		if n, err := fmt.Sscanf(name, "wal-%016x.pccw", &start); n == 1 && err == nil {
			segs = append(segs, segInfo{name: name, start: start})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	rec := &Recovered{Labels: labels, SnapshotSeq: s.snapSeq}
	next := s.snapSeq + 1
	var live []segInfo
	broken := false
	for _, seg := range segs {
		path := filepath.Join(s.dir, seg.name)
		// Once the record stream breaks — torn tail, damaged header, or
		// a sequence gap — every later segment belongs to a timeline
		// that was never acknowledged; it must be deleted, or a future
		// recovery could splice its stale records after fresh ones that
		// reuse the same sequence numbers.
		if broken {
			if err := s.fsys.Remove(path); err != nil {
				return nil, err
			}
			continue
		}
		data, err := s.fsys.ReadFile(path)
		if err != nil {
			return nil, err
		}
		firstSeq, recs, tornAt, err := DecodeSegment(data)
		if err != nil || firstSeq > next {
			// A damaged header (crash inside openSegment) holds no
			// records; a sequence gap means the records are unreachable
			// from the snapshot. Either way the file is dead.
			broken = true
			if err := s.fsys.Remove(path); err != nil {
				return nil, err
			}
			continue
		}
		for _, r := range recs {
			if r.Seq < next {
				continue // already covered by the snapshot
			}
			rec.Records = append(rec.Records, r)
			next = r.Seq + 1
		}
		if tornAt < len(data) {
			// Torn tail: cut the damage away so future scans see a clean
			// segment. A segment torn before its first record is simply
			// an empty file — remove it instead.
			broken = true
			if tornAt == walHeaderSize {
				if err := s.fsys.Remove(path); err != nil {
					return nil, err
				}
				continue
			}
			if err := s.fsys.Truncate(path, int64(tornAt)); err != nil {
				return nil, err
			}
		}
		live = append(live, seg)
	}
	s.segments = live
	s.seq = next - 1
	s.sinceCkpt = len(rec.Records)
	return rec, nil
}

// openSegment creates and syncs a fresh tail segment whose first
// record will carry seq start.
func (s *Store) openSegment(start uint64) error {
	name := fmt.Sprintf("wal-%016x.pccw", start)
	f, err := s.fsys.Create(filepath.Join(s.dir, name))
	if err != nil {
		return s.fail(err)
	}
	if _, err := f.Write(appendSegmentHeader(nil, start)); err != nil {
		f.Close()
		return s.fail(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return s.fail(err)
	}
	if err := s.fsys.SyncDir(s.dir); err != nil {
		f.Close()
		return s.fail(err)
	}
	s.seg = f
	s.segments = append(s.segments, segInfo{name: name, start: start})
	return nil
}

// fail poisons the store with its first error; every later mutation
// returns it.
func (s *Store) fail(err error) error {
	if s.failed == nil {
		s.failed = fmt.Errorf("durable: store failed, refusing further writes: %w", err)
	}
	return s.failed
}

// Failed returns the poisoning error, nil while the store is healthy.
func (s *Store) Failed() error { return s.failed }

// Seq returns the last durably logged batch sequence number.
func (s *Store) Seq() uint64 { return s.seq }

// SnapshotSeq returns the sequence number covered by the manifest's
// newest snapshot.
func (s *Store) SnapshotSeq() uint64 { return s.snapSeq }

// BatchesSinceCheckpoint returns how many batches have been logged (or
// recovered) since the last checkpoint — the checkpoint-every-K input.
func (s *Store) BatchesSinceCheckpoint() int { return s.sinceCkpt }

// LogSpan appends one span batch to the WAL and fsyncs it, returning
// the batch's assigned sequence number. The record is durable when
// LogSpan returns nil.
func (s *Store) LogSpan(span graph.EdgeSpan) (uint64, error) {
	return s.logRecord(func(buf []byte, seq uint64) []byte {
		return AppendSpanRecord(buf, seq, span)
	})
}

// LogGrow appends a grow-to-n record to the WAL and fsyncs it.
func (s *Store) LogGrow(n int) (uint64, error) {
	return s.logRecord(func(buf []byte, seq uint64) []byte {
		return AppendGrowRecord(buf, seq, n)
	})
}

func (s *Store) logRecord(enc func(buf []byte, seq uint64) []byte) (uint64, error) {
	if s.failed != nil {
		return 0, s.failed
	}
	seq := s.seq + 1
	s.encBuf = enc(s.encBuf[:0], seq)
	if _, err := s.seg.Write(s.encBuf); err != nil {
		return 0, s.fail(err)
	}
	if err := s.seg.Sync(); err != nil {
		return 0, s.fail(err)
	}
	s.seq = seq
	s.sinceCkpt++
	mWALAppends.Inc()
	mWALBytes.Add(int64(len(s.encBuf)))
	mDurableSeq.Set(int64(seq))
	return seq, nil
}

// Checkpoint persists labels as the snapshot covering seq, swaps the
// manifest to it, rotates the tail segment, and drops WAL segments
// that precede the new fallback snapshot. seq must be the store's
// current Seq() (a batch-boundary checkpoint) or Seq()+1 (a full
// rebuild — Service.Update — which consumes a sequence number of its
// own so replay cannot double-apply across it).
func (s *Store) Checkpoint(labels []int32, seq uint64) error {
	if s.failed != nil {
		return s.failed
	}
	if seq != s.seq && seq != s.seq+1 {
		return fmt.Errorf("durable: checkpoint seq %d out of step with store seq %d", seq, s.seq)
	}
	snapName := fmt.Sprintf("snap-%016x.pccs", seq)
	f, err := s.fsys.Create(filepath.Join(s.dir, snapName))
	if err != nil {
		return s.fail(err)
	}
	if err := WriteSnapshot(f, seq, labels); err != nil {
		f.Close()
		return s.fail(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return s.fail(err)
	}
	if err := f.Close(); err != nil {
		return s.fail(err)
	}
	entries := []manifestEntry{{file: snapName, seq: seq}}
	if s.hasSnapshot && s.snapFile != snapName {
		entries = append(entries, manifestEntry{file: s.snapFile, seq: s.snapSeq})
	}
	if err := writeManifest(s.fsys, s.dir, entries); err != nil {
		return s.fail(err)
	}

	// The manifest now names the new snapshot; everything below is
	// space reclamation and tail rotation, bounded by the same
	// fail-stop discipline but never able to lose acknowledged state.
	droppedSnap := s.prevFile
	if len(entries) == 2 {
		s.prevFile, s.prevSeq = entries[1].file, entries[1].seq
	} else {
		s.prevFile, s.prevSeq = snapName, seq
	}
	s.snapFile, s.snapSeq = snapName, seq
	s.hasSnapshot = true
	s.seq = seq
	s.sinceCkpt = 0
	if droppedSnap != "" && droppedSnap != s.prevFile && droppedSnap != s.snapFile {
		if err := s.fsys.Remove(filepath.Join(s.dir, droppedSnap)); err != nil {
			return s.fail(err)
		}
	}
	if err := s.rotate(); err != nil {
		return err
	}
	if err := s.dropAppliedSegments(); err != nil {
		return err
	}
	mCheckpoints.Inc()
	mDurableSnapSeq.Set(int64(seq))
	mDurableSeq.Set(int64(seq))
	lastCheckpointNanos.Store(time.Now().UnixNano())
	return nil
}

// rotate closes the tail segment and opens a fresh one at seq+1,
// unless the tail is already empty at exactly that position.
func (s *Store) rotate() error {
	tail := s.segments[len(s.segments)-1]
	if tail.start == s.seq+1 {
		return nil // freshly opened, no records yet — keep it
	}
	if err := s.seg.Close(); err != nil {
		return s.fail(err)
	}
	return s.openSegment(s.seq + 1)
}

// dropAppliedSegments removes WAL segments whose records all precede
// the fallback snapshot — they can never be replayed again, from
// either manifest entry.
func (s *Store) dropAppliedSegments() error {
	floor := s.prevSeq
	keep := s.segments[:0]
	for i, seg := range s.segments {
		// A segment's records end where the next segment starts; only a
		// fully-superseded segment (next.start ≤ floor+1) is deletable,
		// and the open tail never is.
		if i+1 < len(s.segments) && s.segments[i+1].start <= floor+1 {
			if err := s.fsys.Remove(filepath.Join(s.dir, seg.name)); err != nil {
				return s.fail(err)
			}
			continue
		}
		keep = append(keep, seg)
	}
	s.segments = keep
	return nil
}

// Close closes the tail segment. Appends are fsynced individually, so
// Close flushes nothing; it only releases the handle. Idempotent.
func (s *Store) Close() error {
	if s.seg == nil {
		return nil
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}
