package baseline

import (
	"fmt"
	"testing"

	"repro/graph"
	"repro/internal/check"
	"repro/internal/pram"
)

func TestLiuTarjanFamilyCorrect(t *testing.T) {
	gs := map[string]*graph.Graph{
		"path":    graph.Path(200),
		"star":    graph.Star(150),
		"grid":    graph.Grid2D(12, 14),
		"gnm":     graph.Gnm(800, 3200, 1),
		"multi":   graph.DisjointUnion(graph.Clique(15), graph.Path(40), graph.Star(25)),
		"permut":  graph.Permuted(graph.Cycle(123), 9),
		"loops":   graph.FromEdges(3, [][2]int{{0, 0}, {0, 1}, {2, 2}}),
		"barbell": graph.Barbell(10, 15),
	}
	for _, v := range LTVariants() {
		for gname, g := range gs {
			t.Run(fmt.Sprintf("%s/%s", v.Name, gname), func(t *testing.T) {
				res := LiuTarjan(pram.New(1), g, v)
				if err := check.Components(g, res.Labels); err != nil {
					t.Fatalf("rounds=%d: %v", res.Rounds, err)
				}
			})
		}
	}
}

func TestLiuTarjanVariantByName(t *testing.T) {
	v, err := LTVariantByName("PFA")
	if err != nil || v.Name != "PFA" {
		t.Fatalf("lookup failed: %v %v", v, err)
	}
	if _, err := LTVariantByName("nope"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestLiuTarjanAlterAccelerates(t *testing.T) {
	// Altering variants contract distances so they never need more
	// rounds than their non-altering counterparts on a path (extended
	// links plus shortcut already give pointer-doubling behaviour, so
	// both are O(log n)-ish; alter only helps).
	g := graph.Path(256)
	e := LiuTarjan(pram.New(1), g, LTVariant{"E", LinkExtended, ShortcutOne, false})
	ea := LiuTarjan(pram.New(1), g, LTVariant{"EA", LinkExtended, ShortcutOne, true})
	if ea.Rounds > e.Rounds {
		t.Fatalf("alter must not slow a path down: EA=%d E=%d", ea.Rounds, e.Rounds)
	}
	if e.Rounds > 6*log2(256)+8 {
		t.Fatalf("extended link with shortcut should be polylogarithmic on a path: %d rounds", e.Rounds)
	}
}

func TestLiuTarjanFullShortcutFewerRounds(t *testing.T) {
	// Repeat-to-root shortcuts never take more rounds than single
	// shortcuts for the same link rule (they do strictly more work per
	// round).
	g := graph.Gnm(2000, 6000, 3)
	pa := LiuTarjan(pram.New(1), g, LTVariant{"PA", LinkParent, ShortcutOne, true})
	pfa := LiuTarjan(pram.New(1), g, LTVariant{"PFA", LinkParent, ShortcutFull, true})
	if pfa.Rounds > pa.Rounds+2 {
		t.Fatalf("full shortcut took more rounds: PFA=%d PA=%d", pfa.Rounds, pa.Rounds)
	}
}

func TestLiuTarjanDeterministic(t *testing.T) {
	g := graph.Gnm(500, 1500, 5)
	a := LiuTarjan(pram.New(1), g, LTVariants()[1])
	b := LiuTarjan(pram.New(1), g, LTVariants()[1])
	if a.Rounds != b.Rounds {
		t.Fatal("deterministic variant diverged")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels diverged")
		}
	}
}

func TestLiuTarjanParallelWorkers(t *testing.T) {
	g := graph.Gnm(5000, 20000, 7)
	for _, v := range []LTVariant{LTVariants()[1], LTVariants()[7]} {
		res := LiuTarjan(pram.New(8), g, v)
		if err := check.Components(g, res.Labels); err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
	}
}

func TestLiuTarjanAcyclicAlways(t *testing.T) {
	// Run a few rounds manually via the fixed point and check the final
	// parents have no nontrivial cycles (strictly-decreasing pointers).
	g := graph.ChungLu(600, 2400, 2.3, 11)
	for _, v := range LTVariants() {
		res := LiuTarjan(pram.New(1), g, v)
		seen := make([]int8, g.N)
		for s := 0; s < g.N; s++ {
			x := int32(s)
			for steps := 0; res.Labels[x] != x; steps++ {
				x = res.Labels[x]
				if steps > g.N {
					t.Fatalf("%s: label cycle detected", v.Name)
				}
			}
			seen[x] = 1
		}
	}
}
