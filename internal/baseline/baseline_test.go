package baseline

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/graph"
	"repro/internal/check"
	"repro/internal/pram"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("fresh unions must merge")
	}
	if uf.Union(0, 1) {
		t.Fatal("repeated union must report already merged")
	}
	if uf.Find(0) != uf.Find(1) || uf.Find(2) != uf.Find(3) {
		t.Fatal("find inconsistent")
	}
	if uf.Find(0) == uf.Find(2) {
		t.Fatal("separate sets merged")
	}
}

func TestUnionFindMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Gnm(200, 300, seed)
		return check.SamePartition(Components(g), g.ComponentsBFS()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpanningForestSeq(t *testing.T) {
	g := graph.Gnm(300, 900, 4)
	if err := check.Forest(g, SpanningForestSeq(g)); err != nil {
		t.Fatal(err)
	}
}

var workloads = map[string]func() *graph.Graph{
	"path":     func() *graph.Graph { return graph.Path(512) },
	"cycle":    func() *graph.Graph { return graph.Cycle(333) },
	"star":     func() *graph.Graph { return graph.Star(400) },
	"grid":     func() *graph.Graph { return graph.Grid2D(20, 20) },
	"gnm":      func() *graph.Graph { return graph.Gnm(1000, 4000, 7) },
	"multi":    func() *graph.Graph { return graph.DisjointUnion(graph.Path(50), graph.Clique(16), graph.Star(20)) },
	"permuted": func() *graph.Graph { return graph.Permuted(graph.Grid2D(15, 15), 3) },
	"isolated": func() *graph.Graph { return graph.WithIsolated(graph.Path(20), 10) },
}

func TestParallelBaselinesCorrect(t *testing.T) {
	algos := map[string]func(*pram.Machine, *graph.Graph) ParallelResult{
		"sv": ShiloachVishkin,
		"as": AwerbuchShiloach,
		"lt": LiuTarjanMinLink,
		"lp": LabelPropagation,
	}
	for gname, gen := range workloads {
		g := gen()
		for aname, algo := range algos {
			t.Run(fmt.Sprintf("%s/%s", aname, gname), func(t *testing.T) {
				res := algo(pram.New(1), g)
				if err := check.Components(g, res.Labels); err != nil {
					t.Fatalf("rounds=%d: %v", res.Rounds, err)
				}
			})
		}
	}
}

func TestMatrixSquaringCorrectSmall(t *testing.T) {
	for gname, gen := range workloads {
		g := gen()
		if g.N > 600 {
			continue
		}
		t.Run(gname, func(t *testing.T) {
			res := MatrixSquaring(pram.New(1), g)
			if err := check.Components(g, res.Labels); err != nil {
				t.Fatalf("rounds=%d: %v", res.Rounds, err)
			}
		})
	}
}

func TestSVRoundsLogarithmic(t *testing.T) {
	// O(log n) rounds on paths; the round count must grow slowly.
	r := map[int]int{}
	for _, n := range []int{64, 512, 4096} {
		res := ShiloachVishkin(pram.New(1), graph.Path(n))
		r[n] = res.Rounds
		if res.Rounds > 4*log2(n)+8 {
			t.Fatalf("n=%d: %d rounds", n, res.Rounds)
		}
	}
	if r[4096] < r[64] {
		t.Fatalf("rounds should grow with n: %v", r)
	}
}

func log2(n int) int {
	l := 0
	for x := 1; x < n; x <<= 1 {
		l++
	}
	return l
}

func TestLabelPropagationRoundsAreDiameter(t *testing.T) {
	// Exactly ecc(min-id vertex)+1 rounds on a path from vertex 0.
	for _, n := range []int{10, 100, 333} {
		res := LabelPropagation(pram.New(1), graph.Path(n))
		if res.Rounds < n-1 || res.Rounds > n+1 {
			t.Fatalf("n=%d: label propagation took %d rounds, want ≈%d", n, res.Rounds, n)
		}
	}
}

func TestMatrixSquaringRoundsLogDiameter(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		res := MatrixSquaring(pram.New(1), graph.Path(n))
		if res.Rounds > log2(n)+2 {
			t.Fatalf("n=%d: %d rounds, want ≈log2(d)=%d", n, res.Rounds, log2(n))
		}
	}
}

func TestBaselinesAgreeWithEachOther(t *testing.T) {
	g := graph.Gnm(500, 1200, 11)
	a := ShiloachVishkin(pram.New(1), g).Labels
	b := AwerbuchShiloach(pram.New(1), g).Labels
	c := LiuTarjanMinLink(pram.New(1), g).Labels
	d := LabelPropagation(pram.New(1), g).Labels
	for _, other := range [][]int32{b, c, d} {
		if err := check.SamePartition(a, other); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBaselinesParallelWorkers(t *testing.T) {
	g := graph.Gnm(5000, 20000, 13)
	for _, w := range []int{2, 8} {
		res := ShiloachVishkin(pram.New(w), g)
		if err := check.Components(g, res.Labels); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
}

func TestLabelsAreComponentMinima(t *testing.T) {
	// SV/AS/LT/LP all converge to the minimum vertex id per component.
	g := graph.DisjointUnion(graph.Clique(5), graph.Path(6))
	oracle := g.ComponentsBFS() // BFS labels are minima by construction
	for name, algo := range map[string]func(*pram.Machine, *graph.Graph) ParallelResult{
		"sv": ShiloachVishkin, "as": AwerbuchShiloach,
		"lt": LiuTarjanMinLink, "lp": LabelPropagation,
	} {
		res := algo(pram.New(1), g)
		for v, l := range res.Labels {
			if l != oracle[v] {
				t.Fatalf("%s: label[%d] = %d, want min %d", name, v, l, oracle[v])
			}
		}
	}
}
