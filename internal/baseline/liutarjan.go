package baseline

import (
	"fmt"

	"repro/graph"
	"repro/internal/pram"
)

// The Liu–Tarjan framework [LT19] (the paper's §2.2: "Liu and Tarjan
// analyze simple algorithms that use combinations of our first three
// building blocks"). An algorithm is a per-round sequence of:
//
//	a link step     — direct, parent, or extended parent link on arcs,
//	                  always towards smaller labels (acyclic by the
//	                  strictly-decreasing discipline);
//	a shortcut step — one application or repeat-to-root;
//	an alter step   — replace arcs by parent arcs, or keep arcs as is.
//
// The eight meaningful combinations give the simple practical
// algorithms whose O(log n)-style behaviour motivates the paper's
// question (§1: "such simple algorithms often perform well in
// practice"). All run on the simulated ARBITRARY CRCW PRAM with
// snapshot (read-before-write) semantics.

// LinkRule selects the link step of a Liu–Tarjan variant.
type LinkRule int

const (
	// LinkParent links v.p to w.p for arcs (v,w) with w.p < v.p
	// (parent link, concurrent writes resolved arbitrarily).
	LinkParent LinkRule = iota
	// LinkDirect links only roots: if v.p = v and w.p < v then v.p := w.p.
	LinkDirect
	// LinkExtended is the extended parent link: each vertex v also
	// updates v.p to the minimum parent over its arcs in the same step
	// (a combining-CRCW min write).
	LinkExtended
)

// ShortcutRule selects the shortcut step.
type ShortcutRule int

const (
	// ShortcutOne applies v.p := v.p.p once.
	ShortcutOne ShortcutRule = iota
	// ShortcutFull repeats the shortcut until all trees are flat,
	// charging one PRAM step per application (root finding).
	ShortcutFull
)

// LTVariant describes one algorithm of the family.
type LTVariant struct {
	Name     string
	Link     LinkRule
	Shortcut ShortcutRule
	Alter    bool // rewrite arcs to parent arcs each round
}

// LTVariants enumerates the family (direct links require alteration to
// make progress, so the non-altering direct variant is omitted).
func LTVariants() []LTVariant {
	return []LTVariant{
		{"P", LinkParent, ShortcutOne, false},
		{"PA", LinkParent, ShortcutOne, true},
		{"PF", LinkParent, ShortcutFull, false},
		{"PFA", LinkParent, ShortcutFull, true},
		{"DA", LinkDirect, ShortcutOne, true},
		{"DFA", LinkDirect, ShortcutFull, true},
		{"E", LinkExtended, ShortcutOne, false},
		{"EA", LinkExtended, ShortcutOne, true},
		{"EFA", LinkExtended, ShortcutFull, true},
	}
}

// LTVariantByName returns the named variant.
func LTVariantByName(name string) (LTVariant, error) {
	for _, v := range LTVariants() {
		if v.Name == name {
			return v, nil
		}
	}
	return LTVariant{}, fmt.Errorf("baseline: unknown Liu–Tarjan variant %q", name)
}

// LiuTarjan runs one variant of the family to a fixed point.
func LiuTarjan(m *pram.Machine, g *graph.Graph, variant LTVariant) ParallelResult {
	n := g.N
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	au := make([]int32, len(g.U))
	av := make([]int32, len(g.V))
	copy(au, g.U)
	copy(av, g.V)
	snap := make([]int32, n)
	best := make([]int64, n)

	rounds := 0
	for {
		rounds++
		// ---- link ----
		copy(snap, p)
		switch variant.Link {
		case LinkParent:
			m.Step(len(au), func(i int) {
				x, y := au[i], av[i]
				if x == y {
					return
				}
				px, py := snap[x], snap[y]
				if py < px {
					pram.Store32(&p[px], py)
				}
			})
		case LinkDirect:
			m.Step(len(au), func(i int) {
				x, y := au[i], av[i]
				if x == y {
					return
				}
				if snap[x] == x { // x is a root
					if py := snap[y]; py < x {
						pram.Store32(&p[x], py)
					}
				}
			})
		case LinkExtended:
			m.Step(n, func(i int) {
				best[i] = int64(snap[i])
			})
			m.Step(len(au), func(i int) {
				x, y := au[i], av[i]
				if x != y {
					minCombine(&best[x], int64(snap[y]))
					minCombine(&best[snap[x]], int64(snap[y]))
				}
			})
			m.Step(n, func(i int) {
				if b := int32(best[i]); b < p[i] {
					p[i] = b
				}
			})
		}

		// ---- shortcut ----
		switch variant.Shortcut {
		case ShortcutOne:
			copy(snap, p)
			m.Step(n, func(i int) {
				p[i] = snap[snap[i]]
			})
		case ShortcutFull:
			for {
				copy(snap, p)
				var moved int64
				m.Step(n, func(i int) {
					gp := snap[snap[i]]
					if gp != snap[i] {
						pram.Store64(&moved, 1)
					}
					p[i] = gp
				})
				if pram.Load64(&moved) == 0 {
					break
				}
			}
		}

		// ---- alter ----
		if variant.Alter {
			m.Step(len(au), func(i int) {
				au[i] = pram.Load32(&p[au[i]])
				av[i] = pram.Load32(&p[av[i]])
			})
		}

		// ---- fixed point: flat and consistent across arcs ----
		var active int64
		m.Step(n, func(i int) {
			if p[p[i]] != p[i] {
				pram.Store64(&active, 1)
			}
		})
		m.Step(len(au), func(i int) {
			if p[au[i]] != p[av[i]] {
				pram.Store64(&active, 1)
			}
		})
		if pram.Load64(&active) == 0 {
			break
		}
		if rounds > 8*n+64 {
			break // safety net; tests verify against the oracle
		}
	}
	return ParallelResult{Labels: p, Rounds: rounds, Stats: m.Stats()}
}

// LiuTarjanMinLinkVariant returns the "EA" variant, which is the
// algorithm exposed as LiuTarjanMinLink for the experiment tables.
func LiuTarjanMinLinkVariant() LTVariant {
	return LTVariant{"EA", LinkExtended, ShortcutOne, true}
}
