package baseline

import (
	"math/bits"
	"sync/atomic"

	"repro/graph"
	"repro/internal/pram"
)

// LiuTarjanMinLink is one of the simple concurrent labeling algorithms
// analyzed by Liu and Tarjan [LT19] (the paper's §1 cites these as the
// practical O(log n) COMBINING-CRCW algorithms): repeat { parent-link
// to the minimum neighbour parent; shortcut; alter } until only loops
// remain. Runs in O(log n) rounds on an ARBITRARY CRCW PRAM when the
// min is computed with a combining write; we charge O(1) per round as
// [LT19] do for the COMBINING model.
func LiuTarjanMinLink(m *pram.Machine, g *graph.Graph) ParallelResult {
	n := g.N
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	// Working arc list, altered in place each round.
	au := make([]int32, len(g.U))
	av := make([]int32, len(g.V))
	copy(au, g.U)
	copy(av, g.V)

	best := make([]int64, n) // min-combine cell per vertex, packed as int64
	snap := make([]int32, n)
	rounds := 0
	for {
		rounds++
		// Compute min neighbour parent per vertex (combining write).
		m.Step(n, func(i int) {
			best[i] = int64(p[i])
		})
		m.Step(len(au), func(i int) {
			x, y := au[i], av[i]
			if x == y {
				return
			}
			py := int64(pram.Load32(&p[y]))
			minCombine(&best[x], py)
		})
		// Parent link: v.p := min(v.p, best).
		var changed int64
		m.Step(n, func(i int) {
			b := int32(pram.Load64(&best[i]))
			if b < p[i] {
				p[i] = b
				pram.Store64(&changed, 1)
			}
		})
		// Shortcut (snapshot semantics: reads precede writes).
		copy(snap, p)
		m.Step(n, func(i int) {
			gp := snap[snap[i]]
			if gp != snap[i] {
				pram.Store64(&changed, 1)
			}
			p[i] = gp
		})
		// Alter.
		m.Step(len(au), func(i int) {
			au[i] = p[au[i]]
			av[i] = p[av[i]]
		})
		if pram.Load64(&changed) == 0 {
			break
		}
	}
	return ParallelResult{Labels: p, Rounds: rounds, Stats: m.Stats()}
}

// minCombine atomically lowers *cell to v. It stands in for the
// COMBINING-CRCW min write that [LT19] assume; the PRAM cost charged is
// the single concurrent write of that model.
func minCombine(cell *int64, v int64) {
	for {
		old := pram.Load64(cell)
		if v >= old {
			return
		}
		if atomic.CompareAndSwapInt64(cell, old, v) {
			return
		}
	}
}

// LabelPropagation is synchronous min-label flooding: each round every
// vertex adopts the minimum label in its closed neighbourhood. It needs
// exactly ecc(min vertex) ≤ d rounds per component — the Θ(d) baseline
// the paper's O(log d) bound is measured against (Experiment E9).
func LabelPropagation(m *pram.Machine, g *graph.Graph) ParallelResult {
	n := g.N
	label := make([]int32, n)
	next := make([]int64, n)
	for i := range label {
		label[i] = int32(i)
	}
	u, v := g.U, g.V
	rounds := 0
	for {
		rounds++
		m.Step(n, func(i int) {
			next[i] = int64(label[i])
		})
		m.Step(len(u), func(i int) {
			minCombine(&next[u[i]], int64(label[v[i]]))
		})
		var changed int64
		m.Step(n, func(i int) {
			nv := int32(next[i])
			if nv != label[i] {
				label[i] = nv
				pram.Store64(&changed, 1)
			}
		})
		if pram.Load64(&changed) == 0 {
			break
		}
	}
	return ParallelResult{Labels: label, Rounds: rounds, Stats: m.Stats()}
}

// MatrixSquaring computes components by repeated boolean squaring of
// the adjacency matrix (footnote 3: O(log d) time but far from
// work-efficient — Θ(n³) work per round as bitset matrix product).
// Intended for small n in Experiment E9's work comparison.
func MatrixSquaring(m *pram.Machine, g *graph.Graph) ParallelResult {
	n := g.N
	words := (n + 63) / 64
	rows := make([][]uint64, n)
	for i := range rows {
		rows[i] = make([]uint64, words)
		set(rows[i], i)
	}
	for i := 0; i < len(g.U); i++ {
		set(rows[g.U[i]], int(g.V[i]))
	}
	rounds := 0
	tmp := make([][]uint64, n)
	for i := range tmp {
		tmp[i] = make([]uint64, words)
	}
	for {
		rounds++
		// tmp = rows ∨ rows²  (boolean product), one PRAM step with n²
		// processors in the model; the host does n rows in parallel.
		m.StepCost(1, n, func(i int) {
			out := tmp[i]
			copy(out, rows[i])
			ri := rows[i]
			for w := 0; w < words; w++ {
				bits := ri[w]
				for bits != 0 {
					b := bits & (-bits)
					j := w*64 + trailingZeros(bits)
					bits ^= b
					rj := rows[j]
					for k := 0; k < words; k++ {
						out[k] |= rj[k]
					}
				}
			}
		})
		changed := false
		for i := 0; i < n && !changed; i++ {
			for w := 0; w < words; w++ {
				if tmp[i][w] != rows[i][w] {
					changed = true
					break
				}
			}
		}
		rows, tmp = tmp, rows
		if !changed {
			break
		}
	}
	labels := make([]int32, n)
	for i := 0; i < n; i++ {
		// Label = smallest reachable vertex.
		for w := 0; w < words; w++ {
			if rows[i][w] != 0 {
				labels[i] = int32(w*64 + trailingZeros(rows[i][w]))
				break
			}
		}
	}
	return ParallelResult{Labels: labels, Rounds: rounds, Stats: m.Stats()}
}

func set(row []uint64, j int) { row[j/64] |= 1 << (uint(j) % 64) }

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
