package baseline

import (
	"fmt"
	"testing"

	"repro/graph"
	"repro/internal/check"
	"repro/internal/pram"
)

func TestSmokeBaselines(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":    graph.Path(64),
		"gnm":     graph.Gnm(500, 2000, 7),
		"twocomp": graph.DisjointUnion(graph.Path(50), graph.Clique(20)),
		"star":    graph.Star(100),
		"grid":    graph.Grid2D(10, 10),
	}
	algos := map[string]func(*pram.Machine, *graph.Graph) ParallelResult{
		"sv":    ShiloachVishkin,
		"as":    AwerbuchShiloach,
		"lt":    LiuTarjanMinLink,
		"lp":    LabelPropagation,
		"matsq": MatrixSquaring,
	}
	for gname, g := range cases {
		for aname, algo := range algos {
			t.Run(fmt.Sprintf("%s/%s", aname, gname), func(t *testing.T) {
				res := algo(pram.New(0), g)
				if err := check.Components(g, res.Labels); err != nil {
					t.Fatalf("rounds=%d: %v", res.Rounds, err)
				}
			})
		}
	}
}
