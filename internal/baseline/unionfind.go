// Package baseline implements the comparison algorithms the paper
// positions itself against (§1, §1.2.1, §A): the sequential union-find
// ground truth, Shiloach–Vishkin and Awerbuch–Shiloach O(log n) PRAM
// algorithms, Liu–Tarjan style simple labeling, synchronous label
// propagation (Θ(d) rounds), and repeated adjacency-matrix squaring
// (O(log d) rounds, Θ(n³) work per round — footnote 3 of the paper).
package baseline

import "repro/graph"

// UnionFind is a classic disjoint-set forest with union by rank and
// path halving. It is the sequential ground truth: O(m α(n)) time.
type UnionFind struct {
	parent []int32
	rank   []int8
}

// NewUnionFind returns a structure over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x with path halving.
func (uf *UnionFind) Find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y; returns true if they were distinct.
func (uf *UnionFind) Union(x, y int32) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	return true
}

// Components computes the component labeling of g with union-find.
// Labels are canonical representatives (not necessarily minima).
func Components(g *graph.Graph) []int32 {
	uf := NewUnionFind(g.N)
	for i := 0; i < len(g.U); i += 2 {
		uf.Union(g.U[i], g.V[i])
	}
	out := make([]int32, g.N)
	for v := range out {
		out[v] = uf.Find(int32(v))
	}
	return out
}

// SpanningForestSeq returns the edge indices (arc-pair indices into
// g.Edges()) of a spanning forest computed sequentially — the oracle
// for the forest size n − #components.
func SpanningForestSeq(g *graph.Graph) []int {
	uf := NewUnionFind(g.N)
	var out []int
	for i := 0; i < len(g.U); i += 2 {
		if uf.Union(g.U[i], g.V[i]) {
			out = append(out, i/2)
		}
	}
	return out
}
