package baseline

import (
	"fmt"
	"testing"

	"repro/graph"
	"repro/internal/check"
	"repro/internal/pram"
)

func TestLeaderContractionCorrect(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":  graph.Path(300),
		"gnm":   graph.Gnm(2000, 8000, 1),
		"multi": graph.DisjointUnion(graph.Clique(20), graph.Star(40), graph.Path(60)),
		"rmat":  graph.RMAT(512, 2048, 2),
		"dense": graph.Gnm(500, 16000, 3),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			res := LeaderContraction(pram.New(1), g)
			if err := check.Components(g, res.Labels); err != nil {
				t.Fatalf("rounds=%d: %v", res.Rounds, err)
			}
		})
	}
}

func TestLeaderContractionFasterOnDense(t *testing.T) {
	// On dense graphs the degree-aware sampling contracts by a factor
	// ≈ deg/log n per round — far fewer rounds than on a path.
	densRounds, pathRounds := 0, 0
	for seed := int64(1); seed <= 3; seed++ {
		dense := graph.Gnm(2000, 64000, seed)
		densRounds += LeaderContraction(pram.New(1), dense).Rounds
		pathRounds += LeaderContraction(pram.New(1), graph.Path(2000)).Rounds
	}
	if densRounds >= pathRounds {
		t.Fatalf("dense %d rounds vs path %d rounds: degree-aware sampling not helping", densRounds, pathRounds)
	}
}

func TestLeaderContractionHeavyTail(t *testing.T) {
	// Hubs in heavy-tailed graphs sample leaders at low probability but
	// attract many links; correctness must hold regardless.
	for seed := int64(1); seed <= 5; seed++ {
		g := graph.ChungLu(1000, 5000, 2.2, seed)
		res := LeaderContraction(pram.New(1), g)
		if err := check.Components(g, res.Labels); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAllBaselinesOnExtraFamilies(t *testing.T) {
	gs := map[string]*graph.Graph{
		"hypercube": graph.Hypercube(7),
		"barbell":   graph.Barbell(12, 20),
		"torus":     graph.Torus2D(12, 12),
		"lollipop":  graph.LollipopPath(15, 40),
	}
	algos := map[string]func(*pram.Machine, *graph.Graph) ParallelResult{
		"sv": ShiloachVishkin, "as": AwerbuchShiloach, "lt": LiuTarjanMinLink,
		"lp": LabelPropagation, "lc": LeaderContraction,
	}
	for gn, g := range gs {
		for an, algo := range algos {
			t.Run(fmt.Sprintf("%s/%s", an, gn), func(t *testing.T) {
				res := algo(pram.New(1), g)
				if err := check.Components(g, res.Labels); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
