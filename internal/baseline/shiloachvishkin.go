package baseline

import (
	"repro/graph"
	"repro/internal/pram"
)

// ParallelResult reports the outcome of a simulated PRAM baseline.
type ParallelResult struct {
	Labels []int32    // component label per vertex
	Rounds int        // iterations of the main loop
	Stats  pram.Stats // machine cost counters
}

// ShiloachVishkin is the classic O(log n)-time, O(m)-processor CRCW
// algorithm [SV82]: each round performs conditional hooking of root
// labels onto smaller neighbour labels, hooking of stagnant trees, and
// one shortcut. Labels converge to per-component minima.
//
// Every sub-step reads the D array as it stood at the start of the
// sub-step (PRAM synchronous semantics — reads before writes), so
// round counts are faithful to the model rather than deflated by
// host-order cascading.
//
// Hooking discipline: every pointer write targets a strictly smaller
// label (both the conditional and the stagnant hooking), so parent
// pointers always decrease and the digraph is acyclic by construction
// — realizing the "no nontrivial cycles" invariant (§2.1). This is the
// label-ordered variant used by practical implementations; [SV82]'s
// original stagnant hooking onto arbitrary neighbours needs global
// bookkeeping to stay acyclic, and allowing label-increasing pointers
// lets hooks from different rounds compose into cycles.
func ShiloachVishkin(m *pram.Machine, g *graph.Graph) ParallelResult {
	n := g.N
	d := make([]int32, n)
	for i := range d {
		d[i] = int32(i)
	}
	snap := make([]int32, n)
	gotHook := make([]int32, n)
	u, v := g.U, g.V
	rounds := 0
	for {
		rounds++
		pram.Fill32(gotHook, 0)

		// Step 1: conditional hooking (reads from snap, writes to d).
		copy(snap, d)
		m.Step(len(u), func(i int) {
			x, y := u[i], v[i]
			dx := snap[x]
			if snap[dx] != dx {
				return // D[x] not a root this round
			}
			dy := snap[y]
			if dy < dx {
				pram.Store32(&d[dx], dy)
				pram.Store32(&gotHook[dy], 1)
			}
		})

		// Step 2: hook stagnant roots (still roots, no hook received).
		copy(snap, d)
		m.Step(len(u), func(i int) {
			x, y := u[i], v[i]
			dx := snap[x]
			if snap[dx] != dx || gotHook[dx] == 1 {
				return // not a stagnant root label
			}
			dy := snap[y]
			if dy < dx {
				pram.Store32(&d[dx], dy)
			}
		})

		// Step 3: shortcut.
		copy(snap, d)
		m.Step(n, func(i int) {
			d[i] = snap[snap[i]]
		})

		// Convergence: labels flat and equal across every arc.
		var active int64
		m.Step(n, func(i int) {
			if d[d[i]] != d[i] {
				pram.Store64(&active, 1)
			}
		})
		m.Step(len(u), func(i int) {
			if d[u[i]] != d[v[i]] {
				pram.Store64(&active, 1)
			}
		})
		if pram.Load64(&active) == 0 {
			break
		}
	}
	return ParallelResult{Labels: d, Rounds: rounds, Stats: m.Stats()}
}

// AwerbuchShiloach is the simplified variant [AS87]: only vertices in
// flat trees hook, alternating smaller-label hooking, stagnant-tree
// hooking (same strictly-decreasing discipline as ShiloachVishkin),
// and shortcut. O(log n) time, O(m) processors on the benchmark
// workloads.
func AwerbuchShiloach(m *pram.Machine, g *graph.Graph) ParallelResult {
	n := g.N
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	snap := make([]int32, n)
	u, v := g.U, g.V
	flat := make([]int32, n)
	gotHook := make([]int32, n)
	rounds := 0
	for {
		rounds++
		// Mark vertices in flat trees (their parent is a root).
		m.Step(n, func(i int) {
			pi := p[i]
			if p[pi] == pi {
				flat[i] = 1
			} else {
				flat[i] = 0
			}
		})
		pram.Fill32(gotHook, 0)
		// Hook flat-tree roots onto strictly smaller neighbour parents.
		copy(snap, p)
		m.Step(len(u), func(i int) {
			x, y := u[i], v[i]
			if flat[x] == 0 {
				return
			}
			px, py := snap[x], snap[y]
			if py < px {
				pram.Store32(&p[px], py)
				pram.Store32(&gotHook[py], 1)
			}
		})
		// Hook stagnant flat trees with the acyclicity guard.
		copy(snap, p)
		m.Step(len(u), func(i int) {
			x, y := u[i], v[i]
			if flat[x] == 0 {
				return
			}
			px := snap[x]
			if snap[px] != px || gotHook[px] == 1 {
				return
			}
			py := snap[y]
			if py < px {
				pram.Store32(&p[px], py)
			}
		})
		// Shortcut.
		copy(snap, p)
		m.Step(n, func(i int) {
			p[i] = snap[snap[i]]
		})
		// Converged when flat and consistent across arcs.
		var active int64
		m.Step(n, func(i int) {
			if p[p[i]] != p[i] {
				pram.Store64(&active, 1)
			}
		})
		m.Step(len(u), func(i int) {
			if p[u[i]] != p[v[i]] {
				pram.Store64(&active, 1)
			}
		})
		if pram.Load64(&active) == 0 {
			break
		}
	}
	return ParallelResult{Labels: p, Rounds: rounds, Stats: m.Stats()}
}
