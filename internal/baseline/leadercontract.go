package baseline

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/graph"
	"repro/internal/pram"
)

// LeaderContraction is the degree-aware leader-sampling scheme the
// paper attributes to Andoni et al. (§A.1): when every vertex has
// degree ≥ b, sampling leaders with probability Θ(log n / b) leaves
// every non-leader a leader neighbour w.h.p., so one contraction round
// shrinks the vertex set by a factor ≈ b/log n. Without the EXPAND
// densification the degree never grows, so on sparse graphs this
// degenerates gracefully toward Reif's algorithm — which is exactly
// the gap (the log log_{m/n} n progression) that the paper's EXPAND
// machinery exists to close. Useful as the "contraction without
// expansion" baseline in the ablation discussion.
func LeaderContraction(m *pram.Machine, g *graph.Graph) ParallelResult {
	n := g.N
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	au := make([]int32, len(g.U))
	av := make([]int32, len(g.V))
	copy(au, g.U)
	copy(av, g.V)
	deg := make([]int64, n)
	leader := make([]int32, n)
	snap := make([]int32, n)
	coin := pram.Coin{Seed: 0x5ca1ab1e}

	logn := math.Log(float64(n) + 2)
	rounds := 0
	for {
		rounds++
		// Current degree of each root (loops excluded): one combining
		// add per arc (charged as one CRCW step, as in the MPC round).
		pram.Fill64(deg, 0)
		m.Step(len(au), func(i int) {
			if au[i] != av[i] {
				addCombine(&deg[au[i]], 1)
			}
		})
		// Leader sampling with per-vertex probability Θ(log n / deg),
		// capped at 1/2 — on low-degree graphs the scheme must not
		// saturate to all-leaders (Reif's constant is the floor the
		// scheme degenerates to).
		m.Step(n, func(v int) {
			leader[v] = 0
			if deg[v] == 0 {
				return
			}
			prob := math.Min(0.5, 2*logn/float64(deg[v]))
			if coin.Bernoulli(uint64(rounds), uint64(v), prob) {
				leader[v] = 1
			}
		})
		// Non-leader roots link to an arbitrary leader neighbour.
		copy(snap, p)
		m.Step(len(au), func(i int) {
			x, y := au[i], av[i]
			if x == y || leader[x] == 1 || leader[y] == 0 {
				return
			}
			if snap[x] == x { // x still a root
				pram.Store32(&p[x], y)
			}
		})
		// Shortcut until flat (leaders are roots, so height ≤ 2).
		copy(snap, p)
		m.Step(n, func(i int) {
			p[i] = snap[snap[i]]
		})
		// Alter, then deduplicate arcs: the sampling probability needs
		// DISTINCT degrees. Andoni et al. deduplicate by sorting on the
		// MPC (the paper replaces that with hashing); the host sort
		// here stands in for that primitive at its O(1)-round cost.
		m.Step(len(au), func(i int) {
			au[i] = pram.Load32(&p[au[i]])
			av[i] = pram.Load32(&p[av[i]])
		})
		m.ChargeSteps(1)
		au, av = dedupArcs(au, av)
		// Converged when no non-loop arcs remain.
		var active int64
		m.Step(len(au), func(i int) {
			if au[i] != av[i] {
				pram.Store64(&active, 1)
			}
		})
		if pram.Load64(&active) == 0 {
			break
		}
		if rounds > 64*bitsLen(n)+64 {
			break // safety net; callers verify against an oracle
		}
	}
	// Canonicalize labels to roots.
	for {
		stable := true
		for i := 0; i < n; i++ {
			if p[p[i]] != p[i] {
				p[i] = p[p[i]]
				stable = false
			}
		}
		if stable {
			break
		}
	}
	return ParallelResult{Labels: p, Rounds: rounds, Stats: m.Stats()}
}

// addCombine realizes a sum-combining concurrent write (COMBINING
// CRCW / MPC aggregation primitive) with an atomic add.
func addCombine(cell *int64, v int64) { atomic.AddInt64(cell, v) }

// dedupArcs removes duplicate and self-loop arcs in place.
func dedupArcs(au, av []int32) ([]int32, []int32) {
	pairs := make([]uint64, 0, len(au))
	for i := range au {
		if au[i] != av[i] {
			pairs = append(pairs, uint64(uint32(au[i]))<<32|uint64(uint32(av[i])))
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	au, av = au[:0], av[:0]
	var prev uint64 = 1<<63 | 1 // impossible value for int32 pairs
	for _, p := range pairs {
		if p == prev {
			continue
		}
		prev = p
		au = append(au, int32(p>>32))
		av = append(av, int32(uint32(p)))
	}
	return au, av
}

func bitsLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}
