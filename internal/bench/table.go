// Package bench is the experiment harness behind cmd/ccbench and
// bench_test.go. Each experiment E1–E10 reproduces one claim of the
// paper, and E11–E13 check the repo's own engineering claims (native
// wall clock, incremental batch updates, graph load throughput); the
// per-experiment index with interpreted results lives in
// EXPERIMENTS.md, whose tables are rendered by this package.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "Claim: %s\n", t.Claim)
	}
	fmt.Fprintln(w)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}
