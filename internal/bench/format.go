package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// FprintMarkdown renders the table as GitHub-flavoured markdown.
func (t *Table) FprintMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Claim != "" {
		if _, err := fmt.Fprintf(w, "**Claim:** %s\n\n", t.Claim); err != nil {
			return err
		}
	}
	row := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// FprintCSV renders the table as CSV with a leading header row. The
// experiment id is prefixed as the first column so multiple tables can
// share one file.
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"experiment"}, t.Header...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(append([]string{t.ID}, r...)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Format names a rendering style for RenderTo.
type Format int

const (
	// FormatText is the aligned plain-text rendering (Fprint).
	FormatText Format = iota
	// FormatMarkdown is GitHub-flavoured markdown.
	FormatMarkdown
	// FormatCSV is comma-separated values.
	FormatCSV
)

// ParseFormat maps a flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "text", "":
		return FormatText, nil
	case "markdown", "md":
		return FormatMarkdown, nil
	case "csv":
		return FormatCSV, nil
	}
	return 0, fmt.Errorf("bench: unknown format %q (want text, markdown, or csv)", s)
}

// RenderTo renders the table in the given format.
func (t *Table) RenderTo(w io.Writer, f Format) error {
	switch f {
	case FormatMarkdown:
		return t.FprintMarkdown(w)
	case FormatCSV:
		return t.FprintCSV(w)
	default:
		t.Fprint(w)
		return nil
	}
}
