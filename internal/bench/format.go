package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// FprintMarkdown renders the table as GitHub-flavoured markdown.
func (t *Table) FprintMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Claim != "" {
		if _, err := fmt.Fprintf(w, "**Claim:** %s\n\n", t.Claim); err != nil {
			return err
		}
	}
	row := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// FprintCSV renders the table as CSV with a leading header row. The
// experiment id is prefixed as the first column so multiple tables can
// share one file.
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"experiment"}, t.Header...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(append([]string{t.ID}, r...)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FprintJSON renders the table as one JSON object per line (JSONL when
// several experiments share a stream). This is the machine-readable
// artifact format: `ccbench -format json > BENCH_<date>.json` snapshots
// e.g. the E11 simulated-vs-native wall-clock table for tracking
// across commits.
func (t *Table) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Claim  string     `json:"claim,omitempty"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Claim, t.Header, t.Rows, t.Notes})
}

// Format names a rendering style for RenderTo.
type Format int

const (
	// FormatText is the aligned plain-text rendering (Fprint).
	FormatText Format = iota
	// FormatMarkdown is GitHub-flavoured markdown.
	FormatMarkdown
	// FormatCSV is comma-separated values.
	FormatCSV
	// FormatJSON is one JSON object per table (JSONL across tables).
	FormatJSON
)

// ParseFormat maps a flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "text", "":
		return FormatText, nil
	case "markdown", "md":
		return FormatMarkdown, nil
	case "csv":
		return FormatCSV, nil
	case "json":
		return FormatJSON, nil
	}
	return 0, fmt.Errorf("bench: unknown format %q (want text, markdown, csv, or json)", s)
}

// RenderTo renders the table in the given format.
func (t *Table) RenderTo(w io.Writer, f Format) error {
	switch f {
	case FormatMarkdown:
		return t.FprintMarkdown(w)
	case FormatCSV:
		return t.FprintCSV(w)
	case FormatJSON:
		return t.FprintJSON(w)
	default:
		t.Fprint(w)
		return nil
	}
}
