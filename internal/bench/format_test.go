package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func demoTable() *Table {
	t := &Table{
		ID:     "EX",
		Title:  "demo",
		Claim:  "claims hold",
		Header: []string{"a", "b"},
		Notes:  []string{"a note"},
	}
	t.Add(1, 2.5)
	t.Add("x", 7)
	return t
}

func TestFprintText(t *testing.T) {
	var buf bytes.Buffer
	demoTable().Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"EX", "demo", "claims hold", "2.50", "a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestFprintMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := demoTable().FprintMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### EX", "| a | b |", "| --- | --- |", "| 1 | 2.50 |", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown output missing %q:\n%s", want, out)
		}
	}
}

func TestFprintCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := demoTable().FprintCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 CSV lines, got %d", len(lines))
	}
	if lines[0] != "experiment,a,b" || lines[1] != "EX,1,2.50" {
		t.Fatalf("csv content wrong: %v", lines)
	}
}

func TestFprintJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := demoTable().FprintJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID     string     `json:"id"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if got.ID != "EX" || len(got.Header) != 2 || len(got.Rows) != 2 || len(got.Notes) != 1 {
		t.Fatalf("json content wrong: %+v", got)
	}
	if got.Rows[0][1] != "2.50" {
		t.Fatalf("json cell wrong: %+v", got.Rows)
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"text": FormatText, "": FormatText,
		"markdown": FormatMarkdown, "md": FormatMarkdown,
		"csv": FormatCSV, "json": FormatJSON,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRenderTo(t *testing.T) {
	for _, f := range []Format{FormatText, FormatMarkdown, FormatCSV, FormatJSON} {
		var buf bytes.Buffer
		if err := demoTable().RenderTo(&buf, f); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %v produced no output", f)
		}
	}
}

// TestExperimentsRegistered ensures the registry stays complete and
// every experiment produces a well-formed table at Quick scale. (E2,
// E7 and friends are exercised individually elsewhere; this is the
// structural check that ids, headers and rows stay consistent.)
func TestExperimentsRegistered(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("want 17 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	ids := IDs()
	if len(ids) != len(all) {
		t.Fatalf("IDs() returned %d ids for %d experiments", len(ids), len(all))
	}
	for i, e := range all {
		if ids[i] != e.ID {
			t.Fatalf("IDs()[%d] = %s, registry has %s", i, ids[i], e.ID)
		}
	}
}

// TestSmallExperimentsRun executes the cheap experiments end to end;
// the expensive ones run in cmd/ccbench and the benchmarks.
func TestSmallExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short")
	}
	for _, id := range []string{"E4", "E8", "E9", "E11", "E12", "E13"} {
		for _, e := range All() {
			if e.ID != id {
				continue
			}
			tbl := e.Run(Quick)
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", id)
			}
			if len(tbl.Header) == 0 {
				t.Fatalf("%s has no header", id)
			}
			for _, r := range tbl.Rows {
				if len(r) != len(tbl.Header) {
					t.Fatalf("%s row width %d != header width %d", id, len(r), len(tbl.Header))
				}
			}
		}
	}
}
