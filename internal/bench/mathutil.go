package bench

import (
	"math"
	"sort"
)

func powMath(b, e float64) float64 { return math.Pow(b, e) }

// median returns the middle value of xs (mean of the middle two for
// even lengths), without reordering the caller's slice.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
