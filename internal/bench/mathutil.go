package bench

import "math"

func powMath(b, e float64) float64 { return math.Pow(b, e) }
