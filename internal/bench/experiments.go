package bench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"sync"
	"time"

	pramcc "repro"
	"repro/graph"
	"repro/internal/baseline"
	"repro/internal/ccbase"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/native"
	"repro/internal/obs"
	"repro/internal/pram"
	"repro/internal/spanning"
	"repro/internal/vanilla"
)

// Scale selects experiment sizes.
type Scale int

const (
	// Quick keeps every experiment under ~1s (CI and tests).
	Quick Scale = iota
	// Full is the EXPERIMENTS.md scale.
	Full
)

// grainOverride is the scheduler claim grain the wall-clock
// experiments (E11, E12, E14) pass to the native and incremental
// engines: 0, the default, selects adaptive sizing. ccbench -grain
// sets it once before any experiment runs; the affected tables report
// the active value in their notes so a snapshot is self-describing.
// E17 ignores the override — sweeping the grain is its whole job.
var grainOverride int

// SetGrain sets the claim-grain override consulted by the wall-clock
// experiments (see grainOverride).
func SetGrain(n int) { grainOverride = n }

// grainNote renders the active grain for experiment notes, in the
// same adaptive-or-fixed form ccfind prints in its run summary.
func grainNote() string {
	if grainOverride == 0 {
		return "grain = adaptive"
	}
	return fmt.Sprintf("grain = %d (-grain override)", grainOverride)
}

// Experiment is a runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(scale Scale) *Table
}

// All returns the experiment registry in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "rounds vs diameter", E1},
		{"E2", "rounds vs density (log log_{m/n} n term)", E2},
		{"E3", "rounds vs n at fixed density", E3},
		{"E4", "block space is O(m)", E4},
		{"E5", "maximum level vs the bound L", E5},
		{"E6", "per-budget level-up probability", E6},
		{"E7", "success probability across seeds", E7},
		{"E8", "spanning forest", E8},
		{"E9", "baseline comparison", E9},
		{"E10", "ablations", E10},
		{"E11", "simulated vs native wall clock", E11},
		{"E12", "incremental batch updates vs native recompute", E12},
		{"E13", "graph load throughput: text vs parallel text vs binary", E13},
		{"E14", "streaming ingest throughput: columnar spans vs boxed pairs", E14},
		{"E15", "observability overhead: sink off vs no-op sink vs JSON sink", E15},
		{"E16", "span coalescing under queued multi-tenant load: off vs on", E16},
		{"E17", "grain scheduler: adaptive sizing × affinity × packed arcs", E17},
	}
}

// IDs returns every registered experiment id in registry order — the
// enumeration CLI usage strings and id validation derive from, so
// registering an experiment can never leave a hard-coded "E1..En"
// range stale (the bug ccbench shipped with when E14 landed would
// have been the third such).
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// RunAll executes every experiment and renders it to w.
func RunAll(w io.Writer, scale Scale) {
	for _, e := range All() {
		e.Run(scale).Fprint(w)
	}
}

// beads returns the CliqueBeads workload with m/n ≈ 10 (dense enough
// to skip PREPARE so EXPAND-MAXLINK rounds are measured directly).
func beads(numBeads int, seed int64) *graph.Graph {
	return graph.CliqueBeads(graph.CliqueBeadsSpec{
		Beads: numBeads, Size: 24, IntraDeg: 20, Bridges: 2, Seed: seed,
	})
}

// sumExpandRounds totals the EXPAND inner rounds over Theorem-1
// phases — the quantity that is O(log d · log log_{m/n} n).
func sumExpandRounds(tr []ccbase.PhaseTrace) int {
	s := 0
	for _, t := range tr {
		s += t.ExpandRounds
	}
	return s
}

// E1: rounds vs diameter. Theorem 3 rounds should grow like log d,
// Theorem 1 like log d · log log, Vanilla/SV like log n (flat in d for
// fixed n per bead count — n grows with d here, so they grow too, but
// like log n = log d + const), and label propagation like d itself.
func E1(scale Scale) *Table {
	t := &Table{
		ID:    "E1",
		Title: "rounds vs diameter (CliqueBeads, m/n≈10)",
		Claim: "Thm 3: O(log d + log log_{m/n} n) rounds; Thm 1: O(log d·log log); label propagation: Θ(d)",
		Header: []string{"d(est)", "n", "m/n", "T3 rounds", "T1 exp-rounds", "T1 phases",
			"vanilla", "SV", "labelprop"},
	}
	counts := []int{2, 8, 32, 128, 512}
	if scale == Full {
		counts = []int{2, 8, 32, 128, 512, 2048}
	}
	for _, nb := range counts {
		g := beads(nb, int64(nb))
		d := 2 * nb // beads diameter estimate; exact BFS is too slow at Full scale
		if nb <= 64 {
			d = g.DiameterEstimate()
		}
		c := core.Run(pram.New(0), g, core.DefaultParams(11))
		b := ccbase.Run(pram.New(0), g, ccbase.DefaultParams(11))
		v := vanilla.Run(pram.New(0), g, 11, 0)
		sv := baseline.ShiloachVishkin(pram.New(0), g)
		lp := baseline.LabelPropagation(pram.New(0), g)
		t.Add(d, g.N, float64(g.NumEdges())/float64(g.N),
			c.Rounds, sumExpandRounds(b.Trace), b.Phases, v.Phases, sv.Rounds, lp.Rounds)
	}
	t.Notes = append(t.Notes,
		"T3 rounds = EXPAND-MAXLINK rounds (PREPARE skipped at this density)",
		"T1 exp-rounds = Σ over phases of EXPAND distance-doubling rounds")
	return t
}

// E2: density sweep at fixed n and small diameter: the
// log log_{m/n} n term shrinks as density grows.
func E2(scale Scale) *Table {
	t := &Table{
		ID:    "E2",
		Title: "rounds vs density m/n (Gnm, fixed n)",
		Claim: "denser graphs finish in fewer rounds: the log log_{m/n} n term",
		Header: []string{"n", "m/n", "T3 prep", "T3 rounds", "T3 maxlvl",
			"T1 phases", "T1 exp-rounds"},
	}
	n := 20000
	if scale == Full {
		n = 100000
	}
	for _, dens := range []int{2, 4, 8, 32, 128} {
		g := graph.Gnm(n, n*dens, int64(dens))
		c := core.Run(pram.New(0), g, core.DefaultParams(13))
		b := ccbase.Run(pram.New(0), g, ccbase.DefaultParams(13))
		t.Add(n, dens, c.Prep, c.Rounds, c.MaxLevel, b.Phases, sumExpandRounds(b.Trace))
	}
	return t
}

// E3: n sweep at fixed density: Theorem 1/3 grow like log log n while
// Vanilla grows like log n.
func E3(scale Scale) *Table {
	t := &Table{
		ID:    "E3",
		Title: "rounds vs n (Gnm, m/n = 4)",
		Claim: "T1/T3 rounds grow like log log n; Vanilla like log n",
		Header: []string{"n", "T3 prep+rounds", "T1 phases", "T1 exp-rounds",
			"vanilla phases", "SV rounds"},
	}
	sizes := []int{1000, 10000, 100000}
	if scale == Full {
		sizes = []int{1000, 10000, 100000, 1000000}
	}
	for _, n := range sizes {
		g := graph.Gnm(n, 4*n, int64(n))
		c := core.Run(pram.New(0), g, core.DefaultParams(17))
		b := ccbase.Run(pram.New(0), g, ccbase.DefaultParams(17))
		v := vanilla.Run(pram.New(0), g, 17, 0)
		sv := baseline.ShiloachVishkin(pram.New(0), g)
		t.Add(n, fmt.Sprintf("%d+%d", c.Prep, c.Rounds), b.Phases,
			sumExpandRounds(b.Trace), v.Phases, sv.Rounds)
	}
	return t
}

// E4: Lemma 3.10/D.13 — cumulative block space stays O(m).
func E4(scale Scale) *Table {
	t := &Table{
		ID:    "E4",
		Title: "block space vs m (Theorem 3)",
		Claim: "Σ block allocations over all rounds = O(m) (Lemma 3.10)",
		Header: []string{"workload", "n", "m", "cum block words", "cum/m",
			"peak round words", "added edges"},
	}
	type wl struct {
		name string
		g    *graph.Graph
	}
	var wls []wl
	if scale == Full {
		wls = []wl{
			{"gnm-1e5x8", graph.Gnm(100000, 800000, 1)},
			{"gnm-3e5x8", graph.Gnm(300000, 2400000, 2)},
			{"beads-512", beads(512, 3)},
			{"beads-2048", beads(2048, 4)},
		}
	} else {
		wls = []wl{
			{"gnm-2e4x8", graph.Gnm(20000, 160000, 1)},
			{"beads-128", beads(128, 3)},
		}
	}
	for _, w := range wls {
		c := core.Run(pram.New(0), w.g, core.DefaultParams(23))
		mm := w.g.NumEdges()
		t.Add(w.name, w.g.N, mm, c.CumBlockWords,
			float64(c.CumBlockWords)/float64(mm), c.PeakBlockWords, c.AddedEdges)
	}
	return t
}

// E5: Lemma 3.19/D.23 — the maximum level stays below
// L = O(max{2, log log_{m/n} n}).
func E5(scale Scale) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "maximum level vs the bound L",
		Claim:  "levels never exceed L = O(max{2, log log_{m/n} n}) (Lemma 3.19)",
		Header: []string{"workload", "n", "m/n", "max level", "L(budget cap)"},
	}
	type wl struct {
		name string
		g    *graph.Graph
	}
	n := 20000
	if scale == Full {
		n = 200000
	}
	wls := []wl{
		{"gnm-x2", graph.Gnm(n, 2*n, 5)},
		{"gnm-x8", graph.Gnm(n, 8*n, 6)},
		{"gnm-x64", graph.Gnm(n, 64*n, 7)},
		{"beads", beads(n/24, 8)},
	}
	for _, w := range wls {
		p := core.DefaultParams(29)
		c := core.Run(pram.New(0), w.g, p)
		// L = number of levels until the budget cap is reached:
		// smallest ℓ with b1^(γ^(ℓ-1)) ≥ cap.
		L := levelsToCap(w.g, p)
		t.Add(w.name, w.g.N, float64(w.g.NumEdges())/float64(w.g.N), c.MaxLevel, L)
	}
	return t
}

func levelsToCap(g *graph.Graph, p core.Params) int {
	// Mirrors newBudgetTable's growth to find the saturation level,
	// the scaled stand-in for L = O(max{2, log log_{m/n} n}).
	b := float64(g.NumEdges()) / float64(g.N)
	if b < p.MinBudget {
		b = p.MinBudget
	}
	capV := p.BudgetCapFactor * float64(g.N+2) * p.BudgetCapFactor * float64(g.N+2)
	l := 1
	for b < capV && l < 64 {
		nb := powMath(b, p.Growth)
		if nb <= b+1 {
			nb = b + 1
		}
		b = nb
		l++
	}
	return l
}

// E6: Lemma 3.9/D.12 — the probability that a budget-b root raises its
// budget in one round decays with b (double-exponential progress).
func E6(scale Scale) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "per-level level-up probability (Theorem 3)",
		Claim:  "P[budget b → b^γ in one round] ≤ n^{-5} + b^{-Ω(1)} (Lemma 3.9)",
		Header: []string{"level", "budget b", "root-rounds", "level-ups", "empirical P"},
	}
	n := 20000
	if scale == Full {
		n = 200000
	}
	rootRounds := map[int32]int{}
	ups := map[int32]int{}
	for seed := uint64(1); seed <= 5; seed++ {
		g := graph.Gnm(n, 16*n, int64(seed)) // m/n = 16 skips PREPARE
		p := core.DefaultParams(seed)
		c := core.Run(pram.New(0), g, p)
		for _, tr := range c.Trace {
			for lvl, cnt := range tr.LevelHist {
				rootRounds[lvl] += cnt
			}
			for lvl, cnt := range tr.LevelUpsByLevel {
				ups[lvl] += cnt
			}
		}
	}
	var levels []int32
	for l := range rootRounds {
		levels = append(levels, l)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	bt := budgetsForDefault(n, 16)
	for _, l := range levels {
		p := 0.0
		if rootRounds[l] > 0 {
			p = float64(ups[l]) / float64(rootRounds[l])
		}
		t.Add(l, bt(l), rootRounds[l], ups[l], p)
	}
	t.Notes = append(t.Notes, "aggregated over 5 seeds; Gnm with m/n = 16")
	return t
}

// E7: success probability — every algorithm correct across seeds;
// bad-probability events (Failed flags) counted.
func E7(scale Scale) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "success probability across seeds",
		Claim:  "algorithms succeed with probability 1 − 1/poly (good probability)",
		Header: []string{"algorithm", "runs", "correct", "failed-flag"},
	}
	seeds := 10
	if scale == Full {
		seeds = 50
	}
	gs := []*graph.Graph{
		graph.Gnm(5000, 20000, 1),
		beads(64, 2),
		graph.DisjointUnion(graph.Path(700), graph.Gnm(3000, 9000, 3), graph.Clique(40)),
		graph.Permuted(graph.Grid2D(50, 60), 4),
	}
	type res struct{ runs, correct, failed int }
	agg := map[string]*res{}
	rec := func(name string, ok, failed bool) {
		r := agg[name]
		if r == nil {
			r = &res{}
			agg[name] = r
		}
		r.runs++
		if ok {
			r.correct++
		}
		if failed {
			r.failed++
		}
	}
	for _, g := range gs {
		for s := 0; s < seeds; s++ {
			seed := uint64(s + 1)
			c := core.Run(pram.New(0), g, core.DefaultParams(seed))
			rec("Thm3 fast CC", check.Components(g, c.Labels) == nil, c.Failed)
			b := ccbase.Run(pram.New(0), g, ccbase.DefaultParams(seed))
			rec("Thm1 loglog CC", check.Components(g, b.Labels) == nil, b.Failed)
			f := spanning.Run(pram.New(0), g, spanning.DefaultParams(seed))
			okf := check.Components(g, f.Labels) == nil && check.Forest(g, f.ForestEdges) == nil
			rec("Thm2 spanning forest", okf, f.Failed)
			v := vanilla.Run(pram.New(0), g, seed, 0)
			rec("Vanilla", check.Components(g, v.Labels) == nil, false)
		}
	}
	var names []string
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := agg[n]
		t.Add(n, r.runs, r.correct, r.failed)
	}
	return t
}

// E8: Theorem 2 — spanning forest validity and round counts.
func E8(scale Scale) *Table {
	t := &Table{
		ID:    "E8",
		Title: "spanning forest (Theorem 2)",
		Claim: "same asymptotic rounds as Theorem 1; output is a spanning forest",
		Header: []string{"workload", "n", "phases", "Σexp-rounds", "forest edges",
			"expected", "valid"},
	}
	type wl struct {
		name string
		g    *graph.Graph
	}
	nb := 64
	gn := 20000
	if scale == Full {
		nb = 512
		gn = 100000
	}
	wls := []wl{
		{"beads", beads(nb, 5)},
		{"gnm-x4", graph.Gnm(gn, 4*gn, 6)},
		{"grid", graph.Grid2D(100, 100)},
		{"multi-comp", graph.DisjointUnion(graph.Path(500), graph.Gnm(5000, 20000, 7), graph.Star(300))},
	}
	for _, w := range wls {
		f := spanning.Run(pram.New(0), w.g, spanning.DefaultParams(31))
		sum := 0
		for _, tr := range f.Trace {
			sum += tr.ExpandRounds
		}
		expected := w.g.N - w.g.NumComponents()
		valid := check.Forest(w.g, f.ForestEdges) == nil
		t.Add(w.name, w.g.N, f.Phases, sum, len(f.ForestEdges), expected, valid)
	}
	return t
}

// E9: baselines — Θ(d) label propagation vs O(log d) matrix squaring
// (with Θ(n³) work) vs the paper's algorithms.
func E9(scale Scale) *Table {
	t := &Table{
		ID:    "E9",
		Title: "baseline rounds and work",
		Claim: "label propagation is Θ(d); matrix squaring is O(log d) but work-infeasible (footnote 3)",
		Header: []string{"workload", "n", "d(est)", "T3 rounds", "SV", "AS", "LT-PA", "LT-EA",
			"leadctr", "labelprop", "matsq rounds", "matsq work"},
	}
	type wl struct {
		name string
		g    *graph.Graph
	}
	wls := []wl{
		{"path-512", graph.Path(512)},
		{"grid-24x24", graph.Grid2D(24, 24)},
		{"beads-48", graph.CliqueBeads(graph.CliqueBeadsSpec{Beads: 48, Size: 8, IntraDeg: 7, Bridges: 1, Seed: 9})},
		{"gnm-1024x4", graph.Gnm(1024, 4096, 10)},
	}
	for _, w := range wls {
		d := w.g.DiameterEstimate()
		c := core.Run(pram.New(0), w.g, core.DefaultParams(37))
		sv := baseline.ShiloachVishkin(pram.New(0), w.g)
		as := baseline.AwerbuchShiloach(pram.New(0), w.g)
		pa := baseline.LiuTarjan(pram.New(0), w.g, baseline.LTVariant{Name: "PA", Link: baseline.LinkParent, Alter: true})
		ea := baseline.LiuTarjanMinLink(pram.New(0), w.g)
		lc := baseline.LeaderContraction(pram.New(0), w.g)
		lp := baseline.LabelPropagation(pram.New(0), w.g)
		ms := baseline.MatrixSquaring(pram.New(0), w.g)
		msWork := int64(ms.Rounds) * int64(w.g.N) * int64(w.g.N) * int64(w.g.N) / 64
		t.Add(w.name, w.g.N, d, fmt.Sprintf("%d+%d", c.Prep, c.Rounds), sv.Rounds,
			as.Rounds, pa.Rounds, ea.Rounds, lc.Rounds, lp.Rounds, ms.Rounds, msWork)
	}
	t.Notes = append(t.Notes, "matsq work = rounds · n³/64 bitset word operations")
	return t
}

// E10: ablations of the design choices §1.2.2 calls out.
func E10(scale Scale) *Table {
	t := &Table{
		ID:    "E10",
		Title: "ablations (Theorem 3 design choices)",
		Claim: "MAXLINK needs 2 iterations; the random boost protects the space bound; budget growth trades rounds vs space",
		Header: []string{"variant", "rounds", "max level", "cum words/m", "failed",
			"correct"},
	}
	nb := 128
	if scale == Full {
		nb = 512
	}
	g := beads(nb, 41)
	mm := float64(g.NumEdges())
	run := func(name string, mod func(*core.Params)) {
		p := core.DefaultParams(43)
		mod(&p)
		c := core.Run(pram.New(0), g, p)
		t.Add(name, c.Rounds, c.MaxLevel, float64(c.CumBlockWords)/mm, c.Failed,
			check.Components(g, c.Labels) == nil)
	}
	run("default (2×MAXLINK, boost, γ=1.15)", func(p *core.Params) {})
	run("MAXLINK ×1", func(p *core.Params) { p.MaxLinkIters = 1 })
	run("no boost (step 2 off)", func(p *core.Params) { p.DisableBoost = true })
	run("γ=1.1", func(p *core.Params) { p.Growth = 1.1 })
	run("γ=1.4", func(p *core.Params) { p.Growth = 1.4 })
	run("γ=2.0", func(p *core.Params) { p.Growth = 2.0 })

	// Theorem 1 mode comparison (§B.5).
	for _, mode := range []ccbase.Mode{ccbase.ModeArbitrary, ccbase.ModeCombining} {
		p := ccbase.DefaultParams(43)
		p.Mode = mode
		b := ccbase.Run(pram.New(0), g, p)
		name := "T1 ARBITRARY (ñ rule)"
		if mode == ccbase.ModeCombining {
			name = "T1 COMBINING (exact n′)"
		}
		t.Add(name, b.Phases, "-", "-", b.Failed, check.Components(g, b.Labels) == nil)
	}
	return t
}

// E11: the execution backends. Not a claim of the paper — the
// engineering claim that keeps the repo honest: every registered
// backend must produce the exact partition of the sequential
// union-find oracle, with the native engine at a fraction of the
// simulator's wall clock. The backend list (and the table's columns)
// comes from the pramcc backend registry, not a hard-coded slice, so
// a newly registered backend shows up here — and in ccbench output —
// automatically. `ccbench -experiment E11 -format json >
// BENCH_<date>.json` is the tracked artifact.
func E11(scale Scale) *Table {
	names := pramcc.BackendNames()
	header := []string{"workload", "n", "m"}
	for _, name := range names {
		header = append(header, name+" ms")
	}
	header = append(header, "unionfind ms", "sim/native speedup", "same partition")
	t := &Table{
		ID:     "E11",
		Title:  "execution backends wall clock",
		Claim:  "every registered backend computes the union-find partition; BackendNative at a fraction of the simulator's wall clock",
		Header: header,
	}
	type wl struct {
		name string
		g    *graph.Graph
	}
	var wls []wl
	if scale == Full {
		wls = []wl{
			{"gnm-1e5x4", graph.Gnm(100000, 400000, 1)},
			{"gnm-3e5x8", graph.Gnm(300000, 2400000, 2)},
			{"beads-1024", beads(1024, 3)},
			{"rmat-2e5", graph.RMAT(1<<18, 1<<21, 4)},
		}
	} else {
		wls = []wl{
			{"gnm-2e4x4", graph.Gnm(20000, 80000, 1)},
			{"beads-128", beads(128, 3)},
			{"rmat-2e4", graph.RMAT(1<<14, 1<<17, 4)},
		}
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	for _, w := range wls {
		t0 := time.Now()
		uf := baseline.Components(w.g)
		ufD := time.Since(t0)
		row := []interface{}{w.name, w.g.N, w.g.NumEdges()}
		same := true
		var simD, natD time.Duration
		for _, bk := range pramcc.Backends() {
			res, err := pramcc.Components(w.g, pramcc.WithBackend(bk), pramcc.WithSeed(19), pramcc.WithGrain(grainOverride))
			if err != nil {
				row = append(row, "err")
				same = false
				continue
			}
			// Stats.Wall times the run itself (validation and label
			// counting excluded), the same quantity the old
			// hand-rolled sim/native columns measured.
			row = append(row, ms(res.Stats.Wall))
			if check.SamePartition(res.Labels, uf) != nil {
				same = false
			}
			switch bk {
			case pramcc.BackendSimulated:
				simD = res.Stats.Wall
			case pramcc.BackendNative:
				natD = res.Stats.Wall
			}
		}
		speedup := 0.0
		if natD > 0 {
			speedup = float64(simD) / float64(natD)
		}
		row = append(row, ms(ufD), speedup, same)
		t.Add(row...)
	}
	t.Notes = append(t.Notes,
		"columns enumerate the pramcc backend registry (simulated = Theorem-3 EXPAND-MAXLINK on the step-barrier PRAM simulator; native = CAS-min engine; incremental = union-find fed one batch)",
		"unionfind = sequential single-core anchor; workers = GOMAXPROCS; "+grainNote()+"; wall clock is host-dependent, track trends not absolutes")
	return t
}

// E12: the streaming scenario. An append-heavy workload arrives in K
// batches; a consumer who wants fresh component answers after every
// batch can either recompute from scratch with the one-shot native
// engine (cost ≈ K × full multi-round run) or maintain the labeling
// with the incremental union-find engine (cost Θ(m) union work plus
// K snapshot flattens of Θ(n) each — old edges are never rescanned).
// The engineering claim: incremental total ingestion time is in the
// ballpark of ONE native recompute, and beats recompute-per-batch by
// roughly a factor of K. The final labels must equal the native
// labels exactly, not just up to relabeling — both engines
// canonicalize to component minima.
func E12(scale Scale) *Table {
	t := &Table{
		ID:    "E12",
		Title: "incremental batch updates vs native recompute",
		Claim: "maintaining components under K edge batches costs Θ(m + K·n) total (no rescan of old edges), vs ≈K full runs for recompute-per-batch",
		Header: []string{"workload", "n", "m", "K", "incr total ms", "incr worst-batch ms",
			"native 1-shot ms", "recompute ms", "speedup", "same labels"},
	}
	type wl struct {
		name string
		g    *graph.Graph
	}
	var wls []wl
	k := 10
	if scale == Full {
		k = 20
		wls = []wl{
			{"gnm-1e5x4", graph.Gnm(100000, 400000, 1)},
			{"gnm-3e5x8", graph.Gnm(300000, 2400000, 2)},
			{"beads-1024", beads(1024, 3)},
			{"rmat-2e5", graph.RMAT(1<<18, 1<<21, 4)},
			{"chunglu-1e5", graph.ChungLu(100000, 400000, 2.5, 5)},
		}
	} else {
		wls = []wl{
			{"gnm-2e4x4", graph.Gnm(20000, 80000, 1)},
			{"beads-128", beads(128, 3)},
			{"rmat-2e4", graph.RMAT(1<<14, 1<<17, 4)},
		}
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	for _, w := range wls {
		// The replay is columnar (zero-copy SpanBatches slices fed to
		// AddSpan); E14 measures the span-vs-pairs replay difference
		// itself.
		batches := w.g.SpanBatches(k)

		// Incremental: one engine, K AddSpan batches.
		eng := incremental.New(w.g.N, incremental.Options{Grain: grainOverride})
		var incrTotal, incrWorst time.Duration
		for _, b := range batches {
			t0 := time.Now()
			eng.AddSpan(b)
			d := time.Since(t0)
			incrTotal += d
			if d > incrWorst {
				incrWorst = d
			}
		}
		incrLabels := eng.Snapshot().Labels
		eng.Close()

		// Native one-shot on the full graph (the freshness floor a
		// non-streaming consumer pays once), and recompute-per-batch
		// (what it pays to stay fresh after every batch): a full run
		// on each growing prefix.
		t0 := time.Now()
		nat := native.Components(w.g, native.Options{Grain: grainOverride})
		oneShot := time.Since(t0)
		prefix := graph.New(w.g.N)
		var recompute time.Duration
		for _, b := range batches {
			for i := 0; i < b.Len(); i++ {
				u, v := b.Edge(i)
				prefix.AddEdge(int(u), int(v))
			}
			t0 = time.Now()
			native.Components(prefix, native.Options{Grain: grainOverride})
			recompute += time.Since(t0)
		}

		same := slices.Equal(incrLabels, nat.Labels)
		t.Add(w.name, w.g.N, w.g.NumEdges(), len(batches), ms(incrTotal), ms(incrWorst),
			ms(oneShot), ms(recompute), float64(recompute)/float64(incrTotal), same)
	}
	t.Notes = append(t.Notes,
		"incr = internal/incremental lock-free union-find, one zero-copy AddSpan per batch (pramcc.Incremental / BackendIncremental)",
		"recompute = a full native run after every batch, the non-streaming way to keep answers fresh",
		"speedup = recompute / incr total; same labels = exact elementwise equality (both label by component minimum); "+grainNote())
	return t
}

// E13: ingestion. Production-scale serving starts with loading the
// graph, and a single-threaded text scanner was the slowest stage of
// the whole pipeline — at 10M+ edges, loading dominated end-to-end
// wall clock over the native engine itself. The claim: the binary
// format (graph.ReadBinary) and the parallel zero-allocation text
// loader (graph.ReadEdgeListParallel) both load the identical graph
// ≥ 3× faster than the sequential text reference (graph.ReadEdgeList).
// Everything is measured over in-memory buffers so the table compares
// parsers, not disks.
func E13(scale Scale) *Table {
	t := e13Table("")
	type wl struct {
		name string
		g    *graph.Graph
	}
	var wls []wl
	if scale == Full {
		wls = []wl{
			{"gnm-1e6x10", graph.Gnm(1_000_000, 10_000_000, 1)},
			{"rmat-1e6", graph.RMAT(1<<20, 1<<22, 2)},
			{"beads-4096", beads(4096, 3)},
		}
	} else {
		wls = []wl{
			{"gnm-5e4x4", graph.Gnm(50_000, 200_000, 1)},
			{"rmat-2e4", graph.RMAT(1<<14, 1<<16, 2)},
		}
	}
	for _, w := range wls {
		e13Row(t, w.name, w.g)
	}
	return t
}

// E13File is E13 over a user-supplied graph file (either format,
// auto-detected) instead of the generated workloads: the path behind
// `ccbench -experiment E13 -graph FILE`. The file fixes the workload
// size, so there is no scale parameter.
func E13File(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadAuto(f)
	if err != nil {
		return nil, err
	}
	t := e13Table(path)
	e13Row(t, filepath.Base(path), g)
	return t, nil
}

func e13Table(source string) *Table {
	t := &Table{
		ID:    "E13",
		Title: "graph load throughput: text vs parallel text vs binary",
		Claim: "binary and parallel-text loading are ≥ 3× the sequential text loader, all three loading identical graphs",
		Header: []string{"workload", "n", "m", "text MB", "seq ms", "par ms", "par speedup",
			"bin MB", "bin ms", "bin speedup", "identical"},
	}
	t.Notes = append(t.Notes,
		"seq = graph.ReadEdgeList (line-at-a-time reference); par = graph.ReadEdgeListParallel (chunked zero-alloc scanner, GOMAXPROCS workers); bin = graph.ReadBinary",
		"parsed from in-memory buffers: parser throughput, not disk throughput",
		"identical = all three loaders produced elementwise-equal arc lists")
	if source != "" {
		t.Notes = append(t.Notes, "workload re-serialized from "+source)
	}
	return t
}

func e13Row(t *Table, name string, g *graph.Graph) {
	var txt, bin bytes.Buffer
	if err := g.WriteEdgeList(&txt); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := g.WriteBinary(&bin); err != nil {
		panic(err)
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	mb := func(n int) float64 { return float64(n) / (1 << 20) }

	t0 := time.Now()
	seq, err := graph.ReadEdgeList(bytes.NewReader(txt.Bytes()))
	seqD := time.Since(t0)
	if err != nil {
		panic(err) // loaders reject only malformed input, which we just wrote
	}
	t0 = time.Now()
	par, err := graph.ParseEdgeList(txt.Bytes(), 0)
	parD := time.Since(t0)
	if err != nil {
		panic(err)
	}
	t0 = time.Now()
	binG, err := graph.ReadBinary(bytes.NewReader(bin.Bytes()))
	binD := time.Since(t0)
	if err != nil {
		panic(err)
	}

	identical := sameArcs(g, seq) && sameArcs(g, par) && sameArcs(g, binG)
	t.Add(name, g.N, g.NumEdges(), mb(txt.Len()), ms(seqD), ms(parD),
		float64(seqD)/float64(parD), mb(bin.Len()), ms(binD),
		float64(seqD)/float64(binD), identical)
}

func sameArcs(a, b *graph.Graph) bool {
	return a.N == b.N && slices.Equal(a.U, b.U) && slices.Equal(a.V, b.V)
}

// E14: the columnar replay pipeline. The streaming path used to ship
// every batch as [][2]int — 4× the memory of the int32 SoA columns
// the Graph already stores, materialized fresh per replay — so the
// serving-path hot loop spent its time converting and copying rather
// than unioning. The claim: replaying a resident graph through the
// incremental engine via zero-copy spans (SpanBatches + AddSpan)
// sustains ≥ 1.5× the edges/sec of the boxed pair replay (EdgeBatches
// + AddEdges), identical final labels, across batch sizes. Both sides
// are measured end-to-end as a consumer would run them: batch
// construction from the resident graph plus ingestion — exactly the
// layers the span representation de-copies; the union-find work in
// the middle is byte-for-byte the same.
func E14(scale Scale) *Table {
	t := &Table{
		ID:    "E14",
		Title: "streaming ingest throughput: columnar spans vs boxed pairs",
		Claim: "zero-copy span replay beats [][2]int replay on edges/sec in every cell — ≥ 1.5× where replay-layer data movement dominates (the dense full-scale workload at every K) — with identical labels; union/publish-bound cells (m/n ≈ 4) shrink toward 1×",
		Header: []string{"workload", "n", "m", "K", "pairs ms", "span ms",
			"pairs Medges/s", "span Medges/s", "speedup", "same labels"},
	}
	type wl struct {
		name string
		g    *graph.Graph
	}
	var wls []wl
	var ks []int
	if scale == Full {
		wls = []wl{
			{"gnm-1e6x10", graph.Gnm(1_000_000, 10_000_000, 1)},
			{"rmat-1e6", graph.RMAT(1<<20, 1<<22, 2)},
			{"chunglu-1e6", graph.ChungLu(1_000_000, 4_000_000, 2.5, 5)},
		}
		ks = []int{1, 16, 128}
	} else {
		wls = []wl{
			{"gnm-5e4x8", graph.Gnm(50_000, 400_000, 1)},
			{"rmat-2e4", graph.RMAT(1<<14, 1<<17, 2)},
		}
		ks = []int{1, 16}
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	medges := func(m int, d time.Duration) float64 {
		return float64(m) / d.Seconds() / 1e6
	}
	for _, w := range wls {
		for _, k := range ks {
			// Boxed replay: materialize the [][2]int batches from the
			// resident graph, then one AddEdges per batch.
			eng := incremental.New(w.g.N, incremental.Options{Grain: grainOverride})
			t0 := time.Now()
			for _, b := range w.g.EdgeBatches(k) {
				eng.AddEdges(b)
			}
			pairsD := time.Since(t0)
			pairsLabels := eng.Snapshot().Labels
			eng.Close()

			// Columnar replay: zero-copy span slices of the same graph,
			// one AddSpan per batch.
			eng = incremental.New(w.g.N, incremental.Options{Grain: grainOverride})
			t0 = time.Now()
			for _, b := range w.g.SpanBatches(k) {
				eng.AddSpan(b)
			}
			spanD := time.Since(t0)
			same := slices.Equal(pairsLabels, eng.Snapshot().Labels)
			eng.Close()

			m := w.g.NumEdges()
			t.Add(w.name, w.g.N, m, k, ms(pairsD), ms(spanD),
				medges(m, pairsD), medges(m, spanD),
				float64(pairsD)/float64(spanD), same)
		}
	}
	t.Notes = append(t.Notes,
		"pairs = g.EdgeBatches(K) + Engine.AddEdges: materializes [][2]int batches (16 bytes/edge) and re-validates boxed ints per edge",
		"span = g.SpanBatches(K) + Engine.AddSpan: zero-copy arc-column slices (8 bytes/edge, no materialization), columnar validation",
		"both sides time batch construction + ingestion on a fresh engine; the union-find and snapshot publication are identical",
		"workers = GOMAXPROCS; same labels = exact elementwise equality of the final snapshots; "+grainNote())
	return t
}

// noopSink is an attached-but-free event consumer: with it installed
// every emit site builds its envelope (the Measures map and Event
// struct) but nothing is encoded — isolating envelope-construction
// cost from JSON-encoding cost in E15.
type noopSink struct{}

func (noopSink) Emit(obs.Event) {}

// E15: the cost of observability. The instrumentation contract
// (OPERATIONS.md) is two-tier: counters/gauges are always-on single
// atomic adds, and the event envelope is built only when a sink is
// attached — gated on one atomic pointer load — so the no-sink
// configuration must be free (TestSpanIngestZeroAlloc pins the
// allocation half of that claim; this experiment measures the
// throughput half). The sweep replays the same graph through the
// incremental engine's span path under three configurations: sink off
// (counters only), a no-op sink (envelope built per batch, then
// dropped), and the JSON sink encoding to io.Discard (the full ccserve
// -events cost). Events fire at batch boundaries — K per replay — so
// even the full JSON configuration amortizes to nothing per edge.
func E15(scale Scale) *Table {
	t := &Table{
		ID:     "E15",
		Title:  "observability overhead: sink off vs no-op sink vs JSON sink",
		Claim:  "with no sink attached instrumentation is free (counters are single atomic adds; no envelope is built) — sink-off throughput within noise of the uninstrumented pipeline — and even the full JSON sink costs only per-batch envelope+encode work",
		Header: []string{"workload", "n", "m", "K", "config", "ms", "Medges/s", "overhead %"},
	}
	var g *graph.Graph
	var name string
	var k, trials int
	if scale == Full {
		name, g, k, trials = "gnm-1e6x10", graph.Gnm(1_000_000, 10_000_000, 1), 16, 5
	} else {
		name, g, k, trials = "gnm-5e4x8", graph.Gnm(50_000, 400_000, 1), 16, 2
	}
	configs := []struct {
		label string
		sink  obs.Sink
	}{
		{"sink off (counters only)", nil},
		{"no-op sink (envelope built)", noopSink{}},
		{"json sink (io.Discard)", obs.NewJSONSink(io.Discard)},
	}
	defer obs.SetSink(nil)
	replay := func() time.Duration {
		eng := incremental.New(g.N, incremental.Options{})
		t0 := time.Now()
		for _, b := range g.SpanBatches(k) {
			eng.AddSpan(b)
		}
		d := time.Since(t0)
		eng.Close()
		return d
	}
	// One untimed warm replay, then trials interleaved round-robin
	// across the configurations: sequential per-config blocks would
	// hand the later configs warmer pages and a grown heap, which reads
	// as (negative) sink overhead that isn't there.
	replay()
	best := make([]time.Duration, len(configs))
	for trial := 0; trial < trials; trial++ {
		for i, cfg := range configs {
			obs.SetSink(cfg.sink)
			d := replay()
			if best[i] == 0 || d < best[i] {
				best[i] = d
			}
		}
	}
	for i, cfg := range configs {
		d := best[i]
		m := g.NumEdges()
		t.Add(name, g.N, m, k, cfg.label,
			float64(d.Nanoseconds())/1e6,
			float64(m)/d.Seconds()/1e6,
			(float64(d)/float64(best[0])-1)*100)
	}
	t.Notes = append(t.Notes,
		"each row: best of "+fmt.Sprint(trials)+" replays of the same graph through a fresh incremental engine (SpanBatches + AddSpan), trials interleaved across configs",
		"counters (pramcc_uf_batches_total, pramcc_uf_edges_total, pool gauges) are active in every row — they cannot be turned off",
		"events fire at batch boundaries: K envelopes per replay, so per-edge event cost is K/m ≈ 0",
		"overhead % is relative to the sink-off row of the same run; small negatives are measurement noise")
	return t
}

// E16: adaptive span coalescing under queued load. Every span the
// incremental engine ingests pays a fixed cost independent of the
// span's size — a Θ(n) parallel flatten plus a fresh labels array for
// the published snapshot — so many small spans are far more expensive
// than one wide span carrying the same edges. The shard worker
// (internal/shard) exploits the SoA span layout to merge consecutive
// queued same-tenant spans into one engine batch with two column
// appends. This experiment drives small spans over large tenants
// (n ≫ edges per span, the fixed-cost-dominated regime) from enough
// concurrent clients that the shard queues stay non-empty, and
// compares CoalesceLimit 1 (off) against the default 16 (on). The
// spatio-temporal-compression reading: queue depth is time, span
// width is space; coalescing trades queued time for batch width.
func E16(scale Scale) *Table {
	t := &Table{
		ID:    "E16",
		Title: "span coalescing under queued multi-tenant load: off vs on",
		Claim: "merging consecutive queued same-tenant spans into one engine batch pays the per-batch fixed costs (parallel flatten + fresh labels allocation, plus WAL fsync when durable) once per merged run instead of once per span — ≥1.2× ingest throughput whenever clients outpace the shard worker",
		Header: []string{"config", "tenants", "shards", "n/tenant", "spans/tenant",
			"clients/tenant", "ms", "spans/s", "Kedges/s", "speedup ×"},
	}
	var n, spans, trials int
	const tenants, shards, conc = 2, 2, 8
	if scale == Full {
		n, spans, trials = 1_000_000, 192, 3
	} else {
		n, spans, trials = 50_000, 24, 2
	}
	work := make([][]graph.EdgeSpan, tenants)
	edges := 0
	for i := range work {
		g := graph.Gnm(n, spans*64, int64(i+1))
		work[i] = g.SpanBatches(spans)
		edges += g.NumEdges()
	}
	configs := []struct {
		label string
		limit int
	}{
		{"coalesce off (limit 1)", 1},
		{"coalesce on (limit 16)", 16},
	}
	run := func(limit int) time.Duration {
		r, err := pramcc.NewRouter(pramcc.RouterConfig{
			Shards: shards, CoalesceLimit: limit,
			QueueCap: 2 * tenants * spans, TenantQueueCap: 2 * spans,
			// Two engine workers per tenant: a multi-tenant host shares
			// cores across tenants instead of letting one engine's
			// spinning pool occupy every core — and a saturated pool
			// starves the very clients that must outpace the shard
			// worker for a queue (and thus a coalescable run) to exist.
			Options: []pramcc.Option{pramcc.WithWorkers(2)},
		})
		if err != nil {
			panic(err)
		}
		defer r.Close()
		handles := make([]*pramcc.Tenant, tenants)
		for i := range handles {
			if handles[i], err = r.CreateTenant(fmt.Sprintf("e16-%d", i), n); err != nil {
				panic(err)
			}
		}
		t0 := time.Now()
		var wg sync.WaitGroup
		for i, tn := range handles {
			ch := make(chan graph.EdgeSpan, len(work[i]))
			for _, s := range work[i] {
				ch <- s
			}
			close(ch)
			for c := 0; c < conc; c++ {
				wg.Add(1)
				go func(tn *pramcc.Tenant) {
					defer wg.Done()
					for s := range ch {
						for {
							_, err := tn.IngestSpan(context.Background(), s)
							if err == nil {
								break
							}
							if !errors.Is(err, pramcc.ErrOverloaded) && !errors.Is(err, pramcc.ErrTenantBacklog) {
								panic(err)
							}
							time.Sleep(50 * time.Microsecond)
						}
					}
				}(tn)
			}
		}
		wg.Wait()
		return time.Since(t0)
	}
	// One untimed warm run, then trials interleaved round-robin across
	// the configurations (same rationale as E15: sequential blocks hand
	// later configs a warmer heap).
	run(configs[len(configs)-1].limit)
	best := make([]time.Duration, len(configs))
	for trial := 0; trial < trials; trial++ {
		for i, cfg := range configs {
			d := run(cfg.limit)
			if best[i] == 0 || d < best[i] {
				best[i] = d
			}
		}
	}
	for i, cfg := range configs {
		d := best[i]
		t.Add(cfg.label, tenants, shards, n, spans, conc,
			float64(d.Nanoseconds())/1e6,
			float64(tenants*spans)/d.Seconds(),
			float64(edges)/d.Seconds()/1e3,
			float64(best[0])/float64(d))
	}
	t.Notes = append(t.Notes,
		"each row: best of "+fmt.Sprint(trials)+" replays (interleaved across configs) of every tenant's spans through a fresh in-memory router, "+fmt.Sprint(conc)+" concurrent clients per tenant retrying on backpressure",
		"spans average 64 edges against tenants of n ≥ 50k vertices, so the engine's per-batch fixed cost (Θ(n) flatten + fresh labels array) dominates and coalescing amortizes it across the merged run",
		"per-tenant engines run WithWorkers(2): on a small host an uncapped spinning worker pool starves the clients, the queue never forms, and coalescing has nothing to merge",
		"speedup × is relative to the coalesce-off row; the unions themselves are identical — TestRouterOracleEquivalence pins that coalescing never changes the partition")
	return t
}

// budgetsForDefault reproduces the default budget schedule for a Gnm
// workload with the given density at size n, for reporting.
func budgetsForDefault(n int, density float64) func(int32) int64 {
	p := core.DefaultParams(0)
	b := density
	if b < p.MinBudget {
		b = p.MinBudget
	}
	capV := p.BudgetCapFactor * float64(n)
	var bs []int64
	bs = append(bs, 0)
	cur := b
	for len(bs) < 64 {
		if cur >= capV {
			bs = append(bs, int64(capV))
			break
		}
		bs = append(bs, int64(cur))
		nb := powMath(cur, p.Growth)
		if nb <= cur+1 {
			nb = cur + 1
		}
		cur = nb
	}
	return func(l int32) int64 {
		if l <= 0 {
			return 0
		}
		if int(l) < len(bs) {
			return bs[l]
		}
		return bs[len(bs)-1]
	}
}

// E17: the locality-aware grain scheduler (PR 10). All four parallel
// claim loops used to hard-code 4096-item claims off one shared
// cursor; the shared internal/pool scheduler sizes the grain
// adaptively (total/(workers·8), clamped to [64, 4096]) and gives
// every worker a sticky home range, stealing from other ranges only
// after its own is exhausted — and the refactor let the native engine
// fuse its first link sweep with packing the arc endpoints into an
// interleaved buffer that later sweeps read with half the memory
// traffic of the stride-2 graph columns. The claim: the default
// configuration (adaptive grain + affinity + packed arcs) beats the
// legacy configuration (grain 4096, no affinity, no packing) by
// ≥ 1.15× on the full-scale native solve, and every configuration
// computes the identical partition.
func E17(scale Scale) *Table {
	t := &Table{
		ID:    "E17",
		Title: "grain scheduler: adaptive sizing × affinity × packed arcs",
		Claim: "adaptive grain + affinity + packed arcs ≥ 1.15× over the legacy fixed-4096 configuration on the full-scale native solve; identical partitions in every cell",
		Header: []string{"engine", "config", "median ms", "per-round ms", "rounds",
			"speedup vs legacy", "same partition"},
	}
	trials, k := 3, 10
	var g *graph.Graph
	if scale == Full {
		g = graph.Gnm(1_000_000, 10_000_000, 1)
		trials, k = 5, 20
	} else {
		g = graph.Gnm(50_000, 400_000, 1)
	}
	uf := baseline.Components(g)
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

	// Native solve. Each configuration holds one long-lived engine and
	// a reusable label buffer (the steady-state serving shape); trials
	// interleave round-robin so host drift hits every configuration
	// equally, and the median is scored.
	natCfgs := []struct {
		name string
		opt  native.Options
	}{
		{"legacy: grain=4096, no affinity, no pack", native.Options{Grain: 4096, NoAffinity: true, NoPack: true}},
		{"grain=4096 + affinity, no pack", native.Options{Grain: 4096, NoPack: true}},
		{"grain=64 + affinity + pack", native.Options{Grain: 64}},
		{"grain=1024 + affinity + pack", native.Options{Grain: 1024}},
		{"adaptive + pack, no affinity", native.Options{NoAffinity: true}},
		{"default: adaptive + affinity + pack", native.Options{}},
	}
	engines := make([]*native.Engine, len(natCfgs))
	natLabels := make([][]int32, len(natCfgs))
	natRounds := make([]int, len(natCfgs))
	natDur := make([][]float64, len(natCfgs))
	for i, c := range natCfgs {
		engines[i] = native.NewEngineOpt(c.opt)
		natLabels[i] = make([]int32, g.N)
	}
	// One untimed warm run per engine, then the scored trials.
	for i := range natCfgs {
		engines[i].Run(context.Background(), g, natLabels[i])
	}
	for trial := 0; trial < trials; trial++ {
		for i := range natCfgs {
			t0 := time.Now()
			rounds, _ := engines[i].Run(context.Background(), g, natLabels[i])
			natDur[i] = append(natDur[i], ms(time.Since(t0)))
			natRounds[i] = rounds
		}
	}
	legacy := median(natDur[0])
	for i, c := range natCfgs {
		med := median(natDur[i])
		same := check.SamePartition(natLabels[i], uf) == nil
		t.Add("native", c.name, med, med/float64(max(natRounds[i], 1)), natRounds[i], legacy/med, same)
		engines[i].Close()
	}

	// Incremental replay: the graph arrives in K span batches on a
	// fresh engine per trial (replay is inherently cold — a warm
	// engine has nothing left to union). Per-round = per-batch.
	incCfgs := []struct {
		name string
		opt  incremental.Options
	}{
		{"legacy: grain=4096, no affinity", incremental.Options{Grain: 4096, NoAffinity: true}},
		{"grain=64 + affinity", incremental.Options{Grain: 64}},
		{"default: adaptive + affinity", incremental.Options{}},
	}
	batches := g.SpanBatches(k)
	incLabels := make([][]int32, len(incCfgs))
	incDur := make([][]float64, len(incCfgs))
	for trial := 0; trial < trials; trial++ {
		for i, c := range incCfgs {
			eng := incremental.New(g.N, c.opt)
			t0 := time.Now()
			for _, b := range batches {
				eng.AddSpan(b)
			}
			incDur[i] = append(incDur[i], ms(time.Since(t0)))
			incLabels[i] = eng.Snapshot().Labels
			eng.Close()
		}
	}
	incLegacy := median(incDur[0])
	for i, c := range incCfgs {
		med := median(incDur[i])
		same := check.SamePartition(incLabels[i], uf) == nil
		t.Add("incremental", c.name, med, med/float64(len(batches)), len(batches), incLegacy/med, same)
	}

	t.Notes = append(t.Notes,
		"legacy = the pre-scheduler behavior both engines shipped with: fixed 4096-item claims off one shared cursor, stride-2 column reads on every native sweep",
		"native rows: one long-lived engine per config solves the same graph; per-round ms = median solve / link+shortcut rounds",
		fmt.Sprintf("incremental rows: the graph replayed as %d zero-copy span batches on a fresh engine per trial; per-round ms = median total / batches", len(batches)),
		fmt.Sprintf("workers = GOMAXPROCS; %d scored trials interleaved round-robin across configs, median scored; same partition = vs the sequential union-find", trials),
		"on a single-core host the affinity and grain columns should be near 1× (one worker claims every range either way) and the packed-arc fusion carries the speedup; multi-core hosts add the locality term")
	return t
}
