package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/graph"
)

// TestE13File runs the load-throughput experiment over user-supplied
// files in both formats and checks that the loaders agreed on the
// graph (the "identical" column).
func TestE13File(t *testing.T) {
	g := graph.Gnm(2000, 8000, 7)
	dir := t.TempDir()

	txtPath := filepath.Join(dir, "g.txt")
	tf, err := os.Create(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	binPath := filepath.Join(dir, "g.bin")
	bf, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(bf); err != nil {
		t.Fatal(err)
	}
	bf.Close()

	for _, path := range []string{txtPath, binPath} {
		tbl, err := E13File(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(tbl.Rows) != 1 {
			t.Fatalf("%s: want 1 row, got %d", path, len(tbl.Rows))
		}
		row := tbl.Rows[0]
		if row[len(row)-1] != "true" {
			t.Fatalf("%s: loaders disagreed: %v", path, row)
		}
		if !strings.Contains(row[0], filepath.Base(path)) {
			t.Fatalf("%s: workload column %q", path, row[0])
		}
	}

	if _, err := E13File(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}
