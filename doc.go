// Package pramcc is a Go reproduction of "Connected Components on a
// PRAM in Log Diameter Time" (S. Cliff Liu, Robert E. Tarjan, Peilin
// Zhong; SPAA 2020). It provides the three algorithms of the paper on
// top of a simulated ARBITRARY CRCW PRAM:
//
//   - ConnectedComponents — Theorem 3, O(log d + log log_{m/n} n) time,
//     O(m) processors (EXPAND-MAXLINK with levels and budgets);
//   - ConnectedComponentsLogLog — Theorem 1, O(log d · log log_{m/n} n)
//     time (EXPAND / VOTE / LINK);
//   - SpanningForest — Theorem 2, same bound as Theorem 1, returning a
//     spanning forest of input edges (TREE-LINK);
//   - VanillaComponents — Reif's O(log n) algorithm (§B.1), the
//     baseline and preprocessing subroutine.
//
// All results carry simulated-PRAM cost statistics (rounds, steps,
// work, peak processors, peak space) so the paper's bounds can be
// checked empirically; see EXPERIMENTS.md and cmd/ccbench.
//
// Graphs are built with the repro/graph package:
//
//	g := graph.Gnm(100_000, 400_000, 1)
//	res, err := pramcc.ConnectedComponents(g, pramcc.WithSeed(42))
//	if err != nil { ... }
//	fmt.Println(res.NumComponents, res.Stats.Rounds)
package pramcc
