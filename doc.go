// Package pramcc is a Go reproduction of "Connected Components on a
// PRAM in Log Diameter Time" (S. Cliff Liu, Robert E. Tarjan, Peilin
// Zhong; SPAA 2020). It provides the three algorithms of the paper on
// top of a simulated ARBITRARY CRCW PRAM:
//
//   - ConnectedComponents — Theorem 3, O(log d + log log_{m/n} n) time,
//     O(m) processors (EXPAND-MAXLINK with levels and budgets);
//   - ConnectedComponentsLogLog — Theorem 1, O(log d · log log_{m/n} n)
//     time (EXPAND / VOTE / LINK);
//   - SpanningForest — Theorem 2, same bound as Theorem 1, returning a
//     spanning forest of input edges (TREE-LINK);
//   - VanillaComponents — Reif's O(log n) algorithm (§B.1), the
//     baseline and preprocessing subroutine.
//
// All results carry simulated-PRAM cost statistics (rounds, steps,
// work, peak processors, peak space) so the paper's bounds can be
// checked empirically; see EXPERIMENTS.md and cmd/ccbench.
//
// # One-shot vs. long-lived
//
// Every entry point comes in two shapes. The free functions
// (Components, ConnectedComponents, …) are one-shot: validate, solve,
// return an independently owned Result — the right call for scripts
// and tests. Production callers serving many solves should hold a
// Solver instead: a long-lived handle that owns the execution engine —
// the worker pool and the pre-sized scratch/label buffers — so
// repeated Solve(ctx, g) calls amortize all allocation (zero
// steady-state allocations on the native backend), honour
// context.Context cancellation and deadlines at every round or batch
// boundary, and fail fast on already-cancelled contexts. On top of the
// Solver sits Service, the serving layer: it publishes each completed
// labeling as an immutable snapshot through an atomic pointer, so
// SameComponent/Labels/NumComponents queries are answered lock-free
// and concurrently while Update (full recompute) or Ingest (streaming
// batches, incremental backend) replaces the snapshot — a cancelled or
// failed update publishes nothing and queries keep serving the
// previous labeling. The free functions themselves are thin wrappers
// over process-shared Solvers keyed by (backend, workers), so even
// legacy call sites stopped paying per-call engine construction.
//
// Migration is mechanical:
//
//	Components(g, opts...)          →  solver.Solve(ctx, g)       (solver := NewSolver(opts...))
//	ConnectedComponents(g, opts...) →  solver.Solve(ctx, g)       (simulated backend, the default)
//	SpanningForest(g, opts...)      →  solver.SpanningForest(ctx, g)
//	Components per query cycle      →  service.Update(ctx, g) + service.SameComponent(v, w)
//	Incremental + AddSpan           →  service.IngestSpan(ctx, span) (NewService(n, WithBackend(BackendIncremental)))
//	Incremental + AddEdges          →  service.Ingest(ctx, pairs)   (the kept [][2]int adapter over the span path)
//
// # Three execution backends
//
// The package has three interchangeable execution backends behind the
// Components entry point, each an implementation of the internal
// engine interface in the backend registry; Backends and BackendNames
// enumerate the registry, ParseBackend resolves names and aliases
// case-insensitively against it, and Backend implements
// encoding.TextMarshaler/TextUnmarshaler so it drops straight into
// flag.TextVar and JSON output. BackendSimulated (the default) is the
// step-synchronous ARBITRARY CRCW PRAM simulator the four
// algorithm-specific entry points above always use: every model step
// is a barrier and every model cost is accounted, which is the point —
// and which makes it orders of magnitude slower than the hardware.
// BackendNative (internal/native) is a shared-memory engine —
// goroutines with atomic CAS-min on the label array, edge ranges
// sharded over a reusable worker pool — that computes the identical
// partition as fast as the hardware allows and fills only the real
// Stats fields (Backend, Wall, Workers, Rounds), leaving the
// model-only ones zero. BackendIncremental (internal/incremental) is
// a lock-free concurrent union-find (CAS link-by-index with path
// splitting) built for streaming: under Components it ingests the
// whole graph as one batch and returns the same partition as the
// other two backends. Experiments E11 and E12 and the
// examples/nativespeed and examples/streaming programs compare the
// backends side by side.
//
// # Streaming updates and the columnar data path
//
// When edges arrive over time, the Incremental handle keeps the
// labeling fresh without recomputing from scratch: NewIncremental
// creates a live engine over a fixed vertex set, AddSpan (or its
// boxed adapter AddEdges) ingests one batch (Θ(batch) union work plus
// a Θ(n) snapshot flatten — never a rescan of previously ingested
// edges), and SameComponent / ComponentCount / Labels / LabelsInto
// answer from a flattened snapshot taken at the last batch boundary.
// Queries are safe to call concurrently with an in-flight batch —
// they see the previous consistent snapshot, never a half-ingested
// one. The cmd/ccfind -batches mode replays an edge file through this
// API and reports per-batch latency.
//
// Batches travel the pipeline as graph.EdgeSpan values: zero-copy
// columnar (structure-of-arrays) views over a graph's int32 arc
// columns, produced by Graph.Span / Graph.SpanBatches or the loader
// hooks (graph.ParseEdgeListSpan, graph.ReadBinarySpan) and consumed
// by Incremental.AddSpan and Service.IngestSpan — no [][2]int is
// materialized anywhere between disk and the union-find, and the
// replay layer performs zero allocations (experiment E14 measures
// the resulting throughput against the boxed path). The [][2]int
// methods (AddEdges, Service.Ingest, graph.EdgeBatches) remain as
// validating adapters over graph.FromPairs for callers assembling
// edges ad hoc; Labels copies, while LabelsInto refills a
// caller-owned buffer allocation-free.
//
// # Observability
//
// The stack is instrumented on two always-compatible tiers. Counters,
// gauges, and duration histograms (spans/edges ingested, ingest
// throughput, snapshot age/sequence, update latency, worker-pool
// occupancy) are always on — each a single atomic add — and are
// rendered in Prometheus text exposition format by WriteMetrics;
// MetricNames enumerates the registry. Structured events are opt-in:
// SetEventSink attaches a process-wide EventSink (NewJSONEventSink
// writes one JSON object per line) and turns on Event envelopes —
// source/category/name/status/duration_ms/measures — emitted at
// engine round/batch boundaries and per Service Update/IngestSpan/
// Grow call. With no sink attached (the default) no envelope is ever
// built, so the zero-allocation guarantees of the span-ingest and
// solver paths hold unchanged. The cmd/ccserve binary serves
// /metrics, /healthz, /debug/pprof, and JSON ingest/query endpoints
// over a Service; OPERATIONS.md is the operator's guide (envelope
// schema, full metrics reference, scrape and pprof walkthroughs).
//
// # Durability
//
// Open roots a streaming Service in a data directory and makes it
// crash-safe: every accepted Ingest/IngestSpan/Grow batch is appended
// to a write-ahead log and fsynced before its snapshot publishes,
// published labelings are checkpointed every WithCheckpointEvery
// batches (and on every Update), and reopening the directory
// warm-starts from the newest valid snapshot plus an exactly-once
// replay of the log — RecoveryStats reports what was done.
// Service.Persist makes an already-running in-memory service durable
// the same way. A cold Open starts from WithInitialVertices isolated
// vertices:
//
//	sv, err := pramcc.Open(dir, pramcc.WithInitialVertices(n))
//	sv.Ingest(ctx, edges)          // durable when the call returns
//	sv.Close()                     // or crash — same outcome:
//	sv, err = pramcc.Open(dir)     // the labels queries last saw
//
// The on-disk formats (PCCS snapshots, PCCW log segments, the
// atomically replaced MANIFEST) and the recovery procedure are
// documented in OPERATIONS.md.
//
// # Sharded service
//
// One process serving many independent graphs — one per customer,
// region, or build — holds a Router instead of a bag of Services:
// NewRouter hashes tenant ids onto a fixed set of shards, each shard
// serializes its tenants' writes through one bounded queue and a
// dedicated worker goroutine, and every query still reads its
// tenant's lock-free snapshot directly. The queue bounds are the
// backpressure contract: a full shard queue fails fast with
// ErrOverloaded and a tenant exceeding its queued-span allowance with
// ErrTenantBacklog (both retryable); RouterConfig.MaxVertices is a
// hard per-tenant quota (ErrVertexQuota, not retryable). Because
// spans are columnar, the shard worker coalesces consecutive queued
// spans of the same tenant into one wide engine batch (two column
// appends), paying the engine's per-batch fixed costs once per merged
// run — experiment E16 measures the resulting throughput win under
// queued load; coalescing never changes the partition. With
// RouterConfig.DataDir set, each tenant persists under DIR/t/<id> and
// NewRouter recovers every existing tenant on construction — a warm
// restart needs no re-ingest:
//
//	r, err := pramcc.NewRouter(pramcc.RouterConfig{Shards: 4, DataDir: dir})
//	tn, err := r.CreateTenant("acme", 1_000_000)
//	tn.Ingest(ctx, edges)            // queued, coalesced, applied
//	tn.SameComponent(v, w)           // lock-free snapshot read
//
// The cmd/ccserve -shards mode serves a Router over HTTP (per-tenant
// endpoints under /v1/t/{tenant}/, admin under /v1/admin/tenants);
// the "Sharded multi-tenant serving" section of OPERATIONS.md is the
// operator contract.
//
// # Static analysis
//
// The invariants above — snapshots touched only through their atomic
// methods and never mutated after publication, zero-allocation ingest
// interiors, ctx checks at every engine round boundary, WAL append
// before snapshot publish, pramcc_-prefixed documented metric names —
// are enforced statically by cmd/cclint, the custom analyzer suite in
// internal/analysis, wired into CI as a required gate. Hot paths are
// marked //pramcc:zeroalloc; intentional exceptions carry
// //pramcc:allow with a reason. CONTRIBUTING.md documents the
// analyzers, both directives, and the fixture workflow.
//
// # Graph formats and loading
//
// Graphs enter the system in two on-disk formats, and every consumer
// (cmd/ccfind, cmd/ccbench -graph, and graph.ReadAuto callers) accepts
// both transparently. The text edge list ("n m" header, one "u v" line
// per edge; WriteEdgeList) is the human-readable interchange format;
// the binary format (magic "PCCG" + version + n/m header + one
// fixed-width little-endian record per edge; WriteBinary) is the bulk
// format — 8 bytes per edge and a near-memcpy decode. Three loaders
// cover the trade-offs: ReadEdgeList is the line-at-a-time streaming
// reference, ReadEdgeListParallel chunks the input on line boundaries
// and parses on a worker pool with a zero-allocation scanner (same
// accept/reject semantics, several times the throughput), and
// ReadBinary decodes the binary format fastest of all. ReadAuto sniffs
// the magic and picks the right parser; experiment E13 tracks the
// throughput ratios. All loaders validate what they read — malformed
// headers (negative or over-int32 counts), out-of-range endpoints,
// truncated binary files, and trailing garbage are errors, never
// panics.
//
// Graphs are built with the repro/graph package:
//
//	g := graph.Gnm(100_000, 400_000, 1)
//	res, err := pramcc.Components(g, pramcc.WithBackend(pramcc.BackendNative))
//	if err != nil { ... }
//	fmt.Println(res.NumComponents, res.Stats.Wall)
//
// and streamed in zero-copy columnar batches with graph.SpanBatches:
//
//	inc, _ := pramcc.NewIncremental(g.N)
//	defer inc.Close()
//	for _, batch := range g.SpanBatches(16) {
//		stats, _ := inc.AddSpan(batch)
//		fmt.Println(stats.Components, stats.Wall)
//	}
package pramcc
