// Package pramcc is a Go reproduction of "Connected Components on a
// PRAM in Log Diameter Time" (S. Cliff Liu, Robert E. Tarjan, Peilin
// Zhong; SPAA 2020). It provides the three algorithms of the paper on
// top of a simulated ARBITRARY CRCW PRAM:
//
//   - ConnectedComponents — Theorem 3, O(log d + log log_{m/n} n) time,
//     O(m) processors (EXPAND-MAXLINK with levels and budgets);
//   - ConnectedComponentsLogLog — Theorem 1, O(log d · log log_{m/n} n)
//     time (EXPAND / VOTE / LINK);
//   - SpanningForest — Theorem 2, same bound as Theorem 1, returning a
//     spanning forest of input edges (TREE-LINK);
//   - VanillaComponents — Reif's O(log n) algorithm (§B.1), the
//     baseline and preprocessing subroutine.
//
// All results carry simulated-PRAM cost statistics (rounds, steps,
// work, peak processors, peak space) so the paper's bounds can be
// checked empirically; see EXPERIMENTS.md and cmd/ccbench.
//
// # Two execution backends
//
// The package has two interchangeable execution backends behind the
// Components entry point. BackendSimulated (the default) is the
// step-synchronous ARBITRARY CRCW PRAM simulator the four
// algorithm-specific entry points above always use: every model step
// is a barrier and every model cost is accounted, which is the point —
// and which makes it orders of magnitude slower than the hardware.
// BackendNative (internal/native) is a shared-memory engine —
// goroutines with atomic CAS-min on the label array, edge ranges
// sharded over a reusable worker pool — that computes the identical
// partition as fast as the hardware allows and fills only the real
// Stats fields (Backend, Wall, Workers, Rounds), leaving the
// model-only ones zero. Experiment E11 and examples/nativespeed
// compare the two side by side.
//
// Graphs are built with the repro/graph package:
//
//	g := graph.Gnm(100_000, 400_000, 1)
//	res, err := pramcc.Components(g, pramcc.WithBackend(pramcc.BackendNative))
//	if err != nil { ... }
//	fmt.Println(res.NumComponents, res.Stats.Wall)
package pramcc
