package pramcc

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/graph"
	"repro/internal/baseline"
	"repro/internal/check"
)

// TestSolverAllBackends: a long-lived Solver per registered backend,
// reused across differently-sized graphs, must keep producing the
// union-find partition — including after buffer reuse kicks in.
func TestSolverAllBackends(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Gnm(2000, 6000, 7),
		graph.Path(513),
		graph.Gnm(5000, 2000, 9), // bigger n: buffers must regrow
		graph.Gnm(300, 900, 11),  // smaller n: buffers must shrink logically
	}
	for _, bk := range Backends() {
		t.Run(bk.String(), func(t *testing.T) {
			s, err := NewSolver(WithBackend(bk), WithSeed(3))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if s.Backend() != bk {
				t.Fatalf("Backend() = %v, want %v", s.Backend(), bk)
			}
			for i, g := range graphs {
				res, err := s.Solve(context.Background(), g)
				if err != nil {
					t.Fatalf("graph %d: %v", i, err)
				}
				if len(res.Labels) != g.N {
					t.Fatalf("graph %d: %d labels for %d vertices", i, len(res.Labels), g.N)
				}
				if err := check.SamePartition(res.Labels, baseline.Components(g)); err != nil {
					t.Fatalf("graph %d: %v", i, err)
				}
				if res.Stats.Backend != bk {
					t.Fatalf("graph %d: Stats.Backend = %v", i, res.Stats.Backend)
				}
				if res.Stats.Wall <= 0 || res.Stats.Workers == 0 {
					t.Fatalf("graph %d: real quantities unpopulated: %+v", i, res.Stats)
				}
			}
		})
	}
}

// TestSolverResultReuse pins the documented buffer-ownership contract:
// the Result returned by Solve is rewritten by the next Solve on the
// same Solver (that reuse is where the zero steady-state allocations
// come from), so retained results must be copied.
func TestSolverResultReuse(t *testing.T) {
	s, err := NewSolver(WithBackend(BackendNative))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := graph.Gnm(1000, 3000, 5)
	r1, err := s.Solve(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Solve(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("Solve allocated a fresh Result; the documented contract (and the zero-alloc property) is reuse")
	}
}

// TestSolverSolveZeroAllocNative is the acceptance bar of the Solver
// redesign: steady-state Solve on same-sized graphs, native backend,
// allocates nothing — no labels, no scratch, no Result, no closures.
func TestSolverSolveZeroAllocNative(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	s, err := NewSolver(WithBackend(BackendNative), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := graph.Gnm(20000, 60000, 1)
	ctx := context.Background()
	if _, err := s.Solve(ctx, g); err != nil { // warm the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := s.Solve(ctx, g)
		if err != nil || res.NumComponents == 0 {
			t.Fatal("solve failed in alloc loop")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Solve allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSolverClose: Close is idempotent, and a closed Solver rejects
// work with ErrSolverClosed.
func TestSolverClose(t *testing.T) {
	s, err := NewSolver(WithBackend(BackendIncremental))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Gnm(100, 300, 2)
	if _, err := s.Solve(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Solve(context.Background(), g); err != ErrSolverClosed {
		t.Fatalf("Solve on closed Solver: %v, want ErrSolverClosed", err)
	}
	if _, err := s.SpanningForest(context.Background(), g); err != ErrSolverClosed {
		t.Fatalf("SpanningForest on closed Solver: %v, want ErrSolverClosed", err)
	}
}

// TestSolverSpanningForest: the ctx-aware forest entry point matches
// the free function's guarantees.
func TestSolverSpanningForest(t *testing.T) {
	g := graph.Gnm(1000, 3000, 13)
	s, err := NewSolver(WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fr, err := s.SpanningForest(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Edges) != g.N-fr.NumComponents {
		t.Fatalf("forest has %d edges, want n-components = %d", len(fr.Edges), g.N-fr.NumComponents)
	}
	if err := check.SamePartition(fr.Labels, baseline.Components(g)); err != nil {
		t.Fatal(err)
	}
}

// TestNewSolverUnregisteredBackend: the registry-driven error names
// the backends that actually exist.
func TestNewSolverUnregisteredBackend(t *testing.T) {
	_, err := NewSolver(WithBackend(Backend(99)))
	if err == nil {
		t.Fatal("NewSolver accepted an unregistered backend")
	}
	for _, name := range BackendNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not name registered backend %q", err, name)
		}
	}
	if _, err := Components(graph.Path(4), WithBackend(Backend(99))); err == nil {
		t.Fatal("Components accepted an unregistered backend")
	}
}

// TestComponentsConcurrent: the compatibility wrappers route through
// process-shared engines; concurrent callers must stay safe (the
// shared engine is TryLock-guarded, the overflow path gets a transient
// engine) and every call must return an independent, correct Result.
// Run under -race in CI.
func TestComponentsConcurrent(t *testing.T) {
	g := graph.Gnm(3000, 9000, 21)
	want := baseline.Components(g)
	for _, bk := range []Backend{BackendNative, BackendIncremental} {
		t.Run(bk.String(), func(t *testing.T) {
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 5; i++ {
						res, err := Components(g, WithBackend(bk))
						if err != nil {
							t.Error(err)
							return
						}
						if err := check.SamePartition(res.Labels, want); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestFreeFunctionsStillIndependent: the compatibility wrappers'
// historical contract — every call returns an independently owned
// Result — must survive the shared-engine rewiring.
func TestFreeFunctionsStillIndependent(t *testing.T) {
	g := graph.Gnm(500, 1500, 3)
	for _, bk := range Backends() {
		r1, err := Components(g, WithBackend(bk))
		if err != nil {
			t.Fatal(err)
		}
		keep := append([]int32(nil), r1.Labels...)
		if _, err := Components(graph.Path(700), WithBackend(bk)); err != nil {
			t.Fatal(err)
		}
		for i := range keep {
			if r1.Labels[i] != keep[i] {
				t.Fatalf("%v: a later Components call mutated an earlier result", bk)
			}
		}
	}
}
