package pramcc

import (
	"math/rand"
	"testing"
	"time"

	"repro/graph"
)

// TestNewResultWallExcludesCounting injects a large label slice (4M
// entries, all distinct — the worst case for counting) and checks that
// the wall duration passed in is returned untouched: the regression
// was a struct literal evaluating countLabels(...) before
// time.Since(start), charging the O(n) counting pass to Stats.Wall.
func TestNewResultWallExcludesCounting(t *testing.T) {
	labels := make([]int32, 1<<22)
	for i := range labels {
		labels[i] = int32(i)
	}
	const wall = 123 * time.Microsecond
	res := newResult(wall, labels, Stats{Backend: BackendNative, Workers: 4})
	if res.Stats.Wall != wall {
		t.Fatalf("Stats.Wall = %v, want the injected %v: counting leaked into the measurement", res.Stats.Wall, wall)
	}
	if res.NumComponents != len(labels) {
		t.Fatalf("NumComponents = %d, want %d", res.NumComponents, len(labels))
	}
	if res.Stats.Backend != BackendNative || res.Stats.Workers != 4 {
		t.Fatalf("stats not preserved: %+v", res.Stats)
	}
}

// TestCountLabelsMatchesReference cross-checks the O(n) slice-indexed
// count against the map-based reference on random in-range labelings
// and on the degenerate shapes.
func TestCountLabelsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		labels := make([]int32, n)
		reps := 1 + rng.Intn(n)
		for i := range labels {
			labels[i] = int32(rng.Intn(reps))
		}
		if got, want := countLabels(labels), countLabelsGeneric(labels); got != want {
			t.Fatalf("n=%d: countLabels=%d, reference=%d", n, got, want)
		}
	}
	if got := countLabels(nil); got != 0 {
		t.Fatalf("countLabels(nil) = %d", got)
	}
	if got := countLabels([]int32{0, 0, 0}); got != 1 {
		t.Fatalf("all-same = %d", got)
	}
	// Out-of-range labels must not panic: the generic fallback counts
	// them (no current backend produces these).
	if got := countLabels([]int32{5, -1, 5}); got != 2 {
		t.Fatalf("out-of-range fallback = %d", got)
	}
}

// TestComponentsWallIsPositive: the measured wall must still be a real
// measurement on every backend after the reordering.
func TestComponentsWallIsPositive(t *testing.T) {
	g := graph.Gnm(2000, 8000, 1)
	for _, b := range []Backend{BackendSimulated, BackendNative, BackendIncremental} {
		res, err := Components(g, WithBackend(b))
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if res.Stats.Wall <= 0 {
			t.Fatalf("%v: Stats.Wall = %v, want > 0", b, res.Stats.Wall)
		}
	}
}
