package pramcc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/graph"
	"repro/internal/check"
)

// ingestWithRetry pushes one span through the tenant, retrying on
// backpressure (ErrOverloaded / ErrTenantBacklog) — the contract a
// well-behaved client follows when the router sheds load.
func ingestWithRetry(t *testing.T, tn *Tenant, span graph.EdgeSpan) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := tn.IngestSpan(context.Background(), span)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrTenantBacklog) {
			t.Errorf("ingest: %v", err)
			return
		}
		if time.Now().After(deadline) {
			t.Error("backpressure never cleared")
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRouterOracleEquivalence: a tenant ingesting a graph through the
// router — random span splits, queued and coalesced behind a shard
// worker — must label exactly like the BFS oracle and like a single
// Service fed the same graph. Coalescing may only merge work, never
// change the partition.
func TestRouterOracleEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 50 + rng.Intn(300)
			g := graph.Gnm(n, 2+rng.Intn(4*n), seed)
			batches := g.SpanBatches(1 + rng.Intn(12))

			r, err := NewRouter(RouterConfig{Shards: 3, CoalesceLimit: 8, TenantQueueCap: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			tn, err := r.CreateTenant("oracle-eq", n)
			if err != nil {
				t.Fatal(err)
			}
			// Fire the batches concurrently so several queue up behind
			// the shard worker and coalesce; unions commute, so the
			// final partition is order-independent.
			var wg sync.WaitGroup
			for _, b := range batches {
				wg.Add(1)
				go func(b graph.EdgeSpan) {
					defer wg.Done()
					ingestWithRetry(t, tn, b)
				}(b)
			}
			wg.Wait()

			labels := tn.LabelsInto(nil)
			if err := check.SamePartition(labels, g.ComponentsBFS()); err != nil {
				t.Fatalf("router labeling != BFS oracle: %v", err)
			}

			single, err := NewService(n, WithBackend(BackendIncremental))
			if err != nil {
				t.Fatal(err)
			}
			defer single.Close()
			res, err := single.IngestSpan(nil, g.Span())
			if err != nil {
				t.Fatal(err)
			}
			if err := check.SamePartition(labels, res.Labels); err != nil {
				t.Fatalf("router labeling != single Service: %v", err)
			}
			if tn.NumComponents() != res.NumComponents {
				t.Fatalf("router components = %d, single Service = %d", tn.NumComponents(), res.NumComponents)
			}
			st := tn.Stats()
			if st.IngestedSpans != int64(len(batches)) {
				t.Errorf("IngestedSpans = %d, want %d", st.IngestedSpans, len(batches))
			}
			if st.IngestedEdges != int64(g.NumEdges()) {
				t.Errorf("IngestedEdges = %d, want %d", st.IngestedEdges, g.NumEdges())
			}
		})
	}
}

// TestRouterConcurrentTenants: eight tenants ingesting concurrently
// across four shards each end with their own graph's exact partition
// — shard sharing never leaks edges across tenants.
func TestRouterConcurrentTenants(t *testing.T) {
	r, err := NewRouter(RouterConfig{Shards: 4, QueueCap: 32, TenantQueueCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const tenants = 8
	graphs := make([]*graph.Graph, tenants)
	handles := make([]*Tenant, tenants)
	for i := range graphs {
		n := 80 + 20*i
		graphs[i] = graph.Gnm(n, 3*n, int64(100+i))
		tn, err := r.CreateTenant(fmt.Sprintf("tenant-%d", i), n)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = tn
	}
	var wg sync.WaitGroup
	for i := range handles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, b := range graphs[i].SpanBatches(16) {
				ingestWithRetry(t, handles[i], b)
			}
		}(i)
	}
	wg.Wait()
	for i, tn := range handles {
		if err := check.SamePartition(tn.LabelsInto(nil), graphs[i].ComponentsBFS()); err != nil {
			t.Errorf("tenant %d labeling wrong: %v", i, err)
		}
		if got := tn.Stats().Queued; got != 0 {
			t.Errorf("tenant %d still has %d queued", i, got)
		}
	}
}

// TestRouterQuotasAndErrors covers the public error taxonomy.
func TestRouterQuotasAndErrors(t *testing.T) {
	r, err := NewRouter(RouterConfig{Shards: 2, MaxVertices: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.CreateTenant("big", 1001); !errors.Is(err, ErrVertexQuota) {
		t.Errorf("oversized create: %v, want ErrVertexQuota", err)
	}
	if _, err := r.CreateTenant("bad id!", 10); err == nil {
		t.Error("invalid tenant id accepted")
	}
	tn, err := r.CreateTenant("acme", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateTenant("acme", 10); !errors.Is(err, ErrTenantExists) {
		t.Errorf("duplicate create: %v, want ErrTenantExists", err)
	}
	if _, err := r.Tenant("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("unknown lookup: %v, want ErrUnknownTenant", err)
	}
	if err := tn.Grow(2000); !errors.Is(err, ErrVertexQuota) {
		t.Errorf("oversized grow: %v, want ErrVertexQuota", err)
	}
	if err := tn.Grow(500); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if tn.N() != 500 {
		t.Errorf("N = %d, want 500", tn.N())
	}
	// Ingest range-checks pairs before narrowing to int32.
	if _, err := tn.Ingest(context.Background(), [][2]int{{0, 1 << 40}}); err == nil {
		t.Error("out-of-range pair accepted")
	}
	if _, err := tn.Ingest(context.Background(), [][2]int{{0, 1}, {1, 2}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if !tn.SameComponent(0, 2) {
		t.Error("pair ingest lost edges")
	}
	r.Close()
	if _, err := r.CreateTenant("late", 1); !errors.Is(err, ErrRouterClosed) {
		t.Errorf("create after close: %v, want ErrRouterClosed", err)
	}
}

// TestRouterWarmRestart: a durable router recovers every tenant from
// DataDir/t on construction — same shard, same labeling, same durable
// sequence, and immediately writable.
func TestRouterWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := RouterConfig{Shards: 2, DataDir: dir, Options: []Option{WithCheckpointEvery(3)}}

	r1, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type snap struct {
		labels []int32
		stats  TenantStats
	}
	want := map[string]snap{}
	for i, id := range []string{"acme", "beta", "gamma"} {
		n := 60 + 30*i
		g := graph.Gnm(n, 2*n, int64(7+i))
		tn, err := r1.CreateTenant(id, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range g.SpanBatches(5) {
			ingestWithRetry(t, tn, b)
		}
		st := tn.Stats()
		if !st.Durable || st.DurableSeq == 0 {
			t.Fatalf("tenant %s not durable: %+v", id, st)
		}
		want[id] = snap{labels: tn.LabelsInto(nil), stats: st}
	}
	r1.Close()

	r2, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := len(r2.Tenants()); got != len(want) {
		t.Fatalf("recovered %d tenants, want %d", got, len(want))
	}
	for id, w := range want {
		tn, err := r2.Tenant(id)
		if err != nil {
			t.Fatalf("tenant %s not recovered: %v", id, err)
		}
		if tn.Shard() != r2.ShardOf(id) {
			t.Errorf("tenant %s shard moved", id)
		}
		if tn.N() != w.stats.N {
			t.Errorf("tenant %s N = %d, want %d", id, tn.N(), w.stats.N)
		}
		if err := check.SamePartition(tn.LabelsInto(nil), w.labels); err != nil {
			t.Errorf("tenant %s labeling lost: %v", id, err)
		}
		st := tn.Stats()
		if !st.Durable || st.DurableSeq < w.stats.DurableSeq {
			t.Errorf("tenant %s durable seq regressed: %+v vs %+v", id, st, w.stats)
		}
		if st.NumComponents != w.stats.NumComponents {
			t.Errorf("tenant %s components = %d, want %d", id, st.NumComponents, w.stats.NumComponents)
		}
		// Recovered tenants accept writes immediately.
		if _, err := tn.IngestSpan(context.Background(), graph.FromPairs([][2]int{{0, 1}})); err != nil {
			t.Errorf("tenant %s ingest after recovery: %v", id, err)
		}
	}
}
