package pramcc

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/graph"
	"repro/internal/shard"
)

// Router errors, re-exported from the shard layer so callers match
// them without importing an internal package. ErrOverloaded and
// ErrTenantBacklog are retryable pressure (HTTP 429); ErrVertexQuota
// means the request can never succeed under the tenant's quota (422).
var (
	ErrOverloaded    = shard.ErrOverloaded
	ErrTenantBacklog = shard.ErrTenantBacklog
	ErrVertexQuota   = shard.ErrVertexQuota
	ErrUnknownTenant = shard.ErrUnknownTenant
	ErrTenantExists  = shard.ErrTenantExists
	ErrRouterClosed  = shard.ErrClosed
)

// ValidTenantID reports whether id is usable as a tenant id: 1–64
// characters of [a-zA-Z0-9._-], starting alphanumeric — safe to embed
// in durable subdirectory paths and metric label values.
func ValidTenantID(id string) bool { return shard.ValidTenantID(id) }

// RouterConfig sizes a Router. The zero value selects one shard,
// default queue bounds, no vertex quota, and in-memory tenants.
type RouterConfig struct {
	// Shards is the number of independent ingest queues and worker
	// goroutines tenants are hashed onto. < 1 selects 1.
	Shards int
	// QueueCap bounds each shard's ingest queue in spans; pushes
	// beyond it fail with ErrOverloaded. < 1 selects the default (256).
	QueueCap int
	// TenantQueueCap bounds how many spans one tenant may hold queued
	// at once (ErrTenantBacklog beyond it). < 1 selects the default (32).
	TenantQueueCap int
	// MaxVertices caps each tenant's vertex count; CreateTenant and
	// Grow beyond it fail with ErrVertexQuota. 0 means unlimited.
	MaxVertices int
	// CoalesceLimit is the most queued spans one worker pass merges
	// into a single engine batch. 1 disables coalescing; < 1 selects
	// the default (16).
	CoalesceLimit int
	// DataDir, when non-empty, persists every tenant under
	// DataDir/t/<tenant> and recovers all existing tenants on
	// NewRouter (warm restart). Empty keeps tenants in memory only.
	DataDir string
	// Options are passed to every per-tenant NewService/Open call:
	// WithWorkers, WithCheckpointEvery, and friends. Backends must
	// support streaming ingest; leave WithBackend unset to take the
	// incremental default.
	Options []Option
}

// Router is the sharded multi-tenant front end over per-tenant
// Services: tenant ids hash onto shards, each shard serializes its
// tenants' writes through one bounded queue and worker, and queries
// read each tenant's lock-free snapshot directly. See the package
// documentation's "Sharded service" section and internal/shard for
// the backpressure, quota, and span-coalescing semantics.
type Router struct {
	rt  *shard.Router
	cfg RouterConfig
}

// NewRouter builds a sharded tenant router. With cfg.DataDir set it
// also recovers every tenant already persisted under DataDir/t —
// tenants come back on the same shard (the hash is deterministic)
// with their durable labeling, so a warm restart needs no re-ingest.
func NewRouter(cfg RouterConfig) (*Router, error) {
	scfg := shard.Config{
		Shards:         cfg.Shards,
		QueueCap:       cfg.QueueCap,
		TenantQueueCap: cfg.TenantQueueCap,
		MaxVertices:    cfg.MaxVertices,
		CoalesceLimit:  cfg.CoalesceLimit,
	}
	if cfg.DataDir == "" {
		scfg.NewService = func(_ string, n int) (shard.Service, error) {
			// Streaming ingest and Grow need the incremental backend;
			// explicit WithBackend in cfg.Options still wins (applied
			// later), matching Open's default.
			sv, err := NewService(n, append([]Option{WithBackend(BackendIncremental)}, cfg.Options...)...)
			if err != nil {
				return nil, err
			}
			return routedService{sv}, nil
		}
	} else {
		scfg.NewService = func(tenant string, n int) (shard.Service, error) {
			dir := filepath.Join(cfg.DataDir, "t", tenant)
			sv, err := Open(dir, append([]Option{WithInitialVertices(n)}, cfg.Options...)...)
			if err != nil {
				return nil, err
			}
			return routedService{sv}, nil
		}
	}
	rt, err := shard.New(scfg)
	if err != nil {
		return nil, err
	}
	r := &Router{rt: rt, cfg: cfg}
	if cfg.DataDir != "" {
		if err := r.recover(); err != nil {
			rt.Close()
			return nil, err
		}
	}
	return r, nil
}

// recover re-creates every tenant persisted under DataDir/t. Each
// tenant is created with n=0: Open ignores the initial vertex count
// when a durable store exists, so the recovered labeling decides the
// real N — and a tenant persisted under an older, larger quota still
// comes back (only further Grow calls are quota-checked).
func (r *Router) recover() error {
	entries, err := os.ReadDir(filepath.Join(r.cfg.DataDir, "t"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() && shard.ValidTenantID(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := r.rt.CreateTenant(name, 0); err != nil {
			return fmt.Errorf("pramcc: recovering tenant %q: %w", name, err)
		}
	}
	return nil
}

// routedService adapts *Service to the shard layer's interface: the
// only mismatch is IngestSpan, which returns a full *Result here but
// just the published component count there.
type routedService struct{ *Service }

func (s routedService) IngestSpan(ctx context.Context, span graph.EdgeSpan) (int, error) {
	res, err := s.Service.IngestSpan(ctx, span)
	if err != nil {
		return 0, err
	}
	return res.NumComponents, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.rt.Shards() }

// ShardOf returns the shard index a tenant id maps to.
func (r *Router) ShardOf(id string) int { return r.rt.ShardOf(id) }

// CreateTenant creates a tenant with n initial isolated vertices; on
// a durable router its store is created under DataDir/t/<id>.
func (r *Router) CreateTenant(id string, n int) (*Tenant, error) {
	t, err := r.rt.CreateTenant(id, n)
	if err != nil {
		return nil, err
	}
	return &Tenant{t: t}, nil
}

// Tenant looks up a tenant by id.
func (r *Router) Tenant(id string) (*Tenant, error) {
	t, ok := r.rt.Tenant(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	return &Tenant{t: t}, nil
}

// Tenants returns every tenant, sorted by id.
func (r *Router) Tenants() []*Tenant {
	ts := r.rt.Tenants()
	out := make([]*Tenant, len(ts))
	for i, t := range ts {
		out[i] = &Tenant{t: t}
	}
	return out
}

// Close stops accepting writes, drains accepted queued spans, stops
// the shard workers, and closes every tenant service. Idempotent.
func (r *Router) Close() { r.rt.Close() }

// Tenant is one tenant's handle on a Router: ingest goes through the
// tenant's shard queue (coalescing with queue neighbours), queries
// read the tenant's published snapshot lock-free.
type Tenant struct {
	t *shard.Tenant
}

// ID returns the tenant id.
func (t *Tenant) ID() string { return t.t.ID() }

// Shard returns the shard index the tenant is routed to.
func (t *Tenant) Shard() int { return t.t.Shard() }

// IngestSpan enqueues a validated span on the tenant's shard and
// waits for the shard worker to apply it, returning the published
// component count. Failure modes: ErrOverloaded (shard queue full),
// ErrTenantBacklog (tenant's queued-span quota), validation errors,
// and ctx cancellation — a cancelled wait abandons an already
// accepted span, which is still applied (unions are idempotent).
func (t *Tenant) IngestSpan(ctx context.Context, span graph.EdgeSpan) (components int, err error) {
	return t.t.IngestSpan(ctx, span)
}

// Ingest is IngestSpan over an edge-pair batch: endpoints are
// range-checked as ints before the int32 conversion, exactly like
// Service.Ingest.
func (t *Tenant) Ingest(ctx context.Context, edges [][2]int) (components int, err error) {
	n := t.t.N()
	for i, e := range edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n {
			return 0, fmt.Errorf("pramcc: tenant %q: batch edge %d = {%d,%d} out of range [0,%d)", t.t.ID(), i, e[0], e[1], n)
		}
	}
	return t.t.IngestSpan(ctx, graph.FromPairs(edges))
}

// Grow extends the tenant's vertex set to n (no-op when n ≤ N),
// enforcing the router's vertex quota.
func (t *Tenant) Grow(n int) error { return t.t.Grow(n) }

// SameComponent answers from the tenant's published snapshot.
func (t *Tenant) SameComponent(v, w int) bool { return t.t.SameComponent(v, w) }

// N returns the tenant's published vertex count.
func (t *Tenant) N() int { return t.t.N() }

// NumComponents returns the tenant's published component count.
func (t *Tenant) NumComponents() int { return t.t.NumComponents() }

// LabelsInto copies the tenant's published labeling into dst,
// reallocating only when dst is too small.
func (t *Tenant) LabelsInto(dst []int32) []int32 { return t.t.LabelsInto(dst) }

// Queued returns the tenant's currently queued span count.
func (t *Tenant) Queued() int { return t.t.Queued() }

// TenantStats is a point-in-time tenant summary.
type TenantStats struct {
	ID            string
	Shard         int
	N             int
	NumComponents int
	Queued        int
	IngestedSpans int64
	IngestedEdges int64
	DurableSeq    uint64
	Durable       bool
}

// Stats snapshots the tenant.
func (t *Tenant) Stats() TenantStats {
	s := t.t.Stats()
	return TenantStats{
		ID:            s.ID,
		Shard:         s.Shard,
		N:             s.N,
		NumComponents: s.NumComponents,
		Queued:        s.Queued,
		IngestedSpans: s.IngestedSpans,
		IngestedEdges: s.IngestedEdges,
		DurableSeq:    s.DurableSeq,
		Durable:       s.Durable,
	}
}
